//! # secure-view
//!
//! A complete Rust implementation of **“Provenance Views for Module
//! Privacy”** (Davidson, Khanna, Milo, Panigrahi, Roy — PODS 2011):
//! Γ-privacy of module functionality in workflow provenance, safe-view
//! checking, and the Secure-View cost-minimization algorithms.
//!
//! The workspace is organised bottom-up; this crate re-exports the
//! public API of every layer:
//!
//! * [`relation`] — finite-domain relations, FDs, projection/join, and
//!   the **interned columnar kernel** (`InternedRelation`) the safety
//!   hot path runs on;
//! * [`workflow`] — modules, DAG workflows, execution, provenance
//!   relations, and the paper's example module library;
//! * [`privacy`] — Γ-standalone/workflow privacy (possible worlds, the
//!   Lemma-4 safety checker, Theorem-4/8 composition, the flipping
//!   construction, instrumented oracles) and the **memoized
//!   safety-oracle layer** (`privacy::safety`) every optimizer asks
//!   through;
//! * [`lp`] — the two-phase simplex / branch-and-bound substrate;
//! * [`optimize`] — the Secure-View optimizers (Figure-3 IP +
//!   Algorithm-1 rounding, set-constraint and general-workflow LPs,
//!   greedy `(γ+1)`-approximation, exact baselines);
//! * [`gen`] — hardness gadgets, the paper's five reductions, and
//!   random workload generators;
//! * [`serve`] — the multi-tenant serving tier: a tenant registry of
//!   warm oracles behind framed transports (in-process loopback and
//!   local sockets) with admission control and epoch-guarded probes.
//!
//! ## Quickstart
//!
//! ```
//! use secure_view::workflow::library::fig1_workflow;
//! use secure_view::privacy::StandaloneModule;
//! use secure_view::relation::AttrSet;
//! use secure_view::workflow::ModuleId;
//!
//! // The paper's running example (Figure 1).
//! let wf = fig1_workflow();
//! let m1 = StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 20).unwrap();
//!
//! // Example 3: V = {a1, a3, a5} is safe for Γ = 4.
//! let visible = AttrSet::from_indices(&[0, 2, 4]);
//! assert!(m1.is_safe(&visible, 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sv_gen as gen;
pub use sv_lp as lp;
pub use sv_optimize as optimize;
pub use sv_relation as relation;
pub use sv_serve as serve;
pub use sv_workflow as workflow;

/// The privacy core (`sv-core`): possible worlds, safety checking,
/// composition theorems, oracles.
pub mod privacy {
    pub use sv_core::*;
}
