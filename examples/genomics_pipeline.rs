//! A genomics-flavoured workflow: protecting a proprietary disease-risk
//! module.
//!
//! The paper motivates module privacy with proprietary scientific
//! software, e.g. "a genetic disorder susceptibility module" (§2.2).
//! This example builds a small pipeline in that shape:
//!
//! ```text
//!   sample ──▶ [qc: quality-control, PRIVATE]
//!       qc_flag, geno0, geno1 ──▶ [risk: proprietary risk model, PRIVATE]
//!       risk0, risk1 ──▶ [report: severity summary, PRIVATE]
//! ```
//!
//! and answers the operator's question: *which data items must the
//! provenance view withhold so no user can reconstruct the risk model's
//! input/output behaviour (Γ = 4), at minimum utility loss?*
//!
//! Run with: `cargo run --example genomics_pipeline`

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_view::optimize::{cardinality, exact_cardinality, CardinalityInstance};
use secure_view::privacy::compose::{union_of_standalone_optima, WorldSearch};
use secure_view::privacy::requirements::cardinality_constraints;
use secure_view::privacy::StandaloneModule;
use secure_view::relation::Domain;
use secure_view::workflow::{ModuleFn, ModuleId, Visibility, WorkflowBuilder};

fn main() {
    // ── Build the pipeline ───────────────────────────────────────────
    let mut b = WorkflowBuilder::new();
    let sample0 = b.attr("sample0", Domain::boolean());
    let sample1 = b.attr("sample1", Domain::boolean());
    let qc_flag = b.attr("qc_flag", Domain::boolean());
    let geno0 = b.attr("geno0", Domain::boolean());
    let geno1 = b.attr("geno1", Domain::boolean());
    let risk0 = b.attr("risk0", Domain::boolean());
    let risk1 = b.attr("risk1", Domain::boolean());
    let severity = b.attr("severity", Domain::boolean());

    // Quality control: flags low-quality reads, passes genotype bits.
    b.module(
        "qc",
        &[sample0, sample1],
        &[qc_flag, geno0, geno1],
        Visibility::Private,
        ModuleFn::closure(|v| vec![v[0] & v[1], v[0], v[0] ^ v[1]]),
    );
    // Proprietary risk model: a nonlinear mix of QC flag and genotype.
    b.module(
        "risk",
        &[qc_flag, geno0, geno1],
        &[risk0, risk1],
        Visibility::Private,
        ModuleFn::closure(|v| {
            let (q, g0, g1) = (v[0], v[1], v[2]);
            vec![(q & g0) ^ g1, q | (g0 & g1)]
        }),
    );
    // Report: collapses the risk vector into a severity bit.
    b.module(
        "report",
        &[risk0, risk1],
        &[severity],
        Visibility::Private,
        ModuleFn::closure(|v| vec![v[0] | v[1]]),
    );
    let wf = b.build().expect("pipeline is a valid DAG");
    println!("{wf:?}");

    // ── Per-module privacy requirements ─────────────────────────────
    // Utility loss per hidden item: genotype and severity data are the
    // most valuable to downstream users.
    let costs: Vec<u64> = vec![1, 1, 2, 5, 5, 3, 3, 6];
    let gamma = 2; // every module's outputs must stay 2-diverse
    for id in wf.private_modules() {
        let sm = StandaloneModule::from_workflow_module(&wf, id, 1 << 20).unwrap();
        let frontier = cardinality_constraints(&sm, gamma);
        println!(
            "{}: cardinality frontier for Γ={gamma}: {:?}",
            wf.modules()[id.index()].name,
            frontier
                .iter()
                .map(|c| (c.alpha, c.beta))
                .collect::<Vec<_>>()
        );
    }

    // ── Solve the workflow Secure-View problem ──────────────────────
    let inst = CardinalityInstance::from_workflow(&wf, gamma, 1 << 20)
        .expect("Γ=2 attainable everywhere")
        .with_costs(costs.clone());
    let opt = exact_cardinality(&inst).expect("feasible");
    let mut rng = StdRng::seed_from_u64(2026);
    let rounded = cardinality::solve_rounding(&inst, &mut rng).expect("LP solvable");
    let lp_lb = cardinality::lp_lower_bound(&inst).expect("LP solvable");
    let (naive_hidden, naive_cost) =
        union_of_standalone_optima(&wf, &costs, gamma, 1 << 20).unwrap();

    println!("\nSecure-View solutions (Γ = {gamma}):");
    println!("  LP lower bound:            {lp_lb:.2}");
    println!(
        "  exact optimum:             {} (hide {:?})",
        opt.cost,
        wf.schema().names(&opt.hidden)
    );
    println!("  Algorithm-1 rounding:      {}", rounded.cost);
    println!(
        "  union of standalone optima {} (hide {:?})",
        naive_cost,
        wf.schema().names(&naive_hidden)
    );

    // ── Verify the optimum semantically ──────────────────────────────
    let visible = opt.hidden.complement(wf.schema().len());
    let report = WorldSearch::new(&wf, visible)
        .run(1 << 33)
        .expect("world space within budget");
    let risk_id = ModuleId(1);
    println!(
        "\nRisk module min |OUT| under the optimal view: {} (Γ = {gamma} required)",
        report.min_out(risk_id)
    );
    assert!(report.is_gamma_private(&wf.private_modules(), gamma));
    println!("The proprietary model's behaviour is {gamma}-private ✓");
}
