//! The paper's hardness landscape, executably: builds each reduction
//! from a concrete source instance, solves both sides exactly, and
//! prints the correspondence (B.4.2, Lemma 5, Lemma 6, C.2, Lemma 8),
//! plus the Example-5 composition gap and the Theorem-3 oracle game.
//!
//! Run with: `cargo run --example hardness_gadgets`

use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_view::gen::adversary::AdversarialOracle;
use secure_view::gen::gadgets::example5_instance;
use secure_view::gen::labelcover::LabelCover;
use secure_view::gen::reductions::{
    labelcover_to_general, labelcover_to_set, setcover_to_cardinality, setcover_to_general,
    vertexcover_to_cardinality,
};
use secure_view::gen::setcover::SetCover;
use secure_view::gen::vertexcover::{cover_size, CubicGraph};
use secure_view::optimize::greedy::greedy_set;
use secure_view::optimize::{exact_cardinality, exact_general, exact_set};
use secure_view::privacy::oracle::SafeViewOracle;
use secure_view::relation::AttrSet;

fn main() {
    let mut rng = StdRng::seed_from_u64(2011); // PODS 2011

    // ── B.4.2: set cover → cardinality constraints ───────────────────
    let sc = SetCover::random(&mut rng, 8, 6, 0.35);
    let cover = sc.exact().expect("random instances are patched to cover");
    let red = setcover_to_cardinality(&sc);
    let opt = exact_cardinality(&red.instance).unwrap();
    println!(
        "B.4.2  set cover → cardinality: |cover*| = {}  ↔  Secure-View cost = {}",
        cover.len(),
        opt.cost
    );
    assert_eq!(cover.len() as u64, opt.cost);

    // ── B.5.2 / Figure 4: label cover → set constraints ─────────────
    let lc = LabelCover::random(&mut rng, 2, 2, 2, 0.5, 2);
    let asg = lc.exact();
    let red = labelcover_to_set(&lc);
    let opt = exact_set(&red.instance).unwrap();
    println!(
        "B.5.2  label cover → set constraints: assignment cost = {}  ↔  Secure-View cost = {} (Lemma 5)",
        asg.cost(),
        opt.cost
    );
    assert_eq!(asg.cost() as u64, opt.cost);

    // ── B.6.2 / Figure 5: cubic vertex cover → cardinality, γ = 1 ───
    let g = CubicGraph::random(&mut rng, 5, 0);
    let k = cover_size(&g.exact());
    let red = vertexcover_to_cardinality(&g);
    let opt = exact_cardinality(&red.instance).unwrap();
    println!(
        "B.6.2  vertex cover → cardinality (no sharing): m′ + K = {} + {}  ↔  cost = {} (Lemma 6)",
        red.m_edges, k, opt.cost
    );
    assert_eq!((red.m_edges + k) as u64, opt.cost);

    // ── C.2: set cover → general workflows, no sharing ──────────────
    let sc2 = SetCover::random(&mut rng, 5, 3, 0.4);
    if let Some(cover2) = sc2.exact() {
        let red = setcover_to_general(&sc2);
        if red.instance.base.n_attrs <= 26 {
            let opt = exact_general(&red.instance).unwrap();
            println!(
                "C.2    set cover → general workflows: |cover*| = {}  ↔  cost = {}",
                cover2.len(),
                opt.cost
            );
            assert_eq!(cover2.len() as u64, opt.cost);
        }
    }

    // ── C.3 / Figure 6: label cover → general workflows ─────────────
    let lc2 = LabelCover::random(&mut rng, 2, 2, 2, 0.5, 2);
    let asg2 = lc2.exact();
    let red = labelcover_to_general(&lc2);
    let opt = exact_general(&red.instance).unwrap();
    println!(
        "C.3    label cover → general workflows: assignment cost = {}  ↔  cost = {} (Lemma 8)",
        asg2.cost(),
        opt.cost
    );
    assert_eq!(asg2.cost() as u64, opt.cost);

    // ── Example 5: the Ω(n) composition gap ─────────────────────────
    println!("\nExample 5 — union-of-standalone-optima vs workflow optimum:");
    println!(
        "{:>6} {:>10} {:>10} {:>8}",
        "n", "greedy", "optimum", "ratio"
    );
    for n in [2usize, 4, 8, 12] {
        let inst = example5_instance(n);
        let greedy = greedy_set(&inst).unwrap();
        let opt = exact_set(&inst).unwrap();
        println!(
            "{:>6} {:>10} {:>10} {:>8.2}",
            n,
            greedy.cost,
            opt.cost,
            greedy.cost as f64 / opt.cost as f64
        );
    }

    // ── Theorem 3: the oracle adversary ──────────────────────────────
    println!("\nTheorem 3 — Safe-View oracle adversary (queries to exhaust candidates):");
    println!(
        "{:>6} {:>22} {:>18}",
        "ℓ", "required ≥ (4/3)^(ℓ/2)", "exact ratio"
    );
    for l in [8usize, 16, 32, 64] {
        let oracle = AdversarialOracle::new(l);
        println!(
            "{:>6} {:>22.1} {:>18.3e}",
            l,
            (4.0f64 / 3.0).powi(l as i32 / 2),
            oracle.required_queries()
        );
    }
    // And the adversary in action: 100 maximal queries leave candidates.
    let l = 32;
    let mut oracle = AdversarialOracle::new(l);
    for start in 0..100u32 {
        let hidden = AttrSet::from_iter(
            (0..l / 2).map(|i| secure_view::relation::AttrId(((start as usize + i) % l) as u32)),
        );
        let _ = oracle.is_safe(&hidden.complement(l + 1));
    }
    println!(
        "after {} queries at ℓ = {l}: ≥ {:.3e} special-subset candidates remain",
        oracle.calls(),
        oracle.remaining_candidates_lower()
    );
}
