//! Public modules and privatization (§5, Examples 7–8, Theorem 8).
//!
//! Demonstrates the paper's central negative result for general
//! workflows — standalone privacy does **not** survive composition with
//! public modules — and the privatization fix:
//!
//! 1. In the chain `m′ (public constant) → m (private one-one) →
//!    m″ (public invertible)`, hiding `m`'s inputs is standalone-safe
//!    but workflow-broken: the constant `m′` pins the inputs.
//! 2. Hiding `m`'s outputs fails symmetrically: the invertible `m″`
//!    reveals them.
//! 3. Privatizing the offending public module (Definition 6) restores
//!    Γ-privacy — exactly Theorem 8's recipe — and the general
//!    Secure-View optimizer trades attribute costs against
//!    privatization costs.
//!
//! Run with: `cargo run --example public_modules`

use secure_view::optimize::{exact_general, general, GeneralInstance};
use secure_view::privacy::compose::WorldSearch;
use secure_view::privacy::public::{greedy_general_solution, required_privatizations};
use secure_view::privacy::StandaloneModule;
use secure_view::relation::AttrSet;
use secure_view::workflow::{library::example8_chain, ModuleId};
use std::collections::BTreeMap;

fn main() {
    let k = 2;
    let wf = example8_chain(k);
    println!("{wf:?}");
    let gamma = 4u128;
    let m_priv = ModuleId(1);

    // ── 1. Standalone-safe hiding of the inputs … ────────────────────
    let sm = StandaloneModule::from_workflow_module(&wf, m_priv, 1 << 20).unwrap();
    let hide_inputs_local = AttrSet::from_indices(&[0, 1]); // y0, y1 locally
    assert!(sm.is_safe_hidden(&hide_inputs_local, gamma));
    println!("Standalone: hiding m's inputs is safe for Γ = {gamma} ✓");

    // … breaks inside the workflow (Example 7).
    let hide_inputs = AttrSet::from_indices(&[2, 3]); // y0, y1 globally
    let visible = hide_inputs.complement(wf.schema().len());
    let broken = WorldSearch::new(&wf, visible.clone()).run(1 << 26).unwrap();
    println!(
        "Workflow, no privatization: min |OUT| = {} — privacy destroyed by the public constant",
        broken.min_out(m_priv)
    );
    assert_eq!(broken.min_out(m_priv), 1);

    // ── 2. Theorem 8: privatize the touched public module ───────────
    let to_privatize = required_privatizations(&wf, &hide_inputs);
    println!(
        "Theorem 8 requires privatizing: {:?}",
        to_privatize
            .iter()
            .map(|id| wf.modules()[id.index()].name.as_str())
            .collect::<Vec<_>>()
    );
    let fixed = WorldSearch::new(&wf, visible)
        .with_privatized(to_privatize)
        .run(1 << 26)
        .unwrap();
    println!(
        "After privatization: min |OUT| = {} (Γ = {gamma} restored ✓)",
        fixed.min_out(m_priv)
    );
    assert!(fixed.min_out(m_priv) >= gamma);

    // ── 3. Cost-aware optimization over (V̄, P̄) ─────────────────────
    // Attribute costs: inputs cheap, intermediates pricier; privatizing
    // the public constant is cheap, the invertible reformatter is a
    // well-known community tool — hiding its identity is expensive.
    let attr_costs: Vec<u64> = vec![1, 1, 2, 2, 3, 3, 1, 1];
    let module_costs: BTreeMap<ModuleId, u64> = [(ModuleId(0), 1u64), (ModuleId(2), 8u64)].into();

    let inst = GeneralInstance::from_workflow(
        &wf,
        gamma,
        &[1, 8], // privatization costs aligned with public_modules() order
        1 << 20,
    )
    .expect("requirements derivable");
    let mut inst = inst;
    inst.base.costs = attr_costs.clone();

    let opt = exact_general(&inst).expect("feasible");
    let rounded = general::solve_rounding(&inst).expect("LP solvable");
    let lb = general::lp_lower_bound(&inst).expect("LP solvable");
    let (greedy_view, greedy_cost) =
        greedy_general_solution(&wf, &attr_costs, &module_costs, gamma, 1 << 20).unwrap();

    println!("\nGeneral Secure-View (Γ = {gamma}):");
    println!("  LP lower bound:       {lb:.2}");
    println!(
        "  exact optimum:        {} (hide {:?}, privatize {:?})",
        opt.cost,
        wf.schema().names(&opt.hidden),
        inst.induced_privatizations(&opt.hidden)
    );
    println!("  ℓmax-rounding:        {}", rounded.cost);
    println!(
        "  greedy (Thm-8 style): {} (hide {:?}, privatize {:?})",
        greedy_cost,
        wf.schema().names(&greedy_view.hidden_attrs),
        greedy_view
            .privatized
            .iter()
            .map(|id| wf.modules()[id.index()].name.as_str())
            .collect::<Vec<_>>()
    );

    // Verify the exact optimum semantically.
    let visible = opt.hidden.complement(wf.schema().len());
    let priv_ids: Vec<ModuleId> = inst
        .induced_privatizations(&opt.hidden)
        .into_iter()
        .map(|i| wf.public_modules()[i])
        .collect();
    let verified = WorldSearch::new(&wf, visible)
        .with_privatized(priv_ids)
        .run(1 << 26)
        .unwrap();
    assert!(verified.min_out(m_priv) >= gamma);
    println!("\nOptimal view verified {gamma}-private against possible worlds ✓");
}
