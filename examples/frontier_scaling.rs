//! The frontier engine: **trie antichains behind the lattice sweeps**.
//!
//! Earlier revisions kept each swept antichain as a flat `Vec<u64>` and
//! answered every per-mask coverage test by scanning it — `O(antichain)`
//! per query, millions of member visits per sweep, and the reason the
//! sweeps topped out around k = 20. The frontier engine stores the
//! ⊆-minimal safe sets as a [`Frontier`]: a path-compressed bitwise
//! trie (the canonical, ordered antichain) paired with a bitsliced
//! occurrence index that certifies `covers`/`dominated_by` in a few
//! hundred straight-line word ops regardless of antichain size. This
//! example walks the engine on a one-one module over 8 boolean wires
//! (k = 16, Γ = 16):
//!
//! 1. sweep the 65,536-mask lattice and read the engine's own
//!    instrumentation — masks visited vs. pruned, border masks emitted
//!    vs. covered subtrees jumped, trie nodes — all deterministic and
//!    CI-gated;
//! 2. walk the **uncovered border** (PR 10): `uncovered_in_layer`
//!    enumerates only the masks the antichain does not already cover,
//!    so each layer costs its border, not its binomial — the mechanism
//!    that lifted the sweeps from k = 24 to k = 28;
//! 3. ask the frontier the sweep's two inner-loop questions, `covers`
//!    (is this mask safe by Proposition 1?) and `dominated_by`, and
//!    check them against explicit member scans;
//! 4. combine frontiers with `union`/`intersect` — the up-set algebra
//!    the workflow memo layer runs on — and pick the cheapest safe
//!    hidden set with `min_cost_member`.
//!
//! Run with: `cargo run --example frontier_scaling`
//!
//! [`Frontier`]: secure_view::privacy::Frontier

use secure_view::privacy::sweep::{minimal_sets_sweep_frontier, SweepConfig};
use secure_view::privacy::{Frontier, StandaloneModule};
use secure_view::workflow::{library, ModuleId};

/// Boolean wires of the one-one module (k = 2 × WIRES lattice bits).
const WIRES: usize = 8;
/// Privacy requirement: at least Γ possible worlds per visible output.
const GAMMA: u128 = 16;

fn main() {
    let wf = library::one_one_chain(1, WIRES);
    let m = StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 26)
        .expect("one-one chain is a valid workflow module");
    let k = m.k();
    println!("Frontier engine over a one-one module: k = {k}, Γ = {GAMMA}\n");

    // ── 1. Sweep the lattice into a trie antichain ───────────────────
    let (frontier, stats) = minimal_sets_sweep_frontier(&m, GAMMA, &SweepConfig::auto())
        .expect("k = 16 is well inside the dense-sweep limit");
    println!(
        "swept {} masks: visited {} ({:.2}%), antichain {} members",
        stats.lattice,
        stats.visited,
        100.0 * stats.visited_fraction(),
        frontier.len(),
    );
    println!(
        "border walk emitted {} masks, jumped {} covered subtrees, {} trie nodes",
        stats.border_visited, stats.border_jumps, stats.frontier_nodes,
    );
    // Border enumeration replaces per-mask coverage queries entirely.
    assert_eq!(stats.frontier_queries, 0);
    assert_eq!(stats.visited, stats.border_visited);
    // The trie shape is canonical: 2n−1 nodes for n members, exactly.
    assert_eq!(stats.frontier_nodes as usize, 2 * frontier.len() - 1);
    // 2⁴·C(8,4) minimal safe hidden sets for this module family.
    assert_eq!(frontier.len(), 1120);

    // ── 2. Walk the uncovered border of the finished antichain ───────
    // Once the minimal sets are in, each layer's uncovered masks are
    // exactly the *unsafe* masks of that layer: the border the next
    // sweep pass would still have to probe. For this family a mask is
    // safe iff it touches ≥ 4 distinct wires, so the uncovered count
    // is a closed form — Σ_j≤3 C(8,j)·C(j,p−j)·2^(2j−p) masks putting
    // p bits on j ≤ 3 wires (p−j wires contribute both sides, the rest
    // pick one of two) — shrinking to zero while the binomial grows.
    let binom = |n: u64, r: u64| (0..r).fold(1u64, |acc, i| acc * (n - i) / (i + 1));
    println!("\nlayer  C(16,p)  uncovered  covered-jumps");
    for (p, expect) in [(4u64, 700u64), (5, 336), (6, 56), (7, 0)] {
        let scan = frontier.uncovered_in_layer(p as usize);
        println!(
            "{p:>5}  {:>7}  {:>9}  {:>13}",
            binom(16, p),
            scan.masks,
            scan.jumps
        );
        assert_eq!(scan.masks, expect, "closed-form uncovered count");
        // The runs partition the uncovered set, in ascending order.
        assert_eq!(scan.runs.iter().map(|r| r.len).sum::<u64>(), scan.masks);
    }
    // Layer 7 is fully covered — the sweep's cutoff certificate — and
    // `next_uncovered` is the same walk in successor-jumping form.
    assert_eq!(frontier.next_uncovered(0, 7), None);
    let first = frontier.next_uncovered(0, 5).expect("layer 5 has a border");
    assert!(!frontier.covers(first) && first.count_ones() == 5);
    println!("first uncovered layer-5 mask: {first:#06x}");

    // ── 3. The sweep's inner-loop questions, answered sublinearly ────
    let members: Vec<u64> = frontier.iter().collect();
    // Members come out in (popcount, mask) order — layer by layer.
    assert!(members
        .windows(2)
        .all(|w| (w[0].count_ones(), w[0]) < (w[1].count_ones(), w[1])));

    let safe = members[members.len() / 2] | members[0]; // superset of a member
    assert!(frontier.covers(safe), "up-set membership ⇒ safe");
    assert!(!frontier.covers(0), "hiding nothing is never Γ-private");
    let sub = members[0] & (members[0] - 1); // drop the lowest bit
    assert!(frontier.dominated_by(sub), "a member sits above it");
    // Spot-check both answers against explicit member scans.
    assert_eq!(
        frontier.covers(safe),
        members.iter().any(|&m| m | safe == safe)
    );
    println!(
        "covers/dominated_by agree with flat member scans ({} members)",
        members.len()
    );

    // ── 4. Up-set algebra and cost minimization ──────────────────────
    let low = Frontier::from_masks(k, members.iter().copied().take(8));
    let both = frontier.intersect(&low); // masks safe under both
    let either = frontier.union(&low); // masks safe under either
    assert_eq!(either.len(), frontier.len(), "low's up-set is contained");
    assert!(both.iter().all(|m| frontier.covers(m) && low.covers(m)));

    // Cheapest safe hidden set under an additive per-attribute cost.
    let costs: Vec<u64> = (0..k as u64).map(|a| 1 + a % 3).collect();
    let (mask, cost) = frontier
        .min_cost_member(&costs)
        .expect("non-empty antichain");
    assert!(frontier.contains(mask));
    println!(
        "cheapest safe hidden set: mask {mask:#06x} (popcount {}) at cost {cost}",
        mask.count_ones()
    );
    println!("\nok: trie antichain = flat reference on all {k}-bit probes");
}
