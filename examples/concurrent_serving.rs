//! Concurrent serving: **many reader threads, one shared oracle
//! instance**.
//!
//! Earlier revisions served exactly one batch at a time: every probe
//! surface took `&mut self`, so a deployment either serialized all
//! clients behind a mutex or gave each thread a cold private clone.
//! The concurrent-read serving tier makes every probe `&self` — the
//! memoized level caches are sharded read-mostly maps, the kernel's
//! group caches publish once per attribute set, and probe buffers come
//! from a pool — so N serving threads share one *warm* instance. This
//! example walks that deployment shape on the Figure-1 workflow:
//!
//! 1. build one [`WorkflowOracles`] and warm it with a first batch;
//! 2. fire mixed-module [`ProbeRequest`] batches from 4 serving threads
//!    at the **same** instance (no locks, no clones — just `&shared`),
//!    asserting every answer equals a sequential reference;
//! 3. show the cache economics: the distinct questions of the whole
//!    concurrent phase cost one kernel evaluation each, however many
//!    threads asked;
//! 4. ingest a new execution (`&mut` — the one writer) and show
//!    epoch-conditioned clients detecting the change ([`StaleEpoch`])
//!    while re-conditioned clients are served concurrently again.
//!
//! Run with: `cargo run --example concurrent_serving`
//!
//! [`StaleEpoch`]: secure_view::privacy::CoreError::StaleEpoch

use secure_view::privacy::safety::{ProbeRequest, SafetyOracle, WorkflowOracles};
use secure_view::privacy::CoreError;
use secure_view::relation::AttrSet;
use secure_view::workflow::library::fig1_workflow;

/// Serving threads sharing the one instance.
const THREADS: usize = 4;
/// Batches per thread in the concurrent phase.
const BATCHES: usize = 8;

fn main() {
    let wf = fig1_workflow();
    println!("Concurrent serving over the Figure-1 workflow\n");

    // ── 1. One shared instance (streaming mode), plus a sequential
    //       reference instance fed identically ─────────────────────────
    let mut shared = WorkflowOracles::for_workflow_streaming(&wf).expect("fig1 is valid");
    let mut reference = WorkflowOracles::for_workflow_streaming(&wf).expect("fig1 is valid");
    let ids = shared.module_ids();
    // Ingest three of the four possible executions up front; [1, 0] is
    // held back so phase 4 has a genuinely new row to stream in.
    for inputs in [[0u32, 0], [0, 1], [1, 1]] {
        let row = wf.run(&inputs).expect("fig1 executes");
        shared.ingest_execution(&row).expect("valid provenance");
        reference.ingest_execution(&row).expect("valid provenance");
    }

    // Deterministic mixed-module request streams, one per thread.
    let stream = |t: usize, b: usize| -> Vec<ProbeRequest> {
        (0..16)
            .map(|i| {
                let id = ids[(t + i) % ids.len()];
                let word = ((t * 31 + b * 7 + i * 13) % 32) as u64;
                let gamma = [2u128, 4, 8][(t + b + i) % 3];
                ProbeRequest::new(id, AttrSet::from_word(word), gamma)
            })
            .collect()
    };

    // ── 2. Four threads fire batches at the SAME instance ────────────
    let answered: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let shared = &shared;
                s.spawn(move || {
                    let mut answered = 0;
                    for b in 0..BATCHES {
                        let outcomes = shared
                            .probe_batch(&stream(t, b))
                            .expect("all modules covered, no epoch conditions");
                        answered += outcomes.len();
                    }
                    answered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread")).sum()
    });
    println!("phase 1: {THREADS} threads served {answered} probes against one shared instance");

    // Every concurrent answer equals the sequential reference.
    for t in 0..THREADS {
        for b in 0..BATCHES {
            let requests = stream(t, b);
            let outcomes = shared.probe_batch(&requests).expect("repeat batch");
            for (r, o) in requests.iter().zip(&outcomes) {
                let seq = reference
                    .oracle(r.module)
                    .expect("covered")
                    .is_safe(&r.visible, r.gamma);
                assert_eq!(o.safe, seq, "concurrent == sequential for {r:?}");
            }
        }
    }
    println!("         every answer matches the sequential reference oracle");

    // ── 3. Cache economics ───────────────────────────────────────────
    println!(
        "         cache: {} probes answered, {} kernel evaluations (distinct questions only)\n",
        shared.total_calls(),
        shared.total_misses()
    );
    assert!(shared.total_misses() <= 32 * ids.len() as u64);

    // ── 4. The single writer: append + epoch-conditioned clients ────
    // Each module has its own epoch (duplicate projections don't tick
    // it), so clients condition per module.
    let epochs_before: Vec<u64> = ids
        .iter()
        .map(|&id| shared.oracle(id).expect("covered").relation_epoch())
        .collect();
    let conditioned: Vec<ProbeRequest> = ids
        .iter()
        .zip(&epochs_before)
        .map(|(&id, &e)| ProbeRequest::new(id, AttrSet::new(), 2).at_epoch(e))
        .collect();
    assert!(shared.probe_batch(&conditioned).is_ok());

    // A fresh execution arrives — `ingest_execution` is `&mut self`,
    // the one writer; the borrow checker guarantees no probe overlaps.
    let row = wf.run(&[1, 0]).expect("fig1 executes");
    shared.ingest_execution(&row).expect("valid provenance");
    reference.ingest_execution(&row).expect("valid provenance");

    match shared.probe_batch(&conditioned) {
        Err(CoreError::StaleEpoch {
            module,
            expected,
            actual,
        }) => println!(
            "phase 2: epoch-conditioned batch rejected after ingest \
             (module {module}: expected epoch {expected}, now {actual})"
        ),
        other => panic!("stale batch must be rejected, got {other:?}"),
    }

    // Re-conditioned clients are served concurrently again, and still
    // agree with the reference.
    let refreshed: Vec<ProbeRequest> = ids
        .iter()
        .map(|&id| {
            let e = shared.oracle(id).expect("covered").relation_epoch();
            ProbeRequest::new(id, AttrSet::new(), 2).at_epoch(e)
        })
        .collect();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let shared = &shared;
            let reference = &reference;
            let refreshed = &refreshed;
            s.spawn(move || {
                let outcomes = shared.probe_batch(refreshed).expect("fresh epoch");
                for (r, o) in refreshed.iter().zip(&outcomes) {
                    assert_eq!(o.epoch, r.epoch.expect("conditioned"));
                    let seq = reference
                        .oracle(r.module)
                        .expect("covered")
                        .is_safe(&r.visible, r.gamma);
                    assert_eq!(o.safe, seq);
                }
            });
        }
    });
    println!("         re-conditioned clients served concurrently at the new epochs\n");
    println!("ok: concurrent ≡ sequential, one writer, epoch-guarded serving");
}
