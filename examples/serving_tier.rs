//! The serving tier: **many tenants, many clients, one server**.
//!
//! The layers below this one answer probes for a single workflow held
//! in-process. A real deployment holds *hundreds* of workflows — one
//! per pipeline, per team, per customer — and answers clients that
//! live outside the process. The serving tier (`sv-serve`) packages
//! that shape: a [`TenantRegistry`] of warm per-workflow oracles
//! behind a framed wire protocol, with admission control and
//! epoch-guarded probes. This example walks the whole surface on the
//! in-process loopback transport (byte-for-byte the same protocol the
//! socket transport speaks):
//!
//! 1. register two tenants running *different* workflows and show that
//!    their serving state is fully isolated;
//! 2. fire probe batches from 4 concurrent client threads while the
//!    main thread streams new provenance into one tenant — live
//!    ingest, epochs advancing mid-traffic;
//! 3. demonstrate the **epoch guard**: a client conditioned on a
//!    pre-ingest epoch gets the whole batch rejected ([`StaleEpoch`]),
//!    re-reads epochs, retries, succeeds;
//! 4. demonstrate **backpressure**: a tenant with tight admission
//!    limits answers an oversized frame with a typed [`Busy`] — and
//!    keeps serving afterwards.
//!
//! Run with: `cargo run --example serving_tier`
//!
//! [`StaleEpoch`]: secure_view::privacy::wire::ServeFault::StaleEpoch
//! [`Busy`]: secure_view::serve::ServeError::Busy

use secure_view::privacy::safety::ProbeRequest;
use secure_view::privacy::wire::ServeFault;
use secure_view::relation::AttrSet;
use secure_view::serve::{
    AdmissionLimits, Client, LoopbackTransport, ServeError, Server, TenantConfig, TenantId,
    TenantRegistry,
};
use secure_view::workflow::library::{fig1_workflow, one_one_chain};
use secure_view::workflow::ModuleId;
use std::sync::Arc;

/// Concurrent probe clients in phase 2.
const CLIENTS: usize = 4;
/// Probe batches each client fires.
const BATCHES: usize = 16;

fn main() {
    println!("The serving tier: tenants, clients, epochs, backpressure\n");

    // ── 1. Two tenants, two workflows, one server ──────────────────
    // Tenant 1: the paper's Figure-1 workflow, fully materialized.
    // Tenant 2: a streaming 3-wire boolean module that starts empty.
    let registry = Arc::new(TenantRegistry::new());
    let fig1 = fig1_workflow();
    registry
        .create(TenantId(1), TenantConfig::new(&fig1).budget(1 << 20))
        .expect("register tenant 1");
    let streaming_wf = one_one_chain(1, 3);
    registry
        .create(
            TenantId(2),
            TenantConfig::new(&streaming_wf).streaming(true),
        )
        .expect("register tenant 2");
    let server = Arc::new(Server::new(Arc::clone(&registry)));
    let transport = LoopbackTransport::new(server);

    let mut client = Client::connect(&transport).expect("connect");
    // Example 3 of the paper, served over the wire: V = {a1, a3, a5}
    // is 4-safe for m1 but not 8-safe.
    let outcomes = client
        .probe(
            TenantId(1),
            &[
                ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 2, 4]), 4),
                ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 2, 4]), 8),
            ],
        )
        .expect("probe tenant 1");
    println!(
        "tenant 1 (fig. 1):   V = {{a1,a3,a5}} → 4-safe: {:5}  8-safe: {}",
        outcomes[0].safe, outcomes[1].safe
    );
    // Tenant 2 is empty: every view is trivially safe, at epoch 0.
    let outcomes = client
        .probe(
            TenantId(2),
            &[ProbeRequest::new(ModuleId(0), AttrSet::from_word(0b111), 8)],
        )
        .expect("probe tenant 2");
    println!(
        "tenant 2 (empty):    everything visible → 8-safe: {} (epoch {})\n",
        outcomes[0].safe, outcomes[0].epoch
    );

    // ── 2. Concurrent clients racing live ingest ───────────────────
    // Four client threads hammer tenant 2 with probe batches while the
    // main thread streams all eight executions in, one ingest frame
    // each. Served epochs only ever advance.
    let probes: Vec<ProbeRequest> = (0..1u64 << 6)
        .step_by(5)
        .map(|w| ProbeRequest::new(ModuleId(0), AttrSet::from_word(w), 4))
        .collect();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let transport = &transport;
            let probes = &probes;
            scope.spawn(move || {
                let mut client = Client::connect(transport).expect("connect");
                let mut last = 0u64;
                for _ in 0..BATCHES {
                    let outcomes = client.probe(TenantId(2), probes).expect("probe");
                    for o in &outcomes {
                        assert!(o.epoch >= last, "epochs never regress");
                        last = o.epoch;
                    }
                }
                (c, last)
            });
        }
        let mut ingest = Client::connect(&transport).expect("connect");
        for bits in 0..1u32 << 3 {
            let input: Vec<u32> = (0..3).map(|w| (bits >> w) & 1).collect();
            let row = streaming_wf.run(&input).expect("runs");
            let reply = ingest
                .ingest(TenantId(2), &[row.values().to_vec()])
                .expect("ingest");
            assert_eq!(reply.added, 1);
        }
    });
    let final_epoch = client.epochs(TenantId(2)).expect("epochs")[0].epoch;
    println!(
        "{CLIENTS} clients × {BATCHES} batches raced 8 ingest frames; tenant 2 now at epoch {final_epoch}"
    );

    // ── 3. The epoch guard ─────────────────────────────────────────
    // A client that derived a plan at epoch 0 conditions its probes on
    // it; the server rejects the *whole* batch, the client re-reads
    // epochs and retries.
    let conditioned = [ProbeRequest::new(ModuleId(0), AttrSet::from_word(0b111), 4).at_epoch(0)];
    match client.probe(TenantId(2), &conditioned) {
        Err(ServeError::Fault(ServeFault::StaleEpoch {
            expected, actual, ..
        })) => {
            println!(
                "epoch guard:         probe pinned to epoch {expected} rejected (now {actual})"
            );
        }
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    let now = client.epochs(TenantId(2)).expect("epochs")[0].epoch;
    let retried: Vec<ProbeRequest> = conditioned
        .iter()
        .map(|p| p.clone().at_epoch(now))
        .collect();
    let outcomes = client.probe(TenantId(2), &retried).expect("retry succeeds");
    println!(
        "                     retried at epoch {now}: answered (safe = {})\n",
        outcomes[0].safe
    );

    // ── 4. Backpressure ────────────────────────────────────────────
    // A tenant admitted with a 4-probe frame bound answers a 16-probe
    // frame with Busy — a typed response, not a hang, and no serving
    // state is touched.
    let tight = registry
        .create(
            TenantId(3),
            TenantConfig::new(&streaming_wf)
                .streaming(true)
                .limits(AdmissionLimits {
                    max_batch_requests: 4,
                    ..AdmissionLimits::default()
                }),
        )
        .expect("register tenant 3");
    let oversized: Vec<ProbeRequest> = (0..16)
        .map(|w| ProbeRequest::new(ModuleId(0), AttrSet::from_word(w), 2))
        .collect();
    match client.probe(TenantId(3), &oversized) {
        Err(ServeError::Busy(reason)) => println!("backpressure:        {reason}"),
        other => panic!("expected Busy, got {other:?}"),
    }
    let outcomes = client
        .probe(TenantId(3), &oversized[..4])
        .expect("within bounds");
    println!(
        "                     4-probe frame served fine ({} outcomes); rejections counted: {}",
        outcomes.len(),
        tight.stats().busy_rejections
    );
    println!("\nAll serving-tier invariants held.");
}
