//! Quickstart: the paper's running example (Figure 1, Examples 1–4)
//! end-to-end.
//!
//! Builds the three-module workflow, materializes its provenance
//! relation, checks the Example-3 safe subsets, solves the standalone
//! Secure-View problem for `m1`, and verifies a workflow-wide safe view
//! semantically against function-generated possible worlds.
//!
//! Run with: `cargo run --example quickstart`

use secure_view::optimize::{exact_set, setcon, SetInstance};
use secure_view::privacy::compose::WorldSearch;
use secure_view::privacy::StandaloneModule;
use secure_view::relation::{project, AttrSet};
use secure_view::workflow::{library::fig1_workflow, ModuleId};

fn main() {
    // ── The Figure-1 workflow ────────────────────────────────────────
    let wf = fig1_workflow();
    println!("{wf:?}");

    let r = wf
        .provenance_relation(1 << 10)
        .expect("4 executions fit any budget");
    println!("Provenance relation R (Figure 1b):\n{r:?}");

    // ── Standalone privacy of m1 (Examples 2–3) ─────────────────────
    let m1 = StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 20)
        .expect("m1 is a 2-in/3-out boolean module");

    let v = AttrSet::from_indices(&[0, 2, 4]); // {a1, a3, a5}
    println!(
        "V = {{a1,a3,a5}}: privacy level = {} (safe for Γ=4: {})",
        m1.privacy_level(&v),
        m1.is_safe(&v, 4)
    );
    let inputs_hidden = AttrSet::from_indices(&[2, 3, 4]);
    println!(
        "V = {{a3,a4,a5}} (inputs hidden): level = {} — not safe for Γ=4",
        m1.privacy_level(&inputs_hidden)
    );

    // Minimum-cost safe hiding for m1 under weighted costs.
    let costs = [10u64, 3, 9, 2, 9]; // a1 … a5
    let (hidden, cost) = m1
        .min_cost_safe_hidden(&costs, 4)
        .expect("k = 5 is enumerable")
        .expect("Γ = 4 is attainable");
    println!(
        "m1 standalone Secure-View (Γ=4): hide {:?} at cost {cost}",
        m1.schema().names(&hidden)
    );

    // ── Workflow-wide Secure-View (Γ = 2) ───────────────────────────
    let inst = SetInstance::from_workflow(&wf, 2, 1 << 20).expect("all three modules attain Γ = 2");
    let opt = exact_set(&inst).expect("feasible");
    let lp = setcon::solve_rounding(&inst).expect("LP solvable");
    println!(
        "Workflow Secure-View (Γ=2): exact cost {}, ℓmax-rounding cost {}",
        opt.cost, lp.cost
    );
    println!("  exact hides {:?}", wf.schema().names(&opt.hidden));

    // ── Semantic verification against possible worlds ───────────────
    let visible = opt.hidden.complement(wf.schema().len());
    let report = WorldSearch::new(&wf, visible.clone())
        .run(1 << 26)
        .expect("fig1 world space fits the budget");
    println!(
        "Possible-world verification: {} worlds matched; per-module min |OUT|:",
        report.worlds_matched
    );
    for id in wf.private_modules() {
        println!(
            "  {}: {}",
            wf.modules()[id.index()].name,
            report.min_out(id)
        );
    }
    assert!(report.is_gamma_private(&wf.private_modules(), 2));
    println!("All modules are 2-workflow-private under the chosen view ✓");

    // The user still sees the visible projection:
    println!("The published view π_V(R):\n{:?}", project(&r, &visible));
}
