//! Streaming provenance: **live ingest** of workflow executions through
//! the incremental interned kernel.
//!
//! The batch examples materialize each module's full relation up front.
//! A live deployment doesn't have that luxury: provenance arrives one
//! workflow execution at a time, and the privacy monitor must keep
//! answering "is the published view still Γ-private?" without
//! rebuilding its indexes and caches per row. This example runs that
//! scenario end to end on the paper's Figure-1 workflow:
//!
//! 1. start a [`WorkflowSweeper`] and [`WorkflowOracles`] in streaming
//!    mode (every private module empty — nothing observed, everything
//!    vacuously safe);
//! 2. ingest executions as they happen ([`Workflow::run`] →
//!    `ingest_execution`), watching module epochs tick only for modules
//!    whose relation actually gained a row;
//! 3. after each arrival, re-derive the minimal safe hidden sets — the
//!    epoch-stamped sweep memos re-sweep **only the modules that
//!    changed**;
//! 4. keep a standing `is_safe(V, Γ)` question alive on a memoized
//!    oracle and watch the monotone shortcut answer it from the cache
//!    when appends provably could not break it.
//!
//! Run with: `cargo run --example streaming_provenance`

use secure_view::privacy::safety::{SafetyOracle, WorkflowOracles};
use secure_view::privacy::{SweepConfig, WorkflowSweeper};
use secure_view::relation::AttrSet;
use secure_view::workflow::library::fig1_workflow;

fn main() {
    let wf = fig1_workflow();
    println!(
        "Live ingest over the Figure-1 workflow ({} modules)\n",
        wf.len()
    );

    // ── 1. Streaming monitors: nothing observed yet ─────────────────
    let mut sweeper = WorkflowSweeper::for_workflow_streaming(&wf, SweepConfig::auto())
        .expect("fig1 is structurally valid");
    let mut oracles = WorkflowOracles::for_workflow_streaming(&wf).expect("fig1 is valid");
    let gamma = 4;
    let ids = sweeper.module_ids();
    let (sets, _) = sweeper.module_minimal_sets(ids[0], gamma).unwrap();
    println!(
        "before any execution: m1's minimal safe hidden sets = {sets:?} \
         (vacuously safe — nothing to protect yet)"
    );

    // The hospital's standing question: does hiding {a2, a4} keep m1
    // Γ=4-private? (Example 3's weighted optimum.)
    let standing_hidden = AttrSet::from_indices(&[1, 3]);

    // ── 2./3. Executions arrive one at a time ───────────────────────
    for (step, inputs) in [[0u32, 0], [0, 1], [1, 0], [1, 1]].iter().enumerate() {
        let row = wf.run(inputs).expect("in-domain inputs");
        let new_rows = sweeper.ingest_execution(&row).unwrap();
        oracles.ingest_execution(&row).unwrap();

        let sweeps_before = sweeper.sweeps_performed();
        let mut antichain_sizes = Vec::new();
        for &id in &ids {
            let (sets, _) = sweeper.module_minimal_sets(id, gamma).unwrap();
            antichain_sizes.push(sets.len());
        }
        let resweeps = sweeper.sweeps_performed() - sweeps_before;
        let epochs: Vec<u64> = ids
            .iter()
            .map(|&id| sweeper.module_epoch(id).unwrap())
            .collect();
        let m1 = oracles.oracle(ids[0]).unwrap();
        let standing_ok = m1.is_safe_hidden(&standing_hidden, gamma);
        println!(
            "execution {}: x = {:?} → +{} module rows | epochs {:?} | \
             re-swept {} of {} modules | antichain sizes {:?} | \
             hide {{a2,a4}} safe: {}",
            step + 1,
            inputs,
            new_rows,
            epochs,
            resweeps,
            ids.len(),
            antichain_sizes,
            standing_ok,
        );
    }

    // Re-deriving now, with no new provenance, costs zero sweeps.
    let before = sweeper.sweeps_performed();
    for &id in &ids {
        let _ = sweeper.module_minimal_sets(id, gamma).unwrap();
    }
    println!(
        "\nsteady state: re-deriving all requirement lists performed {} new sweeps",
        sweeper.sweeps_performed() - before
    );

    // A duplicate execution changes nothing — memos stay warm.
    let dup = wf.run(&[0, 0]).expect("in-domain");
    let added = sweeper.ingest_execution(&dup).unwrap();
    for &id in &ids {
        let _ = sweeper.module_minimal_sets(id, gamma).unwrap();
    }
    println!(
        "duplicate execution: +{added} rows, {} new sweeps",
        sweeper.sweeps_performed() - before
    );

    // ── 4. The monotone shortcut at the oracle layer ────────────────
    let m1 = oracles.oracle(ids[0]).unwrap();
    let shortcut_before = m1.monotone_shortcut_hits();
    let misses_before = m1.misses();
    let safe = m1.is_safe_hidden(&standing_hidden, gamma);
    println!(
        "\nstanding probe after the stream: safe = {safe} \
         (cache: {} kernel evaluations total, {} monotone shortcuts, {} revalidations)",
        m1.misses(),
        m1.monotone_shortcut_hits(),
        m1.revalidations(),
    );
    assert_eq!(m1.misses(), misses_before, "no new kernel work needed");
    let _ = shortcut_before;

    // The streamed state is exactly the batch state: all four
    // executions happened, so the streamed m1 equals the materialized
    // Example-3 module and its weighted optimum is the familiar one.
    let costs = sweeper.localize_costs(&[10, 3, 9, 2, 9, 1, 1]);
    let (found, _) = sweeper
        .module_min_cost(ids[0], &costs, gamma)
        .expect("k = 5 is enumerable");
    let (hidden, cost) = found.expect("Γ = 4 attainable");
    println!(
        "m1 weighted Secure-View optimum over streamed provenance: hide {:?} at cost {cost}",
        hidden
    );
    assert_eq!(hidden, AttrSet::from_indices(&[1, 3]));
    assert_eq!(cost, 5);
    println!("\nstreamed state ≡ batch state ✓");
}
