//! Property-based tests of the core invariants, across crates.
//!
//! * the fast Lemma-4 safety checker equals brute-force possible-world
//!   semantics on random modules;
//! * safety is monotone in the hidden set (Proposition 1);
//! * Theorem 4: union of standalone-safe hidden sets is workflow-safe
//!   on random layered workflows (verified against function worlds);
//! * optimizer sandwich: LP ≤ exact ≤ rounding ≤ guarantee·exact;
//! * relational algebra: projection/join laws the provenance relation
//!   relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secure_view::gen::random::{
    random_cardinality, random_layered_workflow, random_set, InstanceParams,
};
use secure_view::optimize::{cardinality, exact_cardinality, exact_set, setcon};
use secure_view::privacy::compose::{union_of_standalone_optima, WorldSearch};
use secure_view::privacy::worlds::min_out_bruteforce;
use secure_view::privacy::StandaloneModule;
use secure_view::relation::{AttrSet, Relation, Schema};

/// A random boolean module with 2 inputs / 2 outputs as a truth table
/// (16 possible output assignments per input → u16 seed).
fn module_from_seed(seed: u64) -> StandaloneModule {
    let schema = Schema::booleans(&["i0", "i1", "o0", "o1"]);
    let rows: Vec<Vec<u32>> = (0..4u32)
        .map(|x| {
            let out = (seed >> (x * 2)) & 0b11;
            vec![x >> 1, x & 1, (out >> 1) as u32, (out & 1) as u32]
        })
        .collect();
    let rel = Relation::from_values(schema, rows).unwrap();
    StandaloneModule::new(
        rel,
        AttrSet::from_indices(&[0, 1]),
        AttrSet::from_indices(&[2, 3]),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 4: grouped-count privacy level equals min |OUT| over all
    /// possible worlds, for every visible subset of random modules.
    #[test]
    fn privacy_level_equals_bruteforce(seed in 0u64..256) {
        let m = module_from_seed(seed);
        for mask in 0u32..16 {
            let visible = AttrSet::from_iter(
                (0..4).filter(|i| mask & (1 << i) != 0)
                    .map(|i| secure_view::relation::AttrId(i as u32)),
            );
            let fast = m.privacy_level(&visible);
            let slow = min_out_bruteforce(&m, &visible, 1 << 22).unwrap();
            prop_assert_eq!(fast, slow, "seed={} visible={:?}", seed, visible);
        }
    }

    /// Proposition 1: monotonicity of safety in the hidden set.
    #[test]
    fn safety_monotone(seed in 0u64..1024, gamma in 2u128..5) {
        let m = module_from_seed(seed);
        for mask in 0u32..16 {
            let hidden = AttrSet::from_iter(
                (0..4).filter(|i| mask & (1 << i) != 0)
                    .map(|i| secure_view::relation::AttrId(i as u32)),
            );
            if m.is_safe_hidden(&hidden, gamma) {
                for extra in 0..4u32 {
                    let mut bigger = hidden.clone();
                    bigger.insert(secure_view::relation::AttrId(extra));
                    prop_assert!(m.is_safe_hidden(&bigger, gamma));
                }
            }
        }
    }

    /// The minimal-safe-set antichain exactly generates all safe sets.
    #[test]
    fn minimal_sets_generate(seed in 0u64..512) {
        let m = module_from_seed(seed);
        let minimal = m.minimal_safe_hidden_sets(2).unwrap();
        for mask in 0u32..16 {
            let hidden = AttrSet::from_iter(
                (0..4).filter(|i| mask & (1 << i) != 0)
                    .map(|i| secure_view::relation::AttrId(i as u32)),
            );
            let safe = m.is_safe_hidden(&hidden, 2);
            let gen = minimal.iter().any(|s| s.is_subset(&hidden));
            prop_assert_eq!(safe, gen);
        }
    }

    /// Theorem 4 on random layered workflows: the union of per-module
    /// standalone optima is workflow-Γ-private (function-world check).
    #[test]
    fn theorem4_on_random_workflows(seed in 0u64..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = random_layered_workflow(&mut rng, 2, 2, 2);
        let costs = vec![1u64; wf.schema().len()];
        if let Ok((hidden, _)) = union_of_standalone_optima(&wf, &costs, 2, 1 << 20) {
            let visible = hidden.complement(wf.schema().len());
            let report = WorldSearch::new(&wf, visible).run(1 << 26).unwrap();
            prop_assert!(report.is_gamma_private(&wf.private_modules(), 2),
                "seed={}", seed);
        }
    }

    /// Optimizer sandwich for cardinality constraints.
    #[test]
    fn cardinality_sandwich(seed in 0u64..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = InstanceParams { n_modules: 4, attrs_per_module: 4, ..Default::default() };
        let inst = random_cardinality(&mut rng, &p);
        if let Some(opt) = exact_cardinality(&inst) {
            let lb = cardinality::lp_lower_bound(&inst).unwrap();
            prop_assert!(lb <= opt.cost as f64 + 1e-6,
                "LP {} must lower-bound OPT {}", lb, opt.cost);
            let rounded = cardinality::solve_rounding(&inst, &mut rng).unwrap();
            prop_assert!(inst.feasible(&rounded.hidden));
            prop_assert!(rounded.cost >= opt.cost);
        }
    }

    /// Optimizer sandwich for set constraints, with the ℓ_max guarantee.
    #[test]
    fn set_sandwich_with_lmax_guarantee(seed in 0u64..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = InstanceParams { n_modules: 4, attrs_per_module: 4, ..Default::default() };
        let inst = random_set(&mut rng, &p);
        if let Some(opt) = exact_set(&inst) {
            let lb = setcon::lp_lower_bound(&inst).unwrap();
            prop_assert!(lb <= opt.cost as f64 + 1e-6);
            let rounded = setcon::solve_rounding(&inst).unwrap();
            prop_assert!(inst.feasible(&rounded.hidden));
            prop_assert!(rounded.cost as f64
                <= inst.l_max() as f64 * opt.cost as f64 + 1e-6,
                "rounded {} > lmax {} * opt {}", rounded.cost, inst.l_max(), opt.cost);
        }
    }

    /// exact-IP (branch & bound) agrees with dense enumeration.
    #[test]
    fn exact_ip_agrees_with_enumeration(seed in 0u64..24) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = InstanceParams { n_modules: 3, attrs_per_module: 3, ..Default::default() };
        let inst = random_set(&mut rng, &p);
        if let Some(opt) = exact_set(&inst) {
            let ip = setcon::exact_ip(&inst, 1 << 16).unwrap();
            prop_assert_eq!(opt.cost, ip.cost);
        }
    }

    /// Relational laws: π_V(π_W(R)) = π_V(R) for V ⊆ W, and join with
    /// self is identity on key-complete relations.
    #[test]
    fn projection_composes(rows in proptest::collection::vec(0u32..8, 1..12)) {
        let schema = Schema::booleans(&["a", "b", "c"]);
        let rel = Relation::from_values(
            schema,
            rows.iter().map(|&r| vec![r >> 2 & 1, r >> 1 & 1, r & 1]).collect(),
        ).unwrap();
        let w = AttrSet::from_indices(&[0, 2]);
        let v = AttrSet::from_indices(&[0]);
        let via_w = secure_view::relation::project(
            &secure_view::relation::project(&rel, &w),
            &v,
        );
        let direct = secure_view::relation::project(&rel, &v);
        prop_assert_eq!(via_w.rows(), direct.rows());
        // Self-join is identity.
        let j = secure_view::relation::natural_join(&rel, &rel).unwrap();
        prop_assert_eq!(j, rel);
    }
}
