//! Property-based tests of the core invariants, across crates, driven
//! by a seeded PRNG (the offline stand-in for proptest).
//!
//! * the fast Lemma-4 safety checker equals brute-force possible-world
//!   semantics on random modules;
//! * safety is monotone in the hidden set (Proposition 1);
//! * Theorem 4: union of standalone-safe hidden sets is workflow-safe
//!   on random layered workflows (verified against function worlds);
//! * optimizer sandwich: LP ≤ exact ≤ rounding ≤ guarantee·exact;
//! * relational algebra: projection/join laws the provenance relation
//!   relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_view::gen::random::{
    random_cardinality, random_layered_workflow, random_set, InstanceParams,
};
use secure_view::optimize::{cardinality, exact_cardinality, exact_set, setcon};
use secure_view::privacy::compose::{union_of_standalone_optima, WorldSearch};
use secure_view::privacy::worlds::min_out_bruteforce;
use secure_view::privacy::StandaloneModule;
use secure_view::relation::{AttrSet, Relation, Schema};

/// A random boolean module with 2 inputs / 2 outputs as a truth table
/// (16 possible output assignments per input → u16 seed).
fn module_from_seed(seed: u64) -> StandaloneModule {
    let schema = Schema::booleans(&["i0", "i1", "o0", "o1"]);
    let rows: Vec<Vec<u32>> = (0..4u32)
        .map(|x| {
            let out = (seed >> (x * 2)) & 0b11;
            vec![x >> 1, x & 1, (out >> 1) as u32, (out & 1) as u32]
        })
        .collect();
    let rel = Relation::from_values(schema, rows).unwrap();
    StandaloneModule::new(
        rel,
        AttrSet::from_indices(&[0, 1]),
        AttrSet::from_indices(&[2, 3]),
    )
    .unwrap()
}

fn mask_set(mask: u32, k: u32) -> AttrSet {
    AttrSet::from_iter(
        (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(secure_view::relation::AttrId),
    )
}

/// Lemma 4: grouped-count privacy level equals min |OUT| over all
/// possible worlds, for every visible subset of random modules — and
/// the interned kernel, the row-at-a-time seed semantics, and the
/// memoizing oracle all agree with that ground truth.
#[test]
fn privacy_level_equals_bruteforce() {
    use secure_view::privacy::safety::SafetyOracle;
    let mut rng = StdRng::seed_from_u64(0x1EAF);
    for _ in 0..24 {
        let seed = rng.gen_range(0u64..256);
        let m = module_from_seed(seed);
        let memo = secure_view::privacy::MemoSafetyOracle::new(m.clone());
        for mask in 0u32..16 {
            let visible = mask_set(mask, 4);
            let fast = m.privacy_level(&visible);
            let naive = m.privacy_level_naive(&visible);
            let slow = min_out_bruteforce(&m, &visible, 1 << 22).unwrap();
            assert_eq!(
                fast, slow,
                "kernel vs worlds: seed={seed} visible={visible:?}"
            );
            assert_eq!(
                naive, slow,
                "naive vs worlds: seed={seed} visible={visible:?}"
            );
            assert_eq!(memo.privacy_level(&visible), slow);
            // Level equality transfers to is_safe for every Γ.
            for gamma in 1..=6u128 {
                assert_eq!(m.is_safe(&visible, gamma), m.is_safe_naive(&visible, gamma));
                assert_eq!(m.is_safe(&visible, gamma), memo.is_safe(&visible, gamma));
            }
        }
        // A second full sweep must be pure cache hits.
        let misses = memo.misses();
        for mask in 0u32..16 {
            let _ = memo.privacy_level(&mask_set(mask, 4));
        }
        assert_eq!(memo.misses(), misses, "memo re-evaluated a cached level");
    }
}

/// The interned kernel operators are semantically identical to the seed
/// (row-at-a-time) implementations on random relations with mixed
/// domain sizes.
#[test]
fn interned_kernel_equals_seed_semantics_on_random_relations() {
    use secure_view::relation::{
        ops, AttrDef, Domain, InternedRelation, Relation as Rel, Schema as Sch,
    };
    let mut rng = StdRng::seed_from_u64(0xC01);
    for case in 0..60 {
        let n_attrs = rng.gen_range(1usize..5);
        let sizes: Vec<u32> = (0..n_attrs).map(|_| rng.gen_range(2u32..4)).collect();
        let schema = Sch::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| AttrDef {
                    name: format!("a{i}"),
                    domain: Domain::new(s),
                })
                .collect(),
        );
        let n_rows = rng.gen_range(0usize..14);
        let rows: Vec<Vec<u32>> = (0..n_rows)
            .map(|_| sizes.iter().map(|&s| rng.gen_range(0..s)).collect())
            .collect();
        let r = Rel::from_values(schema, rows).unwrap();
        let ir = InternedRelation::from_relation(&r);
        for _ in 0..6 {
            let key_mask = rng.gen_range(0u64..(1 << n_attrs));
            let probe_mask = rng.gen_range(0u64..(1 << n_attrs));
            let key = AttrSet::from_word(key_mask);
            let probe = AttrSet::from_word(probe_mask);
            assert_eq!(
                ir.group_count_distinct(&key, &probe),
                ops::reference::group_count_distinct(&r, &key, &probe),
                "case={case} key={key:?} probe={probe:?}"
            );
            assert_eq!(
                ir.project(&key),
                ops::reference::project(&r, &key),
                "case={case} set={key:?}"
            );
            // The allocation-free min matches the reference map's min.
            let expect_min = ops::reference::group_count_distinct(&r, &key, &probe)
                .values()
                .copied()
                .min()
                .unwrap_or(usize::MAX);
            assert_eq!(ir.min_group_distinct(&key, &probe), expect_min);
        }
    }
}

/// Random (table-generated) modules with mixed domains: interned
/// `is_safe` ≡ seed semantics ≡ possible-world brute force.
#[test]
fn is_safe_cross_validated_on_mixed_domains() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let mut done = 0;
    while done < 12 {
        let case = done;
        // 1–2 inputs and 1–2 outputs over domains of size 2–3, resampled
        // until the world count (|Range|+1)^|Dom| is small enough for
        // brute-force enumeration in debug builds.
        let n_in = rng.gen_range(1usize..3);
        let n_out = rng.gen_range(1usize..3);
        let sizes: Vec<u32> = (0..n_in + n_out).map(|_| rng.gen_range(2u32..4)).collect();
        let dom_size: u64 = sizes[..n_in].iter().map(|&s| u64::from(s)).product();
        let range_size: u64 = sizes[n_in..].iter().map(|&s| u64::from(s)).product();
        if (range_size + 1).pow(dom_size as u32) > 5_000 {
            continue;
        }
        done += 1;
        let schema = {
            use secure_view::relation::{AttrDef, Domain};
            Schema::new(
                sizes
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| AttrDef {
                        name: format!("a{i}"),
                        domain: Domain::new(s),
                    })
                    .collect(),
            )
        };
        // Total function: one random output row per input assignment.
        let dom: usize = sizes[..n_in].iter().map(|&s| s as usize).product();
        let mut rows = Vec::with_capacity(dom);
        for d in 0..dom {
            let mut row = Vec::with_capacity(sizes.len());
            let mut rem = d;
            for &s in sizes[..n_in].iter().rev() {
                row.push((rem % s as usize) as u32);
                rem /= s as usize;
            }
            row.reverse();
            for &s in &sizes[n_in..] {
                row.push(rng.gen_range(0..s));
            }
            rows.push(row);
        }
        let rel = Relation::from_values(schema, rows).unwrap();
        let m = StandaloneModule::new(
            rel,
            AttrSet::from_iter((0..n_in as u32).map(secure_view::relation::AttrId)),
            AttrSet::from_iter(
                (n_in as u32..(n_in + n_out) as u32).map(secure_view::relation::AttrId),
            ),
        )
        .unwrap();
        let k = m.k() as u32;
        for mask in 0u32..(1 << k) {
            let visible = mask_set(mask, k);
            let slow = min_out_bruteforce(&m, &visible, 1 << 24).unwrap();
            assert_eq!(
                m.privacy_level(&visible),
                slow,
                "case={case} mask={mask:#b}"
            );
            assert_eq!(m.privacy_level_naive(&visible), slow);
            for gamma in [2u128, 3, 4, 6] {
                assert_eq!(
                    m.is_safe(&visible, gamma),
                    secure_view::privacy::worlds::is_safe_bruteforce(&m, &visible, gamma, 1 << 24)
                        .unwrap(),
                    "case={case} mask={mask:#b} gamma={gamma}"
                );
            }
        }
    }
}

/// Proposition 1: monotonicity of safety in the hidden set.
#[test]
fn safety_monotone() {
    let mut rng = StdRng::seed_from_u64(0x3040);
    for _ in 0..24 {
        let seed = rng.gen_range(0u64..1024);
        let gamma = rng.gen_range(2u64..5) as u128;
        let m = module_from_seed(seed);
        for mask in 0u32..16 {
            let hidden = mask_set(mask, 4);
            if m.is_safe_hidden(&hidden, gamma) {
                for extra in 0..4u32 {
                    let mut bigger = hidden.clone();
                    bigger.insert(secure_view::relation::AttrId(extra));
                    assert!(m.is_safe_hidden(&bigger, gamma));
                }
            }
        }
    }
}

/// The minimal-safe-set antichain exactly generates all safe sets.
#[test]
fn minimal_sets_generate() {
    let mut rng = StdRng::seed_from_u64(0x3140);
    for _ in 0..24 {
        let seed = rng.gen_range(0u64..512);
        let m = module_from_seed(seed);
        let minimal = m.minimal_safe_hidden_sets(2).unwrap();
        for mask in 0u32..16 {
            let hidden = mask_set(mask, 4);
            let safe = m.is_safe_hidden(&hidden, 2);
            let generated = minimal.iter().any(|s| s.is_subset(&hidden));
            assert_eq!(safe, generated, "seed={seed} mask={mask:#b}");
        }
    }
}

/// Theorem 4 on random layered workflows: the union of per-module
/// standalone optima is workflow-Γ-private (function-world check).
#[test]
fn theorem4_on_random_workflows() {
    for seed in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = random_layered_workflow(&mut rng, 2, 2, 2);
        let costs = vec![1u64; wf.schema().len()];
        if let Ok((hidden, _)) = union_of_standalone_optima(&wf, &costs, 2, 1 << 20) {
            let visible = hidden.complement(wf.schema().len());
            let report = WorldSearch::new(&wf, visible).run(1 << 26).unwrap();
            assert!(
                report.is_gamma_private(&wf.private_modules(), 2),
                "seed={seed}"
            );
        }
    }
}

/// Optimizer sandwich for cardinality constraints.
#[test]
fn cardinality_sandwich() {
    for seed in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = InstanceParams {
            n_modules: 4,
            attrs_per_module: 4,
            ..Default::default()
        };
        let inst = random_cardinality(&mut rng, &p);
        if let Some(opt) = exact_cardinality(&inst) {
            let lb = cardinality::lp_lower_bound(&inst).unwrap();
            assert!(
                lb <= opt.cost as f64 + 1e-6,
                "LP {lb} must lower-bound OPT {}",
                opt.cost
            );
            let rounded = cardinality::solve_rounding(&inst, &mut rng).unwrap();
            assert!(inst.feasible(&rounded.hidden));
            assert!(rounded.cost >= opt.cost);
        }
    }
}

/// Optimizer sandwich for set constraints, with the ℓ_max guarantee.
#[test]
fn set_sandwich_with_lmax_guarantee() {
    for seed in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = InstanceParams {
            n_modules: 4,
            attrs_per_module: 4,
            ..Default::default()
        };
        let inst = random_set(&mut rng, &p);
        if let Some(opt) = exact_set(&inst) {
            let lb = setcon::lp_lower_bound(&inst).unwrap();
            assert!(lb <= opt.cost as f64 + 1e-6);
            let rounded = setcon::solve_rounding(&inst).unwrap();
            assert!(inst.feasible(&rounded.hidden));
            assert!(
                rounded.cost as f64 <= inst.l_max() as f64 * opt.cost as f64 + 1e-6,
                "rounded {} > lmax {} * opt {}",
                rounded.cost,
                inst.l_max(),
                opt.cost
            );
        }
    }
}

/// exact-IP (branch & bound) agrees with dense enumeration.
#[test]
fn exact_ip_agrees_with_enumeration() {
    for seed in 0u64..12 {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = InstanceParams {
            n_modules: 3,
            attrs_per_module: 3,
            ..Default::default()
        };
        let inst = random_set(&mut rng, &p);
        if let Some(opt) = exact_set(&inst) {
            let ip = setcon::exact_ip(&inst, 1 << 16).unwrap();
            assert_eq!(opt.cost, ip.cost);
        }
    }
}

/// Relational laws: π_V(π_W(R)) = π_V(R) for V ⊆ W, and join with
/// self is identity on key-complete relations.
#[test]
fn projection_composes() {
    let mut rng = StdRng::seed_from_u64(0x77);
    for _ in 0..64 {
        let n_rows = rng.gen_range(1usize..12);
        let rows: Vec<u32> = (0..n_rows).map(|_| rng.gen_range(0u32..8)).collect();
        let schema = Schema::booleans(&["a", "b", "c"]);
        let rel = Relation::from_values(
            schema,
            rows.iter()
                .map(|&r| vec![r >> 2 & 1, r >> 1 & 1, r & 1])
                .collect(),
        )
        .unwrap();
        let w = AttrSet::from_indices(&[0, 2]);
        let v = AttrSet::from_indices(&[0]);
        let via_w = secure_view::relation::project(&secure_view::relation::project(&rel, &w), &v);
        let direct = secure_view::relation::project(&rel, &v);
        assert_eq!(via_w.rows(), direct.rows());
        // Self-join is identity.
        let j = secure_view::relation::natural_join(&rel, &rel).unwrap();
        assert_eq!(j, rel);
    }
}
