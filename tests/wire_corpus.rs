//! Wire-decoder hardening against a committed frame corpus.
//!
//! `tests/corpus/` holds one framed payload per protocol message shape
//! (requests `req_*.bin`, responses `resp_*.bin`). Each file is checked
//! three ways:
//!
//! 1. **Pinned bytes** — the committed file must equal the encoder's
//!    output for the same value, so any encoding change is an explicit,
//!    reviewed corpus update (regenerate with
//!    `REGEN_CORPUS=1 cargo test --test wire_corpus`).
//! 2. **Truncation sweep** — every strict prefix of the frame must come
//!    back as a typed [`WireError`], never a panic.
//! 3. **Bit-flip sweep** — flipping every bit of every byte (plus a
//!    seeded-PRNG multi-flip pass) must either fail with a typed
//!    [`WireError`] or decode to a value whose re-encoding round-trips
//!    (a flip may legitimately produce a *different valid* message,
//!    e.g. in a tenant id; it must never produce an inconsistent one).
//!
//! The decoders are *total* by construction (length-guarded counts, no
//! unchecked indexing); this suite is the regression net that keeps
//! them that way.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use sv_core::safety::{ProbeOutcome, ProbeRequest};
use sv_core::wire::{
    frame, unframe, BusyReason, IngestReply, ModuleEpoch, Request, Response, ServeFault,
};
use sv_relation::AttrSet;
use sv_workflow::ModuleId;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every corpus entry: file name + the framed bytes the encoder
/// produces today. Requests and responses are distinguished by prefix.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let req = |r: &Request| frame(&r.encode());
    let resp = |r: &Response| frame(&r.encode());
    vec![
        (
            "req_probe_word_sets.bin",
            req(&Request::Probe {
                tenant: 7,
                probes: vec![
                    ProbeRequest::new(ModuleId(0), AttrSet::from_word(0b1010), 4),
                    ProbeRequest::new(ModuleId(2), AttrSet::from_word(0), 1).at_epoch(5),
                ],
            }),
        ),
        (
            "req_probe_wide_set.bin",
            req(&Request::Probe {
                tenant: 1,
                probes: vec![ProbeRequest::new(
                    ModuleId(3),
                    AttrSet::from_indices(&[1, 65, 130]),
                    1 << 90,
                )],
            }),
        ),
        (
            "req_probe_empty.bin",
            req(&Request::Probe {
                tenant: 0,
                probes: Vec::new(),
            }),
        ),
        (
            "req_ingest.bin",
            req(&Request::Ingest {
                tenant: u64::MAX,
                rows: vec![vec![0, 1, 2, 3], vec![u32::MAX, 0, 7, 9]],
            }),
        ),
        (
            "req_ingest_empty_row.bin",
            req(&Request::Ingest {
                tenant: 3,
                rows: vec![Vec::new()],
            }),
        ),
        ("req_epochs.bin", req(&Request::Epochs { tenant: 42 })),
        (
            "resp_probe.bin",
            resp(&Response::Probe(vec![
                ProbeOutcome {
                    module: ModuleId(1),
                    safe: true,
                    epoch: 9,
                },
                ProbeOutcome {
                    module: ModuleId(0),
                    safe: false,
                    epoch: 0,
                },
            ])),
        ),
        (
            "resp_ingest.bin",
            resp(&Response::Ingest(IngestReply {
                added: 3,
                epochs: vec![
                    ModuleEpoch {
                        module: ModuleId(0),
                        epoch: 5,
                    },
                    ModuleEpoch {
                        module: ModuleId(1),
                        epoch: 2,
                    },
                ],
            })),
        ),
        (
            "resp_epochs.bin",
            resp(&Response::Epochs(vec![ModuleEpoch {
                module: ModuleId(0),
                epoch: 11,
            }])),
        ),
        (
            "resp_busy.bin",
            resp(&Response::Busy(BusyReason::InflightBytes {
                got: 2048,
                limit: 1024,
            })),
        ),
        (
            "resp_error_stale.bin",
            resp(&Response::Error(ServeFault::StaleEpoch {
                module: 2,
                expected: 4,
                actual: 6,
            })),
        ),
        (
            "resp_error_rejected.bin",
            resp(&Response::Error(ServeFault::Rejected {
                applied: 2,
                detail: "row 2: module m1 output disagrees".into(),
            })),
        ),
        (
            "resp_error_malformed.bin",
            resp(&Response::Error(ServeFault::Malformed {
                detail: "unknown tag 0xff — café ∅".into(),
            })),
        ),
    ]
}

/// Decodes a full framed buffer through the right decoder for the
/// corpus file. Returns the re-encoded frame on success so callers can
/// check round-trip consistency. Must never panic — that is the
/// property under test.
fn decode_frame(name: &str, bytes: &[u8]) -> Result<Vec<u8>, sv_core::wire::WireError> {
    let payload = unframe(bytes)?;
    if name.starts_with("req_") {
        let req = Request::decode(payload)?;
        Ok(frame(&req.encode()))
    } else {
        let resp = Response::decode(payload)?;
        Ok(frame(&resp.encode()))
    }
}

#[test]
fn corpus_files_are_pinned_to_the_encoders() {
    let dir = corpus_dir();
    if std::env::var_os("REGEN_CORPUS").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in corpus() {
            std::fs::write(dir.join(name), &bytes).unwrap();
        }
    }
    for (name, bytes) in corpus() {
        let path = dir.join(name);
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing corpus file {} ({e}); regenerate with REGEN_CORPUS=1",
                path.display()
            )
        });
        assert_eq!(
            committed, bytes,
            "{name}: committed frame differs from the encoder's output; \
             if the wire format changed intentionally, regenerate with REGEN_CORPUS=1"
        );
        // The untouched frame round-trips to itself.
        assert_eq!(decode_frame(name, &bytes).expect(name), bytes, "{name}");
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    for (name, bytes) in corpus() {
        for cut in 0..bytes.len() {
            match decode_frame(name, &bytes[..cut]) {
                // A strict prefix keeps its original length field, so it
                // can never decode as complete.
                Ok(_) => panic!("{name}: truncation to {cut} bytes decoded as complete"),
                Err(e) => {
                    let _ = e.to_string(); // typed + displayable, no panic
                }
            }
        }
    }
}

#[test]
fn every_bit_flip_is_typed_or_roundtrips() {
    for (name, bytes) in corpus() {
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[byte] ^= 1 << bit;
                match decode_frame(name, &damaged) {
                    // A flip may yield a *different valid* message (a
                    // changed tenant id, value, epoch). The decoded
                    // value must then re-encode decodably — no
                    // half-valid states.
                    Ok(reencoded) => {
                        decode_frame(name, &reencoded).unwrap_or_else(|e| {
                            panic!("{name}: flip {byte}.{bit} decoded but re-encode failed: {e}")
                        });
                    }
                    Err(e) => {
                        let _ = e.to_string();
                    }
                }
            }
        }
    }
}

#[test]
fn seeded_multi_flip_sweep_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x5eed_c0de);
    for (name, bytes) in corpus() {
        for _ in 0..500 {
            let mut damaged = bytes.clone();
            let flips = rng.gen_range(1..=8usize);
            for _ in 0..flips {
                let byte = rng.gen_range(0..damaged.len());
                damaged[byte] ^= 1 << rng.gen_range(0..8u32);
            }
            // Occasionally also truncate or extend, compounding faults.
            match rng.gen_range(0..4u32) {
                0 => {
                    let cut = rng.gen_range(0..=damaged.len());
                    damaged.truncate(cut);
                }
                1 => damaged.push(rng.gen_range(0..=255u32) as u8),
                _ => {}
            }
            if let Ok(reencoded) = decode_frame(name, &damaged) {
                assert!(
                    decode_frame(name, &reencoded).is_ok(),
                    "{name}: mutant decoded but re-encode did not round-trip"
                );
            }
        }
    }
}
