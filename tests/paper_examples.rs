//! Cross-crate integration tests reproducing the paper's worked
//! examples end-to-end (workflow → requirements → optimizer →
//! possible-world verification).

use secure_view::optimize::{
    cardinality, exact_cardinality, exact_set, setcon, CardinalityInstance, SetInstance,
};
use secure_view::privacy::compose::{union_of_standalone_optima, WorldSearch};
use secure_view::privacy::flip::flip_witness_world;
use secure_view::privacy::worlds;
use secure_view::privacy::StandaloneModule;
use secure_view::relation::{project, AttrSet, Tuple};
use secure_view::workflow::{library, ModuleId};

/// Figure 1 + Example 3 + the workflow pipeline, end to end.
#[test]
fn fig1_pipeline_end_to_end() {
    let wf = library::fig1_workflow();

    // The provenance relation matches Figure 1(b).
    let r = wf.provenance_relation(1 << 10).unwrap();
    assert_eq!(r.len(), 4);
    assert!(r.contains(&Tuple::new(vec![0, 0, 0, 1, 1, 1, 0])));

    // Derive instances for Γ = 2 and solve with every engine.
    let card = CardinalityInstance::from_workflow(&wf, 2, 1 << 20).unwrap();
    let set = SetInstance::from_workflow(&wf, 2, 1 << 20).unwrap();
    let card_opt = exact_cardinality(&card).unwrap();
    let set_opt = exact_set(&set).unwrap();
    // Hiding the shared attribute a4 (id 3) satisfies all three
    // modules: both optima are 1.
    assert_eq!(card_opt.cost, 1);
    assert_eq!(set_opt.cost, 1);
    assert_eq!(set_opt.hidden, AttrSet::from_indices(&[3]));

    // LP relaxations lower-bound, roundings stay within guarantees.
    let lb = cardinality::lp_lower_bound(&card).unwrap();
    assert!(lb <= card_opt.cost as f64 + 1e-6);
    let rounded = setcon::solve_rounding(&set).unwrap();
    assert!(rounded.cost <= set.l_max() as u64 * set_opt.cost);

    // Semantics: the optimum is 2-workflow-private for every module.
    let visible = set_opt.hidden.complement(wf.schema().len());
    let report = WorldSearch::new(&wf, visible).run(1 << 26).unwrap();
    assert!(report.is_gamma_private(&wf.private_modules(), 2));
}

/// Example 3's exact OUT set reproduced through the public API.
#[test]
fn example3_out_set_through_api() {
    let wf = library::fig1_workflow();
    let m1 = StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 20).unwrap();
    let v = AttrSet::from_indices(&[0, 2, 4]);
    let out = worlds::out_set_bruteforce(&m1, &v, &Tuple::new(vec![0, 0]), 1 << 30).unwrap();
    assert_eq!(out.len(), 4);
    assert!(out.contains(&Tuple::new(vec![1, 0, 0])));
}

/// Lemma 1's flipping witness, validated at the workflow level for all
/// three Figure-1 modules.
#[test]
fn flip_witnesses_for_every_module_of_fig1() {
    let wf = library::fig1_workflow();
    let orig = wf.provenance_relation(1 << 10).unwrap();
    // Hide a2 and a4 (so every module has a hidden attribute).
    let hidden = AttrSet::from_indices(&[1, 3]);
    let visible = hidden.complement(7);
    for (mid, x, y) in [
        (ModuleId(0), vec![0, 0], vec![1, 0, 0]),
        (ModuleId(1), vec![0, 1], vec![1]),
        (ModuleId(2), vec![1, 1], vec![0]),
    ] {
        if let Some(world) = flip_witness_world(&wf, mid, &x, &y, &visible, 1 << 20).unwrap() {
            let flipped = world.provenance_relation(1 << 10).unwrap();
            assert_eq!(
                project(&orig, &visible),
                project(&flipped, &visible),
                "view must be preserved for {mid:?}"
            );
        }
    }
}

/// Example 5's gap carried through the real optimizer stack.
#[test]
fn example5_gap_with_lp_and_greedy() {
    use secure_view::gen::gadgets::example5_instance;
    use secure_view::optimize::greedy::greedy_set;
    let inst = example5_instance(6);
    let opt = exact_set(&inst).unwrap();
    let g = greedy_set(&inst).unwrap();
    assert_eq!(opt.cost, 21);
    assert_eq!(g.cost, 70);
    // The set-constraints LP rounding may also be suboptimal here
    // (ℓ_max = n), but must stay feasible and within ℓ_max·OPT.
    let r = setcon::solve_rounding(&inst).unwrap();
    assert!(inst.feasible(&r.hidden));
    assert!(r.cost <= inst.l_max() as u64 * opt.cost);
}

/// Theorem 4 via the composition API on a non-trivial chain.
#[test]
fn theorem4_union_composition_on_chain() {
    let wf = library::one_one_chain(3, 2);
    let costs = vec![1u64; wf.schema().len()];
    let (hidden, _) = union_of_standalone_optima(&wf, &costs, 2, 1 << 20).unwrap();
    let visible = hidden.complement(wf.schema().len());
    let report = WorldSearch::new(&wf, visible).run(1 << 28).unwrap();
    assert!(report.is_gamma_private(&wf.private_modules(), 2));
}

/// The one-one and majority cardinality lists of Example 6, through the
/// instance-derivation API.
#[test]
fn example6_cardinality_lists() {
    use secure_view::privacy::requirements::cardinality_constraints;
    // One-one over k = 3 wires: lists (k, 0) and (0, k) for Γ = 2^k.
    let wf = library::one_one_chain(1, 3);
    let sm = StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 20).unwrap();
    let f = cardinality_constraints(&sm, 8);
    assert_eq!(
        f.iter().map(|c| (c.alpha, c.beta)).collect::<Vec<_>>(),
        vec![(0, 3), (3, 0)]
    );
}
