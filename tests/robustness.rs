//! Failure-injection and edge-case tests across crate boundaries:
//! misbehaving module functions, budget exhaustion, unsatisfiable
//! privacy requirements, degenerate workflows, and heterogeneous
//! per-module Γ requirements.

use secure_view::optimize::{exact_cardinality, exact_set, CardinalityInstance, SetInstance};
use secure_view::privacy::compose::WorldSearch;
use secure_view::privacy::{CoreError, StandaloneModule};
use secure_view::relation::{AttrSet, Domain};
use secure_view::workflow::{
    library, ModuleFn, ModuleId, Visibility, WorkflowBuilder, WorkflowError,
};

/// A module whose closure lies about its output arity must be caught at
/// execution time, not corrupt downstream state.
#[test]
fn misbehaving_module_function_is_contained() {
    let mut b = WorkflowBuilder::new();
    let x = b.attr("x", Domain::boolean());
    let y = b.attr("y", Domain::boolean());
    b.module(
        "liar",
        &[x],
        &[y],
        Visibility::Private,
        ModuleFn::closure(|_| vec![0, 1, 0]), // arity 3, declared 1
    );
    let w = b.build().unwrap();
    assert!(matches!(
        w.run(&[0]),
        Err(WorkflowError::BadFunctionArity { .. })
    ));
    assert!(matches!(
        w.provenance_relation(1 << 4),
        Err(WorkflowError::BadFunctionArity { .. })
    ));
    // Out-of-domain values are equally contained.
    let mut b = WorkflowBuilder::new();
    let x = b.attr("x", Domain::boolean());
    let y = b.attr("y", Domain::boolean());
    b.module(
        "oob",
        &[x],
        &[y],
        Visibility::Private,
        ModuleFn::closure(|_| vec![7]),
    );
    let w = b.build().unwrap();
    assert!(matches!(
        w.run(&[1]),
        Err(WorkflowError::FunctionValueOutOfDomain { .. })
    ));
}

/// Budgets cap every enumeration path with a typed error.
#[test]
fn budgets_cap_every_enumeration() {
    let w = library::one_one_chain(2, 8); // 2^8 inputs
    assert!(matches!(
        w.provenance_relation(10),
        Err(WorkflowError::DomainTooLarge { .. })
    ));
    assert!(matches!(
        StandaloneModule::from_workflow_module(&w, ModuleId(0), 10),
        Err(CoreError::Workflow(WorkflowError::DomainTooLarge { .. }))
    ));
    let small = library::fig1_workflow();
    assert!(matches!(
        WorldSearch::new(&small, AttrSet::new()).run(100),
        Err(CoreError::BudgetExceeded { .. })
    ));
}

/// Γ beyond any module's output diversity is reported, not looped on.
#[test]
fn unsatisfiable_gamma_is_typed() {
    let w = library::fig1_workflow();
    // m2/m3 have a single boolean output: Γ = 3 unattainable.
    assert!(CardinalityInstance::from_workflow(&w, 3, 1 << 20).is_err());
    assert!(SetInstance::from_workflow(&w, 3, 1 << 20).is_err());
    let m1 = StandaloneModule::from_workflow_module(&w, ModuleId(0), 1 << 20).unwrap();
    assert!(m1.min_cost_safe_hidden(&[1; 5], 100).unwrap().is_none());
}

/// Heterogeneous per-module Γ: m1 can demand Γ=4 while the single-bit
/// modules demand Γ=2 (the paper's remark after Definition 5).
#[test]
fn heterogeneous_gammas() {
    let w = library::fig1_workflow();
    let inst = SetInstance::from_workflow_with_gammas(&w, &[4, 2, 2], 1 << 20).unwrap();
    let opt = exact_set(&inst).unwrap();
    assert!(inst.feasible(&opt.hidden));
    // Verify semantically: m1 at Γ=4, m2/m3 at Γ=2.
    let visible = opt.hidden.complement(w.schema().len());
    let report = WorldSearch::new(&w, visible).run(1 << 26).unwrap();
    assert!(report.min_out(ModuleId(0)) >= 4);
    assert!(report.min_out(ModuleId(1)) >= 2);
    assert!(report.min_out(ModuleId(2)) >= 2);
    // The mixed requirement costs at least as much as the uniform Γ=2.
    let uniform = SetInstance::from_workflow(&w, 2, 1 << 20).unwrap();
    assert!(opt.cost >= exact_set(&uniform).unwrap().cost);

    let card = CardinalityInstance::from_workflow_with_gammas(&w, &[4, 2, 2], 1 << 20).unwrap();
    let copt = exact_cardinality(&card).unwrap();
    assert!(card.feasible(&copt.hidden));
}

/// Single-module and sink-only workflows behave.
#[test]
fn degenerate_workflows() {
    // A source-only module (no inputs): constant generator.
    let mut b = WorkflowBuilder::new();
    let y = b.attr("y", Domain::boolean());
    b.module(
        "gen",
        &[],
        &[y],
        Visibility::Private,
        ModuleFn::closure(|_| vec![1]),
    );
    let w = b.build().unwrap();
    assert_eq!(w.initial_inputs().len(), 0);
    let r = w.provenance_relation(1 << 4).unwrap();
    assert_eq!(r.len(), 1);
    // Its standalone relation has exactly one row; hiding y gives the
    // maximum attainable privacy 2.
    let sm = StandaloneModule::from_workflow_module(&w, ModuleId(0), 1 << 4).unwrap();
    assert!(sm.is_safe_hidden(&AttrSet::from_indices(&[0]), 2));
    assert!(!sm.is_safe_hidden(&AttrSet::from_indices(&[0]), 3));
}

/// DOT export round-trips structural facts for documentation tooling.
#[test]
fn dot_export_structural_facts() {
    let w = library::fig1_workflow();
    let dot = w.to_dot(&AttrSet::from_indices(&[3]));
    // 3 modules + src + sink.
    assert_eq!(dot.matches("shape=box").count(), 3);
    // a4 is hidden: its two fan-out edges are marked.
    assert_eq!(dot.matches("style=dashed, color=red").count(), 2);
    assert!(dot.starts_with("digraph workflow {"));
    assert!(dot.trim_end().ends_with('}'));
}

/// The LP layer surfaces solver failures as typed errors through the
/// optimizer stack instead of panicking.
#[test]
fn lp_errors_propagate_through_optimizers() {
    use secure_view::optimize::{setcon, SetModule};
    // A module whose only requirement names an attribute outside the
    // universe: LP still builds (x variable for 26 exists? no — entry
    // refers to id 1 within n_attrs 2, but is never satisfiable by an
    // out-of-range id). Use an empty-list module: LP constraint Σ r ≥ 1
    // over zero variables is infeasible.
    let inst = SetInstance {
        n_attrs: 2,
        costs: vec![1, 1],
        modules: vec![SetModule { list: vec![] }],
    };
    assert!(matches!(
        setcon::solve_rounding(&inst),
        Err(secure_view::lp::LpError::Infeasible)
    ));
}
