//! Exact (exponential-time) Secure-View baselines.
//!
//! The paper proves the Secure-View problem NP-hard in all variants
//! (Theorems 5–7, 9, 10), so exact solutions are exponential; the
//! benchmarks use them on small instances to measure the rounding
//! algorithms' empirical approximation ratios. Two engines:
//!
//! * dense subset enumeration with cost pruning (`n_attrs ≤ 26`);
//! * branch-and-bound over the corresponding IPs (via `sv-lp`) for the
//!   LP-shaped variants, used as a cross-check.

use crate::instance::{CardinalityInstance, GeneralInstance, SetInstance, Solution};
use sv_relation::{AttrId, AttrSet};

/// Maximum attribute count for dense enumeration.
pub const MAX_EXACT_ATTRS: usize = 26;

fn mask_to_set(mask: u32, n: usize) -> AttrSet {
    AttrSet::from_iter(
        (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| AttrId(i as u32)),
    )
}

fn enumerate<F: Fn(&AttrSet) -> Option<u64>>(n: usize, eval: F) -> Option<Solution> {
    assert!(
        n <= MAX_EXACT_ATTRS,
        "too many attributes for dense enumeration"
    );
    let mut best: Option<Solution> = None;
    for mask in 0u64..(1u64 << n) {
        let hidden = mask_to_set(mask as u32, n);
        if let Some(cost) = eval(&hidden) {
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(Solution { hidden, cost });
            }
        }
    }
    best
}

/// Exact optimum of a cardinality instance (dense enumeration).
///
/// Returns `None` iff even hiding everything is infeasible.
#[must_use]
pub fn exact_cardinality(inst: &CardinalityInstance) -> Option<Solution> {
    enumerate(inst.n_attrs, |h| {
        if inst.feasible(h) {
            Some(inst.cost(h))
        } else {
            None
        }
    })
}

/// Exact optimum of a set instance (dense enumeration).
#[must_use]
pub fn exact_set(inst: &SetInstance) -> Option<Solution> {
    enumerate(inst.n_attrs, |h| {
        if inst.feasible(h) {
            Some(inst.cost(h))
        } else {
            None
        }
    })
}

/// Exact optimum of a general instance: cost includes the privatization
/// of every public module touching the hidden set (Theorem 8).
#[must_use]
pub fn exact_general(inst: &GeneralInstance) -> Option<Solution> {
    enumerate(inst.base.n_attrs, |h| {
        if inst.feasible(h) {
            Some(inst.cost(h))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{CardModule, PublicSpec, SetModule};

    fn card_inst() -> CardinalityInstance {
        // Two modules sharing attribute 1: m0 needs 1 hidden input of
        // {0,1}; m1 needs 1 hidden input of {1,2}. Optimal: hide {1}.
        CardinalityInstance {
            n_attrs: 3,
            costs: vec![1, 1, 1],
            modules: vec![
                CardModule {
                    inputs: vec![0, 1],
                    outputs: vec![],
                    list: vec![(1, 0)],
                },
                CardModule {
                    inputs: vec![1, 2],
                    outputs: vec![],
                    list: vec![(1, 0)],
                },
            ],
        }
    }

    #[test]
    fn shared_attribute_is_exploited() {
        let s = exact_cardinality(&card_inst()).unwrap();
        assert_eq!(s.cost, 1);
        assert_eq!(s.hidden, AttrSet::from_indices(&[1]));
    }

    #[test]
    fn costs_steer_the_optimum() {
        let inst = card_inst().with_costs(vec![1, 10, 1]);
        let s = exact_cardinality(&inst).unwrap();
        assert_eq!(s.cost, 2);
        assert_eq!(s.hidden, AttrSet::from_indices(&[0, 2]));
    }

    #[test]
    fn set_instance_exact() {
        let inst = SetInstance {
            n_attrs: 4,
            costs: vec![3, 1, 1, 1],
            modules: vec![
                SetModule {
                    list: vec![AttrSet::from_indices(&[0]), AttrSet::from_indices(&[1, 2])],
                },
                SetModule {
                    list: vec![AttrSet::from_indices(&[2, 3])],
                },
            ],
        };
        let s = exact_set(&inst).unwrap();
        // {1,2} ∪ {2,3} = {1,2,3} cost 3 = {0} ∪ {2,3} cost 5 → pick 3.
        assert_eq!(s.cost, 3);
        assert_eq!(s.hidden, AttrSet::from_indices(&[1, 2, 3]));
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = SetInstance {
            n_attrs: 2,
            costs: vec![1, 1],
            modules: vec![SetModule {
                // Requires hiding attribute 5, which doesn't exist in
                // the 2-attribute universe — never satisfiable.
                list: vec![AttrSet::from_indices(&[5])],
            }],
        };
        assert!(exact_set(&inst).is_none());
    }

    #[test]
    fn general_exact_accounts_for_privatization() {
        // Hiding 0 is free attr-wise but privatizes an expensive public;
        // hiding 1 costs 2 with no privatization. Both feasible.
        let inst = GeneralInstance {
            base: SetInstance {
                n_attrs: 2,
                costs: vec![0, 2],
                modules: vec![SetModule {
                    list: vec![AttrSet::from_indices(&[0]), AttrSet::from_indices(&[1])],
                }],
            },
            publics: vec![PublicSpec {
                attrs: AttrSet::from_indices(&[0]),
                cost: 5,
            }],
        };
        let s = exact_general(&inst).unwrap();
        assert_eq!(s.cost, 2);
        assert_eq!(s.hidden, AttrSet::from_indices(&[1]));
    }
}
