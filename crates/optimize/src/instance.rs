//! Secure-View problem instances (§4.2, §5.2).
//!
//! Instances are decoupled from concrete workflows so that the paper's
//! hardness reductions (which construct instances directly) and the
//! workflow pipeline (which derives requirement lists from module
//! relations) share the same optimizers. Attributes are dense indices
//! `0..n_attrs` with additive hiding costs; each private module carries
//! a requirement list `L_i`; general instances add public modules with
//! privatization costs.

use crate::exact;
use sv_core::compose::ModuleLens;
use sv_core::requirements::{
    cardinality_constraints_from_frontier, cardinality_constraints_with, set_constraints_with,
};
use sv_core::safety::WorkflowOracles;
use sv_core::sweep::{SweepStats, WorkflowSweeper};
use sv_core::CoreError;
use sv_relation::AttrSet;
use sv_workflow::Workflow;

/// One private module's data for **cardinality constraints**: its
/// input/output attribute ids and the list
/// `L_i = ⟨(α_i^1, β_i^1), …⟩` (hide at least `α` inputs and `β`
/// outputs for some list entry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CardModule {
    /// Input attribute ids `I_i` (global).
    pub inputs: Vec<u32>,
    /// Output attribute ids `O_i` (global).
    pub outputs: Vec<u32>,
    /// Requirement list `⟨(α_i^j, β_i^j)⟩`.
    pub list: Vec<(usize, usize)>,
}

/// One private module's data for **set constraints**: the list
/// `L_i = ⟨(I_i^1, O_i^1), …⟩` of concrete hidden-attribute
/// alternatives (global ids; inputs and outputs merged — the split is
/// irrelevant to feasibility).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetModule {
    /// Requirement list: hiding all attributes of some entry suffices.
    pub list: Vec<AttrSet>,
}

/// A public module in a general instance: its attribute footprint and
/// privatization cost `c(m_j)` (§5.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicSpec {
    /// All input and output attributes of the module (global ids).
    pub attrs: AttrSet,
    /// Cost of hiding (privatizing) the module.
    pub cost: u64,
}

/// Secure-View with cardinality constraints (all-private workflows,
/// Theorem 5).
#[derive(Clone, Debug)]
pub struct CardinalityInstance {
    /// Number of attributes.
    pub n_attrs: usize,
    /// Additive hiding costs `c(a)`.
    pub costs: Vec<u64>,
    /// Per private module requirements.
    pub modules: Vec<CardModule>,
}

/// Secure-View with set constraints (all-private workflows, Theorem 6).
#[derive(Clone, Debug)]
pub struct SetInstance {
    /// Number of attributes.
    pub n_attrs: usize,
    /// Additive hiding costs `c(a)`.
    pub costs: Vec<u64>,
    /// Per private module requirements.
    pub modules: Vec<SetModule>,
}

/// Secure-View in general workflows (§5.2): set-constraint requirements
/// for private modules plus privatization costs for public modules.
///
/// A solution is a hidden attribute set `V̄`; Theorem 8 forces
/// privatizing exactly the public modules whose footprint intersects
/// `V̄`, so the induced privatization cost is a function of `V̄`.
#[derive(Clone, Debug)]
pub struct GeneralInstance {
    /// The private modules' requirements and attribute costs.
    pub base: SetInstance,
    /// The public modules.
    pub publics: Vec<PublicSpec>,
}

impl CardModule {
    /// Whether `hidden` satisfies some list entry.
    #[must_use]
    pub fn satisfied_by(&self, hidden: &AttrSet) -> bool {
        let hi = self
            .inputs
            .iter()
            .filter(|&&a| hidden.contains(sv_relation::AttrId(a)))
            .count();
        let ho = self
            .outputs
            .iter()
            .filter(|&&a| hidden.contains(sv_relation::AttrId(a)))
            .count();
        self.list.iter().any(|&(a, b)| hi >= a && ho >= b)
    }
}

impl SetModule {
    /// Whether `hidden` contains some list entry entirely.
    #[must_use]
    pub fn satisfied_by(&self, hidden: &AttrSet) -> bool {
        self.list.iter().any(|req| req.is_subset(hidden))
    }
}

impl CardinalityInstance {
    /// Whether hiding `hidden` satisfies every module.
    #[must_use]
    pub fn feasible(&self, hidden: &AttrSet) -> bool {
        self.modules.iter().all(|m| m.satisfied_by(hidden))
    }

    /// Cost of a hidden set.
    #[must_use]
    pub fn cost(&self, hidden: &AttrSet) -> u64 {
        hidden.iter().map(|a| self.costs[a.index()]).sum()
    }

    /// `ℓ_max`: longest requirement list.
    #[must_use]
    pub fn l_max(&self) -> usize {
        self.modules.iter().map(|m| m.list.len()).max().unwrap_or(0)
    }

    /// Number of modules `n`.
    #[must_use]
    pub fn n_modules(&self) -> usize {
        self.modules.len()
    }

    /// Derives the instance from an all-private workflow: every private
    /// module contributes its Pareto cardinality frontier for `gamma`.
    ///
    /// # Errors
    /// Propagates requirement-derivation failures; fails if some module
    /// has an empty frontier (no safe hiding exists).
    pub fn from_workflow(
        workflow: &Workflow,
        gamma: u128,
        budget: u128,
    ) -> Result<Self, CoreError> {
        let gammas = vec![gamma; workflow.private_modules().len()];
        Self::from_workflow_with_gammas(workflow, &gammas, budget)
    }

    /// Like [`from_workflow`](Self::from_workflow) but with a distinct
    /// privacy requirement `Γ_i` per private module (in
    /// `private_modules()` order) — the paper notes all results carry
    /// over unchanged (§2.4, remark after Definition 5).
    ///
    /// # Errors
    /// Propagates requirement-derivation failures.
    pub fn from_workflow_with_gammas(
        workflow: &Workflow,
        gammas: &[u128],
        budget: u128,
    ) -> Result<Self, CoreError> {
        let oracles = WorkflowOracles::for_workflow(workflow, budget)?;
        Self::from_oracles(workflow, &oracles, gammas)
    }

    /// Like [`from_workflow_with_gammas`](Self::from_workflow_with_gammas)
    /// but against caller-owned per-module safety oracles, so the
    /// modules are materialized once and every probe already answered —
    /// by this derivation, a sibling [`SetInstance`] derivation, or any
    /// optimizer — is served from the memo.
    ///
    /// # Errors
    /// Propagates requirement-derivation failures.
    pub fn from_oracles(
        workflow: &Workflow,
        oracles: &WorkflowOracles,
        gammas: &[u128],
    ) -> Result<Self, CoreError> {
        assert_eq!(gammas.len(), workflow.private_modules().len());
        let n_attrs = workflow.schema().len();
        let mut modules = Vec::new();
        for (id, &gamma) in workflow.private_modules().iter().copied().zip(gammas) {
            let oracle = oracles
                .oracle(id)
                .ok_or(CoreError::MissingOracle { module: id.index() })?;
            let list: Vec<(usize, usize)> = cardinality_constraints_with(&*oracle, gamma)
                .into_iter()
                .map(|c| (c.alpha, c.beta))
                .collect();
            if list.is_empty() {
                return Err(CoreError::BudgetExceeded {
                    what: "module admits no safe hiding for gamma",
                    required: gamma,
                    budget: 0,
                });
            }
            let m = workflow.module(id)?;
            modules.push(CardModule {
                inputs: m.inputs.iter().map(|a| a.0).collect(),
                outputs: m.outputs.iter().map(|a| a.0).collect(),
                list,
            });
        }
        Ok(Self {
            n_attrs,
            costs: vec![1; n_attrs],
            modules,
        })
    }

    /// Derives the instance through a [`WorkflowSweeper`]: per module,
    /// the ⊆-minimal safe hidden sets come from the parallel antichain
    /// sweep — all modules swept concurrently via the cross-module
    /// work-stealing pool ([`WorkflowSweeper::minimal_frontiers_all`]) —
    /// and the cardinality Pareto frontier is then recovered by
    /// **trie-coverage queries** against each memoized
    /// [`sv_core::Frontier`]
    /// ([`cardinality_constraints_from_frontier`]) — zero additional
    /// oracle probes. Also returns the merged sweep counters.
    ///
    /// # Errors
    /// Propagates sweep failures; fails on modules with no safe hiding.
    pub fn from_sweeper(
        sweeper: &WorkflowSweeper,
        gammas: &[u128],
    ) -> Result<(Self, SweepStats), CoreError> {
        assert_eq!(gammas.len(), sweeper.module_ids().len());
        let n_attrs = sweeper.n_attrs();
        let mut modules = Vec::new();
        let (frontiers, stats) = sweeper.minimal_frontiers_all(gammas)?;
        for ((id, frontier), &gamma) in frontiers.into_iter().zip(gammas) {
            let m = sweeper
                .module(id)
                .ok_or(CoreError::MissingOracle { module: id.index() })?;
            let list: Vec<(usize, usize)> =
                cardinality_constraints_from_frontier(&frontier, m.inputs(), m.outputs())
                    .into_iter()
                    .map(|c| (c.alpha, c.beta))
                    .collect();
            if list.is_empty() {
                return Err(CoreError::BudgetExceeded {
                    what: "module admits no safe hiding for gamma",
                    required: gamma,
                    budget: 0,
                });
            }
            modules.push(CardModule {
                inputs: sweeper
                    .global_inputs(id)
                    .ok_or(CoreError::MissingOracle { module: id.index() })?,
                outputs: sweeper
                    .global_outputs(id)
                    .ok_or(CoreError::MissingOracle { module: id.index() })?,
                list,
            });
        }
        Ok((
            Self {
                n_attrs,
                costs: vec![1; n_attrs],
                modules,
            },
            stats,
        ))
    }

    /// Replaces the unit costs with explicit ones.
    #[must_use]
    pub fn with_costs(mut self, costs: Vec<u64>) -> Self {
        assert_eq!(costs.len(), self.n_attrs);
        self.costs = costs;
        self
    }
}

impl SetInstance {
    /// Whether hiding `hidden` satisfies every module.
    #[must_use]
    pub fn feasible(&self, hidden: &AttrSet) -> bool {
        self.modules.iter().all(|m| m.satisfied_by(hidden))
    }

    /// Cost of a hidden set.
    #[must_use]
    pub fn cost(&self, hidden: &AttrSet) -> u64 {
        hidden.iter().map(|a| self.costs[a.index()]).sum()
    }

    /// `ℓ_max`: longest requirement list.
    #[must_use]
    pub fn l_max(&self) -> usize {
        self.modules.iter().map(|m| m.list.len()).max().unwrap_or(0)
    }

    /// Number of modules `n`.
    #[must_use]
    pub fn n_modules(&self) -> usize {
        self.modules.len()
    }

    /// Derives the instance from an all-private workflow: every private
    /// module contributes its minimal safe hidden sets (mapped to global
    /// attribute ids).
    ///
    /// # Errors
    /// Propagates requirement-derivation failures; fails on modules with
    /// no safe hiding.
    pub fn from_workflow(
        workflow: &Workflow,
        gamma: u128,
        budget: u128,
    ) -> Result<Self, CoreError> {
        let gammas = vec![gamma; workflow.private_modules().len()];
        Self::from_workflow_with_gammas(workflow, &gammas, budget)
    }

    /// Like [`from_workflow`](Self::from_workflow) but with a distinct
    /// `Γ_i` per private module (in `private_modules()` order).
    ///
    /// # Errors
    /// Propagates requirement-derivation failures.
    pub fn from_workflow_with_gammas(
        workflow: &Workflow,
        gammas: &[u128],
        budget: u128,
    ) -> Result<Self, CoreError> {
        let oracles = WorkflowOracles::for_workflow(workflow, budget)?;
        Self::from_oracles(workflow, &oracles, gammas)
    }

    /// Like [`from_workflow_with_gammas`](Self::from_workflow_with_gammas)
    /// but against caller-owned per-module safety oracles (see
    /// [`CardinalityInstance::from_oracles`]); the full-lattice sweep
    /// here warms the memo every later consumer hits.
    ///
    /// # Errors
    /// Propagates requirement-derivation failures.
    pub fn from_oracles(
        workflow: &Workflow,
        oracles: &WorkflowOracles,
        gammas: &[u128],
    ) -> Result<Self, CoreError> {
        assert_eq!(gammas.len(), workflow.private_modules().len());
        let n_attrs = workflow.schema().len();
        let mut modules = Vec::new();
        for (id, &gamma) in workflow.private_modules().iter().copied().zip(gammas) {
            let lens = ModuleLens::new(workflow, id)?;
            let oracle = oracles
                .oracle(id)
                .ok_or(CoreError::MissingOracle { module: id.index() })?;
            let list: Vec<AttrSet> = set_constraints_with(&*oracle, gamma)?
                .into_iter()
                .map(|r| lens.to_global(&r.hidden()))
                .collect();
            if list.is_empty() {
                return Err(CoreError::BudgetExceeded {
                    what: "module admits no safe hiding for gamma",
                    required: gamma,
                    budget: 0,
                });
            }
            modules.push(SetModule { list });
        }
        Ok(Self {
            n_attrs,
            costs: vec![1; n_attrs],
            modules,
        })
    }

    /// Derives the instance through a [`WorkflowSweeper`]: each module's
    /// requirement list is its ⊆-minimal-safe-set antichain, iterated
    /// straight off the memoized [`sv_core::Frontier`] trie in
    /// (popcount, mask) order — all modules swept concurrently via
    /// [`WorkflowSweeper::minimal_frontiers_all`] — mapped to global
    /// ids. Also returns the merged sweep counters.
    ///
    /// # Errors
    /// Propagates sweep failures; fails on modules with no safe hiding.
    pub fn from_sweeper(
        sweeper: &WorkflowSweeper,
        gammas: &[u128],
    ) -> Result<(Self, SweepStats), CoreError> {
        assert_eq!(gammas.len(), sweeper.module_ids().len());
        let n_attrs = sweeper.n_attrs();
        let mut modules = Vec::new();
        let (frontiers, stats) = sweeper.minimal_frontiers_all(gammas)?;
        for ((id, frontier), &gamma) in frontiers.into_iter().zip(gammas) {
            let list: Vec<AttrSet> = frontier
                .iter()
                .map(|word| {
                    sweeper
                        .to_global(id, &AttrSet::from_word(word))
                        .ok_or(CoreError::MissingOracle { module: id.index() })
                })
                .collect::<Result<_, _>>()?;
            if list.is_empty() {
                return Err(CoreError::BudgetExceeded {
                    what: "module admits no safe hiding for gamma",
                    required: gamma,
                    budget: 0,
                });
            }
            modules.push(SetModule { list });
        }
        Ok((
            Self {
                n_attrs,
                costs: vec![1; n_attrs],
                modules,
            },
            stats,
        ))
    }

    /// Replaces the unit costs with explicit ones.
    #[must_use]
    pub fn with_costs(mut self, costs: Vec<u64>) -> Self {
        assert_eq!(costs.len(), self.n_attrs);
        self.costs = costs;
        self
    }
}

impl GeneralInstance {
    /// Public modules whose footprint intersects `hidden` (these must be
    /// privatized, Theorem 8).
    #[must_use]
    pub fn induced_privatizations(&self, hidden: &AttrSet) -> Vec<usize> {
        self.publics
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.attrs.is_disjoint(hidden))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total cost: hidden-attribute costs plus induced privatization
    /// costs.
    #[must_use]
    pub fn cost(&self, hidden: &AttrSet) -> u64 {
        let attr: u64 = self.base.cost(hidden);
        let publ: u64 = self
            .induced_privatizations(hidden)
            .iter()
            .map(|&i| self.publics[i].cost)
            .sum();
        attr + publ
    }

    /// Whether hiding `hidden` satisfies every private module.
    #[must_use]
    pub fn feasible(&self, hidden: &AttrSet) -> bool {
        self.base.feasible(hidden)
    }

    /// `ℓ_max` over private-module lists.
    #[must_use]
    pub fn l_max(&self) -> usize {
        self.base.l_max()
    }

    /// Derives the instance from a general workflow with the given
    /// per-public-module privatization costs.
    ///
    /// # Errors
    /// Propagates requirement-derivation failures.
    pub fn from_workflow(
        workflow: &Workflow,
        gamma: u128,
        public_costs: &[u64],
        budget: u128,
    ) -> Result<Self, CoreError> {
        let oracles = WorkflowOracles::for_workflow(workflow, budget)?;
        Self::from_oracles(workflow, &oracles, gamma, public_costs)
    }

    /// Like [`from_workflow`](Self::from_workflow) but against
    /// caller-owned per-module safety oracles (see
    /// [`CardinalityInstance::from_oracles`]).
    ///
    /// # Errors
    /// Propagates requirement-derivation failures.
    pub fn from_oracles(
        workflow: &Workflow,
        oracles: &WorkflowOracles,
        gamma: u128,
        public_costs: &[u64],
    ) -> Result<Self, CoreError> {
        let gammas = vec![gamma; workflow.private_modules().len()];
        let base = SetInstance::from_oracles(workflow, oracles, &gammas)?;
        let publics: Vec<PublicSpec> = workflow
            .public_modules()
            .into_iter()
            .zip(public_costs.iter())
            .map(|(id, &cost)| PublicSpec {
                attrs: workflow.modules()[id.index()].attr_set(),
                cost,
            })
            .collect();
        Ok(Self { base, publics })
    }
}

/// Shared solution type: the hidden attribute set plus its cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// Hidden attributes `V̄`.
    pub hidden: AttrSet,
    /// Total solution cost (including induced privatizations for
    /// general instances).
    pub cost: u64,
}

impl Solution {
    /// Builds and validates a solution against a cardinality instance.
    ///
    /// # Panics
    /// Panics if `hidden` is infeasible (internal contract: optimizers
    /// must return feasible solutions).
    #[must_use]
    pub fn checked_card(instance: &CardinalityInstance, hidden: AttrSet) -> Self {
        assert!(instance.feasible(&hidden), "infeasible solution produced");
        let cost = instance.cost(&hidden);
        Self { hidden, cost }
    }

    /// Builds and validates a solution against a set instance.
    ///
    /// # Panics
    /// Panics if `hidden` is infeasible.
    #[must_use]
    pub fn checked_set(instance: &SetInstance, hidden: AttrSet) -> Self {
        assert!(instance.feasible(&hidden), "infeasible solution produced");
        let cost = instance.cost(&hidden);
        Self { hidden, cost }
    }

    /// Builds and validates a solution against a general instance
    /// (cost includes induced privatizations).
    ///
    /// # Panics
    /// Panics if `hidden` is infeasible.
    #[must_use]
    pub fn checked_general(instance: &GeneralInstance, hidden: AttrSet) -> Self {
        assert!(instance.feasible(&hidden), "infeasible solution produced");
        let cost = instance.cost(&hidden);
        Self { hidden, cost }
    }
}

/// Convenience used across optimizers and tests: exhaustive optimum of
/// small instances; see [`exact`] for the implementations.
pub use exact::{exact_cardinality, exact_general, exact_set};

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::fig1_workflow;

    #[test]
    fn fig1_cardinality_instance() {
        // Γ = 2: satisfiable by every Figure-1 module (m2/m3 have a
        // single boolean output, so their max privacy level is 2;
        // Γ = 4 is unsatisfiable workflow-wide and must error out).
        let w = fig1_workflow();
        let inst = CardinalityInstance::from_workflow(&w, 2, 1 << 20).unwrap();
        assert_eq!(inst.n_modules(), 3);
        assert_eq!(inst.n_attrs, 7);
        assert!(inst.feasible(&AttrSet::full(7)));
        // Hiding {a4, a5} (ids 3, 4) satisfies m1 for Γ = 2.
        let hidden = AttrSet::from_indices(&[3, 4]);
        assert!(inst.modules[0].satisfied_by(&hidden));
        assert!(CardinalityInstance::from_workflow(&w, 4, 1 << 20).is_err());
    }

    #[test]
    fn sweeper_derivations_match_oracle_derivations() {
        let w = fig1_workflow();
        let gammas = [2u128; 3];
        for threads in [1usize, 4] {
            let sweeper =
                WorkflowSweeper::for_workflow(&w, 1 << 20, sv_core::SweepConfig::parallel(threads))
                    .unwrap();
            let (set_inst, s1) = SetInstance::from_sweeper(&sweeper, &gammas).unwrap();
            let baseline = SetInstance::from_workflow(&w, 2, 1 << 20).unwrap();
            assert_eq!(set_inst.modules, baseline.modules, "threads={threads}");
            assert!(s1.visited + s1.pruned == s1.lattice && s1.lattice > 0);
            let (card_inst, _) = CardinalityInstance::from_sweeper(&sweeper, &gammas).unwrap();
            let baseline = CardinalityInstance::from_workflow(&w, 2, 1 << 20).unwrap();
            assert_eq!(card_inst.modules, baseline.modules, "threads={threads}");
        }
        // Unsatisfiable Γ errors out, as the oracle path does.
        let sweeper =
            WorkflowSweeper::for_workflow(&w, 1 << 20, sv_core::SweepConfig::serial()).unwrap();
        assert!(SetInstance::from_sweeper(&sweeper, &[4; 3]).is_err());
        assert!(CardinalityInstance::from_sweeper(&sweeper, &[4; 3]).is_err());
    }

    #[test]
    fn fig1_set_instance_feasibility() {
        let w = fig1_workflow();
        let inst = SetInstance::from_workflow(&w, 2, 1 << 20).unwrap();
        assert_eq!(inst.n_modules(), 3);
        // Hiding everything is always feasible (Proposition 1).
        assert!(inst.feasible(&AttrSet::full(7)));
        // Hiding nothing is never feasible for Γ ≥ 2.
        assert!(!inst.feasible(&AttrSet::new()));
        assert_eq!(inst.cost(&AttrSet::full(7)), 7);
    }

    #[test]
    fn card_module_satisfaction_logic() {
        let m = CardModule {
            inputs: vec![0, 1],
            outputs: vec![2],
            list: vec![(2, 0), (0, 1)],
        };
        assert!(m.satisfied_by(&AttrSet::from_indices(&[0, 1])));
        assert!(m.satisfied_by(&AttrSet::from_indices(&[2])));
        assert!(!m.satisfied_by(&AttrSet::from_indices(&[0])));
        // Attributes of other modules are ignored.
        assert!(m.satisfied_by(&AttrSet::from_indices(&[2, 5])));
    }

    #[test]
    fn set_module_satisfaction_logic() {
        let m = SetModule {
            list: vec![AttrSet::from_indices(&[0, 1]), AttrSet::from_indices(&[3])],
        };
        assert!(m.satisfied_by(&AttrSet::from_indices(&[3, 9])));
        assert!(m.satisfied_by(&AttrSet::from_indices(&[0, 1])));
        assert!(!m.satisfied_by(&AttrSet::from_indices(&[0, 3 + 60])));
    }

    #[test]
    fn general_instance_induced_costs() {
        let base = SetInstance {
            n_attrs: 4,
            costs: vec![1, 1, 1, 1],
            modules: vec![SetModule {
                list: vec![AttrSet::from_indices(&[1])],
            }],
        };
        let inst = GeneralInstance {
            base,
            publics: vec![
                PublicSpec {
                    attrs: AttrSet::from_indices(&[0, 1]),
                    cost: 10,
                },
                PublicSpec {
                    attrs: AttrSet::from_indices(&[2, 3]),
                    cost: 7,
                },
            ],
        };
        let hidden = AttrSet::from_indices(&[1]);
        assert!(inst.feasible(&hidden));
        assert_eq!(inst.induced_privatizations(&hidden), vec![0]);
        assert_eq!(inst.cost(&hidden), 1 + 10);
        let hidden = AttrSet::from_indices(&[1, 2]);
        assert_eq!(inst.cost(&hidden), 2 + 17);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn checked_solution_rejects_infeasible() {
        let inst = SetInstance {
            n_attrs: 2,
            costs: vec![1, 1],
            modules: vec![SetModule {
                list: vec![AttrSet::from_indices(&[0])],
            }],
        };
        let _ = Solution::checked_set(&inst, AttrSet::from_indices(&[1]));
    }
}
