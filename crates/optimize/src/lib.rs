//! # sv-optimize — Secure-View optimizers
//!
//! Implements every algorithm the paper gives for the **workflow
//! Secure-View** problem (§4.2–§4.3, §5.2, Appendices B.4–B.6, C):
//!
//! * [`instance`] — problem instances decoupled from concrete workflows:
//!   cardinality constraints, set constraints, and general (public +
//!   private) variants, plus converters from a [`sv_workflow::Workflow`]
//!   via the requirement lists of `sv_core::requirements`;
//! * [`cardinality`] — the Figure-3 IP, its LP relaxation, the
//!   Algorithm-1 randomized rounding (`O(log n)`-approximation,
//!   Theorem 5), and the B.4 ablation LPs with unbounded / `Ω(n)`
//!   integrality gaps;
//! * [`setcon`] — the Appendix-B.5.1 LP and `ℓ_max`-rounding
//!   (Theorem 6);
//! * [`general`] — the Appendix-C.4 LP with privatization costs and its
//!   `ℓ_max`-rounding for workflows with public modules;
//! * [`greedy`] — the `(γ+1)`-approximation for γ-bounded data sharing
//!   (Theorem 7) and per-module greedy baselines;
//! * [`exact`] — exponential-time exact baselines (dense subset
//!   enumeration and branch-and-bound over the IPs) used to measure
//!   approximation ratios empirically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cardinality;
pub mod exact;
pub mod general;
pub mod greedy;
pub mod instance;
pub mod setcon;

pub use exact::{exact_cardinality, exact_general, exact_set};
pub use instance::{
    CardModule, CardinalityInstance, GeneralInstance, PublicSpec, SetInstance, SetModule, Solution,
};
