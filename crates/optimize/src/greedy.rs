//! Greedy algorithms: the `(γ+1)`-approximation for bounded data
//! sharing (Theorem 7, Appendix B.6.1) and baselines.
//!
//! For each module, independently pick its minimum-cost requirement
//! (cheapest list entry / cheapest cardinality bundle) and hide the
//! union. If every attribute feeds at most `γ` modules, any single
//! attribute serves at most `γ+1` modules' requirements in an optimal
//! solution (its producer plus up to `γ` consumers), so the union costs
//! at most `(γ+1)·OPT`. With unbounded sharing the ratio degrades to
//! `Ω(n)` (Example 5) — measured in `bench_thm7_bounded_sharing`.

use crate::cardinality::b_min;
use crate::instance::{CardinalityInstance, SetInstance, Solution};
use sv_relation::AttrSet;

/// Greedy `(γ+1)`-approximation for **set constraints**: union of
/// per-module minimum-cost list entries.
///
/// Returns `None` if some module's list is empty.
#[must_use]
pub fn greedy_set(inst: &SetInstance) -> Option<Solution> {
    let mut hidden = AttrSet::new();
    for m in &inst.modules {
        let best = m
            .list
            .iter()
            .min_by_key(|entry| entry.iter().map(|a| inst.costs[a.index()]).sum::<u64>())?;
        hidden.union_with(best);
    }
    Some(Solution::checked_set(inst, hidden))
}

/// Greedy `(γ+1)`-approximation for **cardinality constraints**: union
/// of per-module minimum-cost bundles `B_i^min`.
///
/// Returns `None` if some module has no satisfiable list entry.
#[must_use]
pub fn greedy_cardinality(inst: &CardinalityInstance) -> Option<Solution> {
    let mut hidden = AttrSet::new();
    for i in 0..inst.modules.len() {
        let b = b_min(inst, i);
        if b.is_empty() && !inst.modules[i].satisfied_by(&b) {
            return None;
        }
        hidden.union_with(&b);
    }
    if !inst.feasible(&hidden) {
        return None;
    }
    Some(Solution::checked_card(inst, hidden))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_cardinality, exact_set};
    use crate::instance::{CardModule, SetModule};

    #[test]
    fn greedy_respects_gamma_plus_one_bound_without_sharing() {
        // γ = 1 (no sharing): greedy ≤ 2·OPT.
        let inst = SetInstance {
            n_attrs: 6,
            costs: vec![1, 3, 1, 3, 1, 3],
            modules: (0..3)
                .map(|i| SetModule {
                    list: vec![
                        AttrSet::from_indices(&[2 * i]),
                        AttrSet::from_indices(&[2 * i + 1]),
                    ],
                })
                .collect(),
        };
        let g = greedy_set(&inst).unwrap();
        let o = exact_set(&inst).unwrap();
        assert!(g.cost <= 2 * o.cost);
        assert_eq!(g.cost, o.cost, "disjoint modules: greedy is optimal");
    }

    #[test]
    fn greedy_misses_shared_attributes() {
        // Example-5 shape: all modules can be satisfied by one shared
        // attribute (id 0, cost 2) or by private attributes (cost 1
        // each). Greedy picks the cheap private ones (cost n), optimum
        // hides the shared one (cost 2).
        let n = 5;
        let inst = SetInstance {
            n_attrs: n + 1,
            costs: std::iter::once(2)
                .chain(std::iter::repeat_n(1, n))
                .collect(),
            modules: (0..n)
                .map(|i| SetModule {
                    list: vec![
                        AttrSet::from_indices(&[(i + 1) as u32]),
                        AttrSet::from_indices(&[0]),
                    ],
                })
                .collect(),
        };
        let g = greedy_set(&inst).unwrap();
        let o = exact_set(&inst).unwrap();
        assert_eq!(o.cost, 2);
        assert_eq!(g.cost, n as u64, "greedy pays Ω(n)·OPT with sharing");
    }

    #[test]
    fn greedy_cardinality_feasible() {
        let inst = CardinalityInstance {
            n_attrs: 4,
            costs: vec![1, 2, 3, 4],
            modules: vec![
                CardModule {
                    inputs: vec![0, 1],
                    outputs: vec![2],
                    list: vec![(1, 0), (0, 1)],
                },
                CardModule {
                    inputs: vec![2],
                    outputs: vec![3],
                    list: vec![(0, 1)],
                },
            ],
        };
        let g = greedy_cardinality(&inst).unwrap();
        assert!(inst.feasible(&g.hidden));
        let o = exact_cardinality(&inst).unwrap();
        assert!(g.cost <= 2 * o.cost);
    }

    #[test]
    fn greedy_cardinality_unsatisfiable() {
        let inst = CardinalityInstance {
            n_attrs: 2,
            costs: vec![1, 1],
            modules: vec![CardModule {
                inputs: vec![0],
                outputs: vec![1],
                list: vec![(2, 0)],
            }],
        };
        assert!(greedy_cardinality(&inst).is_none());
    }
}
