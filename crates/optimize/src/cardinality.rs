//! Secure-View with **cardinality constraints** (Theorem 5, Appendix
//! B.4): the Figure-3 integer program, its LP relaxation, and the
//! Algorithm-1 randomized rounding giving an `O(log n)`-approximation.
//!
//! The IP (variables as in the paper):
//!
//! * `x_b = 1` iff data `b` is hidden (cost `c_b`);
//! * `r_{ij} = 1` iff list entry `j` satisfies module `m_i`;
//! * `y_{bij} / z_{bij} = 1` iff `b` counts towards `α_i^j` / `β_i^j`;
//! * constraints (1)–(8) exactly as printed, including the two families
//!   the paper proves necessary: the *cap* constraints (6)–(7)
//!   (`y_{bij} ≤ r_{ij}`) and the *summed* link constraints (4)–(5)
//!   (`Σ_j y_{bij} ≤ x_b`). [`CardLpVariant`] exposes ablated
//!   relaxations whose integrality gaps are unbounded / `Ω(ℓ)`
//!   (reproduced in `bench_ip_ablation`).

use crate::instance::{CardinalityInstance, Solution};
use rand::Rng;
use sv_lp::{solve_integer, Cmp, LpError, LpProblem, VarId};
use sv_relation::{AttrId, AttrSet};

/// Which relaxation to build (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CardLpVariant {
    /// The full Figure-3 relaxation.
    Full,
    /// Constraints (6)–(7) dropped (unbounded integrality gap, B.4).
    WithoutCaps,
    /// Link constraints per-entry instead of summed over `j`
    /// (`Ω(ℓ_max)` integrality gap, B.4).
    WithoutSums,
}

/// The built LP with variable handles for rounding.
pub struct CardLp {
    /// The LP.
    pub problem: LpProblem,
    /// `x_b` per attribute.
    pub x: Vec<VarId>,
    /// `r_{ij}`: per module, per list entry.
    pub r: Vec<Vec<VarId>>,
    /// `y_{bij}`: per module, per list entry, per input position.
    pub y: Vec<Vec<Vec<VarId>>>,
    /// `z_{bij}`: per module, per list entry, per output position.
    pub z: Vec<Vec<Vec<VarId>>>,
}

/// Builds the Figure-3 LP relaxation (or an ablated variant).
#[must_use]
pub fn build_lp(inst: &CardinalityInstance, variant: CardLpVariant) -> CardLp {
    let mut p = LpProblem::new();
    let x: Vec<VarId> = (0..inst.n_attrs)
        .map(|b| p.add_unit_var(&format!("x{b}"), inst.costs[b] as f64))
        .collect();
    let mut r = Vec::with_capacity(inst.modules.len());
    let mut y = Vec::with_capacity(inst.modules.len());
    let mut z = Vec::with_capacity(inst.modules.len());

    for (i, m) in inst.modules.iter().enumerate() {
        let li = m.list.len();
        let ri: Vec<VarId> = (0..li)
            .map(|j| p.add_unit_var(&format!("r{i}_{j}"), 0.0))
            .collect();
        // (1) Σ_j r_ij ≥ 1.
        let terms: Vec<(VarId, f64)> = ri.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Cmp::Ge, 1.0);

        let yi: Vec<Vec<VarId>> = (0..li)
            .map(|j| {
                m.inputs
                    .iter()
                    .map(|b| p.add_unit_var(&format!("y{b}_{i}_{j}"), 0.0))
                    .collect()
            })
            .collect();
        let zi: Vec<Vec<VarId>> = (0..li)
            .map(|j| {
                m.outputs
                    .iter()
                    .map(|b| p.add_unit_var(&format!("z{b}_{i}_{j}"), 0.0))
                    .collect()
            })
            .collect();

        for j in 0..li {
            let (alpha, beta) = m.list[j];
            // (2) Σ_b y_bij ≥ r_ij · α_i^j.
            let mut terms: Vec<(VarId, f64)> = yi[j].iter().map(|&v| (v, 1.0)).collect();
            terms.push((ri[j], -(alpha as f64)));
            p.add_constraint(&terms, Cmp::Ge, 0.0);
            // (3) Σ_b z_bij ≥ r_ij · β_i^j.
            let mut terms: Vec<(VarId, f64)> = zi[j].iter().map(|&v| (v, 1.0)).collect();
            terms.push((ri[j], -(beta as f64)));
            p.add_constraint(&terms, Cmp::Ge, 0.0);
            if variant != CardLpVariant::WithoutCaps {
                // (6)/(7) y_bij ≤ r_ij, z_bij ≤ r_ij.
                for &v in yi[j].iter().chain(zi[j].iter()) {
                    p.add_constraint(&[(v, 1.0), (ri[j], -1.0)], Cmp::Le, 0.0);
                }
            }
        }
        // (4)/(5): link y/z to x.
        match variant {
            CardLpVariant::WithoutSums => {
                for j in 0..li {
                    for (pos, &b) in m.inputs.iter().enumerate() {
                        p.add_constraint(&[(yi[j][pos], 1.0), (x[b as usize], -1.0)], Cmp::Le, 0.0);
                    }
                    for (pos, &b) in m.outputs.iter().enumerate() {
                        p.add_constraint(&[(zi[j][pos], 1.0), (x[b as usize], -1.0)], Cmp::Le, 0.0);
                    }
                }
            }
            _ => {
                for (pos, &b) in m.inputs.iter().enumerate() {
                    let mut terms: Vec<(VarId, f64)> = (0..li).map(|j| (yi[j][pos], 1.0)).collect();
                    terms.push((x[b as usize], -1.0));
                    p.add_constraint(&terms, Cmp::Le, 0.0);
                }
                for (pos, &b) in m.outputs.iter().enumerate() {
                    let mut terms: Vec<(VarId, f64)> = (0..li).map(|j| (zi[j][pos], 1.0)).collect();
                    terms.push((x[b as usize], -1.0));
                    p.add_constraint(&terms, Cmp::Le, 0.0);
                }
            }
        }
        r.push(ri);
        y.push(yi);
        z.push(zi);
    }
    CardLp {
        problem: p,
        x,
        r,
        y,
        z,
    }
}

/// Optimal value of the (full) LP relaxation — a lower bound on the
/// Secure-View optimum.
///
/// # Errors
/// LP solver errors (infeasibility means some module's list is
/// unsatisfiable even fractionally).
pub fn lp_lower_bound(inst: &CardinalityInstance) -> Result<f64, LpError> {
    let lp = build_lp(inst, CardLpVariant::Full);
    Ok(lp.problem.solve()?.objective)
}

/// The module's minimum-cost deterministic bundle `B_i^min` (Algorithm 1
/// step 3): over list entries `j`, the `α_i^j` cheapest inputs plus the
/// `β_i^j` cheapest outputs, minimized by total cost.
#[must_use]
pub fn b_min(inst: &CardinalityInstance, i: usize) -> AttrSet {
    let m = &inst.modules[i];
    let mut best: Option<(u64, AttrSet)> = None;
    let mut ins: Vec<u32> = m.inputs.clone();
    let mut outs: Vec<u32> = m.outputs.clone();
    ins.sort_by_key(|&b| inst.costs[b as usize]);
    outs.sort_by_key(|&b| inst.costs[b as usize]);
    for &(alpha, beta) in &m.list {
        if alpha > ins.len() || beta > outs.len() {
            continue;
        }
        let chosen: AttrSet = ins[..alpha]
            .iter()
            .chain(outs[..beta].iter())
            .map(|&b| AttrId(b))
            .collect();
        let cost: u64 = chosen.iter().map(|a| inst.costs[a.index()]).sum();
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, chosen));
        }
    }
    best.map(|(_, s)| s).unwrap_or_default()
}

/// **Algorithm 1**: randomized rounding of the Figure-3 LP relaxation.
///
/// Each attribute `b` is hidden with probability
/// `min{1, 16·x_b·ln n}`; any module left unsatisfied is repaired with
/// its deterministic bundle `B_i^min`. Expected cost is `O(log n)` times
/// the LP lower bound (Theorem 5 / Corollary 1).
///
/// # Errors
/// LP solver errors.
pub fn solve_rounding<R: Rng>(
    inst: &CardinalityInstance,
    rng: &mut R,
) -> Result<Solution, LpError> {
    let lp = build_lp(inst, CardLpVariant::Full);
    let sol = lp.problem.solve()?;
    let n = inst.modules.len().max(2) as f64;
    let scale = 16.0 * n.ln();
    let mut hidden = AttrSet::new();
    for (b, &v) in lp.x.iter().enumerate() {
        let pr = (sol.value(v) * scale).min(1.0);
        if rng.gen_bool(pr.clamp(0.0, 1.0)) {
            hidden.insert(AttrId(b as u32));
        }
    }
    // Step 3: deterministic repair.
    for (i, m) in inst.modules.iter().enumerate() {
        if !m.satisfied_by(&hidden) {
            hidden.union_with(&b_min(inst, i));
        }
    }
    Ok(Solution::checked_card(inst, hidden))
}

/// Exact optimum via branch-and-bound on the full IP (all variables
/// binary). Used as a cross-check of the dense-enumeration baseline.
///
/// # Errors
/// [`LpError::Infeasible`] when no feasible hiding exists;
/// [`LpError::Numerical`] if `node_limit` is exhausted.
pub fn exact_ip(inst: &CardinalityInstance, node_limit: u64) -> Result<Solution, LpError> {
    let lp = build_lp(inst, CardLpVariant::Full);
    let mut ints: Vec<VarId> = lp.x.clone();
    for ri in &lp.r {
        ints.extend(ri.iter().copied());
    }
    for yi in &lp.y {
        for yj in yi {
            ints.extend(yj.iter().copied());
        }
    }
    for zi in &lp.z {
        for zj in zi {
            ints.extend(zj.iter().copied());
        }
    }
    let s = solve_integer(&lp.problem, &ints, node_limit)?;
    let hidden: AttrSet =
        lp.x.iter()
            .enumerate()
            .filter(|(_, &v)| s.value(v) > 0.5)
            .map(|(b, _)| AttrId(b as u32))
            .collect();
    Ok(Solution::checked_card(inst, hidden))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cardinality;
    use crate::instance::CardModule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> CardinalityInstance {
        // Three modules over 6 attrs; sharing on attr 2.
        CardinalityInstance {
            n_attrs: 6,
            costs: vec![1, 2, 1, 3, 1, 2],
            modules: vec![
                CardModule {
                    inputs: vec![0, 1],
                    outputs: vec![2],
                    list: vec![(1, 0), (0, 1)],
                },
                CardModule {
                    inputs: vec![2, 3],
                    outputs: vec![4],
                    list: vec![(1, 0), (0, 1)],
                },
                CardModule {
                    inputs: vec![4],
                    outputs: vec![5],
                    list: vec![(1, 1)],
                },
            ],
        }
    }

    #[test]
    fn lp_bounds_the_optimum() {
        let inst = toy();
        let opt = exact_cardinality(&inst).unwrap();
        let lb = lp_lower_bound(&inst).unwrap();
        assert!(lb <= opt.cost as f64 + 1e-6, "lb {lb} > opt {}", opt.cost);
        assert!(lb > 0.0);
    }

    #[test]
    fn rounding_is_feasible_and_close_on_toy() {
        let inst = toy();
        let opt = exact_cardinality(&inst).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let s = solve_rounding(&inst, &mut rng).unwrap();
            assert!(inst.feasible(&s.hidden));
            // Theorem-5 guarantee is O(log n)·OPT in expectation; on
            // this toy a generous sanity band suffices.
            assert!(
                s.cost <= 16 * opt.cost,
                "cost {} vs opt {}",
                s.cost,
                opt.cost
            );
        }
    }

    #[test]
    fn exact_ip_matches_enumeration() {
        let inst = toy();
        let a = exact_cardinality(&inst).unwrap();
        let b = exact_ip(&inst, 1 << 18).unwrap();
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn b_min_picks_cheapest_bundle() {
        let inst = toy();
        // Module 0: (1,0) cheapest input = attr 0 (cost 1);
        // (0,1) output attr 2 (cost 1). Tie → first found (entry order).
        let b = b_min(&inst, 0);
        let cost: u64 = b.iter().map(|a| inst.costs[a.index()]).sum();
        assert_eq!(cost, 1);
        // Module 2 must take both its attrs: {4, 5}.
        assert_eq!(b_min(&inst, 2), AttrSet::from_indices(&[4, 5]));
    }

    #[test]
    fn ablated_lp_without_caps_is_cheaper() {
        // Mixing two list entries is allowed without (6)/(7): LP value
        // can drop strictly below the faithful relaxation.
        let inst = CardinalityInstance {
            n_attrs: 4,
            costs: vec![1, 1, 1, 1],
            modules: vec![CardModule {
                inputs: vec![0, 1],
                outputs: vec![2, 3],
                // Either hide both inputs or both outputs.
                list: vec![(2, 0), (0, 2)],
            }],
        };
        let full = build_lp(&inst, CardLpVariant::Full)
            .problem
            .solve()
            .unwrap()
            .objective;
        let ablated = build_lp(&inst, CardLpVariant::WithoutCaps)
            .problem
            .solve()
            .unwrap()
            .objective;
        assert!(ablated <= full + 1e-9);
        let opt = exact_cardinality(&inst).unwrap().cost as f64;
        assert!(full <= opt + 1e-9);
    }

    #[test]
    fn unsatisfiable_module_infeasible_everywhere() {
        let inst = CardinalityInstance {
            n_attrs: 2,
            costs: vec![1, 1],
            modules: vec![CardModule {
                inputs: vec![0],
                outputs: vec![1],
                list: vec![(2, 0)], // needs 2 hidden inputs, has 1
            }],
        };
        assert!(exact_cardinality(&inst).is_none());
        assert!(matches!(exact_ip(&inst, 1 << 12), Err(LpError::Infeasible)));
    }
}
