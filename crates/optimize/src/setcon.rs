//! Secure-View with **set constraints** (Theorem 6, Appendix B.5): the
//! LP relaxation (15)–(18) and the threshold rounding that yields an
//! `ℓ_max`-approximation.
//!
//! The LP:
//! `min Σ c_b x_b` subject to `Σ_j r_{ij} ≥ 1` per module and
//! `x_b ≥ r_{ij}` for every attribute `b` in list entry `(I_i^j, O_i^j)`.
//! Rounding hides every attribute with `x_b ≥ 1/ℓ_max`; since some
//! `r_{ij} ≥ 1/ℓ_i` per module, that entry's attributes are all hidden,
//! so the result is feasible at cost at most `ℓ_max` times the LP value.

use crate::instance::{SetInstance, Solution};
use sv_lp::{solve_integer, Cmp, LpError, LpProblem, VarId};
use sv_relation::{AttrId, AttrSet};

/// The built LP with handles.
pub struct SetLp {
    /// The LP.
    pub problem: LpProblem,
    /// `x_b` per attribute.
    pub x: Vec<VarId>,
    /// `r_{ij}` per module, per list entry.
    pub r: Vec<Vec<VarId>>,
}

/// Builds the relaxation (15)–(18).
#[must_use]
pub fn build_lp(inst: &SetInstance) -> SetLp {
    let mut p = LpProblem::new();
    let x: Vec<VarId> = (0..inst.n_attrs)
        .map(|b| p.add_unit_var(&format!("x{b}"), inst.costs[b] as f64))
        .collect();
    let mut r = Vec::with_capacity(inst.modules.len());
    for (i, m) in inst.modules.iter().enumerate() {
        let ri: Vec<VarId> = (0..m.list.len())
            .map(|j| p.add_unit_var(&format!("r{i}_{j}"), 0.0))
            .collect();
        // (15) Σ_j r_ij ≥ 1.
        let terms: Vec<(VarId, f64)> = ri.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Cmp::Ge, 1.0);
        // (16) x_b ≥ r_ij for b in entry j.
        for (j, entry) in m.list.iter().enumerate() {
            for a in entry.iter() {
                p.add_constraint(&[(x[a.index()], 1.0), (ri[j], -1.0)], Cmp::Ge, 0.0);
            }
        }
        r.push(ri);
    }
    SetLp { problem: p, x, r }
}

/// Optimal LP value — a lower bound on the Secure-View optimum.
///
/// # Errors
/// LP solver errors.
pub fn lp_lower_bound(inst: &SetInstance) -> Result<f64, LpError> {
    Ok(build_lp(inst).problem.solve()?.objective)
}

/// The `ℓ_max`-approximation (Appendix B.5.1): solve the LP and hide
/// every attribute with `x_b ≥ 1/ℓ_max`.
///
/// # Errors
/// LP solver errors ([`LpError::Infeasible`] iff some module's list is
/// empty/unsatisfiable).
pub fn solve_rounding(inst: &SetInstance) -> Result<Solution, LpError> {
    let lmax = inst.l_max().max(1);
    let lp = build_lp(inst);
    let sol = lp.problem.solve()?;
    let thr = 1.0 / lmax as f64 - 1e-9;
    let hidden: AttrSet =
        lp.x.iter()
            .enumerate()
            .filter(|(_, &v)| sol.value(v) >= thr)
            .map(|(b, _)| AttrId(b as u32))
            .collect();
    Ok(Solution::checked_set(inst, hidden))
}

/// Exact optimum via branch-and-bound on the IP (15)–(17).
///
/// # Errors
/// [`LpError::Infeasible`] when no feasible hiding exists;
/// [`LpError::Numerical`] if `node_limit` is exhausted.
pub fn exact_ip(inst: &SetInstance, node_limit: u64) -> Result<Solution, LpError> {
    let lp = build_lp(inst);
    let mut ints: Vec<VarId> = lp.x.clone();
    for ri in &lp.r {
        ints.extend(ri.iter().copied());
    }
    let s = solve_integer(&lp.problem, &ints, node_limit)?;
    let hidden: AttrSet =
        lp.x.iter()
            .enumerate()
            .filter(|(_, &v)| s.value(v) > 0.5)
            .map(|(b, _)| AttrId(b as u32))
            .collect();
    Ok(Solution::checked_set(inst, hidden))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_set;
    use crate::instance::SetModule;

    fn toy() -> SetInstance {
        SetInstance {
            n_attrs: 5,
            costs: vec![2, 1, 1, 1, 4],
            modules: vec![
                SetModule {
                    list: vec![AttrSet::from_indices(&[0]), AttrSet::from_indices(&[1, 2])],
                },
                SetModule {
                    list: vec![AttrSet::from_indices(&[2, 3]), AttrSet::from_indices(&[4])],
                },
            ],
        }
    }

    #[test]
    fn lp_sandwich() {
        let inst = toy();
        let opt = exact_set(&inst).unwrap();
        let lb = lp_lower_bound(&inst).unwrap();
        assert!(lb <= opt.cost as f64 + 1e-6);
        let rounded = solve_rounding(&inst).unwrap();
        assert!(inst.feasible(&rounded.hidden));
        // ℓ_max guarantee.
        assert!(rounded.cost as f64 <= inst.l_max() as f64 * opt.cost as f64 + 1e-6);
    }

    #[test]
    fn exact_ip_matches_enumeration() {
        let inst = toy();
        assert_eq!(
            exact_set(&inst).unwrap().cost,
            exact_ip(&inst, 1 << 16).unwrap().cost
        );
    }

    #[test]
    fn shared_entries_collapse_cost() {
        // Both modules can be satisfied by hiding {2} ∪ {3}: entries
        // {2,3} shared — optimum hides 2 attrs of cost 2.
        let inst = SetInstance {
            n_attrs: 4,
            costs: vec![10, 10, 1, 1],
            modules: vec![
                SetModule {
                    list: vec![AttrSet::from_indices(&[0]), AttrSet::from_indices(&[2, 3])],
                },
                SetModule {
                    list: vec![AttrSet::from_indices(&[1]), AttrSet::from_indices(&[2, 3])],
                },
            ],
        };
        let s = exact_set(&inst).unwrap();
        assert_eq!(s.cost, 2);
        assert_eq!(s.hidden, AttrSet::from_indices(&[2, 3]));
        let r = solve_rounding(&inst).unwrap();
        assert_eq!(r.cost, 2, "LP already integral here");
    }

    #[test]
    fn singleton_lists_make_lp_integral() {
        // ℓ_max = 1 ⇒ the LP forces x_b = 1 on every required attribute;
        // rounding is exact.
        let inst = SetInstance {
            n_attrs: 3,
            costs: vec![1, 5, 2],
            modules: vec![
                SetModule {
                    list: vec![AttrSet::from_indices(&[0, 2])],
                },
                SetModule {
                    list: vec![AttrSet::from_indices(&[2])],
                },
            ],
        };
        let s = solve_rounding(&inst).unwrap();
        assert_eq!(s.cost, exact_set(&inst).unwrap().cost);
        assert_eq!(s.hidden, AttrSet::from_indices(&[0, 2]));
    }
}
