//! Secure-View in **general workflows** (§5.2, Appendix C.4): the LP
//! (19)–(23) with privatization variables and its `ℓ_max`-rounding.
//!
//! Additional variables `w_i` per public module (`w_i = 1` iff the
//! module is privatized) with constraint (21) `w_i ≥ x_b` for every
//! attribute `b` of the module: hiding any of a public module's data
//! forces hiding the module's identity. Rounding hides attributes with
//! `x_b ≥ 1/ℓ_max` and privatizes exactly the publics they touch, giving
//! an `ℓ_max`-approximation for the set-constraints version (the
//! cardinality version in general workflows is
//! `Ω(2^{log^{1-γ} n})`-hard, Theorem 10, so no analogous rounding is
//! offered there — use [`crate::exact`] or greedy baselines).

use crate::instance::{GeneralInstance, Solution};
use sv_lp::{solve_integer, Cmp, LpError, LpProblem, VarId};
use sv_relation::{AttrId, AttrSet};

/// The built LP with handles.
pub struct GeneralLp {
    /// The LP.
    pub problem: LpProblem,
    /// `x_b` per attribute.
    pub x: Vec<VarId>,
    /// `r_{ij}` per private module, per list entry.
    pub r: Vec<Vec<VarId>>,
    /// `w_i` per public module.
    pub w: Vec<VarId>,
}

/// Builds the relaxation (19)–(23).
#[must_use]
pub fn build_lp(inst: &GeneralInstance) -> GeneralLp {
    let mut p = LpProblem::new();
    let x: Vec<VarId> = (0..inst.base.n_attrs)
        .map(|b| p.add_unit_var(&format!("x{b}"), inst.base.costs[b] as f64))
        .collect();
    let w: Vec<VarId> = inst
        .publics
        .iter()
        .enumerate()
        .map(|(i, pm)| p.add_unit_var(&format!("w{i}"), pm.cost as f64))
        .collect();
    let mut r = Vec::with_capacity(inst.base.modules.len());
    for (i, m) in inst.base.modules.iter().enumerate() {
        let ri: Vec<VarId> = (0..m.list.len())
            .map(|j| p.add_unit_var(&format!("r{i}_{j}"), 0.0))
            .collect();
        // (19) Σ_j r_ij ≥ 1 (private modules only).
        let terms: Vec<(VarId, f64)> = ri.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Cmp::Ge, 1.0);
        // (20) x_b ≥ r_ij.
        for (j, entry) in m.list.iter().enumerate() {
            for a in entry.iter() {
                p.add_constraint(&[(x[a.index()], 1.0), (ri[j], -1.0)], Cmp::Ge, 0.0);
            }
        }
        r.push(ri);
    }
    // (21) w_i ≥ x_b for b in the public module's footprint.
    for (i, pm) in inst.publics.iter().enumerate() {
        for a in pm.attrs.iter() {
            p.add_constraint(&[(w[i], 1.0), (x[a.index()], -1.0)], Cmp::Ge, 0.0);
        }
    }
    GeneralLp {
        problem: p,
        x,
        r,
        w,
    }
}

/// Optimal LP value — a lower bound on the general Secure-View optimum.
///
/// # Errors
/// LP solver errors.
pub fn lp_lower_bound(inst: &GeneralInstance) -> Result<f64, LpError> {
    Ok(build_lp(inst).problem.solve()?.objective)
}

/// The `ℓ_max`-rounding of Appendix C.4: hide attributes with
/// `x_b ≥ 1/ℓ_max`; the privatized set is induced (every public module
/// touching a hidden attribute).
///
/// # Errors
/// LP solver errors.
pub fn solve_rounding(inst: &GeneralInstance) -> Result<Solution, LpError> {
    let lmax = inst.l_max().max(1);
    let lp = build_lp(inst);
    let sol = lp.problem.solve()?;
    let thr = 1.0 / lmax as f64 - 1e-9;
    let hidden: AttrSet =
        lp.x.iter()
            .enumerate()
            .filter(|(_, &v)| sol.value(v) >= thr)
            .map(|(b, _)| AttrId(b as u32))
            .collect();
    Ok(Solution::checked_general(inst, hidden))
}

/// Exact optimum via branch-and-bound on the IP (19)–(22).
///
/// # Errors
/// [`LpError::Infeasible`] when no feasible hiding exists;
/// [`LpError::Numerical`] if `node_limit` is exhausted.
pub fn exact_ip(inst: &GeneralInstance, node_limit: u64) -> Result<Solution, LpError> {
    let lp = build_lp(inst);
    let mut ints: Vec<VarId> = lp.x.clone();
    ints.extend(lp.w.iter().copied());
    for ri in &lp.r {
        ints.extend(ri.iter().copied());
    }
    let s = solve_integer(&lp.problem, &ints, node_limit)?;
    let hidden: AttrSet =
        lp.x.iter()
            .enumerate()
            .filter(|(_, &v)| s.value(v) > 0.5)
            .map(|(b, _)| AttrId(b as u32))
            .collect();
    Ok(Solution::checked_general(inst, hidden))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_general;
    use crate::instance::{PublicSpec, SetInstance, SetModule};

    fn toy() -> GeneralInstance {
        GeneralInstance {
            base: SetInstance {
                n_attrs: 4,
                costs: vec![0, 0, 2, 2],
                modules: vec![SetModule {
                    list: vec![AttrSet::from_indices(&[0]), AttrSet::from_indices(&[2, 3])],
                }],
            },
            publics: vec![
                PublicSpec {
                    attrs: AttrSet::from_indices(&[0, 1]),
                    cost: 3,
                },
                PublicSpec {
                    attrs: AttrSet::from_indices(&[1]),
                    cost: 100,
                },
            ],
        }
    }

    #[test]
    fn exact_trades_attrs_against_privatization() {
        // Hiding {0}: attr cost 0 + privatize public 0 (cost 3) = 3.
        // Hiding {2,3}: attr cost 4, no privatization = 4. Optimum: 3.
        let s = exact_general(&toy()).unwrap();
        assert_eq!(s.cost, 3);
        assert_eq!(s.hidden, AttrSet::from_indices(&[0]));
    }

    #[test]
    fn lp_bounds_and_rounding_guarantee() {
        let inst = toy();
        let opt = exact_general(&inst).unwrap();
        let lb = lp_lower_bound(&inst).unwrap();
        assert!(lb <= opt.cost as f64 + 1e-6);
        let rounded = solve_rounding(&inst).unwrap();
        assert!(inst.feasible(&rounded.hidden));
        assert!(
            rounded.cost as f64 <= inst.l_max() as f64 * opt.cost as f64 + 1e-6,
            "rounded {} vs ℓ_max·opt {}",
            rounded.cost,
            inst.l_max() as u64 * opt.cost
        );
    }

    #[test]
    fn exact_ip_matches_enumeration() {
        let inst = toy();
        assert_eq!(
            exact_general(&inst).unwrap().cost,
            exact_ip(&inst, 1 << 16).unwrap().cost
        );
    }

    #[test]
    fn zero_cost_publics_do_not_distort() {
        let mut inst = toy();
        inst.publics[0].cost = 0;
        // Now hiding {0} costs 0 total.
        let s = exact_general(&inst).unwrap();
        assert_eq!(s.cost, 0);
        let r = solve_rounding(&inst).unwrap();
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn no_publics_reduces_to_set_instance() {
        let inst = GeneralInstance {
            base: toy().base,
            publics: vec![],
        };
        let g = exact_general(&inst).unwrap();
        let s = crate::exact::exact_set(&inst.base).unwrap();
        assert_eq!(g.cost, s.cost);
    }
}
