//! Tuples: fixed-width value rows aligned with a [`Schema`](crate::Schema).

use crate::attrset::AttrSet;
use crate::domain::Value;
use crate::schema::AttrId;
use std::fmt;

/// A row of a relation: one [`Value`] per schema attribute, in schema
/// order.
///
/// Projections (`π_V(t)` in the paper) produce *sub-tuples*: shorter
/// tuples whose positions correspond to the projected attribute set in
/// increasing id order.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Creates a tuple from values in schema order.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            values: values.into_boxed_slice(),
        }
    }

    /// Number of values.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at attribute `a` (`t[a]` in the paper's notation).
    #[must_use]
    pub fn get(&self, a: AttrId) -> Value {
        self.values[a.index()]
    }

    /// Replaces the value at attribute `a`, returning the old value.
    pub fn set(&mut self, a: AttrId, v: Value) -> Value {
        std::mem::replace(&mut self.values[a.index()], v)
    }

    /// All values in schema order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Projection `π_set(t)`: values of the attributes in `set`, in
    /// increasing attribute-id order.
    #[must_use]
    pub fn project(&self, set: &AttrSet) -> Tuple {
        Tuple::new(set.iter().map(|a| self.get(a)).collect())
    }

    /// Merges a projected sub-tuple back: for each attribute in `set`
    /// (id order) take the corresponding value of `sub`, elsewhere keep
    /// `self`. Inverse of [`project`](Self::project) on `set`.
    #[must_use]
    pub fn overwrite(&self, set: &AttrSet, sub: &Tuple) -> Tuple {
        debug_assert_eq!(set.len(), sub.arity());
        let mut out = self.clone();
        for (i, a) in set.iter().enumerate() {
            out.set(a, sub.values[i]);
        }
        out
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tuple::new(vec![1, 0, 1]);
        assert_eq!(t.get(AttrId(0)), 1);
        assert_eq!(t.set(AttrId(1), 1), 0);
        assert_eq!(t.values(), &[1, 1, 1]);
    }

    #[test]
    fn project_selects_in_id_order() {
        let t = Tuple::new(vec![7, 8, 9, 10]);
        let p = t.project(&AttrSet::from_indices(&[3, 0]));
        assert_eq!(p.values(), &[7, 10]); // id order: 0 then 3
    }

    #[test]
    fn overwrite_is_inverse_of_project() {
        let t = Tuple::new(vec![1, 2, 3, 4]);
        let set = AttrSet::from_indices(&[1, 3]);
        let sub = t.project(&set);
        assert_eq!(t.overwrite(&set, &sub), t);
        let replaced = t.overwrite(&set, &Tuple::new(vec![9, 9]));
        assert_eq!(replaced.values(), &[1, 9, 3, 9]);
    }

    #[test]
    fn empty_projection() {
        let t = Tuple::new(vec![1, 2]);
        assert_eq!(t.project(&AttrSet::new()).arity(), 0);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Tuple::new(vec![0, 1])), "(0,1)");
    }
}
