//! Error type for relational operations.

use std::fmt;

/// Errors raised by relation construction and operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A tuple's arity does not match the schema.
    ArityMismatch {
        /// Expected number of values (schema length).
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value falls outside its attribute's domain.
    ValueOutOfDomain {
        /// Attribute name.
        attr: String,
        /// Offending value.
        value: u32,
        /// Domain size.
        domain_size: u32,
    },
    /// A functional dependency is violated by two rows.
    FdViolation {
        /// Rendered `I -> O` description.
        fd: String,
    },
    /// Two relations being joined disagree on a shared attribute's domain.
    JoinSchemaMismatch {
        /// Attribute name present in both schemas with different domains.
        attr: String,
    },
    /// An ordered row sequence that must be duplicate-free (a recovered
    /// kernel column store) repeats a row.
    DuplicateRow {
        /// 0-based position of the repeated row.
        row: usize,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            Self::ValueOutOfDomain {
                attr,
                value,
                domain_size,
            } => write!(
                f,
                "value {value} out of domain [0,{domain_size}) for attribute `{attr}`"
            ),
            Self::FdViolation { fd } => {
                write!(f, "functional dependency violated: {fd}")
            }
            Self::JoinSchemaMismatch { attr } => {
                write!(
                    f,
                    "join schemas disagree on domain of shared attribute `{attr}`"
                )
            }
            Self::DuplicateRow { row } => {
                write!(
                    f,
                    "duplicate row at position {row} in an ordered row sequence"
                )
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RelationError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("arity 2"));
        let e = RelationError::ValueOutOfDomain {
            attr: "a1".into(),
            value: 9,
            domain_size: 2,
        };
        assert!(e.to_string().contains("a1"));
        let e = RelationError::FdViolation {
            fd: "I -> O".into(),
        };
        assert!(e.to_string().contains("I -> O"));
        let e = RelationError::JoinSchemaMismatch { attr: "x".into() };
        assert!(e.to_string().contains("`x`"));
    }
}
