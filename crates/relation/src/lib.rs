//! # sv-relation — relational substrate for `secure-view`
//!
//! The PODS 2011 paper *Provenance Views for Module Privacy* (Davidson,
//! Khanna, Milo, Panigrahi, Roy) models a workflow module as a **finite
//! relation** over input attributes `I` and output attributes `O`
//! satisfying the functional dependency `I -> O`, and a workflow as the
//! input/output join of its module relations (§2.1, §2.3 of the paper).
//!
//! This crate provides exactly that substrate:
//!
//! * [`Domain`] — finite attribute domains (`Δ_a` in the paper),
//! * [`Schema`] / [`AttrId`] — ordered attribute sets with names and domains,
//! * [`Tuple`] and [`Relation`] — dense row storage with set semantics,
//! * [`AttrSet`] — compact attribute bitsets (visible/hidden sets `V`, `V̄`),
//! * [`Fd`] — functional dependencies `I -> O` and satisfaction checks,
//! * projection `π_V(R)`, natural join `R ⋈ S`, grouping and counting
//!   operators used by the privacy checkers in `sv-core`.
//!
//! ## Layering: the interned columnar kernel
//!
//! The crate is split into two layers:
//!
//! 1. **Value layer** — [`Relation`] / [`Tuple`]: canonical sorted row
//!    storage with set semantics, used for construction, equality, FD
//!    checking, and the possible-worlds ground truth in `sv-core`.
//! 2. **Kernel layer** — [`InternedRelation`]: a columnar view that
//!    interns projected sub-tuples to dense `u32` ids
//!    ([`ValueInterner`], [`GroupIndex`]) and memoizes one grouping per
//!    attribute set. The Lemma-4 probe
//!    ([`InternedRelation::min_group_distinct`]) runs with **zero
//!    per-probe heap allocation** once warm; projection and join
//!    operate on interned ids. The row-at-a-time seed semantics are
//!    preserved in [`ops::reference`] as the executable specification
//!    (property-tested equivalent, benchmark baseline).
//!
//! `sv-core` builds its safety checkers and the memoized
//! `SafetyOracle` layer directly on the kernel; everything above
//! (`sv-optimize`, `sv-bench`) programs against those oracles.
//!
//! Everything is deterministic and in-memory; rows are canonically ordered
//! so that relations compare as sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attrset;
mod domain;
mod error;
mod fd;
mod interned;
pub mod ops;
mod relation;
mod schema;
mod tuple;

pub use attrset::AttrSet;
pub use domain::{Domain, Value};
pub use error::RelationError;
pub use fd::Fd;
pub use interned::{hash_shard, GroupIndex, InternedRelation, ScratchPool, ValueInterner};
pub use ops::{group_count_distinct, natural_join, project};
pub use relation::Relation;
pub use schema::{AttrDef, AttrId, Schema};
pub use tuple::Tuple;
