//! Functional dependencies `I -> O`.

use crate::attrset::AttrSet;
use crate::schema::Schema;
use std::fmt;

/// A functional dependency `lhs -> rhs` over a schema's attributes.
///
/// Each module `m_i` contributes `I_i -> O_i` to the workflow relation's
/// dependency set `F` (§2.3). `lhs` and `rhs` must be disjoint, matching
/// the paper's assumption `I ∩ O = ∅`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fd {
    lhs: AttrSet,
    rhs: AttrSet,
}

impl Fd {
    /// Creates `lhs -> rhs`.
    ///
    /// # Panics
    /// Panics if `lhs` and `rhs` overlap.
    #[must_use]
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        assert!(
            lhs.is_disjoint(&rhs),
            "FD sides must be disjoint (paper assumes I ∩ O = ∅)"
        );
        Self { lhs, rhs }
    }

    /// Determinant attributes (`I`).
    #[must_use]
    pub fn lhs(&self) -> &AttrSet {
        &self.lhs
    }

    /// Dependent attributes (`O`).
    #[must_use]
    pub fn rhs(&self) -> &AttrSet {
        &self.rhs
    }

    /// Renders the FD with attribute names from `schema`.
    #[must_use]
    pub fn display(&self, schema: &Schema) -> String {
        format!(
            "{} -> {}",
            schema.names(&self.lhs).join(","),
            schema.names(&self.rhs).join(",")
        )
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} -> {:?}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let fd = Fd::new(AttrSet::from_indices(&[0, 1]), AttrSet::from_indices(&[2]));
        assert_eq!(fd.lhs().len(), 2);
        assert_eq!(fd.rhs().len(), 1);
        assert_eq!(fd.to_string(), "{0,1} -> {2}");
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_sides_rejected() {
        let _ = Fd::new(AttrSet::from_indices(&[0, 1]), AttrSet::from_indices(&[1]));
    }

    #[test]
    fn display_with_names() {
        let s = Schema::booleans(&["a1", "a2", "a3"]);
        let fd = Fd::new(AttrSet::from_indices(&[0, 1]), AttrSet::from_indices(&[2]));
        assert_eq!(fd.display(&s), "a1,a2 -> a3");
    }
}
