//! Schemas: ordered, named, typed attribute lists.

use crate::attrset::AttrSet;
use crate::domain::Domain;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within a [`Schema`].
///
/// The paper names attributes `a1, a2, …`; we address them positionally
/// and keep the names for display and wiring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The attribute's positional index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a#{}", self.0)
    }
}

/// An attribute definition: name plus finite domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDef {
    /// Human-readable attribute name (`a1`, `ssn`, …). Unique per schema.
    pub name: String,
    /// The attribute's finite domain `Δ_a`.
    pub domain: Domain,
}

/// An ordered list of attributes shared by all tuples of a relation.
///
/// Schemas are cheaply cloneable (`Arc` inside) because module relations,
/// views, and possible worlds all share the same schema.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(PartialEq, Eq)]
struct SchemaInner {
    attrs: Vec<AttrDef>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Builds a schema from attribute definitions.
    ///
    /// # Panics
    /// Panics if two attributes share a name; the paper requires globally
    /// unique attribute names within a workflow (§2.3).
    #[must_use]
    pub fn new(attrs: Vec<AttrDef>) -> Self {
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            let prev = by_name.insert(a.name.clone(), AttrId(i as u32));
            assert!(prev.is_none(), "duplicate attribute name `{}`", a.name);
        }
        Self {
            inner: Arc::new(SchemaInner { attrs, by_name }),
        }
    }

    /// Convenience: a schema of `names.len()` boolean attributes.
    #[must_use]
    pub fn booleans(names: &[&str]) -> Self {
        Self::new(
            names
                .iter()
                .map(|n| AttrDef {
                    name: (*n).to_string(),
                    domain: Domain::boolean(),
                })
                .collect(),
        )
    }

    /// Number of attributes (`k` in the paper's complexity bounds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.attrs.len()
    }

    /// Whether the schema has no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.attrs.is_empty()
    }

    /// The definition of attribute `a`.
    #[must_use]
    pub fn attr(&self, a: AttrId) -> &AttrDef {
        &self.inner.attrs[a.index()]
    }

    /// Looks up an attribute by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<AttrId> {
        self.inner.by_name.get(name).copied()
    }

    /// Iterates `(AttrId, &AttrDef)` in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrDef)> {
        self.inner
            .attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId(i as u32), d))
    }

    /// The set of all attribute ids in this schema.
    #[must_use]
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::full(self.len())
    }

    /// Product of domain sizes over `set` (`∏_{a∈set} |Δ_a|`), saturating
    /// at `u128::MAX`.
    ///
    /// This quantity appears directly in the paper's safety condition
    /// (Lemma 4): a visible subset is safe iff each visible-input group
    /// admits at least `Γ / ∏_{a∈O\V}|Δ_a|` distinct visible outputs.
    #[must_use]
    pub fn domain_product(&self, set: &AttrSet) -> u128 {
        let mut p: u128 = 1;
        for a in set.iter() {
            p = p.saturating_mul(u128::from(self.attr(a).domain.size()));
        }
        p
    }

    /// [`domain_product`](Self::domain_product) over a bitmask word
    /// (the kernel's ≤ 64-attribute fast path; bits beyond the schema
    /// are ignored).
    #[must_use]
    pub fn domain_product_word(&self, word: u64) -> u128 {
        let mut p: u128 = 1;
        let n = self.len().min(64);
        for i in 0..n {
            if word & (1u64 << i) != 0 {
                p = p.saturating_mul(u128::from(self.inner.attrs[i].domain.size()));
            }
        }
        p
    }

    /// Names of the attributes in `set`, in id order (diagnostics).
    #[must_use]
    pub fn names(&self, set: &AttrSet) -> Vec<&str> {
        set.iter().map(|a| self.attr(a).name.as_str()).collect()
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema[")?;
        for (i, a) in self.inner.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", a.name, a.domain)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::booleans(&["a1", "a2", "a3"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.by_name("a2"), Some(AttrId(1)));
        assert_eq!(s.by_name("zz"), None);
        assert_eq!(s.attr(AttrId(0)).name, "a1");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        let _ = Schema::booleans(&["x", "x"]);
    }

    #[test]
    fn domain_product_over_sets() {
        let s = Schema::new(vec![
            AttrDef {
                name: "b".into(),
                domain: Domain::boolean(),
            },
            AttrDef {
                name: "t".into(),
                domain: Domain::new(3),
            },
            AttrDef {
                name: "q".into(),
                domain: Domain::new(5),
            },
        ]);
        assert_eq!(s.domain_product(&s.all_attrs()), 30);
        assert_eq!(s.domain_product(&AttrSet::from_indices(&[1, 2])), 15);
        assert_eq!(s.domain_product(&AttrSet::new()), 1);
    }

    #[test]
    fn names_projection() {
        let s = Schema::booleans(&["a1", "a2", "a3"]);
        assert_eq!(s.names(&AttrSet::from_indices(&[0, 2])), vec!["a1", "a3"]);
    }

    #[test]
    fn schemas_share_storage_on_clone() {
        let s = Schema::booleans(&["a"]);
        let t = s.clone();
        assert_eq!(s, t);
    }
}
