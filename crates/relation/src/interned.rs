//! The interned columnar relation kernel.
//!
//! Every algorithm in the paper bottoms out in three relational
//! operators over a module relation `R`: projection, natural join, and
//! grouped distinct counting (the Lemma-4 safety condition). The seed
//! implementation evaluated them row-at-a-time over heap-allocated
//! [`Tuple`] rows with `HashMap<Tuple, _>` grouping, so every
//! `is_safe(V, Γ)` probe re-hashed full sub-tuples. This module replaces
//! that hot path:
//!
//! * [`InternedRelation`] stores the relation **columnar**
//!   (`cols[attr][row]`) and maps, per attribute set `S`, each row's
//!   projected sub-tuple `π_S(t)` to a **dense `u32` group id**. The
//!   per-set [`GroupIndex`] is computed once and memoized (keyed by the
//!   set's bitmask word for schemas of ≤ 64 attributes, by [`AttrSet`]
//!   beyond that).
//! * [`InternedRelation::min_group_distinct`] — the entire Lemma-4 inner
//!   loop — walks two cached id columns through a reusable scratch
//!   buffer: **zero heap allocation per probe** once the group indexes
//!   are warm.
//! * [`ValueInterner`] is the generic sub-tuple → dense-id map used by
//!   the interned natural join (provenance assembly, §4) and by group
//!   computation when mixed-radix codes would overflow `u64`.
//! * [`InternedRelation::append_rows`] supports **streaming
//!   provenance**: rows arriving after the build extend the column
//!   store and every memoized [`GroupIndex`] in place (new sub-tuples
//!   take the next free dense id) instead of triggering a rebuild. The
//!   [`InternedRelation::epoch`] generation counter ticks once per
//!   row-adding append, so memoized consumers upstream (the `sv-core`
//!   safety oracles and sweep caches) can invalidate lazily — and keep
//!   entries that appends provably could not shrink.
//!
//! ### Concurrent readers
//!
//! Every probe entry point takes `&self` and is safe to call from many
//! reader threads at once: the per-attribute-set group caches are
//! **sharded** (readers of different sets never touch the same lock)
//! with **once-per-set publication** (a cold set is built by exactly
//! one thread — racing readers block on that set's [`std::sync::OnceLock`]
//! slot, not on the cache), and per-probe pair-code buffers come from a
//! [`ScratchPool`] so concurrent probes never serialize on one shared
//! scratch. The only writer is [`InternedRelation::append_rows`]
//! (`&mut self`), which Rust's aliasing rules already exclude from
//! overlapping any probe.
//!
//! At build time sub-tuple ids are assigned in ascending code order, so
//! for the mixed-radix path group ids sort exactly like the canonical
//! [`Tuple`] order — representatives materialize already-sorted
//! relations. Groups created by later appends take ids in first-seen
//! order instead; consumers needing sorted output re-canonicalize (as
//! [`InternedRelation::project`] does via [`Relation::from_rows`]).

use crate::attrset::AttrSet;
use crate::domain::Value;
use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::{AttrDef, AttrId, Schema};
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Number of lock shards in each group cache. Concurrent readers
/// resolving *different* attribute sets hash to different shards and
/// never contend; 16 shards keep the per-shard maps small while staying
/// far above the worker counts the sweep layer uses.
const GROUP_SHARDS: usize = 16;

/// A pool of reusable `u64` probe buffers shared by concurrent readers.
///
/// The Lemma-4 pair-code walk needs one scratch buffer per *in-flight*
/// probe, not per caller: [`with`](Self::with) pops a buffer (or makes a
/// fresh one when all are in use), runs the closure, and returns the
/// buffer to the pool. The pool mutex is held only for the pop and the
/// push — never across the probe itself — so concurrent probes each get
/// their own buffer instead of serializing on one shared scratch, and a
/// warm pool allocates nothing.
///
/// This replaces the caller-threaded `&mut Vec<u64>` scratch as the
/// *default* probe path; the explicit `_with` entry points remain for
/// callers that pin one buffer per worker (the sweep shards).
///
/// Residency is bounded: at most `MAX_POOLED` buffers are retained —
/// a burst of higher concurrency allocates fresh buffers that are
/// simply dropped on return, so a transient spike cannot pin
/// `concurrency × n_rows`-sized buffers for the relation's lifetime.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<Vec<u64>>>,
}

/// Maximum buffers a [`ScratchPool`] retains (each grows to the hot
/// relation's row count): bounds idle residency at 8 buffers while
/// still covering the serving/sweep thread counts the ROADMAP targets.
const MAX_POOLED: usize = 8;

impl ScratchPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with a pooled buffer, returning the buffer afterwards
    /// (dropped instead if `MAX_POOLED` buffers are already pooled).
    /// If `f` panics the buffer is dropped, not poisoned.
    pub fn with<R>(&self, f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
        let mut buf = self
            .pool
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_default();
        let out = f(&mut buf);
        let mut pool = self.pool.lock().expect("scratch pool lock");
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
        out
    }
}

/// The lock shard a key hashes to among `shards` (stable for a given
/// key and shard count). Shared by the kernel's group caches and the
/// `sv-core` memo shards, so the sharding scheme cannot silently
/// diverge across layers.
#[must_use]
pub fn hash_shard<K: Hash>(key: &K, shards: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % shards
}

/// [`hash_shard`] over this cache's [`GROUP_SHARDS`].
fn shard_idx<K: Hash>(key: &K) -> usize {
    hash_shard(key, GROUP_SHARDS)
}

/// A published (or in-flight) group index: the `OnceLock` guarantees
/// **exactly one** thread runs the grouping pass per attribute set —
/// racing readers either find the warm index or block on the builder.
type GroupSlot = Arc<OnceLock<Arc<GroupIndex>>>;

/// Sharded once-per-attribute-set group-index cache. Readers take one
/// shard read-lock to find their slot; a cold set inserts an empty slot
/// under a brief shard write-lock and then builds *outside* any shard
/// lock, publishing through the slot's `OnceLock`.
#[derive(Debug)]
struct GroupCache<K> {
    shards: Vec<RwLock<HashMap<K, GroupSlot>>>,
}

impl<K: Eq + Hash + Clone> Default for GroupCache<K> {
    fn default() -> Self {
        Self {
            shards: (0..GROUP_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

impl<K: Eq + Hash + Clone> GroupCache<K> {
    /// The published index for `key`, if a builder has finished it.
    fn get(&self, key: &K) -> Option<Arc<GroupIndex>> {
        self.shards[shard_idx(key)]
            .read()
            .expect("group cache lock")
            .get(key)
            .and_then(|slot| slot.get().cloned())
    }

    /// The index for `key`, building (and publishing) it exactly once.
    fn get_or_publish(&self, key: &K, build: impl FnOnce() -> GroupIndex) -> Arc<GroupIndex> {
        let shard = &self.shards[shard_idx(key)];
        let slot = {
            let read = shard.read().expect("group cache lock");
            match read.get(key) {
                Some(s) => Arc::clone(s),
                None => {
                    drop(read);
                    Arc::clone(
                        shard
                            .write()
                            .expect("group cache lock")
                            .entry(key.clone())
                            .or_insert_with(|| Arc::new(OnceLock::new())),
                    )
                }
            }
        };
        // Outside every shard lock: one thread builds, the rest wait on
        // this slot alone (readers of other sets proceed unimpeded).
        Arc::clone(slot.get_or_init(|| Arc::new(build())))
    }

    /// Number of *published* indexes.
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("group cache lock")
                    .values()
                    .filter(|slot| slot.get().is_some())
                    .count()
            })
            .sum()
    }

    /// Takes the shard maps out (exclusive access), for the append path
    /// to mutate without holding locks; restore with [`restore`](Self::restore).
    fn take_maps(&mut self) -> Vec<HashMap<K, GroupSlot>> {
        self.shards
            .iter_mut()
            .map(|s| std::mem::take(s.get_mut().expect("group cache lock")))
            .collect()
    }

    /// Puts back maps from [`take_maps`](Self::take_maps).
    fn restore(&mut self, maps: Vec<HashMap<K, GroupSlot>>) {
        for (shard, map) in self.shards.iter_mut().zip(maps) {
            *shard.get_mut().expect("group cache lock") = map;
        }
    }

    /// Deep clone: published indexes are shared through their `Arc`s
    /// (appends copy-on-write them); never-published slots are dropped.
    fn deep_clone(&self) -> Self {
        Self {
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let map = s
                        .read()
                        .expect("group cache lock")
                        .iter()
                        .filter_map(|(k, slot)| {
                            slot.get().map(|g| {
                                let fresh = OnceLock::new();
                                fresh.set(Arc::clone(g)).expect("fresh slot");
                                (k.clone(), Arc::new(fresh))
                            })
                        })
                        .collect();
                    RwLock::new(map)
                })
                .collect(),
        }
    }
}

/// The published [`GroupIndex`] behind one taken-out slot, mutably —
/// `None` for a slot whose builder never finished (dropped by appends).
fn slot_mut(slot: &mut GroupSlot) -> Option<&mut GroupIndex> {
    Arc::make_mut(slot).get_mut().map(Arc::make_mut)
}

/// Interns value slices (projected sub-tuples) as dense `u32` ids.
///
/// Ids are assigned in first-seen order; [`resolve`](Self::resolve)
/// recovers the slice. Lookups with [`get`](Self::get) borrow the probe
/// buffer — no allocation on the probe path.
#[derive(Clone, Debug, Default)]
pub struct ValueInterner {
    map: HashMap<Box<[Value]>, u32>,
    rev: Vec<Box<[Value]>>,
}

impl ValueInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `key`, inserting it if new.
    pub fn intern(&mut self, key: &[Value]) -> u32 {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = u32::try_from(self.rev.len()).expect("more than u32::MAX distinct sub-tuples");
        let boxed: Box<[Value]> = key.into();
        self.rev.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// The id of `key`, if already interned (no allocation).
    #[must_use]
    pub fn get(&self, key: &[Value]) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The slice behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this interner.
    #[must_use]
    pub fn resolve(&self, id: u32) -> &[Value] {
        &self.rev[id as usize]
    }

    /// Number of distinct interned sub-tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rev.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rev.is_empty()
    }
}

/// Dense grouping of a relation's rows by one attribute set.
///
/// Group ids are dense (`0..n_groups`). For a freshly built index on the
/// mixed-radix path they ascend in canonical sub-tuple order; groups
/// first seen by [`InternedRelation::append_rows`] take the next free id
/// instead, so after an append the id order is first-seen, not sorted
/// (consumers that need sorted output — [`InternedRelation::project`] —
/// re-canonicalize through [`Relation::from_rows`]).
#[derive(Clone, Debug)]
pub struct GroupIndex {
    /// `row_group[row]` = the row's dense group id (`0..n_groups`).
    pub row_group: Vec<u32>,
    /// Number of distinct projected sub-tuples.
    pub n_groups: u32,
    /// `representative[group]` = index of the first row of the group.
    pub representative: Vec<u32>,
    /// Sub-tuple → group-id lookup state, kept so appends extend the
    /// index instead of forcing a rebuild.
    lookup: GroupLookup,
    /// The relation epoch at which this index last gained a **new**
    /// group (its build epoch if no append created one since). The
    /// memoized oracles upstream use this for the monotone
    /// cache-revalidation shortcut: if the key grouping gained no new
    /// groups since a privacy level was cached, that level can only
    /// have grown.
    new_group_epoch: u64,
}

impl GroupIndex {
    /// The relation epoch at which this grouping last gained a new group
    /// (see [`InternedRelation::epoch`]).
    #[must_use]
    pub fn new_group_epoch(&self) -> u64 {
        self.new_group_epoch
    }
}

/// How a [`GroupIndex`] maps a projected sub-tuple to its group id —
/// retained after the build so appends are incremental.
#[derive(Clone, Debug)]
enum GroupLookup {
    /// Mixed-radix path: `base` holds the build-time codes in ascending
    /// order (group id = rank), `appended` the codes first seen by an
    /// append (group ids `base.len()..`).
    Radix {
        base: Vec<u64>,
        appended: HashMap<u64, u32>,
    },
    /// Wide-domain path: the interner's dense ids *are* the group ids
    /// (sub-tuples are interned in first-seen order at build time and on
    /// every append).
    Wide { interner: ValueInterner },
}

/// A columnar, interning view of a [`Relation`] — the kernel every
/// safety probe runs on.
///
/// Construction is `O(attrs × rows)`; each distinct attribute set pays
/// one `O(rows log rows)` grouping pass, after which probes touching it
/// are allocation-free (cache lookups borrow their keys, the pair
/// scratch buffer is reused under a lock). Streaming rows in through
/// [`append_rows`](Self::append_rows) extends the warm groupings
/// instead of rebuilding them.
///
/// # Examples
/// ```
/// use sv_relation::{AttrSet, InternedRelation, Relation, Schema};
///
/// // The Lemma-4 question: per visible-input group, how many distinct
/// // visible-output sub-tuples does the relation show?
/// let r = Relation::from_values(
///     Schema::booleans(&["i", "o1", "o2"]),
///     vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 1, 0], vec![1, 1, 1]],
/// )
/// .unwrap();
/// let ir = InternedRelation::from_relation(&r);
/// let key = AttrSet::from_indices(&[0]);
/// let probe = AttrSet::from_indices(&[1, 2]);
/// assert_eq!(ir.min_group_distinct(&key, &probe), 2);
/// // The grouping passes are memoized: repeating the probe is two
/// // cache lookups plus one pass over dense id columns.
/// assert_eq!(ir.cached_groupings(), 2);
/// ```
pub struct InternedRelation {
    schema: Schema,
    n_rows: usize,
    cols: Vec<Vec<Value>>,
    /// Generation counter: bumped by every [`append_rows`](Self::append_rows)
    /// that adds at least one genuinely new row. `0` for a fresh build.
    epoch: u64,
    /// Sharded group cache for schemas of ≤ 64 attributes, keyed by
    /// bitmask word (once-per-set publication; see [`GroupCache`]).
    word_groups: GroupCache<u64>,
    /// Sharded group cache for wider schemas.
    wide_groups: GroupCache<AttrSet>,
    /// Pooled `(key_gid, probe_gid)` code buffers: concurrent probes
    /// each borrow their own.
    scratch: ScratchPool,
}

impl Clone for InternedRelation {
    fn clone(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            n_rows: self.n_rows,
            cols: self.cols.clone(),
            epoch: self.epoch,
            word_groups: self.word_groups.deep_clone(),
            wide_groups: self.wide_groups.deep_clone(),
            scratch: ScratchPool::new(),
        }
    }
}

impl std::fmt::Debug for InternedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "InternedRelation({:?}, {} rows, epoch {}, {} cached groupings)",
            self.schema,
            self.n_rows,
            self.epoch,
            self.word_groups.len() + self.wide_groups.len()
        )
    }
}

impl InternedRelation {
    /// Builds the columnar kernel view of `r`.
    #[must_use]
    pub fn from_relation(r: &Relation) -> Self {
        let schema = r.schema().clone();
        let n_rows = r.len();
        let n_attrs = schema.len();
        let mut cols: Vec<Vec<Value>> = (0..n_attrs).map(|_| Vec::with_capacity(n_rows)).collect();
        for t in r.rows() {
            for (col, &v) in cols.iter_mut().zip(t.values()) {
                col.push(v);
            }
        }
        Self {
            schema,
            n_rows,
            cols,
            epoch: 0,
            word_groups: GroupCache::default(),
            wide_groups: GroupCache::default(),
            scratch: ScratchPool::new(),
        }
    }

    /// Reconstructs a kernel from rows **in arrival order** with an
    /// explicit epoch counter — the durable-recovery constructor. A
    /// snapshot of a streamed kernel persists its column store (row
    /// order = append order, which appended group ids and
    /// representatives depend on) together with the epoch; this rebuilds
    /// exactly that logical state with cold group caches, so subsequent
    /// probes and appends behave identically to the uninterrupted run.
    ///
    /// # Errors
    /// Arity/domain violations as in [`append_rows`](Self::append_rows);
    /// [`RelationError::DuplicateRow`] on a repeated row — the streamed
    /// store is duplicate-free by construction, so a duplicate in
    /// recovered input is corruption, not data.
    pub fn from_ordered_rows(
        schema: Schema,
        rows: &[Tuple],
        epoch: u64,
    ) -> Result<Self, RelationError> {
        let n_attrs = schema.len();
        let mut cols: Vec<Vec<Value>> = (0..n_attrs)
            .map(|_| Vec::with_capacity(rows.len()))
            .collect();
        let mut seen: std::collections::HashSet<&[Value]> =
            std::collections::HashSet::with_capacity(rows.len());
        let probe = Self {
            schema,
            n_rows: 0,
            cols: Vec::new(),
            epoch,
            word_groups: GroupCache::default(),
            wide_groups: GroupCache::default(),
            scratch: ScratchPool::new(),
        };
        for (i, t) in rows.iter().enumerate() {
            probe.validate_row(t)?;
            if !seen.insert(t.values()) {
                return Err(RelationError::DuplicateRow { row: i });
            }
            for (col, &v) in cols.iter_mut().zip(t.values()) {
                col.push(v);
            }
        }
        Ok(Self {
            n_rows: rows.len(),
            cols,
            ..probe
        })
    }

    /// The relation's generation counter: `0` at build, bumped by every
    /// [`append_rows`](Self::append_rows) call that adds at least one
    /// new row. Memoized consumers (the `sv-core` safety oracles, the
    /// sweep layer) stamp their cache entries with this and invalidate
    /// lazily on mismatch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Value of attribute `a` in row `row` (columnar access).
    #[must_use]
    pub fn value(&self, row: usize, a: AttrId) -> Value {
        self.cols[a.index()][row]
    }

    /// Whether the schema fits the bitmask-word fast path.
    #[must_use]
    pub fn fits_word(&self) -> bool {
        self.schema.len() <= 64
    }

    fn mask(&self) -> u64 {
        if self.schema.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.schema.len()) - 1
        }
    }

    /// Mixed-radix digit sizes for `attrs`, and whether their product
    /// fits a `u64` code (the radix fast path). Schema-determined, so
    /// the radix/wide decision is stable across appends.
    fn radix_sizes(&self, attrs: &[usize]) -> (Vec<u64>, bool) {
        let mut sizes: Vec<u64> = Vec::with_capacity(attrs.len());
        let mut product: u128 = 1;
        for &a in attrs {
            let s = u64::from(self.schema.attr(AttrId(a as u32)).domain.size());
            product = product.saturating_mul(u128::from(s));
            sizes.push(s);
        }
        (sizes, product <= u128::from(u64::MAX))
    }

    /// Computes the dense grouping for the attributes in `attrs`
    /// (ascending attribute indices).
    fn compute_group(&self, attrs: &[usize]) -> GroupIndex {
        let n = self.n_rows;
        let (sizes, fits_radix) = self.radix_sizes(attrs);
        if fits_radix {
            // Mixed-radix fast path: one u64 code per row.
            let codes: Vec<u64> = (0..n)
                .map(|row| {
                    let mut c: u64 = 0;
                    for (&a, &s) in attrs.iter().zip(sizes.iter()) {
                        c = c * s + u64::from(self.cols[a][row]);
                    }
                    c
                })
                .collect();
            // Densify: group id = rank of the row's code.
            let mut sorted = codes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let row_group: Vec<u32> = codes
                .iter()
                .map(|c| sorted.binary_search(c).expect("own code") as u32)
                .collect();
            let mut representative = vec![u32::MAX; sorted.len()];
            for (row, &g) in row_group.iter().enumerate() {
                let slot = &mut representative[g as usize];
                if *slot == u32::MAX {
                    *slot = row as u32;
                }
            }
            GroupIndex {
                row_group,
                n_groups: sorted.len() as u32,
                representative,
                lookup: GroupLookup::Radix {
                    base: sorted,
                    appended: HashMap::new(),
                },
                new_group_epoch: self.epoch,
            }
        } else {
            // Wide-domain fallback: intern the materialized sub-tuples.
            // Interner ids are assigned in first-seen row order and are
            // used as the group ids directly.
            let mut interner = ValueInterner::new();
            let mut buf: Vec<Value> = Vec::with_capacity(attrs.len());
            let mut row_group: Vec<u32> = Vec::with_capacity(n);
            let mut representative: Vec<u32> = Vec::new();
            for row in 0..n {
                buf.clear();
                buf.extend(attrs.iter().map(|&a| self.cols[a][row]));
                let gid = interner.intern(&buf);
                if gid as usize == representative.len() {
                    representative.push(row as u32);
                }
                row_group.push(gid);
            }
            GroupIndex {
                row_group,
                n_groups: representative.len() as u32,
                representative,
                lookup: GroupLookup::Wide { interner },
                new_group_epoch: self.epoch,
            }
        }
    }

    /// Validates `t` against the schema (arity and per-attribute domain
    /// membership) — the same contract [`Relation::from_rows`] enforces.
    fn validate_row(&self, t: &Tuple) -> Result<(), RelationError> {
        if t.arity() != self.schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.len(),
                got: t.arity(),
            });
        }
        for (a, def) in self.schema.iter() {
            let v = t.get(a);
            if !def.domain.contains(v) {
                return Err(RelationError::ValueOutOfDomain {
                    attr: def.name.clone(),
                    value: v,
                    domain_size: def.domain.size(),
                });
            }
        }
        Ok(())
    }

    /// Appends `rows` **incrementally**: the column store grows in
    /// place, and every memoized [`GroupIndex`] is *extended* — new
    /// sub-tuples take the next free dense group id — instead of being
    /// discarded and rebuilt. Duplicate rows (against the existing
    /// relation or within the batch) are skipped, preserving set
    /// semantics; the [`epoch`](Self::epoch) counter is bumped iff at
    /// least one genuinely new row landed.
    ///
    /// Cost: `O(batch × (attrs + cached groupings × log groups))` — the
    /// streaming alternative to an `O(rows log rows)` full rebuild per
    /// cached grouping. Returns the number of new rows.
    ///
    /// # Errors
    /// Rejects rows violating the schema (arity or domain) before any
    /// mutation — on error the relation is unchanged.
    ///
    /// # Examples
    /// ```
    /// use sv_relation::{AttrSet, InternedRelation, Relation, Schema, Tuple};
    ///
    /// let base = Relation::from_values(Schema::booleans(&["i", "o"]), vec![vec![0, 1]]).unwrap();
    /// let mut ir = InternedRelation::from_relation(&base);
    /// let key = AttrSet::from_indices(&[0]);
    /// let probe = AttrSet::from_indices(&[1]);
    /// assert_eq!(ir.min_group_distinct(&key, &probe), 1);
    ///
    /// // A new execution arrives; the warm group indexes are extended,
    /// // not rebuilt, and the epoch advances.
    /// let added = ir.append_rows(&[Tuple::new(vec![1, 0]), Tuple::new(vec![0, 1])]).unwrap();
    /// assert_eq!((added, ir.n_rows(), ir.epoch()), (1, 2, 1));
    /// assert_eq!(ir.min_group_distinct(&key, &probe), 1);
    /// ```
    pub fn append_rows(&mut self, rows: &[Tuple]) -> Result<usize, RelationError> {
        for t in rows {
            self.validate_row(t)?;
        }
        if rows.is_empty() {
            return Ok(0);
        }
        let all = self.schema.all_attrs();
        // Materialize the full-row grouping once: it doubles as the
        // set-semantics dedup structure (every distinct row is its own
        // group), and stays maintained across appends like any other.
        let _ = self.group_index(&all);
        let next_epoch = self.epoch + 1;
        let start_row = self.n_rows;
        // Take the cache maps out of their shard locks for the duration
        // — we hold `&mut self`, so nothing can observe the gap, and
        // this sidesteps per-row lock traffic and borrows against
        // `cols`. Slots whose builder never published are dropped by
        // the retain passes below (the next probe rebuilds post-append).
        let mut word_cache = self.word_groups.take_maps();
        let mut wide_cache = self.wide_groups.take_maps();
        let full_word = if self.fits_word() {
            Some(self.mask())
        } else {
            None
        };

        // Phase 1: dedup against (and extend) the full-row grouping,
        // appending genuinely new rows to the column store.
        {
            let full = match full_word {
                Some(w) => word_cache[shard_idx(&w)].get_mut(&w),
                None => wide_cache[shard_idx(&all)].get_mut(&all),
            }
            .expect("full grouping materialized above");
            let full = slot_mut(full).expect("full grouping published above");
            let attrs: Vec<usize> = (0..self.schema.len()).collect();
            let (sizes, _) = self.radix_sizes(&attrs);
            let mut buf: Vec<Value> = Vec::with_capacity(attrs.len());
            for t in rows {
                if gid_of(full, &attrs, &sizes, &mut buf, |a| t.values()[a]).is_some() {
                    continue; // duplicate of an existing or just-appended row
                }
                let row = self.n_rows as u32;
                for (col, &v) in self.cols.iter_mut().zip(t.values()) {
                    col.push(v);
                }
                self.n_rows += 1;
                extend_gid(full, &attrs, &sizes, &mut buf, row, next_epoch, |a| {
                    t.values()[a]
                });
            }
        }

        // Phase 2: extend every other published grouping with the new
        // rows; unpublished slots are dropped rather than extended.
        let appended = self.n_rows - start_row;
        if appended > 0 {
            let new_rows: Vec<u32> = (start_row..self.n_rows).map(|r| r as u32).collect();
            for shard in word_cache.iter_mut() {
                shard.retain(|&word, slot| {
                    if Some(word) == full_word {
                        return true;
                    }
                    let Some(gi) = slot_mut(slot) else {
                        return false;
                    };
                    let attrs: Vec<usize> = (0..self.schema.len())
                        .filter(|&i| word & (1u64 << i) != 0)
                        .collect();
                    self.extend_index(gi, &attrs, &new_rows, next_epoch);
                    true
                });
            }
            for shard in wide_cache.iter_mut() {
                shard.retain(|set, slot| {
                    if full_word.is_none() && *set == all {
                        return true;
                    }
                    let Some(gi) = slot_mut(slot) else {
                        return false;
                    };
                    let attrs: Vec<usize> = set
                        .iter()
                        .map(AttrId::index)
                        .filter(|&i| i < self.schema.len())
                        .collect();
                    self.extend_index(gi, &attrs, &new_rows, next_epoch);
                    true
                });
            }
            self.epoch = next_epoch;
        }
        self.word_groups.restore(word_cache);
        self.wide_groups.restore(wide_cache);
        Ok(appended)
    }

    /// Extends one cached group index with the rows in `new_rows`
    /// (already present in the column store).
    fn extend_index(&self, gi: &mut GroupIndex, attrs: &[usize], new_rows: &[u32], epoch: u64) {
        let (sizes, _) = self.radix_sizes(attrs);
        let mut buf: Vec<Value> = Vec::with_capacity(attrs.len());
        for &row in new_rows {
            extend_gid(gi, attrs, &sizes, &mut buf, row, epoch, |a| {
                self.cols[a][row as usize]
            });
        }
    }

    /// The representative row of the group that `row_values` (a full row
    /// in schema order) falls into under the grouping by `set`, or
    /// `None` if no existing row shares its projected sub-tuple.
    /// Computes (and memoizes) the group index on first use.
    ///
    /// This is the point lookup streaming consumers use, e.g. to check a
    /// candidate execution's outputs against the recorded output of its
    /// input group before appending (FD enforcement in `sv-core`).
    #[must_use]
    pub fn find_group_row(&self, set: &AttrSet, row_values: &[Value]) -> Option<usize> {
        let g = self.group_index(set);
        let attrs: Vec<usize> = set
            .iter()
            .map(AttrId::index)
            .filter(|&i| i < self.schema.len())
            .collect();
        let (sizes, _) = self.radix_sizes(&attrs);
        let mut buf: Vec<Value> = Vec::with_capacity(attrs.len());
        let gid = gid_of(&g, &attrs, &sizes, &mut buf, |a| row_values[a])?;
        Some(g.representative[gid as usize] as usize)
    }

    /// The [`GroupIndex::new_group_epoch`] of the **cached** grouping
    /// for the word-encoded attribute set, without computing it —
    /// `None` when that grouping has never been materialized. The
    /// memoized oracles use this for the monotone revalidation shortcut.
    #[must_use]
    pub fn group_new_group_epoch_word(&self, word: u64) -> Option<u64> {
        if !self.fits_word() {
            return None;
        }
        let word = word & self.mask();
        self.word_groups.get(&word).map(|g| g.new_group_epoch)
    }

    /// [`group_new_group_epoch_word`](Self::group_new_group_epoch_word)
    /// for an [`AttrSet`] (any schema width).
    #[must_use]
    pub fn group_new_group_epoch(&self, set: &AttrSet) -> Option<u64> {
        if self.fits_word() {
            let w = set
                .iter()
                .filter(|a| a.index() < self.schema.len())
                .fold(0u64, |acc, a| acc | (1u64 << a.index()));
            return self.group_new_group_epoch_word(w);
        }
        self.wide_groups.get(set).map(|g| g.new_group_epoch)
    }

    /// The (memoized) group index for the attribute set encoded as a
    /// bitmask word. Requires a schema of ≤ 64 attributes.
    ///
    /// Safe to call from any number of concurrent reader threads: the
    /// cache is sharded by word hash, and a cold set is built by
    /// **exactly one** thread (racing readers block on that set's
    /// publication slot only, never on unrelated sets).
    ///
    /// # Panics
    /// Panics if the schema has more than 64 attributes.
    #[must_use]
    pub fn group_index_word(&self, word: u64) -> Arc<GroupIndex> {
        assert!(self.fits_word(), "schema too wide for the word fast path");
        let word = word & self.mask();
        self.word_groups.get_or_publish(&word, || {
            let attrs: Vec<usize> = (0..self.schema.len())
                .filter(|&i| word & (1u64 << i) != 0)
                .collect();
            self.compute_group(&attrs)
        })
    }

    /// The (memoized) group index for an [`AttrSet`]. Dispatches to the
    /// word cache when the schema fits 64 attributes.
    #[must_use]
    pub fn group_index(&self, set: &AttrSet) -> Arc<GroupIndex> {
        if self.fits_word() {
            if let Some(w) = set.as_word() {
                return self.group_index_word(w);
            }
            // The set mentions ids ≥ 64 that cannot be schema attributes;
            // drop them and use the word path.
            let w = set
                .iter()
                .filter(|a| a.index() < self.schema.len())
                .fold(0u64, |acc, a| acc | (1u64 << a.index()));
            return self.group_index_word(w);
        }
        self.wide_groups.get_or_publish(set, || {
            let attrs: Vec<usize> = set
                .iter()
                .map(AttrId::index)
                .filter(|&i| i < self.schema.len())
                .collect();
            self.compute_group(&attrs)
        })
    }

    /// Lemma-4 inner loop: over the `key` groups, the **minimum** number
    /// of distinct `probe` sub-tuples, or `usize::MAX` on an empty
    /// relation.
    ///
    /// Allocation-free once both group indexes are cached and the
    /// scratch pool is warm: the pair codes go through a pooled buffer
    /// ([`ScratchPool`]), so concurrent probes each hold their own
    /// buffer and never serialize on a shared scratch. Pinned-buffer
    /// callers (one buffer per sweep worker) can still use
    /// [`min_group_distinct_with`](Self::min_group_distinct_with) /
    /// [`min_group_distinct_words_with`](Self::min_group_distinct_words_with).
    #[must_use]
    pub fn min_group_distinct(&self, key: &AttrSet, probe: &AttrSet) -> usize {
        let kg = self.group_index(key);
        let pg = self.group_index(probe);
        self.min_group_distinct_indexed(&kg, &pg)
    }

    /// Word-keyed variant of [`min_group_distinct`](Self::min_group_distinct)
    /// for schemas of ≤ 64 attributes.
    #[must_use]
    pub fn min_group_distinct_words(&self, key: u64, probe: u64) -> usize {
        let kg = self.group_index_word(key);
        let pg = self.group_index_word(probe);
        self.min_group_distinct_indexed(&kg, &pg)
    }

    /// [`min_group_distinct`](Self::min_group_distinct) through a
    /// caller-owned scratch buffer. Group-index caches are still shared
    /// (read-mostly `RwLock`), but the per-probe pair-code buffer is the
    /// caller's — the form the parallel lattice sweep uses, one buffer
    /// per worker shard.
    #[must_use]
    pub fn min_group_distinct_with(
        &self,
        key: &AttrSet,
        probe: &AttrSet,
        scratch: &mut Vec<u64>,
    ) -> usize {
        let kg = self.group_index(key);
        let pg = self.group_index(probe);
        min_group_distinct_in(&kg, &pg, self.n_rows, scratch)
    }

    /// Word-keyed [`min_group_distinct_with`](Self::min_group_distinct_with)
    /// for schemas of ≤ 64 attributes.
    #[must_use]
    pub fn min_group_distinct_words_with(
        &self,
        key: u64,
        probe: u64,
        scratch: &mut Vec<u64>,
    ) -> usize {
        let kg = self.group_index_word(key);
        let pg = self.group_index_word(probe);
        min_group_distinct_in(&kg, &pg, self.n_rows, scratch)
    }

    fn min_group_distinct_indexed(&self, kg: &GroupIndex, pg: &GroupIndex) -> usize {
        self.scratch
            .with(|buf| min_group_distinct_in(kg, pg, self.n_rows, buf))
    }

    /// **Batched** Lemma-4 probes: answers a whole slice of word-encoded
    /// `(key, probe)` attribute-set pairs in one call. Group-index work
    /// amortizes across the batch — each distinct attribute set is
    /// resolved against the cache (and computed, if cold) **at most once
    /// per batch**, and each distinct `(key, probe)` pair pays exactly
    /// one pair-code pass, fanned out to every duplicate probe. This is
    /// the kernel entry point of the serving layer (`sv-core`'s
    /// `SafetyOracle::is_safe_batch`).
    ///
    /// Semantically equivalent to calling
    /// [`min_group_distinct_words`](Self::min_group_distinct_words) per
    /// probe; the property suite (`tests/batch_prop.rs`) proves batched
    /// ≡ sequential ≡ `ops::reference` on random relations.
    ///
    /// # Panics
    /// Panics if the schema has more than 64 attributes (word fast path
    /// only, like [`min_group_distinct_words`](Self::min_group_distinct_words)).
    ///
    /// # Examples
    /// ```
    /// use sv_relation::{InternedRelation, Relation, Schema};
    ///
    /// let r = Relation::from_values(
    ///     Schema::booleans(&["i", "o1", "o2"]),
    ///     vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 1, 0], vec![1, 1, 1]],
    /// )
    /// .unwrap();
    /// let ir = InternedRelation::from_relation(&r);
    /// // Three probes, two distinct pairs: one pass each, shared answer.
    /// let answers = ir.min_group_distinct_batch(&[(0b001, 0b110), (0b001, 0b010), (0b001, 0b110)]);
    /// assert_eq!(answers, vec![2, 1, 2]);
    /// ```
    #[must_use]
    pub fn min_group_distinct_batch(&self, probes: &[(u64, u64)]) -> Vec<usize> {
        let mut out = Vec::with_capacity(probes.len());
        self.scratch
            .with(|buf| self.min_group_distinct_batch_in(probes, buf, &mut out));
        out
    }

    /// [`min_group_distinct_batch`](Self::min_group_distinct_batch)
    /// through a caller-owned scratch buffer and output vector (cleared
    /// and refilled) — the form the memoized oracle's batch path uses,
    /// one buffer per oracle. Unlike the sequential `_with` probes this
    /// is not allocation-free: the dedup temporaries (distinct words,
    /// pairs, per-pair answers) are allocated per **batch** — amortized
    /// across its probes, never per probe.
    ///
    /// # Panics
    /// Panics if the schema has more than 64 attributes.
    pub fn min_group_distinct_batch_with(
        &self,
        probes: &[(u64, u64)],
        scratch: &mut Vec<u64>,
        out: &mut Vec<usize>,
    ) {
        self.min_group_distinct_batch_in(probes, scratch, out);
    }

    fn min_group_distinct_batch_in(
        &self,
        probes: &[(u64, u64)],
        scratch: &mut Vec<u64>,
        out: &mut Vec<usize>,
    ) {
        assert!(self.fits_word(), "schema too wide for the word fast path");
        out.clear();
        if probes.is_empty() {
            return;
        }
        let mask = self.mask();
        // Distinct attribute sets of the batch, each resolved against
        // the group cache exactly once.
        let mut words: Vec<u64> = Vec::with_capacity(probes.len() * 2);
        for &(k, p) in probes {
            words.push(k & mask);
            words.push(p & mask);
        }
        words.sort_unstable();
        words.dedup();
        let indexes: Vec<Arc<GroupIndex>> =
            words.iter().map(|&w| self.group_index_word(w)).collect();
        let at = |w: u64| &indexes[words.binary_search(&w).expect("collected above")];
        // Distinct (key, probe) pairs: one pair-code pass each.
        let mut pairs: Vec<(u64, u64)> =
            probes.iter().map(|&(k, p)| (k & mask, p & mask)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let answers: Vec<usize> = pairs
            .iter()
            .map(|&(k, p)| min_group_distinct_in(at(k), at(p), self.n_rows, scratch))
            .collect();
        out.extend(probes.iter().map(|&(k, p)| {
            answers[pairs
                .binary_search(&(k & mask, p & mask))
                .expect("collected above")]
        }));
    }

    /// Grouped distinct counting with materialized keys — the
    /// compatibility form of the Lemma-4 condition
    /// (`π_key`-group → number of distinct `π_probe` values).
    #[must_use]
    pub fn group_count_distinct(&self, key: &AttrSet, probe: &AttrSet) -> HashMap<Tuple, usize> {
        let kg = self.group_index(key);
        let pg = self.group_index(probe);
        let pn = u64::from(pg.n_groups);
        let mut counts: HashMap<Tuple, usize> = HashMap::with_capacity(kg.n_groups as usize);
        if self.n_rows == 0 {
            return counts;
        }
        self.scratch.with(|scratch| {
            scratch.clear();
            scratch.extend(
                kg.row_group
                    .iter()
                    .zip(pg.row_group.iter())
                    .map(|(&k, &p)| u64::from(k) * pn + u64::from(p)),
            );
            scratch.sort_unstable();
            scratch.dedup();
            let key_attrs: Vec<AttrId> = key
                .iter()
                .filter(|a| a.index() < self.schema.len())
                .collect();
            let mut i = 0usize;
            while i < scratch.len() {
                let g = scratch[i] / pn;
                let mut j = i;
                while j < scratch.len() && scratch[j] / pn == g {
                    j += 1;
                }
                let row = kg.representative[g as usize] as usize;
                let key_tuple = Tuple::new(key_attrs.iter().map(|&a| self.value(row, a)).collect());
                counts.insert(key_tuple, j - i);
                i = j;
            }
        });
        counts
    }

    /// Projection `π_set` materialized through the group index: one row
    /// per distinct sub-tuple, gathered from group representatives.
    #[must_use]
    pub fn project(&self, set: &AttrSet) -> Relation {
        let attrs: Vec<AttrId> = set
            .iter()
            .filter(|a| a.index() < self.schema.len())
            .collect();
        let schema = Schema::new(
            attrs
                .iter()
                .map(|&a| self.schema.attr(a).clone())
                .collect::<Vec<AttrDef>>(),
        );
        let g = self.group_index(set);
        let rows: Vec<Tuple> = g
            .representative
            .iter()
            .map(|&row| Tuple::new(attrs.iter().map(|&a| self.value(row as usize, a)).collect()))
            .collect();
        Relation::from_rows(schema, rows).expect("projection preserves validity")
    }

    /// Number of cached (published) group indexes (diagnostics / tests).
    #[must_use]
    pub fn cached_groupings(&self) -> usize {
        self.word_groups.len() + self.wide_groups.len()
    }
}

/// Group id of the sub-tuple read through `get` (attribute index →
/// value) over `attrs`, if that sub-tuple already has a group in `gi`.
fn gid_of<F: Fn(usize) -> Value>(
    gi: &GroupIndex,
    attrs: &[usize],
    sizes: &[u64],
    buf: &mut Vec<Value>,
    get: F,
) -> Option<u32> {
    match &gi.lookup {
        GroupLookup::Radix { base, appended } => {
            let mut c: u64 = 0;
            for (&a, &s) in attrs.iter().zip(sizes.iter()) {
                c = c * s + u64::from(get(a));
            }
            match base.binary_search(&c) {
                Ok(rank) => Some(rank as u32),
                Err(_) => appended.get(&c).copied(),
            }
        }
        GroupLookup::Wide { interner } => {
            buf.clear();
            buf.extend(attrs.iter().map(|&a| get(a)));
            interner.get(buf)
        }
    }
}

/// Appends `row` (values read through `get`) to `gi`, assigning the next
/// free dense group id if its sub-tuple is unseen; stamps
/// `new_group_epoch` with `epoch` when a new group is created.
fn extend_gid<F: Fn(usize) -> Value>(
    gi: &mut GroupIndex,
    attrs: &[usize],
    sizes: &[u64],
    buf: &mut Vec<Value>,
    row: u32,
    epoch: u64,
    get: F,
) {
    let GroupIndex {
        row_group,
        n_groups,
        representative,
        lookup,
        new_group_epoch,
    } = gi;
    let (gid, is_new) = match lookup {
        GroupLookup::Radix { base, appended } => {
            let mut c: u64 = 0;
            for (&a, &s) in attrs.iter().zip(sizes.iter()) {
                c = c * s + u64::from(get(a));
            }
            match base.binary_search(&c) {
                Ok(rank) => (rank as u32, false),
                Err(_) => match appended.entry(c) {
                    std::collections::hash_map::Entry::Occupied(e) => (*e.get(), false),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let id = *n_groups;
                        v.insert(id);
                        (id, true)
                    }
                },
            }
        }
        GroupLookup::Wide { interner } => {
            buf.clear();
            buf.extend(attrs.iter().map(|&a| get(a)));
            let id = interner.intern(buf);
            (id, id == *n_groups)
        }
    };
    if is_new {
        *n_groups += 1;
        representative.push(row);
        *new_group_epoch = epoch;
    }
    row_group.push(gid);
}

/// The Lemma-4 pair-code walk over two cached group-id columns, writing
/// through an arbitrary scratch buffer (pooled or per-worker).
fn min_group_distinct_in(
    kg: &GroupIndex,
    pg: &GroupIndex,
    n_rows: usize,
    scratch: &mut Vec<u64>,
) -> usize {
    if n_rows == 0 {
        return usize::MAX;
    }
    let pn = u64::from(pg.n_groups);
    scratch.clear();
    scratch.extend(
        kg.row_group
            .iter()
            .zip(pg.row_group.iter())
            .map(|(&k, &p)| u64::from(k) * pn + u64::from(p)),
    );
    scratch.sort_unstable();
    scratch.dedup();
    let mut min = usize::MAX;
    let mut cur_key = scratch[0] / pn;
    let mut count = 0usize;
    for &code in scratch.iter() {
        let k = code / pn;
        if k == cur_key {
            count += 1;
        } else {
            min = min.min(count);
            cur_key = k;
            count = 1;
        }
    }
    min.min(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn rel(names: &[&str], rows: Vec<Vec<u32>>) -> Relation {
        Relation::from_values(Schema::booleans(names), rows).unwrap()
    }

    #[test]
    fn interner_roundtrip() {
        let mut it = ValueInterner::new();
        assert!(it.is_empty());
        let a = it.intern(&[1, 2, 3]);
        let b = it.intern(&[0]);
        assert_eq!(it.intern(&[1, 2, 3]), a);
        assert_ne!(a, b);
        assert_eq!(it.resolve(a), &[1, 2, 3]);
        assert_eq!(it.get(&[0]), Some(b));
        assert_eq!(it.get(&[9]), None);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn group_index_matches_distinct_subtuples() {
        let r = rel(
            &["a", "b", "c"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0], vec![1, 1, 1]],
        );
        let ir = InternedRelation::from_relation(&r);
        let g = ir.group_index(&AttrSet::from_indices(&[0]));
        assert_eq!(g.n_groups, 2);
        assert_eq!(g.row_group, vec![0, 0, 1, 1]);
        // Representatives are the first rows of each group.
        assert_eq!(g.representative, vec![0, 2]);
        // Full-set grouping: every row its own group.
        let g = ir.group_index(&AttrSet::from_indices(&[0, 1, 2]));
        assert_eq!(g.n_groups, 4);
        // Empty set: one group holding everything.
        let g = ir.group_index(&AttrSet::new());
        assert_eq!(g.n_groups, 1);
    }

    #[test]
    fn group_cache_is_hit() {
        let r = rel(&["a", "b"], vec![vec![0, 1], vec![1, 0]]);
        let ir = InternedRelation::from_relation(&r);
        let s = AttrSet::from_indices(&[1]);
        let g1 = ir.group_index(&s);
        let g2 = ir.group_index(&s);
        assert!(Arc::ptr_eq(&g1, &g2));
        assert_eq!(ir.cached_groupings(), 1);
    }

    #[test]
    fn min_group_distinct_matches_reference() {
        let r = rel(
            &["i", "o1", "o2"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 1, 0], vec![1, 1, 1]],
        );
        let ir = InternedRelation::from_relation(&r);
        let key = AttrSet::from_indices(&[0]);
        let probe = AttrSet::from_indices(&[1, 2]);
        assert_eq!(ir.min_group_distinct(&key, &probe), 2);
        // Caller-owned scratch variants agree with the shared-scratch path.
        let mut scratch = Vec::new();
        assert_eq!(ir.min_group_distinct_with(&key, &probe, &mut scratch), 2);
        assert_eq!(
            ir.min_group_distinct_words_with(0b001, 0b110, &mut scratch),
            2
        );
        let counts = ir.group_count_distinct(&key, &probe);
        assert_eq!(
            counts,
            ops::reference::group_count_distinct(&r, &key, &probe)
        );
    }

    #[test]
    fn batch_matches_sequential_probes() {
        let r = rel(
            &["i", "o1", "o2"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 1, 0], vec![1, 1, 1]],
        );
        let ir = InternedRelation::from_relation(&r);
        let probes: Vec<(u64, u64)> = vec![
            (0b001, 0b110),
            (0b001, 0b010),
            (0b001, 0b110), // duplicate pair: shares the pass
            (0b000, 0b111),
            (0b011, 0b100),
        ];
        let batch = ir.min_group_distinct_batch(&probes);
        for (i, &(k, p)) in probes.iter().enumerate() {
            assert_eq!(batch[i], ir.min_group_distinct_words(k, p), "probe {i}");
        }
        // Each distinct attribute set was materialized exactly once:
        // the batch mentions 001, 110, 010, 000, 111, 011, 100.
        let distinct_sets = 7;
        assert_eq!(ir.cached_groupings(), distinct_sets);
        // The caller-scratch form agrees and reuses its buffers.
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        ir.min_group_distinct_batch_with(&probes, &mut scratch, &mut out);
        assert_eq!(out, batch);
        ir.min_group_distinct_batch_with(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
        // Empty relation: every probe answers usize::MAX.
        let empty = InternedRelation::from_relation(&Relation::empty(Schema::booleans(&["a"])));
        assert_eq!(empty.min_group_distinct_batch(&[(0, 1)]), vec![usize::MAX]);
    }

    #[test]
    fn empty_relation_probes() {
        let r = Relation::empty(Schema::booleans(&["a", "b"]));
        let ir = InternedRelation::from_relation(&r);
        assert_eq!(
            ir.min_group_distinct(&AttrSet::from_indices(&[0]), &AttrSet::from_indices(&[1])),
            usize::MAX
        );
        assert!(ir
            .group_count_distinct(&AttrSet::from_indices(&[0]), &AttrSet::from_indices(&[1]))
            .is_empty());
        assert!(ir.project(&AttrSet::from_indices(&[0])).is_empty());
    }

    #[test]
    fn projection_matches_reference() {
        let r = rel(
            &["a", "b", "c"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 0]],
        );
        let ir = InternedRelation::from_relation(&r);
        for ids in [vec![0u32], vec![0, 2], vec![1, 2], vec![], vec![0, 1, 2]] {
            let set = AttrSet::from_indices(&ids);
            assert_eq!(
                ir.project(&set),
                ops::reference::project(&r, &set),
                "{set:?}"
            );
        }
    }

    #[test]
    fn out_of_schema_ids_are_ignored() {
        let r = rel(&["a", "b"], vec![vec![0, 1], vec![1, 1]]);
        let ir = InternedRelation::from_relation(&r);
        // Id 70 forces the multi-word AttrSet representation.
        let mut set = AttrSet::from_indices(&[0]);
        set.insert(AttrId(70));
        let g = ir.group_index(&set);
        assert_eq!(g.n_groups, 2, "bit 70 is outside the schema and dropped");
    }

    #[test]
    fn append_extends_groups_and_epoch() {
        let r = rel(&["i", "o1", "o2"], vec![vec![0, 0, 1], vec![0, 1, 0]]);
        let mut ir = InternedRelation::from_relation(&r);
        let key = AttrSet::from_indices(&[0]);
        let probe = AttrSet::from_indices(&[1, 2]);
        // Warm both groupings so appends must maintain them.
        assert_eq!(ir.min_group_distinct(&key, &probe), 2);
        assert_eq!(ir.epoch(), 0);
        let kg_before = ir.group_index(&key);

        // One duplicate, one new row in a fresh key group, one intra-
        // batch repeat.
        let added = ir
            .append_rows(&[
                Tuple::new(vec![0, 0, 1]),
                Tuple::new(vec![1, 1, 1]),
                Tuple::new(vec![1, 1, 1]),
            ])
            .unwrap();
        assert_eq!(added, 1);
        assert_eq!(ir.n_rows(), 3);
        assert_eq!(ir.epoch(), 1);
        // New key group {i=1} has a single distinct probe sub-tuple.
        assert_eq!(ir.min_group_distinct(&key, &probe), 1);
        let kg = ir.group_index(&key);
        assert_eq!(kg.n_groups, 2);
        assert_eq!(kg.row_group, vec![0, 0, 1]);
        assert_eq!(kg.new_group_epoch(), 1, "append created a key group");
        assert_eq!(kg_before.n_groups, 1, "pre-append snapshot unshared");

        // Everything agrees with a from-scratch rebuild.
        let full = rel(
            &["i", "o1", "o2"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 1, 1]],
        );
        let rebuilt = InternedRelation::from_relation(&full);
        assert_eq!(
            ir.group_count_distinct(&key, &probe),
            rebuilt.group_count_distinct(&key, &probe)
        );
        assert_eq!(ir.project(&probe), rebuilt.project(&probe));
    }

    #[test]
    fn append_all_duplicates_keeps_epoch() {
        let r = rel(&["a", "b"], vec![vec![0, 1], vec![1, 0]]);
        let mut ir = InternedRelation::from_relation(&r);
        let added = ir
            .append_rows(&[Tuple::new(vec![0, 1]), Tuple::new(vec![1, 0])])
            .unwrap();
        assert_eq!((added, ir.epoch(), ir.n_rows()), (0, 0, 2));
        assert_eq!(ir.append_rows(&[]).unwrap(), 0);
    }

    #[test]
    fn append_to_empty_relation() {
        let r = Relation::empty(Schema::booleans(&["a", "b"]));
        let mut ir = InternedRelation::from_relation(&r);
        let key = AttrSet::from_indices(&[0]);
        let probe = AttrSet::from_indices(&[1]);
        assert_eq!(ir.min_group_distinct(&key, &probe), usize::MAX);
        assert_eq!(ir.append_rows(&[Tuple::new(vec![1, 1])]).unwrap(), 1);
        assert_eq!((ir.n_rows(), ir.epoch()), (1, 1));
        assert_eq!(ir.min_group_distinct(&key, &probe), 1);
        assert_eq!(ir.group_index(&key).new_group_epoch(), 1);
    }

    #[test]
    fn append_rejects_invalid_rows_without_mutation() {
        let r = rel(&["a", "b"], vec![vec![0, 1]]);
        let mut ir = InternedRelation::from_relation(&r);
        let err = ir
            .append_rows(&[Tuple::new(vec![1, 0]), Tuple::new(vec![1])])
            .unwrap_err();
        assert!(matches!(err, crate::RelationError::ArityMismatch { .. }));
        let err = ir.append_rows(&[Tuple::new(vec![1, 7])]).unwrap_err();
        assert!(matches!(err, crate::RelationError::ValueOutOfDomain { .. }));
        assert_eq!((ir.n_rows(), ir.epoch()), (1, 0), "atomic: nothing landed");
    }

    #[test]
    fn find_group_row_locates_representatives() {
        let r = rel(&["i", "o"], vec![vec![0, 1], vec![1, 0]]);
        let mut ir = InternedRelation::from_relation(&r);
        let inputs = AttrSet::from_indices(&[0]);
        assert_eq!(ir.find_group_row(&inputs, &[0, 9]), Some(0));
        assert_eq!(ir.find_group_row(&inputs, &[1, 9]), Some(1));
        ir.append_rows(&[Tuple::new(vec![1, 1])]).unwrap();
        // Existing group keeps its original representative.
        assert_eq!(ir.find_group_row(&inputs, &[1, 0]), Some(1));
        // Epoch queries answer only for cached groupings.
        assert_eq!(ir.group_new_group_epoch(&inputs), Some(0));
        assert_eq!(ir.group_new_group_epoch(&AttrSet::from_indices(&[1])), None);
    }

    #[test]
    fn wide_domain_falls_back_to_interner() {
        // Domain sizes big enough that three attributes overflow u64
        // mixed-radix codes.
        let schema = Schema::new(
            ["x", "y", "z"]
                .iter()
                .map(|n| AttrDef {
                    name: (*n).to_string(),
                    domain: crate::domain::Domain::new(u32::MAX),
                })
                .collect(),
        );
        let r = Relation::from_values(
            schema,
            vec![
                vec![4_000_000_000, 1, 2],
                vec![4_000_000_000, 1, 3],
                vec![5, 1, 2],
            ],
        )
        .unwrap();
        let ir = InternedRelation::from_relation(&r);
        let key = AttrSet::from_indices(&[0]);
        let probe = AttrSet::from_indices(&[1, 2]);
        assert_eq!(
            ir.group_index(&AttrSet::from_indices(&[0, 1, 2])).n_groups,
            3
        );
        assert_eq!(ir.min_group_distinct(&key, &probe), 1);
        assert_eq!(
            ir.group_count_distinct(&key, &probe),
            ops::reference::group_count_distinct(&r, &key, &probe)
        );
    }
}
