//! The interned columnar relation kernel.
//!
//! Every algorithm in the paper bottoms out in three relational
//! operators over a module relation `R`: projection, natural join, and
//! grouped distinct counting (the Lemma-4 safety condition). The seed
//! implementation evaluated them row-at-a-time over heap-allocated
//! [`Tuple`] rows with `HashMap<Tuple, _>` grouping, so every
//! `is_safe(V, Γ)` probe re-hashed full sub-tuples. This module replaces
//! that hot path:
//!
//! * [`InternedRelation`] stores the relation **columnar**
//!   (`cols[attr][row]`) and maps, per attribute set `S`, each row's
//!   projected sub-tuple `π_S(t)` to a **dense `u32` group id**. The
//!   per-set [`GroupIndex`] is computed once and memoized (keyed by the
//!   set's bitmask word for schemas of ≤ 64 attributes, by [`AttrSet`]
//!   beyond that).
//! * [`InternedRelation::min_group_distinct`] — the entire Lemma-4 inner
//!   loop — walks two cached id columns through a reusable scratch
//!   buffer: **zero heap allocation per probe** once the group indexes
//!   are warm.
//! * [`ValueInterner`] is the generic sub-tuple → dense-id map used by
//!   the interned natural join (provenance assembly, §4) and by group
//!   computation when mixed-radix codes would overflow `u64`.
//!
//! Sub-tuple ids are assigned in ascending code order, so for the
//! mixed-radix path group ids sort exactly like the canonical [`Tuple`]
//! order — representatives materialize already-sorted relations.

use crate::attrset::AttrSet;
use crate::domain::Value;
use crate::relation::Relation;
use crate::schema::{AttrDef, AttrId, Schema};
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Interns value slices (projected sub-tuples) as dense `u32` ids.
///
/// Ids are assigned in first-seen order; [`resolve`](Self::resolve)
/// recovers the slice. Lookups with [`get`](Self::get) borrow the probe
/// buffer — no allocation on the probe path.
#[derive(Clone, Debug, Default)]
pub struct ValueInterner {
    map: HashMap<Box<[Value]>, u32>,
    rev: Vec<Box<[Value]>>,
}

impl ValueInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `key`, inserting it if new.
    pub fn intern(&mut self, key: &[Value]) -> u32 {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = u32::try_from(self.rev.len()).expect("more than u32::MAX distinct sub-tuples");
        let boxed: Box<[Value]> = key.into();
        self.rev.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// The id of `key`, if already interned (no allocation).
    #[must_use]
    pub fn get(&self, key: &[Value]) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The slice behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this interner.
    #[must_use]
    pub fn resolve(&self, id: u32) -> &[Value] {
        &self.rev[id as usize]
    }

    /// Number of distinct interned sub-tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rev.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rev.is_empty()
    }
}

/// Dense grouping of a relation's rows by one attribute set.
#[derive(Clone, Debug)]
pub struct GroupIndex {
    /// `row_group[row]` = the row's dense group id (`0..n_groups`).
    pub row_group: Vec<u32>,
    /// Number of distinct projected sub-tuples.
    pub n_groups: u32,
    /// `representative[group]` = index of the first row of the group
    /// (in ascending sub-tuple order for the mixed-radix path).
    pub representative: Vec<u32>,
}

/// A columnar, interning view of a [`Relation`] — the kernel every
/// safety probe runs on.
///
/// Construction is `O(attrs × rows)`; each distinct attribute set pays
/// one `O(rows log rows)` grouping pass, after which probes touching it
/// are allocation-free (cache lookups borrow their keys, the pair
/// scratch buffer is reused under a lock).
pub struct InternedRelation {
    schema: Schema,
    n_rows: usize,
    cols: Vec<Vec<Value>>,
    /// Group cache for schemas of ≤ 64 attributes, keyed by bitmask word.
    word_groups: RwLock<HashMap<u64, Arc<GroupIndex>>>,
    /// Group cache for wider schemas.
    wide_groups: RwLock<HashMap<AttrSet, Arc<GroupIndex>>>,
    /// Reusable `(key_gid, probe_gid)` code buffer.
    scratch: Mutex<Vec<u64>>,
}

impl Clone for InternedRelation {
    fn clone(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            n_rows: self.n_rows,
            cols: self.cols.clone(),
            word_groups: RwLock::new(self.word_groups.read().expect("lock").clone()),
            wide_groups: RwLock::new(self.wide_groups.read().expect("lock").clone()),
            scratch: Mutex::new(Vec::new()),
        }
    }
}

impl std::fmt::Debug for InternedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "InternedRelation({:?}, {} rows, {} cached groupings)",
            self.schema,
            self.n_rows,
            self.word_groups.read().expect("lock").len()
                + self.wide_groups.read().expect("lock").len()
        )
    }
}

impl InternedRelation {
    /// Builds the columnar kernel view of `r`.
    #[must_use]
    pub fn from_relation(r: &Relation) -> Self {
        let schema = r.schema().clone();
        let n_rows = r.len();
        let n_attrs = schema.len();
        let mut cols: Vec<Vec<Value>> = (0..n_attrs).map(|_| Vec::with_capacity(n_rows)).collect();
        for t in r.rows() {
            for (col, &v) in cols.iter_mut().zip(t.values()) {
                col.push(v);
            }
        }
        Self {
            schema,
            n_rows,
            cols,
            word_groups: RwLock::new(HashMap::new()),
            wide_groups: RwLock::new(HashMap::new()),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The underlying schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Value of attribute `a` in row `row` (columnar access).
    #[must_use]
    pub fn value(&self, row: usize, a: AttrId) -> Value {
        self.cols[a.index()][row]
    }

    /// Whether the schema fits the bitmask-word fast path.
    #[must_use]
    pub fn fits_word(&self) -> bool {
        self.schema.len() <= 64
    }

    fn mask(&self) -> u64 {
        if self.schema.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.schema.len()) - 1
        }
    }

    /// Computes the dense grouping for the attributes in `attrs`
    /// (ascending attribute indices).
    fn compute_group(&self, attrs: &[usize]) -> GroupIndex {
        let n = self.n_rows;
        if n == 0 {
            return GroupIndex {
                row_group: Vec::new(),
                n_groups: 0,
                representative: Vec::new(),
            };
        }
        // Mixed-radix fast path: one u64 code per row when the projected
        // domain product fits.
        let mut sizes: Vec<u64> = Vec::with_capacity(attrs.len());
        let mut product: u128 = 1;
        for &a in attrs {
            let s = u64::from(self.schema.attr(AttrId(a as u32)).domain.size());
            product = product.saturating_mul(u128::from(s));
            sizes.push(s);
        }
        let codes: Vec<u64> = if product <= u128::from(u64::MAX) {
            (0..n)
                .map(|row| {
                    let mut c: u64 = 0;
                    for (&a, &s) in attrs.iter().zip(sizes.iter()) {
                        c = c * s + u64::from(self.cols[a][row]);
                    }
                    c
                })
                .collect()
        } else {
            // Wide-domain fallback: intern the materialized sub-tuples.
            let mut interner = ValueInterner::new();
            let mut buf: Vec<Value> = Vec::with_capacity(attrs.len());
            (0..n)
                .map(|row| {
                    buf.clear();
                    buf.extend(attrs.iter().map(|&a| self.cols[a][row]));
                    u64::from(interner.intern(&buf))
                })
                .collect()
        };
        // Densify: group id = rank of the row's code.
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let row_group: Vec<u32> = codes
            .iter()
            .map(|c| sorted.binary_search(c).expect("own code") as u32)
            .collect();
        let mut representative = vec![u32::MAX; sorted.len()];
        for (row, &g) in row_group.iter().enumerate() {
            let slot = &mut representative[g as usize];
            if *slot == u32::MAX {
                *slot = row as u32;
            }
        }
        GroupIndex {
            row_group,
            n_groups: sorted.len() as u32,
            representative,
        }
    }

    /// The (memoized) group index for the attribute set encoded as a
    /// bitmask word. Requires a schema of ≤ 64 attributes.
    ///
    /// # Panics
    /// Panics if the schema has more than 64 attributes.
    #[must_use]
    pub fn group_index_word(&self, word: u64) -> Arc<GroupIndex> {
        assert!(self.fits_word(), "schema too wide for the word fast path");
        let word = word & self.mask();
        if let Some(g) = self.word_groups.read().expect("lock").get(&word) {
            return Arc::clone(g);
        }
        let attrs: Vec<usize> = (0..self.schema.len())
            .filter(|&i| word & (1u64 << i) != 0)
            .collect();
        let g = Arc::new(self.compute_group(&attrs));
        self.word_groups
            .write()
            .expect("lock")
            .entry(word)
            .or_insert_with(|| Arc::clone(&g));
        g
    }

    /// The (memoized) group index for an [`AttrSet`]. Dispatches to the
    /// word cache when the schema fits 64 attributes.
    #[must_use]
    pub fn group_index(&self, set: &AttrSet) -> Arc<GroupIndex> {
        if self.fits_word() {
            if let Some(w) = set.as_word() {
                return self.group_index_word(w);
            }
            // The set mentions ids ≥ 64 that cannot be schema attributes;
            // drop them and use the word path.
            let w = set
                .iter()
                .filter(|a| a.index() < self.schema.len())
                .fold(0u64, |acc, a| acc | (1u64 << a.index()));
            return self.group_index_word(w);
        }
        if let Some(g) = self.wide_groups.read().expect("lock").get(set) {
            return Arc::clone(g);
        }
        let attrs: Vec<usize> = set
            .iter()
            .map(AttrId::index)
            .filter(|&i| i < self.schema.len())
            .collect();
        let g = Arc::new(self.compute_group(&attrs));
        self.wide_groups
            .write()
            .expect("lock")
            .entry(set.clone())
            .or_insert_with(|| Arc::clone(&g));
        g
    }

    /// Lemma-4 inner loop: over the `key` groups, the **minimum** number
    /// of distinct `probe` sub-tuples, or `usize::MAX` on an empty
    /// relation.
    ///
    /// Allocation-free once both group indexes are cached: the pair
    /// codes go through a reusable scratch buffer. This form shares one
    /// mutex-guarded scratch across all callers; concurrent sweeps
    /// should use [`min_group_distinct_with`](Self::min_group_distinct_with)
    /// / [`min_group_distinct_words_with`](Self::min_group_distinct_words_with)
    /// with a per-thread buffer instead, otherwise every probe
    /// serializes on the scratch lock.
    #[must_use]
    pub fn min_group_distinct(&self, key: &AttrSet, probe: &AttrSet) -> usize {
        let kg = self.group_index(key);
        let pg = self.group_index(probe);
        self.min_group_distinct_indexed(&kg, &pg)
    }

    /// Word-keyed variant of [`min_group_distinct`](Self::min_group_distinct)
    /// for schemas of ≤ 64 attributes.
    #[must_use]
    pub fn min_group_distinct_words(&self, key: u64, probe: u64) -> usize {
        let kg = self.group_index_word(key);
        let pg = self.group_index_word(probe);
        self.min_group_distinct_indexed(&kg, &pg)
    }

    /// [`min_group_distinct`](Self::min_group_distinct) through a
    /// caller-owned scratch buffer. Group-index caches are still shared
    /// (read-mostly `RwLock`), but the per-probe pair-code buffer is the
    /// caller's — the form the parallel lattice sweep uses, one buffer
    /// per worker shard.
    #[must_use]
    pub fn min_group_distinct_with(
        &self,
        key: &AttrSet,
        probe: &AttrSet,
        scratch: &mut Vec<u64>,
    ) -> usize {
        let kg = self.group_index(key);
        let pg = self.group_index(probe);
        min_group_distinct_in(&kg, &pg, self.n_rows, scratch)
    }

    /// Word-keyed [`min_group_distinct_with`](Self::min_group_distinct_with)
    /// for schemas of ≤ 64 attributes.
    #[must_use]
    pub fn min_group_distinct_words_with(
        &self,
        key: u64,
        probe: u64,
        scratch: &mut Vec<u64>,
    ) -> usize {
        let kg = self.group_index_word(key);
        let pg = self.group_index_word(probe);
        min_group_distinct_in(&kg, &pg, self.n_rows, scratch)
    }

    fn min_group_distinct_indexed(&self, kg: &GroupIndex, pg: &GroupIndex) -> usize {
        let mut scratch = self.scratch.lock().expect("lock");
        min_group_distinct_in(kg, pg, self.n_rows, &mut scratch)
    }

    /// Grouped distinct counting with materialized keys — the
    /// compatibility form of the Lemma-4 condition
    /// (`π_key`-group → number of distinct `π_probe` values).
    #[must_use]
    pub fn group_count_distinct(&self, key: &AttrSet, probe: &AttrSet) -> HashMap<Tuple, usize> {
        let kg = self.group_index(key);
        let pg = self.group_index(probe);
        let pn = u64::from(pg.n_groups);
        let mut counts: HashMap<Tuple, usize> = HashMap::with_capacity(kg.n_groups as usize);
        if self.n_rows == 0 {
            return counts;
        }
        let mut scratch = self.scratch.lock().expect("lock");
        scratch.clear();
        scratch.extend(
            kg.row_group
                .iter()
                .zip(pg.row_group.iter())
                .map(|(&k, &p)| u64::from(k) * pn + u64::from(p)),
        );
        scratch.sort_unstable();
        scratch.dedup();
        let key_attrs: Vec<AttrId> = key
            .iter()
            .filter(|a| a.index() < self.schema.len())
            .collect();
        let mut i = 0usize;
        while i < scratch.len() {
            let g = scratch[i] / pn;
            let mut j = i;
            while j < scratch.len() && scratch[j] / pn == g {
                j += 1;
            }
            let row = kg.representative[g as usize] as usize;
            let key_tuple = Tuple::new(key_attrs.iter().map(|&a| self.value(row, a)).collect());
            counts.insert(key_tuple, j - i);
            i = j;
        }
        counts
    }

    /// Projection `π_set` materialized through the group index: one row
    /// per distinct sub-tuple, gathered from group representatives.
    #[must_use]
    pub fn project(&self, set: &AttrSet) -> Relation {
        let attrs: Vec<AttrId> = set
            .iter()
            .filter(|a| a.index() < self.schema.len())
            .collect();
        let schema = Schema::new(
            attrs
                .iter()
                .map(|&a| self.schema.attr(a).clone())
                .collect::<Vec<AttrDef>>(),
        );
        let g = self.group_index(set);
        let rows: Vec<Tuple> = g
            .representative
            .iter()
            .map(|&row| Tuple::new(attrs.iter().map(|&a| self.value(row as usize, a)).collect()))
            .collect();
        Relation::from_rows(schema, rows).expect("projection preserves validity")
    }

    /// Number of cached group indexes (diagnostics / tests).
    #[must_use]
    pub fn cached_groupings(&self) -> usize {
        self.word_groups.read().expect("lock").len() + self.wide_groups.read().expect("lock").len()
    }
}

/// The Lemma-4 pair-code walk over two cached group-id columns, writing
/// through an arbitrary scratch buffer (shared mutex-guarded or
/// per-worker).
fn min_group_distinct_in(
    kg: &GroupIndex,
    pg: &GroupIndex,
    n_rows: usize,
    scratch: &mut Vec<u64>,
) -> usize {
    if n_rows == 0 {
        return usize::MAX;
    }
    let pn = u64::from(pg.n_groups);
    scratch.clear();
    scratch.extend(
        kg.row_group
            .iter()
            .zip(pg.row_group.iter())
            .map(|(&k, &p)| u64::from(k) * pn + u64::from(p)),
    );
    scratch.sort_unstable();
    scratch.dedup();
    let mut min = usize::MAX;
    let mut cur_key = scratch[0] / pn;
    let mut count = 0usize;
    for &code in scratch.iter() {
        let k = code / pn;
        if k == cur_key {
            count += 1;
        } else {
            min = min.min(count);
            cur_key = k;
            count = 1;
        }
    }
    min.min(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn rel(names: &[&str], rows: Vec<Vec<u32>>) -> Relation {
        Relation::from_values(Schema::booleans(names), rows).unwrap()
    }

    #[test]
    fn interner_roundtrip() {
        let mut it = ValueInterner::new();
        assert!(it.is_empty());
        let a = it.intern(&[1, 2, 3]);
        let b = it.intern(&[0]);
        assert_eq!(it.intern(&[1, 2, 3]), a);
        assert_ne!(a, b);
        assert_eq!(it.resolve(a), &[1, 2, 3]);
        assert_eq!(it.get(&[0]), Some(b));
        assert_eq!(it.get(&[9]), None);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn group_index_matches_distinct_subtuples() {
        let r = rel(
            &["a", "b", "c"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0], vec![1, 1, 1]],
        );
        let ir = InternedRelation::from_relation(&r);
        let g = ir.group_index(&AttrSet::from_indices(&[0]));
        assert_eq!(g.n_groups, 2);
        assert_eq!(g.row_group, vec![0, 0, 1, 1]);
        // Representatives are the first rows of each group.
        assert_eq!(g.representative, vec![0, 2]);
        // Full-set grouping: every row its own group.
        let g = ir.group_index(&AttrSet::from_indices(&[0, 1, 2]));
        assert_eq!(g.n_groups, 4);
        // Empty set: one group holding everything.
        let g = ir.group_index(&AttrSet::new());
        assert_eq!(g.n_groups, 1);
    }

    #[test]
    fn group_cache_is_hit() {
        let r = rel(&["a", "b"], vec![vec![0, 1], vec![1, 0]]);
        let ir = InternedRelation::from_relation(&r);
        let s = AttrSet::from_indices(&[1]);
        let g1 = ir.group_index(&s);
        let g2 = ir.group_index(&s);
        assert!(Arc::ptr_eq(&g1, &g2));
        assert_eq!(ir.cached_groupings(), 1);
    }

    #[test]
    fn min_group_distinct_matches_reference() {
        let r = rel(
            &["i", "o1", "o2"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 1, 0], vec![1, 1, 1]],
        );
        let ir = InternedRelation::from_relation(&r);
        let key = AttrSet::from_indices(&[0]);
        let probe = AttrSet::from_indices(&[1, 2]);
        assert_eq!(ir.min_group_distinct(&key, &probe), 2);
        // Caller-owned scratch variants agree with the shared-scratch path.
        let mut scratch = Vec::new();
        assert_eq!(ir.min_group_distinct_with(&key, &probe, &mut scratch), 2);
        assert_eq!(
            ir.min_group_distinct_words_with(0b001, 0b110, &mut scratch),
            2
        );
        let counts = ir.group_count_distinct(&key, &probe);
        assert_eq!(
            counts,
            ops::reference::group_count_distinct(&r, &key, &probe)
        );
    }

    #[test]
    fn empty_relation_probes() {
        let r = Relation::empty(Schema::booleans(&["a", "b"]));
        let ir = InternedRelation::from_relation(&r);
        assert_eq!(
            ir.min_group_distinct(&AttrSet::from_indices(&[0]), &AttrSet::from_indices(&[1])),
            usize::MAX
        );
        assert!(ir
            .group_count_distinct(&AttrSet::from_indices(&[0]), &AttrSet::from_indices(&[1]))
            .is_empty());
        assert!(ir.project(&AttrSet::from_indices(&[0])).is_empty());
    }

    #[test]
    fn projection_matches_reference() {
        let r = rel(
            &["a", "b", "c"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0], vec![0, 0, 0]],
        );
        let ir = InternedRelation::from_relation(&r);
        for ids in [vec![0u32], vec![0, 2], vec![1, 2], vec![], vec![0, 1, 2]] {
            let set = AttrSet::from_indices(&ids);
            assert_eq!(
                ir.project(&set),
                ops::reference::project(&r, &set),
                "{set:?}"
            );
        }
    }

    #[test]
    fn out_of_schema_ids_are_ignored() {
        let r = rel(&["a", "b"], vec![vec![0, 1], vec![1, 1]]);
        let ir = InternedRelation::from_relation(&r);
        // Id 70 forces the multi-word AttrSet representation.
        let mut set = AttrSet::from_indices(&[0]);
        set.insert(AttrId(70));
        let g = ir.group_index(&set);
        assert_eq!(g.n_groups, 2, "bit 70 is outside the schema and dropped");
    }

    #[test]
    fn wide_domain_falls_back_to_interner() {
        // Domain sizes big enough that three attributes overflow u64
        // mixed-radix codes.
        let schema = Schema::new(
            ["x", "y", "z"]
                .iter()
                .map(|n| AttrDef {
                    name: (*n).to_string(),
                    domain: crate::domain::Domain::new(u32::MAX),
                })
                .collect(),
        );
        let r = Relation::from_values(
            schema,
            vec![
                vec![4_000_000_000, 1, 2],
                vec![4_000_000_000, 1, 3],
                vec![5, 1, 2],
            ],
        )
        .unwrap();
        let ir = InternedRelation::from_relation(&r);
        let key = AttrSet::from_indices(&[0]);
        let probe = AttrSet::from_indices(&[1, 2]);
        assert_eq!(
            ir.group_index(&AttrSet::from_indices(&[0, 1, 2])).n_groups,
            3
        );
        assert_eq!(ir.min_group_distinct(&key, &probe), 1);
        assert_eq!(
            ir.group_count_distinct(&key, &probe),
            ops::reference::group_count_distinct(&r, &key, &probe)
        );
    }
}
