//! Relations: schema + canonically ordered, duplicate-free rows.
//!
//! ## Storage: sorted runs with a lazily merged canonical view
//!
//! Internally a [`Relation`] is a stack of sorted, duplicate-free,
//! pairwise-disjoint **runs** (the logarithmic method): every
//! [`insert_batch`](Relation::insert_batch) becomes one new run, and
//! runs of comparable size are merged eagerly so at most `O(log N)`
//! runs exist and every row participates in `O(log N)` merges over its
//! lifetime — streaming `N` single-row batches costs `O(N log N)`
//! total instead of the `O(N²)` a single sorted vector pays (an `O(N)`
//! merge per batch). Point membership ([`contains`](Relation::contains))
//! binary-searches each run. The flat canonical row slice
//! ([`rows`](Relation::rows)) is materialized lazily on first read and
//! invalidated by the next mutation, so construction-then-read
//! workloads see exactly the old single-vector behavior.

use crate::attrset::AttrSet;
use crate::error::RelationError;
use crate::fd::Fd;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// A finite relation over a [`Schema`].
///
/// Rows are kept sorted and deduplicated (as a set of sorted runs, see
/// the module docs) so two relations over the same schema are equal as
/// Rust values iff they are equal as sets — the property the
/// possible-worlds machinery in `sv-core` relies on
/// (`π_V(R') = π_V(R)` comparisons, Definition 1/4 of the paper).
pub struct Relation {
    schema: Schema,
    /// Sorted, duplicate-free, pairwise-disjoint runs; sizes decrease
    /// (amortized geometrically) from the bottom of the stack to the
    /// top.
    runs: Vec<Vec<Tuple>>,
    /// Total row count across runs.
    len: usize,
    /// Lazily materialized canonical (fully merged) view; only
    /// consulted when more than one run exists, and reset by every
    /// mutation.
    merged: OnceLock<Vec<Tuple>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            runs: self.runs.clone(),
            len: self.len,
            merged: OnceLock::new(),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.len == other.len && self.rows() == other.rows()
    }
}

impl Eq for Relation {}

impl Relation {
    /// Creates an empty relation over `schema`.
    #[must_use]
    pub fn empty(schema: Schema) -> Self {
        Self {
            schema,
            runs: Vec::new(),
            len: 0,
            merged: OnceLock::new(),
        }
    }

    /// Builds a relation from rows, validating arity and domains, then
    /// sorting and deduplicating.
    ///
    /// # Errors
    /// [`RelationError::ArityMismatch`] or
    /// [`RelationError::ValueOutOfDomain`] on invalid rows.
    pub fn from_rows(schema: Schema, mut rows: Vec<Tuple>) -> Result<Self, RelationError> {
        for t in &rows {
            Self::validate_row(&schema, t)?;
        }
        rows.sort_unstable();
        rows.dedup();
        let len = rows.len();
        let runs = if rows.is_empty() {
            Vec::new()
        } else {
            vec![rows]
        };
        Ok(Self {
            schema,
            runs,
            len,
            merged: OnceLock::new(),
        })
    }

    /// Builds a relation from raw value vectors (construction convenience).
    ///
    /// # Errors
    /// Same as [`from_rows`](Self::from_rows).
    pub fn from_values(schema: Schema, rows: Vec<Vec<u32>>) -> Result<Self, RelationError> {
        Self::from_rows(schema, rows.into_iter().map(Tuple::new).collect())
    }

    fn validate_row(schema: &Schema, t: &Tuple) -> Result<(), RelationError> {
        if t.arity() != schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: schema.len(),
                got: t.arity(),
            });
        }
        for (a, def) in schema.iter() {
            let v = t.get(a);
            if !def.domain.contains(v) {
                return Err(RelationError::ValueOutOfDomain {
                    attr: def.name.clone(),
                    value: v,
                    domain_size: def.domain.size(),
                });
            }
        }
        Ok(())
    }

    /// Validates `t` against the schema (arity and domains) without
    /// inserting it — the precheck batch writers run before mutating
    /// multiple layers atomically.
    ///
    /// # Errors
    /// Same as [`from_rows`](Self::from_rows).
    pub fn validate(&self, t: &Tuple) -> Result<(), RelationError> {
        Self::validate_row(&self.schema, t)
    }

    /// Pushes a sorted, deduplicated run disjoint from every existing
    /// run, then restores the geometric size invariant by merging from
    /// the top of the stack — each merge combines two disjoint sorted
    /// runs in one linear pass.
    fn push_run(&mut self, run: Vec<Tuple>) {
        debug_assert!(run.windows(2).all(|w| w[0] < w[1]), "run sorted + deduped");
        self.len += run.len();
        self.merged = OnceLock::new();
        self.runs.push(run);
        while self.runs.len() >= 2 {
            let n = self.runs.len();
            if self.runs[n - 2].len() > 2 * self.runs[n - 1].len() {
                break;
            }
            let top = self.runs.pop().expect("len >= 2");
            let below = self.runs.pop().expect("len >= 2");
            self.runs.push(merge_disjoint(below, top));
        }
    }

    /// Inserts a row (validated), keeping canonical set semantics.
    ///
    /// # Errors
    /// Same as [`from_rows`](Self::from_rows).
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelationError> {
        Self::validate_row(&self.schema, &t)?;
        if self.contains(&t) {
            return Ok(false);
        }
        self.push_run(vec![t]);
        Ok(true)
    }

    /// Inserts a batch of rows in one pass: validates everything first
    /// (on error the relation is unchanged), drops rows already present
    /// or repeated within the batch, and lands the survivors as one new
    /// sorted run — `O(batch · log² N)` membership filtering plus
    /// `O(batch log batch)` sorting, with run merges amortizing to
    /// `O(log N)` per row over the relation's lifetime. This replaces
    /// the former single-vector `O(rows + batch)` full merge per batch,
    /// which made `N` row-at-a-time appends quadratic.
    ///
    /// Returns the number of genuinely new rows.
    ///
    /// # Errors
    /// Same as [`from_rows`](Self::from_rows).
    pub fn insert_batch(&mut self, batch: &[Tuple]) -> Result<usize, RelationError> {
        for t in batch {
            Self::validate_row(&self.schema, t)?;
        }
        let mut fresh: Vec<Tuple> = batch
            .iter()
            .filter(|t| !self.contains(t))
            .cloned()
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        if fresh.is_empty() {
            return Ok(0);
        }
        let added = fresh.len();
        self.push_run(fresh);
        Ok(added)
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (`N` in the paper's complexity bounds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rows in canonical (sorted) order. With a single run this is a
    /// free borrow; with several the merged view is materialized once
    /// and cached until the next mutation.
    #[must_use]
    pub fn rows(&self) -> &[Tuple] {
        match self.runs.len() {
            0 => &[],
            1 => &self.runs[0],
            _ => self.merged.get_or_init(|| {
                let mut all: Vec<Tuple> = Vec::with_capacity(self.len);
                for run in &self.runs {
                    all.extend_from_slice(run);
                }
                // Runs are pairwise disjoint: sorting alone restores
                // the canonical duplicate-free order.
                all.sort_unstable();
                all
            }),
        }
    }

    /// Membership test (binary search per run, `O(log² N)`).
    #[must_use]
    pub fn contains(&self, t: &Tuple) -> bool {
        self.runs.iter().any(|run| run.binary_search(t).is_ok())
    }

    /// Checks whether the relation satisfies `fd` (`I -> O`): no two rows
    /// agree on `I` but differ on `O`.
    #[must_use]
    pub fn satisfies(&self, fd: &Fd) -> bool {
        let mut seen: HashMap<Tuple, Tuple> = HashMap::with_capacity(self.len);
        for t in self.runs.iter().flatten() {
            let key = t.project(fd.lhs());
            let val = t.project(fd.rhs());
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != val {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(val);
                }
            }
        }
        true
    }

    /// Checks all FDs, returning the first violated one as an error.
    ///
    /// # Errors
    /// [`RelationError::FdViolation`] naming the violated dependency.
    pub fn check_fds(&self, fds: &[Fd]) -> Result<(), RelationError> {
        for fd in fds {
            if !self.satisfies(fd) {
                return Err(RelationError::FdViolation {
                    fd: fd.display(&self.schema),
                });
            }
        }
        Ok(())
    }

    /// Groups rows by their projection onto `key`, returning, per group,
    /// the key sub-tuple and the row indices (into
    /// [`rows`](Self::rows)) in the group.
    #[must_use]
    pub fn group_by(&self, key: &AttrSet) -> HashMap<Tuple, Vec<usize>> {
        let mut groups: HashMap<Tuple, Vec<usize>> = HashMap::new();
        for (i, t) in self.rows().iter().enumerate() {
            groups.entry(t.project(key)).or_default().push(i);
        }
        groups
    }
}

/// Merges two sorted, duplicate-free, disjoint runs into one.
fn merge_disjoint(a: Vec<Tuple>, b: Vec<Tuple>) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut a, mut b) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                // No equal pair exists: runs are disjoint.
                if x < y {
                    out.push(a.next().expect("peeked"));
                } else {
                    out.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(a.next().expect("peeked")),
            (None, Some(_)) => out.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation {:?} ({} rows)", self.schema, self.len)?;
        for t in self.rows() {
            writeln!(f, "  {t:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bool_schema3() -> Schema {
        Schema::booleans(&["a", "b", "c"])
    }

    #[test]
    fn dedup_and_sort_on_construction() {
        let r = Relation::from_values(
            bool_schema3(),
            vec![vec![1, 1, 0], vec![0, 0, 1], vec![1, 1, 0]],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0].values(), &[0, 0, 1]);
    }

    #[test]
    fn set_equality_ignores_insertion_order() {
        let r1 = Relation::from_values(bool_schema3(), vec![vec![1, 0, 0], vec![0, 1, 0]]).unwrap();
        let r2 = Relation::from_values(bool_schema3(), vec![vec![0, 1, 0], vec![1, 0, 0]]).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn arity_and_domain_validation() {
        let err = Relation::from_values(bool_schema3(), vec![vec![1, 0]]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        let err = Relation::from_values(bool_schema3(), vec![vec![1, 0, 7]]).unwrap_err();
        assert!(matches!(err, RelationError::ValueOutOfDomain { .. }));
    }

    #[test]
    fn insert_maintains_canonical_order() {
        let mut r = Relation::empty(bool_schema3());
        assert!(r.insert(Tuple::new(vec![1, 1, 1])).unwrap());
        assert!(r.insert(Tuple::new(vec![0, 0, 0])).unwrap());
        assert!(!r.insert(Tuple::new(vec![1, 1, 1])).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::new(vec![0, 0, 0])));
        assert!(!r.contains(&Tuple::new(vec![0, 1, 0])));
    }

    #[test]
    fn fd_satisfaction() {
        // a -> b holds; a -> c fails.
        let r = Relation::from_values(
            bool_schema3(),
            vec![vec![0, 1, 0], vec![0, 1, 1], vec![1, 0, 0]],
        )
        .unwrap();
        let a_to_b = Fd::new(AttrSet::from_indices(&[0]), AttrSet::from_indices(&[1]));
        let a_to_c = Fd::new(AttrSet::from_indices(&[0]), AttrSet::from_indices(&[2]));
        assert!(r.satisfies(&a_to_b));
        assert!(!r.satisfies(&a_to_c));
        assert!(r.check_fds(std::slice::from_ref(&a_to_b)).is_ok());
        let err = r.check_fds(&[a_to_b, a_to_c]).unwrap_err();
        assert!(matches!(err, RelationError::FdViolation { .. }));
    }

    #[test]
    fn group_by_key() {
        let r = Relation::from_values(
            bool_schema3(),
            vec![vec![0, 0, 0], vec![0, 1, 1], vec![1, 0, 1]],
        )
        .unwrap();
        let groups = r.group_by(&AttrSet::from_indices(&[0]));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&Tuple::new(vec![0])].len(), 2);
        assert_eq!(groups[&Tuple::new(vec![1])].len(), 1);
    }

    #[test]
    fn empty_relation_properties() {
        let r = Relation::empty(bool_schema3());
        assert!(r.is_empty());
        assert!(r.satisfies(&Fd::new(
            AttrSet::from_indices(&[0]),
            AttrSet::from_indices(&[1, 2])
        )));
    }

    #[test]
    fn sorted_runs_match_single_shot_construction() {
        // Streaming rows one at a time through the run stack must be
        // indistinguishable (rows(), len, contains, equality) from
        // building the relation in one shot.
        let schema = Schema::booleans(&["a", "b", "c", "d"]);
        let all: Vec<Vec<u32>> = (0..16u32)
            .map(|x| vec![x >> 3 & 1, x >> 2 & 1, x >> 1 & 1, x & 1])
            .collect();
        let mut streamed = Relation::empty(schema.clone());
        for (i, row) in all.iter().enumerate() {
            // Interleave reads to exercise merged-view invalidation.
            if i % 3 == 0 {
                let _ = streamed.rows();
            }
            assert!(streamed.insert(Tuple::new(row.clone())).unwrap());
            // Re-inserting an old row is always a no-op.
            assert!(!streamed.insert(Tuple::new(all[i / 2].clone())).unwrap());
        }
        let oneshot = Relation::from_values(schema, all).unwrap();
        assert_eq!(streamed.len(), 16);
        assert_eq!(streamed.rows(), oneshot.rows());
        assert_eq!(streamed, oneshot);
    }

    #[test]
    fn batch_insert_lands_as_runs() {
        let schema = Schema::booleans(&["a", "b", "c"]);
        let mut r = Relation::empty(schema.clone());
        assert_eq!(
            r.insert_batch(&[
                Tuple::new(vec![1, 1, 1]),
                Tuple::new(vec![0, 0, 0]),
                Tuple::new(vec![1, 1, 1]), // in-batch duplicate
            ])
            .unwrap(),
            2
        );
        assert_eq!(
            r.insert_batch(&[Tuple::new(vec![0, 0, 0]), Tuple::new(vec![0, 1, 0])])
                .unwrap(),
            1
        );
        assert_eq!(r.len(), 3);
        let rows: Vec<_> = r.rows().iter().map(|t| t.values().to_vec()).collect();
        assert_eq!(rows, vec![vec![0, 0, 0], vec![0, 1, 0], vec![1, 1, 1]]);
        // A failed batch (row 1 out of domain) leaves the relation unchanged.
        let before = r.clone();
        assert!(r
            .insert_batch(&[Tuple::new(vec![1, 0, 0]), Tuple::new(vec![9, 0, 0])])
            .is_err());
        assert_eq!(r, before);
    }
}
