//! Relations: schema + canonically ordered, duplicate-free rows.

use crate::attrset::AttrSet;
use crate::error::RelationError;
use crate::fd::Fd;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::fmt;

/// A finite relation over a [`Schema`].
///
/// Rows are kept sorted and deduplicated so two relations over the same
/// schema are equal as Rust values iff they are equal as sets — the
/// property the possible-worlds machinery in `sv-core` relies on
/// (`π_V(R') = π_V(R)` comparisons, Definition 1/4 of the paper).
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    #[must_use]
    pub fn empty(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Builds a relation from rows, validating arity and domains, then
    /// sorting and deduplicating.
    ///
    /// # Errors
    /// [`RelationError::ArityMismatch`] or
    /// [`RelationError::ValueOutOfDomain`] on invalid rows.
    pub fn from_rows(schema: Schema, rows: Vec<Tuple>) -> Result<Self, RelationError> {
        for t in &rows {
            Self::validate_row(&schema, t)?;
        }
        let mut rel = Self { schema, rows };
        rel.canonicalize();
        Ok(rel)
    }

    /// Builds a relation from raw value vectors (construction convenience).
    ///
    /// # Errors
    /// Same as [`from_rows`](Self::from_rows).
    pub fn from_values(schema: Schema, rows: Vec<Vec<u32>>) -> Result<Self, RelationError> {
        Self::from_rows(schema, rows.into_iter().map(Tuple::new).collect())
    }

    fn validate_row(schema: &Schema, t: &Tuple) -> Result<(), RelationError> {
        if t.arity() != schema.len() {
            return Err(RelationError::ArityMismatch {
                expected: schema.len(),
                got: t.arity(),
            });
        }
        for (a, def) in schema.iter() {
            let v = t.get(a);
            if !def.domain.contains(v) {
                return Err(RelationError::ValueOutOfDomain {
                    attr: def.name.clone(),
                    value: v,
                    domain_size: def.domain.size(),
                });
            }
        }
        Ok(())
    }

    /// Validates `t` against the schema (arity and domains) without
    /// inserting it — the precheck batch writers run before mutating
    /// multiple layers atomically.
    ///
    /// # Errors
    /// Same as [`from_rows`](Self::from_rows).
    pub fn validate(&self, t: &Tuple) -> Result<(), RelationError> {
        Self::validate_row(&self.schema, t)
    }

    fn canonicalize(&mut self) {
        self.rows.sort_unstable();
        self.rows.dedup();
    }

    /// Inserts a row (validated), keeping canonical order.
    ///
    /// # Errors
    /// Same as [`from_rows`](Self::from_rows).
    pub fn insert(&mut self, t: Tuple) -> Result<bool, RelationError> {
        Self::validate_row(&self.schema, &t)?;
        match self.rows.binary_search(&t) {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.rows.insert(pos, t);
                Ok(true)
            }
        }
    }

    /// Inserts a batch of rows in one pass: validates everything first
    /// (on error the relation is unchanged), drops rows already present
    /// or repeated within the batch, and merges the survivors into the
    /// canonical order with a single `O(rows + batch)` sorted merge —
    /// the streaming-append companion of [`insert`](Self::insert), which
    /// pays an `O(rows)` shift per row.
    ///
    /// Returns the number of genuinely new rows.
    ///
    /// # Errors
    /// Same as [`from_rows`](Self::from_rows).
    pub fn insert_batch(&mut self, batch: &[Tuple]) -> Result<usize, RelationError> {
        for t in batch {
            Self::validate_row(&self.schema, t)?;
        }
        let mut fresh: Vec<Tuple> = batch
            .iter()
            .filter(|t| !self.contains(t))
            .cloned()
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        if fresh.is_empty() {
            return Ok(0);
        }
        let added = fresh.len();
        let old = std::mem::take(&mut self.rows);
        self.rows = Vec::with_capacity(old.len() + added);
        let (mut a, mut b) = (old.into_iter().peekable(), fresh.into_iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    // No equal pair exists: `fresh` excludes present rows.
                    if x < y {
                        self.rows.push(a.next().expect("peeked"));
                    } else {
                        self.rows.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => self.rows.push(a.next().expect("peeked")),
                (None, Some(_)) => self.rows.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        Ok(added)
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (`N` in the paper's complexity bounds).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in canonical (sorted) order.
    #[must_use]
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Membership test (binary search).
    #[must_use]
    pub fn contains(&self, t: &Tuple) -> bool {
        self.rows.binary_search(t).is_ok()
    }

    /// Checks whether the relation satisfies `fd` (`I -> O`): no two rows
    /// agree on `I` but differ on `O`.
    #[must_use]
    pub fn satisfies(&self, fd: &Fd) -> bool {
        let mut seen: HashMap<Tuple, Tuple> = HashMap::with_capacity(self.rows.len());
        for t in &self.rows {
            let key = t.project(fd.lhs());
            let val = t.project(fd.rhs());
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != val {
                        return false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(val);
                }
            }
        }
        true
    }

    /// Checks all FDs, returning the first violated one as an error.
    ///
    /// # Errors
    /// [`RelationError::FdViolation`] naming the violated dependency.
    pub fn check_fds(&self, fds: &[Fd]) -> Result<(), RelationError> {
        for fd in fds {
            if !self.satisfies(fd) {
                return Err(RelationError::FdViolation {
                    fd: fd.display(&self.schema),
                });
            }
        }
        Ok(())
    }

    /// Groups rows by their projection onto `key`, returning, per group,
    /// the key sub-tuple and the row indices in the group.
    #[must_use]
    pub fn group_by(&self, key: &AttrSet) -> HashMap<Tuple, Vec<usize>> {
        let mut groups: HashMap<Tuple, Vec<usize>> = HashMap::new();
        for (i, t) in self.rows.iter().enumerate() {
            groups.entry(t.project(key)).or_default().push(i);
        }
        groups
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation {:?} ({} rows)", self.schema, self.rows.len())?;
        for t in &self.rows {
            writeln!(f, "  {t:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bool_schema3() -> Schema {
        Schema::booleans(&["a", "b", "c"])
    }

    #[test]
    fn dedup_and_sort_on_construction() {
        let r = Relation::from_values(
            bool_schema3(),
            vec![vec![1, 1, 0], vec![0, 0, 1], vec![1, 1, 0]],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0].values(), &[0, 0, 1]);
    }

    #[test]
    fn set_equality_ignores_insertion_order() {
        let r1 = Relation::from_values(bool_schema3(), vec![vec![1, 0, 0], vec![0, 1, 0]]).unwrap();
        let r2 = Relation::from_values(bool_schema3(), vec![vec![0, 1, 0], vec![1, 0, 0]]).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn arity_and_domain_validation() {
        let err = Relation::from_values(bool_schema3(), vec![vec![1, 0]]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        let err = Relation::from_values(bool_schema3(), vec![vec![1, 0, 7]]).unwrap_err();
        assert!(matches!(err, RelationError::ValueOutOfDomain { .. }));
    }

    #[test]
    fn insert_maintains_canonical_order() {
        let mut r = Relation::empty(bool_schema3());
        assert!(r.insert(Tuple::new(vec![1, 1, 1])).unwrap());
        assert!(r.insert(Tuple::new(vec![0, 0, 0])).unwrap());
        assert!(!r.insert(Tuple::new(vec![1, 1, 1])).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::new(vec![0, 0, 0])));
        assert!(!r.contains(&Tuple::new(vec![0, 1, 0])));
    }

    #[test]
    fn fd_satisfaction() {
        // a -> b holds; a -> c fails.
        let r = Relation::from_values(
            bool_schema3(),
            vec![vec![0, 1, 0], vec![0, 1, 1], vec![1, 0, 0]],
        )
        .unwrap();
        let a_to_b = Fd::new(AttrSet::from_indices(&[0]), AttrSet::from_indices(&[1]));
        let a_to_c = Fd::new(AttrSet::from_indices(&[0]), AttrSet::from_indices(&[2]));
        assert!(r.satisfies(&a_to_b));
        assert!(!r.satisfies(&a_to_c));
        assert!(r.check_fds(std::slice::from_ref(&a_to_b)).is_ok());
        let err = r.check_fds(&[a_to_b, a_to_c]).unwrap_err();
        assert!(matches!(err, RelationError::FdViolation { .. }));
    }

    #[test]
    fn group_by_key() {
        let r = Relation::from_values(
            bool_schema3(),
            vec![vec![0, 0, 0], vec![0, 1, 1], vec![1, 0, 1]],
        )
        .unwrap();
        let groups = r.group_by(&AttrSet::from_indices(&[0]));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&Tuple::new(vec![0])].len(), 2);
        assert_eq!(groups[&Tuple::new(vec![1])].len(), 1);
    }

    #[test]
    fn empty_relation_properties() {
        let r = Relation::empty(bool_schema3());
        assert!(r.is_empty());
        assert!(r.satisfies(&Fd::new(
            AttrSet::from_indices(&[0]),
            AttrSet::from_indices(&[1, 2])
        )));
    }
}
