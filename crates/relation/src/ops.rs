//! Relational operators: projection, natural join, grouped distinct
//! counting.
//!
//! These three operators are all the paper's machinery needs:
//! * `π_V(R)` builds views (Definition 1) and provenance projections,
//! * `R1 ⋈ … ⋈ Rn` builds the workflow provenance relation (§4),
//! * grouped distinct counting implements the Lemma-4 safety condition.
//!
//! All three run on the interned columnar kernel
//! ([`crate::InternedRelation`]): sub-tuples are mapped to dense `u32`
//! ids once, and the operators walk id columns instead of hashing
//! heap-allocated [`Tuple`]s. The original row-at-a-time
//! implementations are preserved in [`mod@reference`] as the semantic
//! ground truth the property tests compare against — with one
//! deliberate behavioral change on both paths: attribute ids outside
//! the schema are **ignored** by projection/grouping, where the seed
//! panicked on out-of-range indexing.

use crate::attrset::AttrSet;
use crate::error::RelationError;
use crate::interned::{InternedRelation, ValueInterner};
use crate::relation::Relation;
use crate::schema::{AttrDef, AttrId, Schema};
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Projection `π_set(R)`: restricts every row to `set` (attribute-id
/// order) and deduplicates, via a one-shot interned grouping.
///
/// The resulting schema keeps the projected attributes' names and
/// domains. Callers projecting the same relation repeatedly should hold
/// an [`InternedRelation`] and use [`InternedRelation::project`], which
/// memoizes the grouping per attribute set.
#[must_use]
pub fn project(r: &Relation, set: &AttrSet) -> Relation {
    InternedRelation::from_relation(r).project(set)
}

/// Natural join `left ⋈ right` on shared attribute *names*.
///
/// The paper wires workflows by attribute-name identity: "whenever an
/// output of a module `m_i` is fed as input to a module `m_j` the
/// corresponding output and input attributes have the same name" (§2.3).
/// The result schema is `left`'s attributes followed by `right`'s
/// non-shared attributes.
///
/// Join keys are interned to dense ids ([`ValueInterner`]); the right
/// side is bucketed as packed `Vec<u32>` row-index columns and the left
/// side probes with a reused key buffer — no per-row key allocation.
///
/// # Errors
/// [`RelationError::JoinSchemaMismatch`] if a shared attribute has
/// different domains on the two sides.
pub fn natural_join(left: &Relation, right: &Relation) -> Result<Relation, RelationError> {
    let ls = left.schema();
    let rs = right.schema();

    // Shared attributes: (left id, right id); right-only attributes.
    let mut shared: Vec<(AttrId, AttrId)> = Vec::new();
    let mut right_only: Vec<AttrId> = Vec::new();
    for (rid, def) in rs.iter() {
        match ls.by_name(&def.name) {
            Some(lid) => {
                if ls.attr(lid).domain != def.domain {
                    return Err(RelationError::JoinSchemaMismatch {
                        attr: def.name.clone(),
                    });
                }
                shared.push((lid, rid));
            }
            None => right_only.push(rid),
        }
    }

    let mut out_attrs: Vec<AttrDef> = ls.iter().map(|(_, d)| d.clone()).collect();
    out_attrs.extend(right_only.iter().map(|&rid| rs.attr(rid).clone()));
    let out_schema = Schema::new(out_attrs);

    // Intern right-side keys; bucket row indices per key id.
    let mut interner = ValueInterner::new();
    let mut buckets: Vec<Vec<u32>> = Vec::new();
    let mut key_buf: Vec<u32> = Vec::with_capacity(shared.len());
    for (ri, t) in right.rows().iter().enumerate() {
        key_buf.clear();
        key_buf.extend(shared.iter().map(|&(_, rid)| t.get(rid)));
        let id = interner.intern(&key_buf) as usize;
        if id == buckets.len() {
            buckets.push(Vec::new());
        }
        buckets[id].push(ri as u32);
    }

    let mut rows = Vec::new();
    for lt in left.rows() {
        key_buf.clear();
        key_buf.extend(shared.iter().map(|&(lid, _)| lt.get(lid)));
        if let Some(id) = interner.get(&key_buf) {
            for &ri in &buckets[id as usize] {
                let rt = &right.rows()[ri as usize];
                let mut vals: Vec<u32> = lt.values().to_vec();
                vals.extend(right_only.iter().map(|&rid| rt.get(rid)));
                rows.push(Tuple::new(vals));
            }
        }
    }
    Relation::from_rows(out_schema, rows)
}

/// For each distinct value of `key` in `r`, counts the number of distinct
/// projections onto `probe`, via a one-shot interned grouping.
///
/// This is the inner loop of the paper's Algorithm 2 safety check: with
/// `key = I ∩ V` and `probe = O ∩ V`, a visible set `V` is safe for `Γ`
/// iff every count is at least `Γ / ∏_{a ∈ O\V} |Δ_a|` (Lemma 4).
/// Hot-path callers (the safety oracles in `sv-core`) keep a persistent
/// [`InternedRelation`] and use
/// [`InternedRelation::min_group_distinct`], which answers the Lemma-4
/// condition with zero per-probe allocation.
#[must_use]
pub fn group_count_distinct(r: &Relation, key: &AttrSet, probe: &AttrSet) -> HashMap<Tuple, usize> {
    InternedRelation::from_relation(r).group_count_distinct(key, probe)
}

/// Row-at-a-time reference implementations (the seed semantics, plus
/// the ignore-out-of-schema-ids rule noted in the module docs).
///
/// Kept as the executable specification of the interned kernel: the
/// property suites assert `interned ≡ reference` on random relations,
/// and the benchmark baselines measure the kernel speedup against these.
pub mod reference {
    use super::{AttrDef, AttrSet, HashMap, Relation, Schema, Tuple};

    /// Row-at-a-time projection (specification of
    /// [`project`](super::project)).
    #[must_use]
    pub fn project(r: &Relation, set: &AttrSet) -> Relation {
        let schema = Schema::new(
            set.iter()
                .filter(|a| a.index() < r.schema().len())
                .map(|a| r.schema().attr(a).clone())
                .collect::<Vec<AttrDef>>(),
        );
        let keep: AttrSet = set
            .iter()
            .filter(|a| a.index() < r.schema().len())
            .collect();
        let rows = r.rows().iter().map(|t| t.project(&keep)).collect();
        Relation::from_rows(schema, rows).expect("projection preserves validity")
    }

    /// Row-at-a-time grouped distinct counting (specification of
    /// [`group_count_distinct`](super::group_count_distinct)).
    #[must_use]
    pub fn group_count_distinct(
        r: &Relation,
        key: &AttrSet,
        probe: &AttrSet,
    ) -> HashMap<Tuple, usize> {
        let mut groups: HashMap<Tuple, std::collections::HashSet<Tuple>> = HashMap::new();
        for t in r.rows() {
            groups
                .entry(t.project(key))
                .or_default()
                .insert(t.project(probe));
        }
        groups.into_iter().map(|(k, s)| (k, s.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    fn rel(names: &[&str], rows: Vec<Vec<u32>>) -> Relation {
        Relation::from_values(Schema::booleans(names), rows).unwrap()
    }

    #[test]
    fn project_deduplicates() {
        let r = rel(
            &["a", "b"],
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
        );
        let p = project(&r, &AttrSet::from_indices(&[0]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema().attr(AttrId(0)).name, "a");
    }

    #[test]
    fn join_on_shared_attribute() {
        // r1(a,b), r2(b,c): join on b.
        let r1 = rel(&["a", "b"], vec![vec![0, 1], vec![1, 0]]);
        let r2 = rel(&["b", "c"], vec![vec![1, 1], vec![1, 0], vec![0, 0]]);
        let j = natural_join(&r1, &r2).unwrap();
        assert_eq!(j.schema().len(), 3); // a, b, c
        assert_eq!(j.schema().attr(AttrId(2)).name, "c");
        // a=0,b=1 matches two right rows; a=1,b=0 matches one.
        assert_eq!(j.len(), 3);
        assert!(j.contains(&Tuple::new(vec![0, 1, 1])));
        assert!(j.contains(&Tuple::new(vec![0, 1, 0])));
        assert!(j.contains(&Tuple::new(vec![1, 0, 0])));
    }

    #[test]
    fn join_without_shared_attributes_is_cross_product() {
        let r1 = rel(&["a"], vec![vec![0], vec![1]]);
        let r2 = rel(&["b"], vec![vec![0], vec![1]]);
        let j = natural_join(&r1, &r2).unwrap();
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_rejects_domain_mismatch() {
        let s1 = Schema::new(vec![AttrDef {
            name: "x".into(),
            domain: Domain::boolean(),
        }]);
        let s2 = Schema::new(vec![AttrDef {
            name: "x".into(),
            domain: Domain::new(3),
        }]);
        let r1 = Relation::from_values(s1, vec![vec![0]]).unwrap();
        let r2 = Relation::from_values(s2, vec![vec![2]]).unwrap();
        assert!(matches!(
            natural_join(&r1, &r2),
            Err(RelationError::JoinSchemaMismatch { .. })
        ));
    }

    #[test]
    fn join_is_associative_on_chain() {
        // Chain r1(a,b) ⋈ r2(b,c) ⋈ r3(c,d): both association orders agree.
        let r1 = rel(&["a", "b"], vec![vec![0, 0], vec![1, 1]]);
        let r2 = rel(&["b", "c"], vec![vec![0, 1], vec![1, 0]]);
        let r3 = rel(&["c", "d"], vec![vec![1, 1], vec![0, 0]]);
        let left = natural_join(&natural_join(&r1, &r2).unwrap(), &r3).unwrap();
        let right = natural_join(&r1, &natural_join(&r2, &r3).unwrap()).unwrap();
        // Same schema order (a,b,c,d) in both groupings for a chain.
        assert_eq!(left, right);
        assert_eq!(left.len(), 2);
    }

    #[test]
    fn group_count_distinct_counts_probe_values() {
        // Fig 1(d) analogue: group by visible input, count visible outputs.
        let r = rel(
            &["i", "o1", "o2"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 1, 0], vec![1, 1, 1]],
        );
        let counts = group_count_distinct(
            &r,
            &AttrSet::from_indices(&[0]),
            &AttrSet::from_indices(&[1, 2]),
        );
        assert_eq!(counts[&Tuple::new(vec![0])], 2);
        assert_eq!(counts[&Tuple::new(vec![1])], 2);
    }

    #[test]
    fn group_count_distinct_empty_key_groups_everything() {
        let r = rel(&["a", "b"], vec![vec![0, 0], vec![1, 0], vec![1, 1]]);
        let counts = group_count_distinct(&r, &AttrSet::new(), &AttrSet::from_indices(&[1]));
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&Tuple::new(vec![])], 2);
    }

    #[test]
    fn interned_ops_match_reference_on_randomish_relations() {
        // Dense sweep over all 3-attribute boolean relations of ≤ 4 rows
        // derived from a counter (cheap deterministic "random").
        for seed in 0u32..64 {
            let rows: Vec<Vec<u32>> = (0..4)
                .filter(|i| seed & (1 << i) != 0)
                .map(|i| {
                    let v = (seed.rotate_left(i * 3)) ^ i;
                    vec![v & 1, (v >> 1) & 1, (v >> 2) & 1]
                })
                .collect();
            let r = rel(&["a", "b", "c"], rows);
            for key_mask in 0u32..8 {
                for probe_mask in 0u32..8 {
                    let key = AttrSet::from_word(u64::from(key_mask));
                    let probe = AttrSet::from_word(u64::from(probe_mask));
                    assert_eq!(
                        group_count_distinct(&r, &key, &probe),
                        reference::group_count_distinct(&r, &key, &probe),
                        "seed={seed} key={key:?} probe={probe:?}"
                    );
                }
            }
            for mask in 0u32..8 {
                let set = AttrSet::from_word(u64::from(mask));
                assert_eq!(project(&r, &set), reference::project(&r, &set));
            }
        }
    }
}
