//! Relational operators: projection, natural join, grouped distinct
//! counting.
//!
//! These three operators are all the paper's machinery needs:
//! * `π_V(R)` builds views (Definition 1) and provenance projections,
//! * `R1 ⋈ … ⋈ Rn` builds the workflow provenance relation (§4),
//! * grouped distinct counting implements the Lemma-4 safety condition.

use crate::attrset::AttrSet;
use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::{AttrDef, AttrId, Schema};
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Projection `π_set(R)`: restricts every row to `set` (attribute-id
/// order) and deduplicates.
///
/// The resulting schema keeps the projected attributes' names and domains.
#[must_use]
pub fn project(r: &Relation, set: &AttrSet) -> Relation {
    let schema = Schema::new(
        set.iter()
            .map(|a| r.schema().attr(a).clone())
            .collect::<Vec<AttrDef>>(),
    );
    let rows = r.rows().iter().map(|t| t.project(set)).collect();
    Relation::from_rows(schema, rows).expect("projection preserves validity")
}

/// Natural join `left ⋈ right` on shared attribute *names*.
///
/// The paper wires workflows by attribute-name identity: "whenever an
/// output of a module `m_i` is fed as input to a module `m_j` the
/// corresponding output and input attributes have the same name" (§2.3).
/// The result schema is `left`'s attributes followed by `right`'s
/// non-shared attributes.
///
/// # Errors
/// [`RelationError::JoinSchemaMismatch`] if a shared attribute has
/// different domains on the two sides.
pub fn natural_join(left: &Relation, right: &Relation) -> Result<Relation, RelationError> {
    let ls = left.schema();
    let rs = right.schema();

    // Shared attributes: (left id, right id); right-only attributes.
    let mut shared: Vec<(AttrId, AttrId)> = Vec::new();
    let mut right_only: Vec<AttrId> = Vec::new();
    for (rid, def) in rs.iter() {
        match ls.by_name(&def.name) {
            Some(lid) => {
                if ls.attr(lid).domain != def.domain {
                    return Err(RelationError::JoinSchemaMismatch {
                        attr: def.name.clone(),
                    });
                }
                shared.push((lid, rid));
            }
            None => right_only.push(rid),
        }
    }

    let mut out_attrs: Vec<AttrDef> = ls.iter().map(|(_, d)| d.clone()).collect();
    out_attrs.extend(right_only.iter().map(|&rid| rs.attr(rid).clone()));
    let out_schema = Schema::new(out_attrs);

    // Hash the right side on the shared-key projection.
    let mut index: HashMap<Vec<u32>, Vec<&Tuple>> = HashMap::new();
    for t in right.rows() {
        let key: Vec<u32> = shared.iter().map(|&(_, rid)| t.get(rid)).collect();
        index.entry(key).or_default().push(t);
    }

    let mut rows = Vec::new();
    for lt in left.rows() {
        let key: Vec<u32> = shared.iter().map(|&(lid, _)| lt.get(lid)).collect();
        if let Some(matches) = index.get(&key) {
            for rt in matches {
                let mut vals: Vec<u32> = lt.values().to_vec();
                vals.extend(right_only.iter().map(|&rid| rt.get(rid)));
                rows.push(Tuple::new(vals));
            }
        }
    }
    Relation::from_rows(out_schema, rows)
}

/// For each distinct value of `key` in `r`, counts the number of distinct
/// projections onto `probe`.
///
/// This is the inner loop of the paper's Algorithm 2 safety check: with
/// `key = I ∩ V` and `probe = O ∩ V`, a visible set `V` is safe for `Γ`
/// iff every count is at least `Γ / ∏_{a ∈ O\V} |Δ_a|` (Lemma 4).
#[must_use]
pub fn group_count_distinct(r: &Relation, key: &AttrSet, probe: &AttrSet) -> HashMap<Tuple, usize> {
    let mut groups: HashMap<Tuple, std::collections::HashSet<Tuple>> = HashMap::new();
    for t in r.rows() {
        groups
            .entry(t.project(key))
            .or_default()
            .insert(t.project(probe));
    }
    groups.into_iter().map(|(k, s)| (k, s.len())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    fn rel(names: &[&str], rows: Vec<Vec<u32>>) -> Relation {
        Relation::from_values(Schema::booleans(names), rows).unwrap()
    }

    #[test]
    fn project_deduplicates() {
        let r = rel(
            &["a", "b"],
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]],
        );
        let p = project(&r, &AttrSet::from_indices(&[0]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema().attr(AttrId(0)).name, "a");
    }

    #[test]
    fn join_on_shared_attribute() {
        // r1(a,b), r2(b,c): join on b.
        let r1 = rel(&["a", "b"], vec![vec![0, 1], vec![1, 0]]);
        let r2 = rel(&["b", "c"], vec![vec![1, 1], vec![1, 0], vec![0, 0]]);
        let j = natural_join(&r1, &r2).unwrap();
        assert_eq!(j.schema().len(), 3); // a, b, c
        assert_eq!(j.schema().attr(AttrId(2)).name, "c");
        // a=0,b=1 matches two right rows; a=1,b=0 matches one.
        assert_eq!(j.len(), 3);
        assert!(j.contains(&Tuple::new(vec![0, 1, 1])));
        assert!(j.contains(&Tuple::new(vec![0, 1, 0])));
        assert!(j.contains(&Tuple::new(vec![1, 0, 0])));
    }

    #[test]
    fn join_without_shared_attributes_is_cross_product() {
        let r1 = rel(&["a"], vec![vec![0], vec![1]]);
        let r2 = rel(&["b"], vec![vec![0], vec![1]]);
        let j = natural_join(&r1, &r2).unwrap();
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_rejects_domain_mismatch() {
        let s1 = Schema::new(vec![AttrDef {
            name: "x".into(),
            domain: Domain::boolean(),
        }]);
        let s2 = Schema::new(vec![AttrDef {
            name: "x".into(),
            domain: Domain::new(3),
        }]);
        let r1 = Relation::from_values(s1, vec![vec![0]]).unwrap();
        let r2 = Relation::from_values(s2, vec![vec![2]]).unwrap();
        assert!(matches!(
            natural_join(&r1, &r2),
            Err(RelationError::JoinSchemaMismatch { .. })
        ));
    }

    #[test]
    fn join_is_associative_on_chain() {
        // Chain r1(a,b) ⋈ r2(b,c) ⋈ r3(c,d): both association orders agree.
        let r1 = rel(&["a", "b"], vec![vec![0, 0], vec![1, 1]]);
        let r2 = rel(&["b", "c"], vec![vec![0, 1], vec![1, 0]]);
        let r3 = rel(&["c", "d"], vec![vec![1, 1], vec![0, 0]]);
        let left = natural_join(&natural_join(&r1, &r2).unwrap(), &r3).unwrap();
        let right = natural_join(&r1, &natural_join(&r2, &r3).unwrap()).unwrap();
        // Same schema order (a,b,c,d) in both groupings for a chain.
        assert_eq!(left, right);
        assert_eq!(left.len(), 2);
    }

    #[test]
    fn group_count_distinct_counts_probe_values() {
        // Fig 1(d) analogue: group by visible input, count visible outputs.
        let r = rel(
            &["i", "o1", "o2"],
            vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 1, 0], vec![1, 1, 1]],
        );
        let counts = group_count_distinct(
            &r,
            &AttrSet::from_indices(&[0]),
            &AttrSet::from_indices(&[1, 2]),
        );
        assert_eq!(counts[&Tuple::new(vec![0])], 2);
        assert_eq!(counts[&Tuple::new(vec![1])], 2);
    }

    #[test]
    fn group_count_distinct_empty_key_groups_everything() {
        let r = rel(&["a", "b"], vec![vec![0, 0], vec![1, 0], vec![1, 1]]);
        let counts = group_count_distinct(&r, &AttrSet::new(), &AttrSet::from_indices(&[1]));
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&Tuple::new(vec![])], 2);
    }
}
