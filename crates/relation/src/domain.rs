//! Finite attribute domains (`Δ_a` in the paper) and domain values.

use std::fmt;

/// A value drawn from a finite [`Domain`].
///
/// Values are dense indices `0..domain.size()`. The paper assumes "the
/// values of each attribute `a ∈ A` come from a finite but arbitrarily
/// large domain `Δ_a`" (§2.1); a dense encoding loses no generality and
/// keeps tuples compact.
pub type Value = u32;

/// A finite attribute domain `Δ_a`.
///
/// The only property the privacy machinery ever needs is the domain
/// *size* `|Δ_a|` (e.g. the safety condition of Lemma 4 multiplies
/// distinct visible-output counts by `∏_{a ∈ O\V} |Δ_a|`), so a domain is
/// a size plus an optional human-readable kind used in diagnostics.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Domain {
    size: u32,
}

impl Domain {
    /// Creates a domain with `size` distinct values.
    ///
    /// # Panics
    /// Panics if `size == 0`; empty domains make every relation empty and
    /// are never meaningful in the paper's model.
    #[must_use]
    pub fn new(size: u32) -> Self {
        assert!(size > 0, "attribute domains must be non-empty");
        Self { size }
    }

    /// The boolean domain `{0, 1}` used throughout the paper's examples.
    #[must_use]
    pub fn boolean() -> Self {
        Self { size: 2 }
    }

    /// Number of values in the domain (`|Δ_a|`).
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether `v` is a valid value of this domain.
    #[must_use]
    pub fn contains(&self, v: Value) -> bool {
        v < self.size
    }

    /// Iterates over every value of the domain in increasing order.
    pub fn values(&self) -> impl Iterator<Item = Value> + Clone {
        0..self.size
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.size == 2 {
            write!(f, "bool")
        } else {
            write!(f, "[0,{})", self.size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_domain_has_two_values() {
        let d = Domain::boolean();
        assert_eq!(d.size(), 2);
        assert_eq!(d.values().collect::<Vec<_>>(), vec![0, 1]);
        assert!(d.contains(0) && d.contains(1) && !d.contains(2));
    }

    #[test]
    fn large_domain_bounds() {
        let d = Domain::new(10);
        assert!(d.contains(9));
        assert!(!d.contains(10));
        assert_eq!(d.values().count(), 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_sized_domain_rejected() {
        let _ = Domain::new(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Domain::boolean().to_string(), "bool");
        assert_eq!(Domain::new(5).to_string(), "[0,5)");
    }
}
