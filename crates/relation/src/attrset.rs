//! Compact attribute bitsets.
//!
//! Visible sets `V`, hidden sets `V̄`, module input/output sets `I_i`,
//! `O_i` — the paper manipulates subsets of attributes constantly, so we
//! give them a dedicated, allocation-light representation with the usual
//! set algebra.

use crate::schema::AttrId;
use std::fmt;

const WORD_BITS: usize = 64;

/// A set of [`AttrId`]s, stored as a growable bitset.
///
/// Operations are `O(words)`; typical workflows in the paper's regime have
/// tens to a few hundred attributes, so sets are one to a handful of
/// machine words.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrSet {
    words: Vec<u64>,
}

impl AttrSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set containing the attributes `0..n` (a full universe of
    /// size `n`).
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut s = Self::new();
        for i in 0..n {
            s.insert(AttrId(i as u32));
        }
        s
    }

    /// Builds a set from an iterator of attribute ids.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator below
    pub fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        let mut s = Self::new();
        for a in iter {
            s.insert(a);
        }
        s
    }

    /// Builds a set from raw `u32` indices (test/construction convenience).
    #[must_use]
    pub fn from_indices(ids: &[u32]) -> Self {
        Self::from_iter(ids.iter().map(|&i| AttrId(i)))
    }

    /// Drops trailing zero words so that derived `Eq`/`Hash`/`Ord` treat
    /// equal sets as equal values.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    fn word_of(a: AttrId) -> (usize, u64) {
        let i = a.0 as usize;
        (i / WORD_BITS, 1u64 << (i % WORD_BITS))
    }

    /// Inserts `a`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, a: AttrId) -> bool {
        let (w, m) = Self::word_of(a);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & m == 0;
        self.words[w] |= m;
        fresh
    }

    /// Removes `a`; returns `true` if it was present.
    pub fn remove(&mut self, a: AttrId) -> bool {
        let (w, m) = Self::word_of(a);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & m != 0;
        self.words[w] &= !m;
        self.normalize();
        present
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, a: AttrId) -> bool {
        let (w, m) = Self::word_of(a);
        self.words.get(w).is_some_and(|word| word & m != 0)
    }

    /// Number of attributes in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union `self ∪ other`.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, ow) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= ow;
        }
    }

    /// Set intersection `self ∩ other`.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        let n = self.words.len().min(other.words.len());
        let words = (0..n).map(|i| self.words[i] & other.words[i]).collect();
        let mut out = Self { words };
        out.normalize();
        out
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (i, w) in out.words.iter_mut().enumerate() {
            if let Some(ow) = other.words.get(i) {
                *w &= !ow;
            }
        }
        out.normalize();
        out
    }

    /// Whether `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words.iter().enumerate().all(|(i, &w)| {
            let ow = other.words.get(i).copied().unwrap_or(0);
            w & !ow == 0
        })
    }

    /// Whether the two sets share no attribute.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * WORD_BITS;
            (0..WORD_BITS).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(AttrId((base + b) as u32))
                } else {
                    None
                }
            })
        })
    }

    /// Complement relative to a universe of `n` attributes: `{0..n} \ self`.
    ///
    /// This is the paper's `V̄ = A \ V` for `|A| = n`.
    #[must_use]
    pub fn complement(&self, n: usize) -> Self {
        Self::full(n).difference(self)
    }

    /// The set as a single bitmask word, if every member id is `< 64`.
    ///
    /// This is the fast path the interned kernel and the memoized
    /// safety oracle key their caches on: module sub-schemas have
    /// `k ≤ 64` attributes, so visible/hidden sets collapse to one
    /// machine word and set algebra to bitwise ops.
    #[must_use]
    pub fn as_word(&self) -> Option<u64> {
        match self.words.len() {
            0 => Some(0),
            1 => Some(self.words[0]),
            _ => None,
        }
    }

    /// Builds the set from a bitmask word (inverse of
    /// [`as_word`](Self::as_word)).
    #[must_use]
    pub fn from_word(word: u64) -> Self {
        let mut s = Self::new();
        if word != 0 {
            s.words.push(word);
        }
        s
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        AttrSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> AttrSet {
        AttrSet::from_indices(ids)
    }

    #[test]
    fn insert_remove_contains() {
        let mut set = AttrSet::new();
        assert!(set.insert(AttrId(3)));
        assert!(!set.insert(AttrId(3)));
        assert!(set.contains(AttrId(3)));
        assert!(!set.contains(AttrId(2)));
        assert!(set.remove(AttrId(3)));
        assert!(!set.remove(AttrId(3)));
        assert!(set.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = s(&[0, 1, 2, 70]);
        let b = s(&[2, 3, 70]);
        assert_eq!(a.union(&b), s(&[0, 1, 2, 3, 70]));
        assert_eq!(a.intersection(&b), s(&[2, 70]));
        assert_eq!(a.difference(&b), s(&[0, 1]));
        assert_eq!(b.difference(&a), s(&[3]));
    }

    #[test]
    fn subset_and_disjoint() {
        assert!(s(&[1, 2]).is_subset(&s(&[0, 1, 2, 3])));
        assert!(!s(&[1, 5]).is_subset(&s(&[0, 1, 2, 3])));
        assert!(s(&[]).is_subset(&s(&[])));
        assert!(s(&[0, 64]).is_disjoint(&s(&[1, 65])));
        assert!(!s(&[64]).is_disjoint(&s(&[64])));
    }

    #[test]
    fn complement_in_universe() {
        let v = s(&[0, 2]);
        assert_eq!(v.complement(4), s(&[1, 3]));
        assert_eq!(v.complement(4).complement(4), v);
    }

    #[test]
    fn iter_is_sorted_and_len_matches() {
        let set = s(&[77, 3, 0, 64]);
        let items: Vec<u32> = set.iter().map(|a| a.0).collect();
        assert_eq!(items, vec![0, 3, 64, 77]);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn full_universe() {
        let u = AttrSet::full(130);
        assert_eq!(u.len(), 130);
        assert!(u.contains(AttrId(129)));
        assert!(!u.contains(AttrId(130)));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", s(&[1, 3])), "{1,3}");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random set over ids `0..100` with up to 12 members.
    fn rand_set(rng: &mut StdRng) -> AttrSet {
        let n = rng.gen_range(0usize..12);
        let ids: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..100)).collect();
        AttrSet::from_indices(&ids)
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let mut rng = StdRng::seed_from_u64(0xA5A5);
        for _ in 0..256 {
            let (a, b) = (rand_set(&mut rng), rand_set(&mut rng));
            assert_eq!(a.union(&b), b.union(&a));
            assert_eq!(a.union(&a), a);
        }
    }

    #[test]
    fn de_morgan_within_universe() {
        let mut rng = StdRng::seed_from_u64(0xDE11);
        for _ in 0..256 {
            let (a, b) = (rand_set(&mut rng), rand_set(&mut rng));
            let n = 101;
            let lhs = a.union(&b).complement(n);
            let rhs = a.complement(n).intersection(&b.complement(n));
            assert_eq!(lhs, rhs, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn difference_partitions() {
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        for _ in 0..256 {
            let (a, b) = (rand_set(&mut rng), rand_set(&mut rng));
            let inter = a.intersection(&b);
            let diff = a.difference(&b);
            assert!(inter.is_disjoint(&diff));
            assert_eq!(inter.union(&diff), a);
            assert_eq!(inter.len() + diff.len(), a.len());
        }
    }

    #[test]
    fn subset_consistent_with_union() {
        let mut rng = StdRng::seed_from_u64(0x5AB5);
        for _ in 0..256 {
            let (a, b) = (rand_set(&mut rng), rand_set(&mut rng));
            assert!(a.is_subset(&a.union(&b)));
            assert_eq!(a.is_subset(&b), a.union(&b) == b);
        }
    }

    #[test]
    fn iter_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x17E2);
        for _ in 0..256 {
            let a = rand_set(&mut rng);
            let rebuilt: AttrSet = a.iter().collect();
            assert_eq!(rebuilt, a);
        }
    }
}
