//! Property suite for **batched Lemma-4 probes**: on random relations
//! and random probe batches (duplicate pairs, shared attribute sets,
//! empty relations, streamed appends), the batched kernel entry point is
//! indistinguishable from probing one at a time, and both agree with the
//! row-at-a-time reference semantics — the ISSUE-4 acceptance property
//! `batched ≡ sequential ≡ reference` at the kernel layer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_relation::{ops, AttrDef, AttrSet, Domain, InternedRelation, Relation, Schema, Tuple};

/// A random schema of 3–8 attributes with domain sizes 2–4.
fn random_schema(rng: &mut StdRng) -> Schema {
    let n = rng.gen_range(3usize..=8);
    Schema::new(
        (0..n)
            .map(|i| AttrDef {
                name: format!("a{i}"),
                domain: Domain::new(rng.gen_range(2u32..5)),
            })
            .collect(),
    )
}

fn random_rows(rng: &mut StdRng, schema: &Schema, max_rows: usize) -> Vec<Vec<u32>> {
    let n = rng.gen_range(0..=max_rows);
    (0..n)
        .map(|_| {
            schema
                .iter()
                .map(|(_, d)| rng.gen_range(0u32..d.domain.size()))
                .collect()
        })
        .collect()
}

/// A random probe batch over the schema's word space, with deliberate
/// duplicate pairs and shared attribute sets so the batch's dedup paths
/// are exercised.
fn random_batch(rng: &mut StdRng, k: usize, len: usize) -> Vec<(u64, u64)> {
    let space = 1u64 << k;
    let mut probes: Vec<(u64, u64)> = (0..len)
        .map(|_| (rng.gen_range(0..space), rng.gen_range(0..space)))
        .collect();
    // Duplicate a prefix of the batch (shared pair passes) and reuse a
    // key word across several probe words (shared group indexes).
    if !probes.is_empty() {
        let dup = probes[rng.gen_range(0..probes.len())];
        probes.push(dup);
        let shared_key = probes[0].0;
        probes.push((shared_key, rng.gen_range(0..space)));
        probes.push((shared_key, rng.gen_range(0..space)));
    }
    probes
}

/// The reference answer: minimum over key groups of the distinct
/// probe-sub-tuple count, straight from the row-at-a-time semantics.
fn reference_answer(r: &Relation, key: &AttrSet, probe: &AttrSet) -> usize {
    ops::reference::group_count_distinct(r, key, probe)
        .values()
        .copied()
        .min()
        .unwrap_or(usize::MAX)
}

#[test]
fn batched_equals_sequential_equals_reference() {
    let mut rng = StdRng::seed_from_u64(0xE18);
    for trial in 0..30 {
        let schema = random_schema(&mut rng);
        let k = schema.len();
        let rows = random_rows(&mut rng, &schema, 40);
        let r = Relation::from_values(schema, rows).expect("rows fit the schema");
        let ir = InternedRelation::from_relation(&r);
        let len = rng.gen_range(0..25);
        let probes = random_batch(&mut rng, k, len);

        let batched = ir.min_group_distinct_batch(&probes);
        assert_eq!(batched.len(), probes.len());
        for (i, &(kw, pw)) in probes.iter().enumerate() {
            // Sequential kernel probe.
            assert_eq!(
                batched[i],
                ir.min_group_distinct_words(kw, pw),
                "trial {trial} probe {i}: batched ≠ sequential"
            );
            // Row-at-a-time reference.
            assert_eq!(
                batched[i],
                reference_answer(&r, &AttrSet::from_word(kw), &AttrSet::from_word(pw)),
                "trial {trial} probe {i}: batched ≠ reference"
            );
        }
        // Caller-scratch form agrees and is reusable across batches.
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        ir.min_group_distinct_batch_with(&probes, &mut scratch, &mut out);
        assert_eq!(out, batched, "trial {trial}: scratch variant diverges");
    }
}

#[test]
fn batched_probes_survive_streamed_appends() {
    let mut rng = StdRng::seed_from_u64(0x5E21E);
    for trial in 0..15 {
        let schema = random_schema(&mut rng);
        let k = schema.len();
        let base = random_rows(&mut rng, &schema, 20);
        let mut acc = Relation::from_values(schema.clone(), base).expect("valid base");
        let mut ir = InternedRelation::from_relation(&acc);
        let probes = random_batch(&mut rng, k, 12);
        // Warm the batch once so appends must extend the group indexes
        // the batch materialized.
        let _ = ir.min_group_distinct_batch(&probes);

        for step in 0..3 {
            let batch: Vec<Tuple> = random_rows(&mut rng, &schema, 8)
                .into_iter()
                .map(Tuple::new)
                .collect();
            ir.append_rows(&batch).expect("in-domain rows");
            let all_rows: Vec<Tuple> = acc
                .rows()
                .iter()
                .cloned()
                .chain(batch.iter().cloned())
                .collect();
            acc = Relation::from_rows(acc.schema().clone(), all_rows).expect("set semantics dedup");
            let rebuilt = InternedRelation::from_relation(&acc);
            assert_eq!(
                ir.min_group_distinct_batch(&probes),
                rebuilt.min_group_distinct_batch(&probes),
                "trial {trial} step {step}: streamed ≠ rebuilt"
            );
        }
    }
}

#[test]
fn empty_batches_and_empty_relations() {
    let r = Relation::empty(Schema::booleans(&["a", "b", "c"]));
    let ir = InternedRelation::from_relation(&r);
    assert!(ir.min_group_distinct_batch(&[]).is_empty());
    let answers = ir.min_group_distinct_batch(&[(0b001, 0b110), (0, 0)]);
    assert_eq!(answers, vec![usize::MAX, usize::MAX]);
}
