//! Property suite for **incremental appends** through the interned
//! kernel: on random append schedules (mixed batch sizes, duplicates,
//! fresh domain values, empty bases), an incrementally maintained
//! [`InternedRelation`] is indistinguishable from a kernel rebuilt from
//! scratch, and both agree with the row-at-a-time reference semantics
//! (`ops::reference`) — the ISSUE-3 acceptance property
//! `incremental ≡ full rebuild ≡ reference`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_relation::{ops, AttrDef, AttrSet, Domain, InternedRelation, Relation, Schema, Tuple};

/// A random schema of 2–4 attributes with domain sizes 2–4.
fn random_schema(rng: &mut StdRng) -> Schema {
    let n = rng.gen_range(2usize..5);
    Schema::new(
        (0..n)
            .map(|i| AttrDef {
                name: format!("a{i}"),
                domain: Domain::new(rng.gen_range(2u32..5)),
            })
            .collect(),
    )
}

fn random_row(rng: &mut StdRng, schema: &Schema) -> Tuple {
    Tuple::new(
        schema
            .iter()
            .map(|(_, d)| rng.gen_range(0u32..d.domain.size()))
            .collect(),
    )
}

/// Asserts the incrementally maintained kernel is equivalent to a fresh
/// build over the accumulated relation, for every attribute-set pair:
/// same row count, groupings, Lemma-4 probes, grouped counts (against
/// the reference semantics), and projections.
fn assert_equivalent(inc: &InternedRelation, acc: &Relation, ctx: &str) {
    let rebuilt = InternedRelation::from_relation(acc);
    assert_eq!(inc.n_rows(), acc.len(), "{ctx}: row count");
    let k = acc.schema().len();
    let mut scratch = Vec::new();
    for key_mask in 0u64..(1 << k) {
        let key = AttrSet::from_word(key_mask);
        assert_eq!(
            inc.group_index(&key).n_groups,
            rebuilt.group_index(&key).n_groups,
            "{ctx}: n_groups for {key_mask:#b}"
        );
        assert_eq!(
            inc.project(&key),
            ops::reference::project(acc, &key),
            "{ctx}: projection for {key_mask:#b}"
        );
        for probe_mask in 0u64..(1 << k) {
            let probe = AttrSet::from_word(probe_mask);
            assert_eq!(
                inc.min_group_distinct_with(&key, &probe, &mut scratch),
                rebuilt.min_group_distinct(&key, &probe),
                "{ctx}: min_group_distinct {key_mask:#b}/{probe_mask:#b}"
            );
            assert_eq!(
                inc.group_count_distinct(&key, &probe),
                ops::reference::group_count_distinct(acc, &key, &probe),
                "{ctx}: group_count_distinct {key_mask:#b}/{probe_mask:#b}"
            );
        }
    }
}

#[test]
fn random_append_schedules_match_rebuild_and_reference() {
    let mut rng = StdRng::seed_from_u64(0x5EED_A99E);
    for case in 0..30 {
        let schema = random_schema(&mut rng);
        // Base: sometimes empty, sometimes a handful of rows.
        let n_base = if case % 5 == 0 {
            0
        } else {
            rng.gen_range(0usize..6)
        };
        let base_rows: Vec<Tuple> = (0..n_base).map(|_| random_row(&mut rng, &schema)).collect();
        let mut acc = Relation::from_rows(schema.clone(), base_rows).unwrap();
        let mut inc = InternedRelation::from_relation(&acc);
        // Warm a random selection of groupings so appends must maintain
        // them (unwarmed sets are computed fresh later — both paths are
        // exercised across cases).
        let k = schema.len();
        for _ in 0..rng.gen_range(0usize..4) {
            let _ = inc.group_index(&AttrSet::from_word(rng.gen_range(0u64..(1 << k))));
        }
        let mut expected_epoch = 0u64;
        for step in 0..rng.gen_range(1usize..5) {
            // Mixed batches: fresh random rows + duplicates of existing.
            let batch: Vec<Tuple> = (0..rng.gen_range(0usize..6))
                .map(|_| {
                    if !acc.is_empty() && rng.gen_range(0u32..3) == 0 {
                        acc.rows()[rng.gen_range(0usize..acc.len())].clone()
                    } else {
                        random_row(&mut rng, &schema)
                    }
                })
                .collect();
            let added = inc.append_rows(&batch).unwrap();
            let merged = acc.insert_batch(&batch).unwrap();
            assert_eq!(added, merged, "case {case} step {step}: layers agree");
            if added > 0 {
                expected_epoch += 1;
            }
            assert_eq!(
                inc.epoch(),
                expected_epoch,
                "case {case} step {step}: epoch ticks iff rows landed"
            );
            assert_equivalent(&inc, &acc, &format!("case {case} step {step}"));
        }
    }
}

#[test]
fn append_schedule_on_wide_domains_grows_the_interner() {
    // Domains big enough that three attributes overflow u64 mixed-radix
    // codes: groupings take the ValueInterner path, which must keep
    // growing across appends.
    let schema = Schema::new(
        ["x", "y", "z"]
            .iter()
            .map(|n| AttrDef {
                name: (*n).to_string(),
                domain: Domain::new(u32::MAX),
            })
            .collect(),
    );
    let mut rng = StdRng::seed_from_u64(0x17E2);
    let mut acc = Relation::from_values(
        schema.clone(),
        vec![vec![4_000_000_000, 1, 2], vec![4_000_000_000, 1, 3]],
    )
    .unwrap();
    let mut inc = InternedRelation::from_relation(&acc);
    let all = AttrSet::from_indices(&[0, 1, 2]);
    assert_eq!(inc.group_index(&all).n_groups, 2);
    for step in 0..6 {
        let batch: Vec<Tuple> = (0..3)
            .map(|_| {
                Tuple::new(vec![
                    rng.gen_range(0u32..5) * 1_000_000_000,
                    rng.gen_range(0u32..3),
                    rng.gen_range(0u32..4),
                ])
            })
            .collect();
        let added = inc.append_rows(&batch).unwrap();
        let merged = acc.insert_batch(&batch).unwrap();
        assert_eq!(added, merged, "step {step}");
        // Full-set groups = distinct rows; the interner behind the wide
        // grouping grew exactly with them.
        let g = inc.group_index(&all);
        assert_eq!(g.n_groups as usize, acc.len(), "step {step}");
        let key = AttrSet::from_indices(&[0]);
        let probe = AttrSet::from_indices(&[1, 2]);
        assert_eq!(
            inc.min_group_distinct(&key, &probe),
            InternedRelation::from_relation(&acc).min_group_distinct(&key, &probe),
            "step {step}"
        );
        assert_eq!(
            inc.group_count_distinct(&key, &probe),
            ops::reference::group_count_distinct(&acc, &key, &probe),
            "step {step}"
        );
    }
}

#[test]
fn append_to_empty_then_duplicates_only() {
    let schema = Schema::booleans(&["a", "b", "c"]);
    let mut acc = Relation::empty(schema.clone());
    let mut inc = InternedRelation::from_relation(&acc);
    // Everything-duplicate batch on a non-empty relation leaves the
    // epoch (and caches) untouched.
    let batch = vec![Tuple::new(vec![0, 1, 1]), Tuple::new(vec![1, 0, 0])];
    assert_eq!(inc.append_rows(&batch).unwrap(), 2);
    acc.insert_batch(&batch).unwrap();
    assert_eq!(inc.epoch(), 1);
    assert_eq!(inc.append_rows(&batch).unwrap(), 0);
    assert_eq!(inc.epoch(), 1, "pure-duplicate batch: no new epoch");
    assert_equivalent(&inc, &acc, "empty-base schedule");
}
