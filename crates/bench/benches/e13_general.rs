//! E13 — §5.2 / C.4: general-workflow LP with privatization costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sv_gen::random::{random_general, InstanceParams};
use sv_gen::reductions::setcover_to_general;
use sv_gen::setcover::SetCover;
use sv_optimize::{exact_general, general};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_general");
    g.sample_size(10);
    for n in [3usize, 4, 5] {
        let inst = random_general(
            &mut StdRng::seed_from_u64(n as u64),
            &InstanceParams {
                n_modules: n,
                attrs_per_module: 4,
                ..Default::default()
            },
            3,
            5,
        );
        g.bench_with_input(BenchmarkId::new("lp_rounding", n), &n, |bch, _| {
            bch.iter(|| general::solve_rounding(&inst).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("exact_enumeration", n), &n, |bch, _| {
            bch.iter(|| exact_general(&inst));
        });
    }
    let sc = SetCover::random(&mut StdRng::seed_from_u64(2), 5, 3, 0.4);
    let red = setcover_to_general(&sc);
    g.bench_function("c2_gadget_rounding", |bch| {
        bch.iter(|| general::solve_rounding(&red.instance).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
