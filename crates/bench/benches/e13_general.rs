//! E13 — §5.2 / C.4: general-workflow LP with privatization costs.
//!
//! Also hosts the general-workflow half of the **kernel-swap**
//! comparison recorded in `BENCH_kernel.json`: deriving a
//! [`GeneralInstance`] from an Example-8-shaped workflow through the
//! row-at-a-time seed semantics vs the interned kernel + memoized
//! safety oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sv_core::requirements::set_constraints_with;
use sv_core::safety::NaiveOracle;
use sv_core::StandaloneModule;
use sv_gen::random::{random_general, InstanceParams};
use sv_gen::reductions::setcover_to_general;
use sv_gen::setcover::SetCover;
use sv_optimize::{exact_general, general, GeneralInstance};
use sv_workflow::library;

fn bench_kernel_swap(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_kernel_swap");
    g.sample_size(10);
    // Example-8 chain over 4 wires: the private one-one module has
    // k = 8 (2^8 subsets, N = 16 rows); two public modules.
    let wf = library::example8_chain(4);
    let gamma = 4u128;
    g.bench_function("derive_general/naive_rowwise", |bch| {
        bch.iter(|| {
            // Seed-semantics replica of the private-module requirement
            // derivation GeneralInstance::from_workflow performs.
            let mut total = 0usize;
            for id in wf.private_modules() {
                let sm = StandaloneModule::from_workflow_module(&wf, id, 1 << 20).unwrap();
                let o = NaiveOracle::new(sm);
                total += set_constraints_with(&o, gamma).unwrap().len();
            }
            total
        });
    });
    g.bench_function("derive_general/interned_plus_memo", |bch| {
        bch.iter(|| {
            GeneralInstance::from_workflow(&wf, gamma, &[1, 1], 1 << 20)
                .unwrap()
                .base
                .modules
                .len()
        });
    });
    g.finish();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_general");
    g.sample_size(10);
    for n in [3usize, 4, 5] {
        let inst = random_general(
            &mut StdRng::seed_from_u64(n as u64),
            &InstanceParams {
                n_modules: n,
                attrs_per_module: 4,
                ..Default::default()
            },
            3,
            5,
        );
        g.bench_with_input(BenchmarkId::new("lp_rounding", n), &n, |bch, _| {
            bch.iter(|| general::solve_rounding(&inst).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("exact_enumeration", n), &n, |bch, _| {
            bch.iter(|| exact_general(&inst));
        });
    }
    let sc = SetCover::random(&mut StdRng::seed_from_u64(2), 5, 3, 0.4);
    let red = setcover_to_general(&sc);
    g.bench_function("c2_gadget_rounding", |bch| {
        bch.iter(|| general::solve_rounding(&red.instance).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench, bench_kernel_swap);
criterion_main!(benches);
