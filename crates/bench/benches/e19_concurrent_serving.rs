//! E19 — **concurrent serving**: M serving threads firing probe batches
//! at **one shared [`WorkflowOracles`] instance** (`probe_batch` takes
//! `&self` since the concurrent-read serving tier landed).
//!
//! Workload: a 4-private-module one-one workflow (`k = 20`, 1024 rows
//! per module) behind a single shared instance; a seeded stream of
//! [`TOTAL`] mixed-module `(V, Γ)` probes drawn from per-module pools of
//! [`WORD_POOL`] views, cut into [`BATCH`]-sized windows that
//! [`THREADS`] = 1/2/4/8 serving threads claim round-robin. Two regimes
//! per thread count, measured wall-clock (best of [`EPISODES`]) and
//! reported as ns/probe into `BENCH_serve.json` via `--save-baseline`:
//!
//! * `warm_batch/threads/T` — the instance is pre-warmed with the whole
//!   stream, so every probe is a memo hit: the pure concurrent-read
//!   regime the sharded level cache is built for (read-locks only).
//! * `cold_batch/threads/T` — a fresh instance per episode: threads
//!   race on group-index publication (exactly one builds per attribute
//!   set) and on memo fill.
//!
//! **Derived gate metrics** (all recorded mechanically):
//!
//! * `warm_scaling/speedup_4t` = warm t=1 / warm t=4.
//! * `gate/warm_scaling_ok` — `1.0` iff the within-run warm-batch floor
//!   holds: ≥ [`WARM_SCALING_FLOOR`]× at 4 threads vs 1 **when the
//!   runner has ≥ 4 cores**; on fewer cores (this build container is
//!   single-core) no wall-clock speedup is possible by construction, so
//!   the metric is `1.0` and the gate is counter-only. CI exact-gates
//!   this at `1.0`.
//! * `sweep_ablation/misses_{shared,private}` — the shared-vs-private
//!   memo sweep ablation: a Γ-family of lattice enumerations over a
//!   `k = 12` module, statically sharded across 4 workers. `shared` is
//!   the serving-tier design (all workers and all Γ share one
//!   concurrent oracle — the level cache answers every Γ, so later
//!   sweeps are pure hits); `private` is the pre-concurrency design
//!   (each worker of each sweep owns a cold clone). CI floors
//!   `private / shared` at 2×, machine-independently.
//!
//! Answers are asserted identical to the one-at-a-time kernel path on
//! every episode (correctness anchor).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use sv_core::safety::{ProbeRequest, WorkflowOracles};
use sv_core::{MemoSafetyOracle, StandaloneModule};
use sv_relation::AttrSet;
use sv_workflow::{library, ModuleId, Workflow};

/// Private modules (the one-one chain length).
const MODULES: usize = 4;
/// Boolean wires per module level: `k = 2 × WIRES = 20` attributes and
/// `2^WIRES = 1024` provenance rows per module relation.
const WIRES: usize = 10;
/// Total probes per episode.
const TOTAL: usize = 160_000;
/// Distinct visible-set words per module the stream draws from.
const WORD_POOL: usize = 64;
/// Probes per serving window (one `probe_batch` call).
const BATCH: usize = 2_048;
/// Episodes per configuration; the best (minimum) wall-clock is kept.
const EPISODES: usize = 3;
/// Γ values in the stream.
const GAMMAS: [u128; 5] = [2, 4, 8, 16, 64];
/// Serving-thread counts.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Within-run warm-batch speedup floor at 4 threads vs 1 (gated on
/// runners with ≥ 4 cores).
const WARM_SCALING_FLOOR: f64 = 2.0;
/// Enumeration budget for materializing the module relations.
const BUDGET: u128 = 1 << 20;

fn workflow() -> Workflow {
    library::one_one_chain(MODULES, WIRES)
}

/// The seeded mixed-module probe stream, pre-routed into serving
/// windows of [`ProbeRequest`]s (marshalling is the transport tier's
/// job; the measured engine is `probe_batch`).
fn make_windows(seed: u64, ids: &[ModuleId]) -> Vec<Vec<ProbeRequest>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = 2 * WIRES;
    let space = 1u64 << k;
    let pools: Vec<Vec<u64>> = (0..MODULES)
        .map(|_| (0..WORD_POOL).map(|_| rng.gen_range(0..space)).collect())
        .collect();
    (0..TOTAL)
        .map(|_| {
            let module = rng.gen_range(0..MODULES);
            ProbeRequest::new(
                ids[module],
                AttrSet::from_word(pools[module][rng.gen_range(0..WORD_POOL)]),
                GAMMAS[rng.gen_range(0..GAMMAS.len())],
            )
        })
        .collect::<Vec<_>>()
        .chunks(BATCH)
        .map(<[ProbeRequest]>::to_vec)
        .collect()
}

/// Serves every window through **one shared instance** from `threads`
/// workers claiming windows off an atomic cursor. Returns (elapsed ns,
/// answers in stream order).
fn serve_concurrent(
    oracles: &WorkflowOracles,
    windows: &[Vec<ProbeRequest>],
    threads: usize,
) -> (f64, Vec<bool>) {
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    let mut per_window: Vec<(usize, Vec<bool>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut mine: Vec<(usize, Vec<bool>)> = Vec::new();
                    loop {
                        let w = cursor.fetch_add(1, Ordering::Relaxed);
                        if w >= windows.len() {
                            break;
                        }
                        let outcomes = oracles.probe_batch(&windows[w]).expect("valid batch");
                        mine.push((w, outcomes.into_iter().map(|o| o.safe).collect()));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("serving thread"))
            .collect()
    });
    let ns = start.elapsed().as_nanos() as f64;
    per_window.sort_unstable_by_key(|(w, _)| *w);
    (ns, per_window.into_iter().flat_map(|(_, a)| a).collect())
}

/// One-at-a-time kernel reference answers (the correctness anchor).
fn reference_answers(wf: &Workflow, windows: &[Vec<ProbeRequest>]) -> Vec<bool> {
    let ids: Vec<ModuleId> = wf.private_modules();
    let modules: Vec<StandaloneModule> = ids
        .iter()
        .map(|&id| StandaloneModule::from_workflow_module(wf, id, BUDGET).unwrap())
        .collect();
    windows
        .iter()
        .flatten()
        .map(|r| {
            let idx = ids.iter().position(|&id| id == r.module).unwrap();
            let w = r.visible.as_word().expect("k = 20 fits a word");
            modules[idx].is_safe_word(w, r.gamma).expect("word path")
        })
        .collect()
}

fn run_concurrent_serving(_c: &mut Criterion) {
    let wf = workflow();
    let shared = WorkflowOracles::for_workflow(&wf, BUDGET).unwrap();
    let ids = shared.module_ids();
    let windows = make_windows(0xE19, &ids);
    let reference = reference_answers(&wf, &windows);

    // Pre-warm the shared instance: after this, the whole stream is
    // memo hits (the word pools are fixed).
    let (_, warm_answers) = serve_concurrent(&shared, &windows, 1);
    assert_eq!(warm_answers, reference, "warm-up answers match kernel");

    // Warm rows: concurrent reads against the fully warmed memo.
    for &t in &THREADS {
        let mut best = f64::INFINITY;
        for _ in 0..EPISODES {
            let (ns, answers) = serve_concurrent(&shared, &windows, t);
            assert_eq!(answers, reference, "warm threads={t}");
            best = best.min(ns / TOTAL as f64);
        }
        criterion::record_metric(
            &format!("e19_concurrent_serving/warm_batch/threads/{t}"),
            best,
        );
    }

    // Cold rows: a fresh shared instance per episode — threads race on
    // once-per-set group publication and memo fill.
    for &t in &THREADS {
        let mut best = f64::INFINITY;
        for _ in 0..EPISODES {
            let fresh = WorkflowOracles::for_workflow(&wf, BUDGET).unwrap();
            let (ns, answers) = serve_concurrent(&fresh, &windows, t);
            assert_eq!(answers, reference, "cold threads={t}");
            best = best.min(ns / TOTAL as f64);
        }
        criterion::record_metric(
            &format!("e19_concurrent_serving/cold_batch/threads/{t}"),
            best,
        );
    }

    // Derived scaling metrics + the conditional within-run gate.
    let warm = |t: usize| {
        criterion::recorded_value(&format!("e19_concurrent_serving/warm_batch/threads/{t}"))
            .expect("recorded above")
    };
    let speedup_4t = warm(1) / warm(4);
    criterion::record_metric("e19_concurrent_serving/warm_scaling/speedup_4t", speedup_4t);
    criterion::record_metric(
        "e19_concurrent_serving/warm_scaling/speedup_8t",
        warm(1) / warm(8),
    );
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let scaling_ok = if cores >= 4 {
        // Multi-core: the warm 4-thread row must actually beat 1 thread
        // by the floor.
        f64::from(u8::from(speedup_4t >= WARM_SCALING_FLOOR))
    } else {
        // Single-core container: wall-clock speedup is impossible by
        // construction; the gate is counter-only (the sweep-ablation
        // and e18 miss counters below / in BENCH_serve.json).
        1.0
    };
    criterion::record_metric("e19_concurrent_serving/gate/warm_scaling_ok", scaling_ok);

    // ── Shared-vs-private-memo sweep ablation ──────────────────────
    // A Γ-family of full-lattice enumerations over a k = 12 one-one
    // module, statically sharded across 4 workers (static shards keep
    // the private-memo miss counter deterministic on any machine).
    let sweep_wf = library::one_one_chain(1, 6);
    let module = StandaloneModule::from_workflow_module(&sweep_wf, ModuleId(0), BUDGET).unwrap();
    let k = module.k();
    let lattice = 1u64 << k;
    let workers = 4usize;
    let shard = |w: usize| -> std::ops::Range<u64> {
        let per = lattice / workers as u64;
        let start = w as u64 * per;
        start..if w + 1 == workers {
            lattice
        } else {
            start + per
        }
    };
    // Shared: ONE concurrent oracle across all workers and all Γ — the
    // level cache answers every Γ, so only the first sweep pays kernel
    // work.
    let shared_oracle = MemoSafetyOracle::new(module.clone());
    for &gamma in &GAMMAS {
        std::thread::scope(|s| {
            for w in 0..workers {
                let oracle = &shared_oracle;
                let range = shard(w);
                s.spawn(move || {
                    let mut scratch: Vec<u64> = Vec::new();
                    for mask in range {
                        let _ = oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch);
                    }
                });
            }
        });
    }
    let misses_shared = shared_oracle.misses();
    // Private: the pre-concurrency design — every (Γ, worker) gets a
    // cold clone, so nothing is ever reused across shards or sweeps.
    let mut misses_private = 0u64;
    for &gamma in &GAMMAS {
        let per_worker: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let module = module.clone();
                    let range = shard(w);
                    s.spawn(move || {
                        let oracle = MemoSafetyOracle::new(module);
                        let mut scratch: Vec<u64> = Vec::new();
                        for mask in range {
                            let _ = oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch);
                        }
                        oracle.misses()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        misses_private += per_worker.iter().sum::<u64>();
    }
    criterion::record_metric(
        "e19_concurrent_serving/sweep_ablation/misses_shared",
        misses_shared as f64,
    );
    criterion::record_metric(
        "e19_concurrent_serving/sweep_ablation/misses_private",
        misses_private as f64,
    );
    criterion::record_metric(
        "e19_concurrent_serving/sweep_ablation/reuse_factor",
        misses_private as f64 / misses_shared as f64,
    );

    // Environment rows for the first multi-core refresh.
    criterion::record_metric(
        "e19_concurrent_serving/env/available_parallelism",
        cores as f64,
    );
    criterion::record_metric("e19_concurrent_serving/env/probes", TOTAL as f64);
    criterion::record_metric("e19_concurrent_serving/env/batch", BATCH as f64);
    criterion::record_metric("e19_concurrent_serving/env/word_pool", WORD_POOL as f64);
    criterion::record_metric("e19_concurrent_serving/env/modules", MODULES as f64);
}

criterion_group!(benches, run_concurrent_serving);
criterion_main!(benches);
