//! E9 — Theorem 5: cardinality-constraint optimizers. LP solve +
//! Algorithm-1 rounding vs exact enumeration vs exact IP, n sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sv_gen::random::{random_cardinality, InstanceParams};
use sv_optimize::{cardinality, exact_cardinality};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_cardinality");
    g.sample_size(10);
    for n in [3usize, 5, 6] {
        let p = InstanceParams {
            n_modules: n,
            attrs_per_module: 4,
            ..Default::default()
        };
        let inst = random_cardinality(&mut StdRng::seed_from_u64(n as u64), &p);
        g.bench_with_input(BenchmarkId::new("lp_rounding", n), &n, |bch, _| {
            let mut rng = StdRng::seed_from_u64(99);
            bch.iter(|| cardinality::solve_rounding(&inst, &mut rng).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("exact_enumeration", n), &n, |bch, _| {
            bch.iter(|| exact_cardinality(&inst));
        });
    }
    let p = InstanceParams {
        n_modules: 3,
        attrs_per_module: 4,
        ..Default::default()
    };
    let inst = random_cardinality(&mut StdRng::seed_from_u64(7), &p);
    g.bench_function("exact_ip_branch_bound_n3", |bch| {
        bch.iter(|| cardinality::exact_ip(&inst, 1 << 18));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
