//! E9 — Theorem 5: cardinality-constraint optimizers. LP solve +
//! Algorithm-1 rounding vs exact enumeration vs exact IP, n sweep.
//!
//! Also hosts the **kernel-swap** comparison recorded in
//! `BENCH_kernel.json`: Γ-requirement derivation (the `is_safe` /
//! `group_count_distinct` hot path) through the row-at-a-time seed
//! semantics vs the interned columnar kernel vs the kernel plus the
//! memoizing safety oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sv_core::requirements::{cardinality_constraints_with, set_constraints_with};
use sv_core::safety::{KernelOracle, MemoSafetyOracle, NaiveOracle, SafetyOracle};
use sv_core::StandaloneModule;
use sv_gen::random::{random_cardinality, InstanceParams};
use sv_optimize::{cardinality, exact_cardinality, CardinalityInstance};
use sv_workflow::{library, ModuleId};

/// Full requirement derivation for one module: the set-constraints
/// lattice sweep followed by the cardinality Pareto frontier — exactly
/// what `sv-optimize` instance building runs per private module.
fn derive(oracle: &dyn SafetyOracle, gamma: u128) -> (usize, usize) {
    let s = set_constraints_with(oracle, gamma).unwrap().len();
    let c = cardinality_constraints_with(oracle, gamma).len();
    (s, c)
}

fn bench_kernel_swap(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_kernel_swap");
    g.sample_size(10);
    // A k = 10 one-one module (5 boolean wires in/out, N = 32 rows):
    // 2^10 subsets probed by the lattice sweep.
    let wf = library::one_one_chain(1, 5);
    let m = StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 20).unwrap();
    let gamma = 4u128;
    g.bench_function("derive_requirements/naive_rowwise", |bch| {
        bch.iter(|| {
            let o = NaiveOracle::new(m.clone());
            derive(&o, gamma)
        });
    });
    g.bench_function("derive_requirements/interned_kernel", |bch| {
        bch.iter(|| {
            let o = KernelOracle::new(&m);
            derive(&o, gamma)
        });
    });
    g.bench_function("derive_requirements/interned_plus_memo", |bch| {
        bch.iter(|| {
            let o = MemoSafetyOracle::new(m.clone());
            derive(&o, gamma)
        });
    });
    // End-to-end instance derivation through the shared-oracle path.
    let fig1 = library::fig1_workflow();
    g.bench_function("instance_from_workflow/fig1", |bch| {
        bch.iter(|| CardinalityInstance::from_workflow(&fig1, 2, 1 << 20).unwrap());
    });
    g.finish();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_cardinality");
    g.sample_size(10);
    for n in [3usize, 5, 6] {
        let p = InstanceParams {
            n_modules: n,
            attrs_per_module: 4,
            ..Default::default()
        };
        let inst = random_cardinality(&mut StdRng::seed_from_u64(n as u64), &p);
        g.bench_with_input(BenchmarkId::new("lp_rounding", n), &n, |bch, _| {
            let mut rng = StdRng::seed_from_u64(99);
            bch.iter(|| cardinality::solve_rounding(&inst, &mut rng).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("exact_enumeration", n), &n, |bch, _| {
            bch.iter(|| exact_cardinality(&inst));
        });
    }
    let p = InstanceParams {
        n_modules: 3,
        attrs_per_module: 4,
        ..Default::default()
    };
    let inst = random_cardinality(&mut StdRng::seed_from_u64(7), &p);
    g.bench_function("exact_ip_branch_bound_n3", |bch| {
        bch.iter(|| cardinality::exact_ip(&inst, 1 << 18));
    });
    g.finish();
}

criterion_group!(benches, bench, bench_kernel_swap);
criterion_main!(benches);
