//! E21 — **the serving tier end to end**: mixed probe/ingest traffic
//! for 512 tenants through the framed wire protocol (loopback
//! transport), measured per frame.
//!
//! Workload: [`TENANTS`] streaming tenants, each its own single-module
//! boolean workflow (`one_one_chain(1, 4)` — 8 attributes, ≤ 16
//! provenance rows) behind one [`Server`]. A seeded traffic tape of
//! [`FRAMES`] frames — [`BATCH`]-probe frames with every
//! [`INGEST_EVERY`]-th frame an ingest frame — is replayed by a
//! **single client thread** (per-frame latency is only meaningful
//! unqueued; cross-thread scaling is E19's subject). Relations and
//! memos are warmed first, so episodes are identical and every counter
//! below is exact on any machine.
//!
//! Reported into `BENCH_serve.json` via `--save-baseline`:
//!
//! * `loopback/ns_per_probe`, `loopback/probes_per_sec` — best of
//!   [`EPISODES`], probe frames only (wire encode + decode + dispatch +
//!   admission + `probe_batch` + response encode + decode).
//! * `latency/p50_ns`, `latency/p99_ns` — per-probe-frame latency
//!   quantiles of the best episode. CI floors `p99 / p50` at 1.0
//!   within-run (a quantile inversion means the harness is broken).
//! * `gate/throughput_floor_ok` — `1.0` iff the best episode sustains
//!   ≥ [`THROUGHPUT_FLOOR`] probes/sec. CI exact-gates this at `1.0`.
//! * `traffic/*` — deterministic traffic counters, exact-gated by CI:
//!   frame/probe/row totals, exactly one deliberate `Busy`, exactly one
//!   deliberate `StaleEpoch`, and the safe-answer checksum of the whole
//!   tape.
//!
//! Correctness anchor: every served answer of the final episode is
//! asserted identical to a direct `probe_batch` call against the same
//! tenants — the wire adds latency, never semantics.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;
use sv_core::safety::ProbeRequest;
use sv_relation::AttrSet;
use sv_serve::{
    AdmissionLimits, Client, LoopbackTransport, ServeError, Server, TenantConfig, TenantId,
    TenantRegistry,
};
use sv_workflow::{library, ModuleId, Workflow};

/// Registered tenants (the acceptance floor is ≥ 500).
const TENANTS: u64 = 512;
/// Boolean wires per tenant workflow: 8 attributes, 16 possible rows.
const WIRES: usize = 4;
/// Provenance rows ingested per tenant (of the 16 possible).
const ROWS_PER_TENANT: u32 = 12;
/// Probes per probe frame.
const BATCH: usize = 256;
/// Frames per episode (probe + ingest combined).
const FRAMES: usize = 816;
/// Every n-th frame of the tape is an ingest frame.
const INGEST_EVERY: usize = 16;
/// Rows per ingest frame (re-sent, so they dedup to 0 added — the
/// write-lock path is exercised without mutating warmed state).
const INGEST_ROWS: usize = 4;
/// Episodes; the best (minimum probe-frame time) is kept.
const EPISODES: usize = 3;
/// Γ values in the stream.
const GAMMAS: [u128; 5] = [1, 2, 4, 8, 16];
/// The single-core throughput floor, in probes per second.
const THROUGHPUT_FLOOR: f64 = 1_000_000.0;

/// One frame of the traffic tape.
enum Frame {
    Probe {
        tenant: TenantId,
        probes: Vec<ProbeRequest>,
    },
    Ingest {
        tenant: TenantId,
        rows: Vec<Vec<u32>>,
    },
}

fn tenant_workflow() -> Workflow {
    library::one_one_chain(1, WIRES)
}

/// The rows tenant `t` holds: a seeded, per-tenant subset of the input
/// space, as executed provenance rows.
fn tenant_rows(wf: &Workflow, tenant: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(0xE21_0000 + tenant);
    let mut inputs: Vec<u32> = (0..1u32 << WIRES).collect();
    for i in (1..inputs.len()).rev() {
        inputs.swap(i, rng.gen_range(0..i + 1));
    }
    inputs[..ROWS_PER_TENANT as usize]
        .iter()
        .map(|&bits| {
            let input: Vec<u32> = (0..WIRES).map(|w| (bits >> w) & 1).collect();
            wf.run(&input).expect("boolean input").values().to_vec()
        })
        .collect()
}

/// The seeded traffic tape: probe frames spread across all tenants,
/// with every [`INGEST_EVERY`]-th frame re-ingesting rows.
fn make_tape(wf: &Workflow) -> Vec<Frame> {
    let mut rng = StdRng::seed_from_u64(0xE21);
    let space = 1u64 << (2 * WIRES);
    (0..FRAMES)
        .map(|f| {
            let tenant = TenantId(1 + rng.gen_range(0..TENANTS));
            if f % INGEST_EVERY == INGEST_EVERY - 1 {
                let rows = tenant_rows(wf, tenant.0 - 1);
                let start = rng.gen_range(0..rows.len() - INGEST_ROWS);
                Frame::Ingest {
                    tenant,
                    rows: rows[start..start + INGEST_ROWS].to_vec(),
                }
            } else {
                Frame::Probe {
                    tenant,
                    probes: (0..BATCH)
                        .map(|_| {
                            ProbeRequest::new(
                                ModuleId(0),
                                AttrSet::from_word(rng.gen_range(0..space)),
                                GAMMAS[rng.gen_range(0..GAMMAS.len())],
                            )
                        })
                        .collect(),
                }
            }
        })
        .collect()
}

/// Replays the tape once. Returns (per-probe-frame latencies in ns,
/// safe answers in tape order, rows added).
fn replay(client: &mut Client, tape: &[Frame]) -> (Vec<f64>, Vec<bool>, u64) {
    let mut latencies = Vec::with_capacity(tape.len());
    let mut answers = Vec::new();
    let mut added = 0u64;
    for frame in tape {
        match frame {
            Frame::Probe { tenant, probes } => {
                let start = Instant::now();
                let outcomes = client.probe(*tenant, probes).expect("valid probe frame");
                latencies.push(start.elapsed().as_nanos() as f64);
                answers.extend(outcomes.into_iter().map(|o| o.safe));
            }
            Frame::Ingest { tenant, rows } => {
                added += client
                    .ingest(*tenant, rows)
                    .expect("valid ingest frame")
                    .added;
            }
        }
    }
    (latencies, answers, added)
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn run_serving_tier(_c: &mut Criterion) {
    let wf = tenant_workflow();
    let registry = Arc::new(TenantRegistry::new());
    for t in 1..=TENANTS {
        registry
            .create(TenantId(t), TenantConfig::new(&wf).streaming(true))
            .unwrap();
    }
    let server = Arc::new(Server::new(Arc::clone(&registry)));
    let transport = LoopbackTransport::new(Arc::clone(&server));
    let mut client = Client::connect(&transport).unwrap();

    // Load phase: land every tenant's rows through the wire.
    let mut loaded = 0u64;
    for t in 1..=TENANTS {
        let reply = client
            .ingest(TenantId(t), &tenant_rows(&wf, t - 1))
            .unwrap();
        loaded += reply.added;
    }
    assert_eq!(loaded, TENANTS * u64::from(ROWS_PER_TENANT));

    // Warm-up replay: fills every tenant's memo; relations are already
    // complete, so measured episodes are identical and deterministic.
    let tape = make_tape(&wf);
    let (_, reference_answers, warm_added) = replay(&mut client, &tape);
    assert_eq!(warm_added, 0, "tape rows dedup against loaded rows");
    let probe_frames = tape
        .iter()
        .filter(|f| matches!(f, Frame::Probe { .. }))
        .count();
    let total_probes = (probe_frames * BATCH) as f64;

    // Measured episodes: single client thread, per-frame latency.
    let mut best_sum = f64::INFINITY;
    let mut best_latencies = Vec::new();
    for _ in 0..EPISODES {
        let (latencies, answers, added) = replay(&mut client, &tape);
        assert_eq!(answers, reference_answers, "episodes must be identical");
        assert_eq!(added, 0);
        let sum: f64 = latencies.iter().sum();
        if sum < best_sum {
            best_sum = sum;
            best_latencies = latencies;
        }
    }
    best_latencies.sort_unstable_by(f64::total_cmp);
    let ns_per_probe = best_sum / total_probes;
    let probes_per_sec = 1e9 / ns_per_probe;
    criterion::record_metric("e21_serving_tier/loopback/ns_per_probe", ns_per_probe);
    criterion::record_metric("e21_serving_tier/loopback/probes_per_sec", probes_per_sec);
    criterion::record_metric(
        "e21_serving_tier/latency/p50_ns",
        quantile(&best_latencies, 0.50),
    );
    criterion::record_metric(
        "e21_serving_tier/latency/p99_ns",
        quantile(&best_latencies, 0.99),
    );
    criterion::record_metric(
        "e21_serving_tier/gate/throughput_floor_ok",
        f64::from(u8::from(probes_per_sec >= THROUGHPUT_FLOOR)),
    );

    // ── Deterministic traffic counters (exact-gated) ───────────────
    // One deliberate Busy: a tenant with a 4-probe frame bound, sent 8.
    let busy_tenant = registry
        .create(
            TenantId(TENANTS + 1),
            TenantConfig::prebuilt(
                sv_core::safety::WorkflowOracles::for_workflow_streaming(&wf).unwrap(),
            )
            .limits(AdmissionLimits {
                max_batch_requests: 4,
                ..AdmissionLimits::default()
            }),
        )
        .unwrap();
    let oversized: Vec<ProbeRequest> = (0..8)
        .map(|w| ProbeRequest::new(ModuleId(0), AttrSet::from_word(w), 2))
        .collect();
    let busy = match client.probe(TenantId(TENANTS + 1), &oversized) {
        Err(ServeError::Busy(_)) => 1u64,
        other => panic!("expected Busy, got {other:?}"),
    };
    assert_eq!(busy_tenant.stats().busy_rejections, 1);
    // One deliberate StaleEpoch: probe tenant 1 conditioned on a past
    // epoch (its relation advanced past epoch 0 when the load frame
    // applied).
    let stale_probe = [ProbeRequest::new(ModuleId(0), AttrSet::from_word(1), 2).at_epoch(0)];
    let stale = match client.probe(TenantId(1), &stale_probe) {
        Err(ServeError::Fault(sv_core::wire::ServeFault::StaleEpoch { .. })) => 1u64,
        other => panic!("expected StaleEpoch, got {other:?}"),
    };

    let safe_checksum = reference_answers.iter().filter(|&&s| s).count() as f64;
    criterion::record_metric("e21_serving_tier/traffic/probe_frames", probe_frames as f64);
    criterion::record_metric("e21_serving_tier/traffic/probes", total_probes);
    criterion::record_metric(
        "e21_serving_tier/traffic/ingest_frames",
        (FRAMES - probe_frames) as f64,
    );
    criterion::record_metric("e21_serving_tier/traffic/rows_loaded", loaded as f64);
    criterion::record_metric("e21_serving_tier/traffic/busy", busy as f64);
    criterion::record_metric("e21_serving_tier/traffic/stale", stale as f64);
    criterion::record_metric("e21_serving_tier/traffic/safe_checksum", safe_checksum);

    // ── Correctness anchor: the wire adds no semantics ─────────────
    for frame in &tape {
        if let Frame::Probe { tenant, probes } = frame {
            let served = client.probe(*tenant, probes).unwrap();
            let tenant = registry.get(*tenant).unwrap();
            let direct = tenant.oracles().probe_batch(probes).unwrap();
            assert_eq!(served, direct, "loopback must equal direct probe_batch");
        }
    }

    // Environment rows.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    criterion::record_metric("e21_serving_tier/env/available_parallelism", cores as f64);
    criterion::record_metric("e21_serving_tier/env/tenants", TENANTS as f64);
    criterion::record_metric("e21_serving_tier/env/batch", BATCH as f64);
    criterion::record_metric("e21_serving_tier/env/frames", FRAMES as f64);
}

criterion_group!(benches, run_serving_tier);
criterion_main!(benches);
