//! E11 — Theorem 7: the (γ+1)-greedy under bounded data sharing, and
//! the vertex-cover gadget (Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sv_gen::random::{random_set, InstanceParams};
use sv_gen::reductions::vertexcover_to_cardinality;
use sv_gen::vertexcover::CubicGraph;
use sv_optimize::greedy::{greedy_cardinality, greedy_set};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_greedy_sharing");
    g.sample_size(20);
    for shared in [0usize, 2] {
        let p = InstanceParams {
            n_modules: 8,
            attrs_per_module: 4,
            shared_inputs: shared,
            ..Default::default()
        };
        let inst = random_set(&mut StdRng::seed_from_u64(shared as u64), &p);
        g.bench_with_input(BenchmarkId::new("greedy_set", shared), &shared, |bch, _| {
            bch.iter(|| greedy_set(&inst));
        });
    }
    let graph = CubicGraph::random(&mut StdRng::seed_from_u64(5), 12, 4);
    let red = vertexcover_to_cardinality(&graph);
    g.bench_function("vertexcover_gadget_greedy", |bch| {
        bch.iter(|| greedy_cardinality(&red.instance));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
