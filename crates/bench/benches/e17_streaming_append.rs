//! E17 — **streaming provenance**: batched appends through the interned
//! kernel vs. rebuilding the kernel (and losing every memo above it)
//! per batch.
//!
//! Workload: a `k = 8` module (4 inputs × 4 outputs, domain 64 each,
//! output = a fixed hash of the input so the FD `I -> O` holds) with
//! `N = 10^5` base executions, then `BATCHES` batches of `BATCH_ROWS`
//! arriving executions (mostly fresh inputs, a few duplicates to
//! exercise set-semantics dedup). After every batch the live monitor
//! re-asks four standing `is_safe(V, Γ)` questions.
//!
//! Two maintenance strategies, measured wall-clock over the whole
//! stream (best of [`EPISODES`] episodes) and reported as **amortized
//! ns per appended row** into `BENCH_stream.json` via `--save-baseline`:
//!
//! * `incremental` — [`StandaloneModule::append_execution`] through a
//!   persistent [`MemoSafetyOracle`]: warm group indexes are extended
//!   in place, and the standing probes ride the epoch-stamped level
//!   cache (the monotone shortcut answers them with zero kernel work
//!   while no new visible-input group appears).
//! * `full_rebuild` — the pre-PR-3 seed behavior: every batch rebuilds
//!   the [`StandaloneModule`] (columnar build, FD re-check, cold group
//!   indexes) and a fresh oracle re-answers the standing probes from
//!   scratch.
//!
//! A third row isolates the **value layer**: `insert_batch` alone on a
//! [`Relation`] (sorted-runs storage — each batch becomes its own run
//! under the logarithmic merge policy instead of an O(N) merge into one
//! sorted vector), reported as
//! `amortized_ns_per_row/value_insert_sorted_runs`.
//!
//! The CI bench gate enforces the within-run floor
//! `full_rebuild / incremental ≥ 5` (machine-independent) plus an
//! absolute regression bound on the incremental path; see
//! `docs/BENCHMARKS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Instant;
use sv_core::safety::SafetyOracle;
use sv_core::{MemoSafetyOracle, StandaloneModule};
use sv_relation::{AttrDef, AttrSet, Domain, Relation, Schema, Tuple};

/// Base relation size (the ISSUE's `N = 10^5` acceptance point).
const N_BASE: usize = 100_000;
/// Appended rows per batch.
const BATCH_ROWS: usize = 64;
/// Number of appended batches per episode.
const BATCHES: usize = 24;
/// Episodes per strategy; the best (minimum) amortized cost is kept,
/// mirroring the criterion shim's best-of-windows policy.
const EPISODES: usize = 3;
/// Γ for the four standing safety questions.
const GAMMA: u128 = 4;

/// Per-attribute domain size (64⁴ input space ≫ N_BASE, so fresh
/// inputs keep arriving; 64² = 4096 ≪ N_BASE, so two-input projections
/// saturate and the standing probes stay shortcut-eligible).
const DOM: u32 = 64;

/// Standing hidden sets: each hides two inputs and two outputs, so the
/// visible-input grouping (64² combos) is saturated by the base rows —
/// appends cannot create new key groups and the memoized oracle may
/// answer from the cache.
const PROBE_MASKS: [u64; 4] = [0b0011_0011, 0b0011_1100, 0b1100_0011, 0b1100_1100];

/// Deterministic output mix: `o_j = mix(x, j)`, so `I -> O` holds.
fn out_val(code: u64, j: u64) -> u32 {
    let mut z = code
        .wrapping_add(j.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    (z % u64::from(DOM)) as u32
}

fn row_for_input(code: u64) -> Vec<u32> {
    let mut vals = Vec::with_capacity(8);
    for i in 0..4u64 {
        vals.push(((code >> (6 * i)) % u64::from(DOM)) as u32);
    }
    for j in 0..4u64 {
        vals.push(out_val(code, j));
    }
    vals
}

fn schema() -> Schema {
    Schema::new(
        (0..8)
            .map(|i| AttrDef {
                name: if i < 4 {
                    format!("i{}", i + 1)
                } else {
                    format!("o{}", i - 3)
                },
                domain: Domain::new(DOM),
            })
            .collect(),
    )
}

/// The deterministic stream: base rows plus per-batch appends (fresh
/// inputs with a sprinkle of base duplicates).
struct Stream {
    base: Vec<Vec<u32>>,
    batches: Vec<Vec<Tuple>>,
}

fn make_stream(seed: u64) -> Stream {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = u64::from(DOM).pow(4);
    let mut seen: HashSet<u64> = HashSet::with_capacity(N_BASE * 2);
    let mut fresh_input = |rng: &mut StdRng| loop {
        let code = rng.gen_range(0u64..space);
        if seen.insert(code) {
            return code;
        }
    };
    let base: Vec<Vec<u32>> = (0..N_BASE)
        .map(|_| row_for_input(fresh_input(&mut rng)))
        .collect();
    let batches: Vec<Vec<Tuple>> = (0..BATCHES)
        .map(|b| {
            (0..BATCH_ROWS)
                .map(|i| {
                    if i % 8 == 7 {
                        // A duplicate of a base execution: must dedupe.
                        Tuple::new(base[(b * 131 + i * 17) % N_BASE].clone())
                    } else {
                        Tuple::new(row_for_input(fresh_input(&mut rng)))
                    }
                })
                .collect()
        })
        .collect();
    Stream { base, batches }
}

fn build_module(rows: Vec<Vec<u32>>) -> StandaloneModule {
    StandaloneModule::new(
        Relation::from_values(schema(), rows).expect("generated rows are in-domain"),
        AttrSet::from_indices(&[0, 1, 2, 3]),
        AttrSet::from_indices(&[4, 5, 6, 7]),
    )
    .expect("output is a function of the input")
}

fn ask_standing_probes(oracle: &mut MemoSafetyOracle) -> u32 {
    PROBE_MASKS
        .iter()
        .map(|&m| u32::from(oracle.is_safe_hidden_word(m, GAMMA)))
        .sum()
}

/// One incremental episode: returns (elapsed ns, appended rows, final oracle).
fn run_incremental(stream: &Stream) -> (f64, usize, MemoSafetyOracle) {
    let mut oracle = MemoSafetyOracle::new(build_module(stream.base.clone()));
    // Warm the standing probes and (untimed) prime the append path's
    // dedup grouping so the timed loop measures steady state.
    ask_standing_probes(&mut oracle);
    oracle
        .append_execution(&[Tuple::new(stream.base[0].clone())])
        .expect("duplicate priming row");
    let mut appended = 0usize;
    let start = Instant::now();
    for batch in &stream.batches {
        appended += oracle.append_execution(batch).expect("valid stream");
        ask_standing_probes(&mut oracle);
    }
    (start.elapsed().as_nanos() as f64, appended, oracle)
}

/// One full-rebuild episode: per batch, merge rows into the value-layer
/// relation, rebuild the module + oracle from scratch, re-ask probes.
fn run_rebuild(stream: &Stream) -> (f64, usize, MemoSafetyOracle) {
    let mut acc = Relation::from_values(schema(), stream.base.clone()).expect("valid base");
    let inputs = AttrSet::from_indices(&[0, 1, 2, 3]);
    let outputs = AttrSet::from_indices(&[4, 5, 6, 7]);
    let mut oracle = MemoSafetyOracle::new(
        StandaloneModule::new(acc.clone(), inputs.clone(), outputs.clone()).expect("function"),
    );
    ask_standing_probes(&mut oracle);
    let mut appended = 0usize;
    let start = Instant::now();
    for batch in &stream.batches {
        appended += acc.insert_batch(batch).expect("valid stream");
        oracle = MemoSafetyOracle::new(
            StandaloneModule::new(acc.clone(), inputs.clone(), outputs.clone()).expect("function"),
        );
        ask_standing_probes(&mut oracle);
    }
    (start.elapsed().as_nanos() as f64, appended, oracle)
}

/// One value-layer-only episode: `Relation::insert_batch` per batch
/// with **no** module rebuild — isolates the sorted-runs insert path
/// (logarithmic merge; each batch lands as its own run instead of a
/// full O(N) merge into one vector).
fn run_value_insert(stream: &Stream) -> (f64, usize) {
    let mut acc = Relation::from_values(schema(), stream.base.clone()).expect("valid base");
    let mut appended = 0usize;
    let start = Instant::now();
    for batch in &stream.batches {
        appended += acc.insert_batch(batch).expect("valid stream");
    }
    (start.elapsed().as_nanos() as f64, appended)
}

fn run_streaming_experiment(_c: &mut Criterion) {
    let mut best_inc = f64::INFINITY;
    let mut best_reb = f64::INFINITY;
    let mut best_val = f64::INFINITY;
    let mut counters: Option<(u64, u64, u64)> = None;
    for episode in 0..EPISODES {
        let stream = make_stream(0xE17 + episode as u64);
        let (inc_ns, inc_rows, inc_oracle) = run_incremental(&stream);
        let (reb_ns, reb_rows, reb_oracle) = run_rebuild(&stream);
        let (val_ns, val_rows) = run_value_insert(&stream);
        assert_eq!(inc_rows, reb_rows, "both strategies saw the same stream");
        assert_eq!(val_rows, reb_rows, "value layer saw the same stream");
        assert!(inc_rows > 0);

        // Correctness anchor: the streamed oracle answers exactly like
        // the from-scratch rebuild on the standing probes.
        let inc_oracle = inc_oracle;
        for &m in &PROBE_MASKS {
            let visible = AttrSet::from_word(!m & 0xFF);
            assert_eq!(
                inc_oracle.privacy_level(&visible),
                reb_oracle.privacy_level(&visible),
                "mask {m:#b}"
            );
        }
        best_inc = best_inc.min(inc_ns / inc_rows as f64);
        best_reb = best_reb.min(reb_ns / reb_rows as f64);
        best_val = best_val.min(val_ns / val_rows as f64);
        if counters.is_none() {
            counters = Some((
                inc_oracle.monotone_shortcut_hits(),
                inc_oracle.revalidations(),
                inc_oracle.relation_epoch(),
            ));
        }
    }
    criterion::record_metric(
        "e17_streaming_append/amortized_ns_per_row/incremental",
        best_inc,
    );
    criterion::record_metric(
        "e17_streaming_append/amortized_ns_per_row/full_rebuild",
        best_reb,
    );
    criterion::record_metric(
        "e17_streaming_append/amortized_ns_per_row/value_insert_sorted_runs",
        best_val,
    );
    criterion::record_metric(
        "e17_streaming_append/speedup_incremental",
        best_reb / best_inc,
    );
    let (shortcuts, revalidations, epochs) = counters.expect("at least one episode");
    criterion::record_metric(
        "e17_streaming_append/oracle/monotone_shortcut_hits",
        shortcuts as f64,
    );
    criterion::record_metric(
        "e17_streaming_append/oracle/revalidations",
        revalidations as f64,
    );
    criterion::record_metric("e17_streaming_append/oracle/epochs", epochs as f64);
    criterion::record_metric("e17_streaming_append/env/n_base", N_BASE as f64);
    criterion::record_metric("e17_streaming_append/env/batch_rows", BATCH_ROWS as f64);
    criterion::record_metric("e17_streaming_append/env/batches", BATCHES as f64);
}

criterion_group!(benches, run_streaming_experiment);
criterion_main!(benches);
