//! E18 — **serving throughput**: the batched probe engine against the
//! one-at-a-time serving path, at "many instances × many modules" scale.
//!
//! Workload: [`INSTANCES`] independent instances of a 4-private-module
//! one-one workflow (`k = 20`, 1024 rows per module), serving a seeded stream of
//! [`TOTAL`] ≥ 10⁵ mixed-module `(V, Γ)` probes. Visible sets are drawn
//! from a per-module pool of [`WORD_POOL`] views — the serving-tier
//! regime where heavy traffic keeps re-asking a bounded set of
//! questions (different users, different Γ, same views).
//!
//! Three strategies answer the **same stream** (answers are asserted
//! identical) and are measured wall-clock over whole episodes (best of
//! [`EPISODES`]), reported as ns/probe **and** probes/sec into
//! `BENCH_serve.json` via `--save-baseline`:
//!
//! * `one_at_a_time` — the pre-batching serving path: every probe is a
//!   single [`StandaloneModule::is_safe_word`] call into its module's
//!   kernel (group indexes warm, but each request pays a full Lemma-4
//!   pair pass).
//! * `batched` — the serving engine: the stream is cut into
//!   [`BATCH`]-sized mixed-module windows, each routed through
//!   [`WorkflowOracles::probe_batch`] (cache partition + one kernel
//!   batch pass per module for the distinct misses).
//! * `sequential_memo` — ablation row isolating the cache's share: the
//!   same memoized oracles, probed one call at a time. The batched
//!   engine must at least match it; the gated ≥ 3× floor is
//!   `one_at_a_time / batched`.
//!
//! **Multi-core scaling rows** (ROADMAP "multi-core scaling
//! measurement"): the batched engine also runs with instances
//! work-stolen across 1/2/4/8 serving threads
//! (`…/serve_scaling/threads/T`), plus an `env/available_parallelism`
//! row, so the first multi-core runner refreshes the scaling curve
//! mechanically by re-running this bench with `--save-baseline`.
//!
//! CI gates (see `docs/BENCHMARKS.md`): absolute 2× regression bound on
//! the batched ns/probe, within-run `one_at_a_time / batched ≥ 3`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use sv_core::safety::{ProbeRequest, WorkflowOracles};
use sv_core::{SafetyOracle, StandaloneModule};
use sv_relation::AttrSet;
use sv_workflow::{library, ModuleId, Workflow};

/// Independent workflow instances (tenants).
const INSTANCES: usize = 8;
/// Private modules per instance (the one-one chain length).
const MODULES: usize = 4;
/// Boolean wires per module level: `k = 2 × WIRES = 20` attributes and
/// `2^WIRES = 1024` provenance rows per module relation — the E16
/// serving-scale module, where a per-probe Lemma-4 pair pass is real
/// work to amortize.
const WIRES: usize = 10;
/// Total probes per episode (the ISSUE's ≥ 10⁵ acceptance point).
const TOTAL: usize = 320_000;
/// Distinct visible-set words per module the stream draws from.
const WORD_POOL: usize = 64;
/// Probes per mixed-module serving window.
const BATCH: usize = 4_096;
/// Episodes per strategy; the best (minimum) wall-clock is kept.
const EPISODES: usize = 3;
/// Γ values in the stream (the modules' levels are powers of two up to
/// 2⁶, so these mix safe, unsafe and boundary answers).
const GAMMAS: [u128; 5] = [2, 4, 8, 16, 64];
/// Serving-thread counts for the instance-sharded scaling rows.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Enumeration budget for materializing the module relations.
const BUDGET: u128 = 1 << 20;

/// One serving request: which instance/module, which view, which Γ.
#[derive(Clone, Copy)]
struct Probe {
    instance: usize,
    module: usize,
    word: u64,
    gamma: u128,
}

fn workflow() -> Workflow {
    library::one_one_chain(MODULES, WIRES)
}

/// The seeded probe stream: interleaved across instances and modules,
/// visible words drawn from a per-module pool with heavy repetition.
fn make_stream(seed: u64) -> Vec<Probe> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = 2 * WIRES;
    let space = 1u64 << k;
    let pools: Vec<Vec<u64>> = (0..MODULES)
        .map(|_| (0..WORD_POOL).map(|_| rng.gen_range(0..space)).collect())
        .collect();
    (0..TOTAL)
        .map(|_| {
            let module = rng.gen_range(0..MODULES);
            Probe {
                instance: rng.gen_range(0..INSTANCES),
                module,
                word: pools[module][rng.gen_range(0..WORD_POOL)],
                gamma: GAMMAS[rng.gen_range(0..GAMMAS.len())],
            }
        })
        .collect()
}

/// The per-instance standalone modules of the one-at-a-time baseline
/// (each instance materializes its own copies, as separate tenants do).
fn build_modules(wf: &Workflow) -> Vec<Vec<StandaloneModule>> {
    (0..INSTANCES)
        .map(|_| {
            wf.private_modules()
                .iter()
                .map(|&id| StandaloneModule::from_workflow_module(wf, id, BUDGET).unwrap())
                .collect()
        })
        .collect()
}

/// One one-at-a-time episode: every probe is a single kernel call.
fn run_one_at_a_time(stream: &[Probe], wf: &Workflow) -> (f64, Vec<bool>) {
    let instances = build_modules(wf);
    let mut answers = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for p in stream {
        let m = &instances[p.instance][p.module];
        answers.push(m.is_safe_word(p.word, p.gamma).expect("k = 20 fits a word"));
    }
    (start.elapsed().as_nanos() as f64, answers)
}

/// One sequential-memo episode: same oracles as the batched engine,
/// probed one call at a time. Visible sets are materialized up front —
/// every strategy receives its requests in ready-to-serve form; the
/// timed section is the answering engine alone.
fn run_sequential_memo(stream: &[Probe], wf: &Workflow) -> (f64, Vec<bool>) {
    let instances: Vec<WorkflowOracles> = (0..INSTANCES)
        .map(|_| WorkflowOracles::for_workflow(wf, BUDGET).unwrap())
        .collect();
    let ids = instances[0].module_ids();
    let prepared: Vec<(usize, ModuleId, AttrSet, u128)> = stream
        .iter()
        .map(|p| {
            (
                p.instance,
                ids[p.module],
                AttrSet::from_word(p.word),
                p.gamma,
            )
        })
        .collect();
    let mut answers = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for (inst, id, visible, gamma) in &prepared {
        let oracle = instances[*inst].oracle(*id).expect("covered module");
        answers.push(oracle.is_safe(visible, *gamma));
    }
    (start.elapsed().as_nanos() as f64, answers)
}

/// The batched episode's pre-routed stream: per serving window, each
/// instance's sub-batch of [`ProbeRequest`]s plus the stream positions
/// its outcomes scatter back to. Built once per episode, outside the
/// timed section (marshalling requests is the transport tier's job; the
/// measured engine is [`WorkflowOracles::probe_batch`]).
type RoutedStream = Vec<Vec<(usize, Vec<usize>, Vec<ProbeRequest>)>>;

fn route_stream(stream: &[Probe], ids: &[ModuleId]) -> RoutedStream {
    stream
        .chunks(BATCH)
        .enumerate()
        .map(|(w, window)| {
            let mut positions: Vec<Vec<usize>> = (0..INSTANCES).map(|_| Vec::new()).collect();
            let mut requests: Vec<Vec<ProbeRequest>> = (0..INSTANCES).map(|_| Vec::new()).collect();
            for (off, p) in window.iter().enumerate() {
                positions[p.instance].push(w * BATCH + off);
                requests[p.instance].push(ProbeRequest::new(
                    ids[p.module],
                    AttrSet::from_word(p.word),
                    p.gamma,
                ));
            }
            positions
                .into_iter()
                .zip(requests)
                .enumerate()
                .filter(|(_, (_, reqs))| !reqs.is_empty())
                .map(|(i, (pos, reqs))| (i, pos, reqs))
                .collect()
        })
        .collect()
}

/// One batched episode: the pre-routed stream is served window by
/// window through each instance's batch engine. Returns (elapsed ns,
/// answers, total kernel misses across instances).
fn run_batched(stream: &[Probe], wf: &Workflow) -> (f64, Vec<bool>, u64) {
    let instances: Vec<WorkflowOracles> = (0..INSTANCES)
        .map(|_| WorkflowOracles::for_workflow(wf, BUDGET).unwrap())
        .collect();
    let ids = instances[0].module_ids();
    let routed = route_stream(stream, &ids);
    let mut answers = vec![false; stream.len()];
    let start = Instant::now();
    for window in &routed {
        for (inst, positions, requests) in window {
            let outcomes = instances[*inst].probe_batch(requests).expect("valid batch");
            for (&pos, o) in positions.iter().zip(&outcomes) {
                answers[pos] = o.safe;
            }
        }
    }
    let ns = start.elapsed().as_nanos() as f64;
    let misses = instances.iter().map(WorkflowOracles::total_misses).sum();
    (ns, answers, misses)
}

/// One sharded episode: instances are work-stolen across `threads`
/// serving workers, each serving its claimed instance's whole substream
/// through the batch engine — since PR 5 `probe_batch` takes `&self`,
/// the workers borrow the instances directly (no per-instance mutex;
/// e19 measures many threads against *one* shared instance). Returns
/// elapsed ns.
fn run_batched_sharded(stream: &[Probe], wf: &Workflow, threads: usize) -> f64 {
    let instances: Vec<WorkflowOracles> = (0..INSTANCES)
        .map(|_| WorkflowOracles::for_workflow(wf, BUDGET).unwrap())
        .collect();
    let ids = instances[0].module_ids();
    // Pre-split the stream per instance (routing is the serving tier's
    // job; the measured section is the engines).
    let mut per_instance: Vec<Vec<ProbeRequest>> = (0..INSTANCES).map(|_| Vec::new()).collect();
    for p in stream {
        per_instance[p.instance].push(ProbeRequest::new(
            ids[p.module],
            AttrSet::from_word(p.word),
            p.gamma,
        ));
    }
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads.min(INSTANCES) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= INSTANCES {
                    break;
                }
                let oracles = &instances[i];
                for window in per_instance[i].chunks(BATCH) {
                    oracles.probe_batch(window).expect("valid batch");
                }
            });
        }
    });
    start.elapsed().as_nanos() as f64
}

fn run_serving_experiment(_c: &mut Criterion) {
    let wf = workflow();
    let mut best_one = f64::INFINITY;
    let mut best_memo = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    let mut batched_misses = 0u64;
    for episode in 0..EPISODES {
        let stream = make_stream(0xE18 + episode as u64);
        let (one_ns, one_answers) = run_one_at_a_time(&stream, &wf);
        let (memo_ns, memo_answers) = run_sequential_memo(&stream, &wf);
        let (batched_ns, batched_answers, misses) = run_batched(&stream, &wf);
        // Correctness anchor: all three strategies agree on every probe.
        assert_eq!(one_answers, memo_answers, "episode {episode}");
        assert_eq!(one_answers, batched_answers, "episode {episode}");
        best_one = best_one.min(one_ns / TOTAL as f64);
        best_memo = best_memo.min(memo_ns / TOTAL as f64);
        best_batched = best_batched.min(batched_ns / TOTAL as f64);
        batched_misses = misses;
    }
    for (name, ns) in [
        ("one_at_a_time", best_one),
        ("sequential_memo", best_memo),
        ("batched", best_batched),
    ] {
        criterion::record_metric(&format!("e18_serving_throughput/ns_per_probe/{name}"), ns);
        criterion::record_metric(
            &format!("e18_serving_throughput/probes_per_sec/{name}"),
            1e9 / ns,
        );
    }
    criterion::record_metric(
        "e18_serving_throughput/speedup_batched_vs_one_at_a_time",
        best_one / best_batched,
    );
    criterion::record_metric(
        "e18_serving_throughput/speedup_batched_vs_sequential_memo",
        best_memo / best_batched,
    );
    criterion::record_metric(
        "e18_serving_throughput/oracle/kernel_misses_batched",
        batched_misses as f64,
    );

    // Multi-core scaling rows: instances sharded across serving threads.
    let stream = make_stream(0xE18);
    for &t in &THREADS {
        let mut best = f64::INFINITY;
        for _ in 0..EPISODES {
            best = best.min(run_batched_sharded(&stream, &wf, t) / TOTAL as f64);
        }
        criterion::record_metric(
            &format!("e18_serving_throughput/serve_scaling/threads/{t}"),
            best,
        );
    }
    if let (Some(t1), Some(t8)) = (
        criterion::recorded_value("e18_serving_throughput/serve_scaling/threads/1"),
        criterion::recorded_value("e18_serving_throughput/serve_scaling/threads/8"),
    ) {
        criterion::record_metric("e18_serving_throughput/serve_scaling/speedup_8t", t1 / t8);
    }
    criterion::record_metric(
        "e18_serving_throughput/env/available_parallelism",
        std::thread::available_parallelism().map_or(0.0, |p| p.get() as f64),
    );
    criterion::record_metric("e18_serving_throughput/env/instances", INSTANCES as f64);
    criterion::record_metric("e18_serving_throughput/env/modules", MODULES as f64);
    criterion::record_metric("e18_serving_throughput/env/probes", TOTAL as f64);
    criterion::record_metric("e18_serving_throughput/env/word_pool", WORD_POOL as f64);
    criterion::record_metric("e18_serving_throughput/env/batch", BATCH as f64);
}

criterion_group!(benches, run_serving_experiment);
criterion_main!(benches);
