//! E23 — **parallel ingest**: concurrent writers through the sharded
//! ingest path and the durable group-commit lane, measured end to end.
//!
//! Workload: [`WRITERS`] = 1/2/4/8 writer threads, each owning one
//! streaming tenant (a `one_one_chain(1, 4)` — 8 boolean attributes)
//! behind one [`DurableRegistry`]. Every writer plays
//! [`FRAMES_PER_WRITER`] frames of [`ROWS_PER_FRAME`] valid rows
//! through the full ack'd path (`submit` + `wait_durable` per frame),
//! so concurrent acks coalesce onto shared fsyncs through the commit
//! lane's bounded wait window.
//!
//! A separate single-writer **pipelined** pass (submit [`GROUP`]
//! frames, then one `wait_durable`) pins the lane's deterministic
//! counters: exactly `frames / GROUP` fsyncs, everything else
//! coalesced.
//!
//! Reported into `BENCH_durable.json` via `--save-baseline`:
//!
//! * `tN/rows_per_sec` — ack'd ingest throughput at N writers, best of
//!   [`EPISODES`] runs.
//! * `tN/fsyncs_per_frame`, `tN/coalesced_fraction` — how much of the
//!   fsync cost the lane absorbed at N writers (schedule-dependent, so
//!   reported but not exact-gated).
//! * `pipelined/rows_per_sec` — single-writer pipelined throughput.
//! * `exact/*` — deterministic counters, exact-gated by CI: per-run
//!   frame counts, the pipelined run's fsync/coalesce split, and the
//!   `frames_synced == fsyncs + coalesced` identity plus
//!   every-frame-acked flag across **all** runs.
//!
//! The correctness of what these runs produce — live ≡ recovered ≡
//! rebuilt-from-scratch at every thread count — is proved by
//! `sv-durable/tests/parallel_ingest_prop.rs`; this bench pins the
//! throughput and the coalesce accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sv_core::safety::IngestBatch;
use sv_durable::{DurableRegistry, LaneStats};
use sv_relation::Tuple;
use sv_serve::{TenantConfig, TenantId};
use sv_workflow::{library, Workflow};

/// Writer-thread counts swept by the bench.
const WRITERS: [usize; 4] = [1, 2, 4, 8];
/// Boolean wires per tenant workflow: 8 attributes, 16 distinct rows.
const WIRES: usize = 4;
/// Ack'd frames each writer plays per run.
const FRAMES_PER_WRITER: usize = 192;
/// Rows per ingest frame.
const ROWS_PER_FRAME: usize = 4;
/// Frames covered by one `wait_durable` in the pipelined pass.
const GROUP: usize = 64;
/// Frames in the single-writer pipelined pass.
const PIPELINE_FRAMES: usize = 512;
/// Group-commit window for the concurrent runs.
const COMMIT_WINDOW: Duration = Duration::from_micros(100);
/// Episodes per thread count; the best (minimum) time is kept.
const EPISODES: usize = 2;

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sv-e23-{tag}-{}", std::process::id()))
}

fn tenant_workflow() -> Workflow {
    library::one_one_chain(1, WIRES)
}

fn chain_row(wf: &Workflow, bits: u32) -> Tuple {
    let input: Vec<u32> = (0..WIRES).map(|w| (bits >> w) & 1).collect();
    wf.run(&input).expect("chain accepts all boolean inputs")
}

/// One concurrent run: `threads` writers, each acking every frame.
/// Returns (elapsed ns, lane stats).
fn run_writers(dir: &std::path::Path, wf: &Workflow, threads: usize) -> (f64, LaneStats) {
    let _ = std::fs::remove_dir_all(dir);
    let reg = Arc::new(DurableRegistry::create(dir).expect("create durable dir"));
    reg.set_commit_window(COMMIT_WINDOW);
    for w in 0..threads {
        reg.register(TenantId(1 + w as u64), TenantConfig::new(wf))
            .expect("register");
    }
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE23 ^ (w as u64) << 16);
                let tid = TenantId(1 + w as u64);
                for _ in 0..FRAMES_PER_WRITER {
                    let rows: Vec<Tuple> = (0..ROWS_PER_FRAME)
                        .map(|_| chain_row(wf, rng.gen_range(0..1u32 << WIRES)))
                        .collect();
                    reg.ingest(tid, &rows).expect("valid frames always land");
                }
            });
        }
    });
    let ns = start.elapsed().as_nanos() as f64;
    let stats = reg.lane_stats();
    drop(reg);
    let _ = std::fs::remove_dir_all(dir);
    (ns, stats)
}

/// Single-writer pipelined pass: submit `GROUP` frames, then one
/// `wait_durable`, with a zero commit window — so the fsync count is
/// exactly `PIPELINE_FRAMES / GROUP`, deterministically.
fn run_pipelined(dir: &std::path::Path, wf: &Workflow) -> (f64, LaneStats) {
    let _ = std::fs::remove_dir_all(dir);
    let reg = Arc::new(DurableRegistry::create(dir).expect("create durable dir"));
    reg.register(TenantId(1), TenantConfig::new(wf))
        .expect("register");
    let mut rng = StdRng::seed_from_u64(0xE23);
    let start = Instant::now();
    let mut last_seq = 0u64;
    for frame in 0..PIPELINE_FRAMES {
        let rows: Vec<Tuple> = (0..ROWS_PER_FRAME)
            .map(|_| chain_row(wf, rng.gen_range(0..1u32 << WIRES)))
            .collect();
        let outcome = reg
            .submit(TenantId(1), &IngestBatch::new(rows))
            .expect("valid frames always land");
        last_seq = outcome.log_seq;
        if (frame + 1) % GROUP == 0 {
            reg.wait_durable(last_seq).expect("group commit");
        }
    }
    reg.wait_durable(last_seq).expect("final sync");
    let ns = start.elapsed().as_nanos() as f64;
    let stats = reg.lane_stats();
    drop(reg);
    let _ = std::fs::remove_dir_all(dir);
    (ns, stats)
}

fn run_parallel_ingest(_c: &mut Criterion) {
    let wf = tenant_workflow();
    let mut identity_ok = true;
    let mut acked_ok = true;

    for &threads in &WRITERS {
        let mut best_ns = f64::INFINITY;
        let mut best_stats = LaneStats::default();
        for episode in 0..EPISODES {
            let dir = bench_dir(&format!("t{threads}e{episode}"));
            let (ns, stats) = run_writers(&dir, &wf, threads);
            let frames = (threads * FRAMES_PER_WRITER) as u64;
            assert_eq!(stats.frames, frames, "every frame is logged");
            identity_ok &= stats.frames_synced == stats.fsyncs + stats.coalesced;
            acked_ok &= stats.frames_synced == stats.frames;
            if ns < best_ns {
                best_ns = ns;
                best_stats = stats;
            }
        }
        let rows = (threads * FRAMES_PER_WRITER * ROWS_PER_FRAME) as f64;
        criterion::record_metric(
            &format!("e23_parallel_ingest/t{threads}/rows_per_sec"),
            rows / (best_ns / 1e9),
        );
        criterion::record_metric(
            &format!("e23_parallel_ingest/t{threads}/fsyncs_per_frame"),
            best_stats.fsyncs as f64 / best_stats.frames as f64,
        );
        criterion::record_metric(
            &format!("e23_parallel_ingest/t{threads}/coalesced_fraction"),
            best_stats.coalesced as f64 / best_stats.frames as f64,
        );
        criterion::record_metric(
            &format!("e23_parallel_ingest/exact/t{threads}_frames"),
            (threads * FRAMES_PER_WRITER) as f64,
        );
    }

    // ── Deterministic pipelined pass ───────────────────────────────
    let (pipe_ns, pipe) = run_pipelined(&bench_dir("pipe"), &wf);
    assert_eq!(pipe.frames, PIPELINE_FRAMES as u64);
    assert_eq!(
        pipe.fsyncs,
        (PIPELINE_FRAMES / GROUP) as u64,
        "pipelined single writer: exactly one fsync per group"
    );
    identity_ok &= pipe.frames_synced == pipe.fsyncs + pipe.coalesced;
    acked_ok &= pipe.frames_synced == pipe.frames;
    criterion::record_metric(
        "e23_parallel_ingest/pipelined/rows_per_sec",
        (PIPELINE_FRAMES * ROWS_PER_FRAME) as f64 / (pipe_ns / 1e9),
    );
    criterion::record_metric(
        "e23_parallel_ingest/exact/pipelined_fsyncs",
        pipe.fsyncs as f64,
    );
    criterion::record_metric(
        "e23_parallel_ingest/exact/pipelined_coalesced",
        pipe.coalesced as f64,
    );
    criterion::record_metric(
        "e23_parallel_ingest/exact/coalesce_identity",
        f64::from(u8::from(identity_ok)),
    );
    criterion::record_metric(
        "e23_parallel_ingest/exact/all_frames_acked",
        f64::from(u8::from(acked_ok)),
    );
    criterion::record_metric(
        "e23_parallel_ingest/env/frames_per_writer",
        FRAMES_PER_WRITER as f64,
    );
    criterion::record_metric(
        "e23_parallel_ingest/env/rows_per_frame",
        ROWS_PER_FRAME as f64,
    );
    criterion::record_metric("e23_parallel_ingest/env/group", GROUP as f64);
    criterion::record_metric(
        "e23_parallel_ingest/env/commit_window_us",
        COMMIT_WINDOW.as_micros() as f64,
    );
}

criterion_group!(benches, run_parallel_ingest);
criterion_main!(benches);
