//! E7 — Theorem 4: composing workflow privacy from standalone optima
//! (requirement derivation + union), and the exhaustive verifier on
//! small chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sv_core::compose::{union_of_standalone_optima, WorldSearch};
use sv_workflow::library::one_one_chain;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_thm4_compose");
    g.sample_size(10);
    for n in [2usize, 4, 8] {
        let w = one_one_chain(n, 2);
        let costs = vec![1u64; w.schema().len()];
        g.bench_with_input(BenchmarkId::new("union_of_standalone", n), &n, |bch, _| {
            bch.iter(|| union_of_standalone_optima(&w, &costs, 2, 1 << 20).unwrap());
        });
    }
    let w = one_one_chain(2, 2);
    let costs = vec![1u64; w.schema().len()];
    let (hidden, _) = union_of_standalone_optima(&w, &costs, 2, 1 << 20).unwrap();
    let visible = hidden.complement(w.schema().len());
    g.bench_function("world_search_chain_2x2", |bch| {
        bch.iter(|| WorldSearch::new(&w, visible.clone()).run(1 << 26).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
