//! E14 — B.4 ablations: LP build+solve time and value for the faithful
//! Figure-3 relaxation vs the weakened variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sv_gen::random::{random_cardinality, InstanceParams};
use sv_optimize::cardinality::{build_lp, CardLpVariant};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_ablation");
    g.sample_size(10);
    let p = InstanceParams {
        n_modules: 5,
        attrs_per_module: 4,
        max_list: 3,
        ..Default::default()
    };
    let inst = random_cardinality(&mut StdRng::seed_from_u64(14), &p);
    for (name, variant) in [
        ("full", CardLpVariant::Full),
        ("without_caps", CardLpVariant::WithoutCaps),
        ("without_sums", CardLpVariant::WithoutSums),
    ] {
        g.bench_with_input(BenchmarkId::new("lp_solve", name), &name, |bch, _| {
            bch.iter(|| build_lp(&inst, variant).problem.solve().unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
