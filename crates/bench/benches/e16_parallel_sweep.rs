//! E16 — the parallel work-stealing lattice sweep on a `k = 20`
//! standalone Secure-View instance (a one-one module over 10 boolean
//! wires: `2^20` hidden-set masks, `N = 1024` rows).
//!
//! Three questions, recorded into `BENCH_sweep.json` via
//! `--save-baseline`:
//!
//! 1. **Thread scaling** — branch-and-bound `min_cost_sweep` and
//!    antichain `minimal_sets_sweep` at 1/2/4/8 worker threads
//!    (`…/threads/T` ids, plus derived `…/speedup_8t` metrics). On a
//!    single-core container the speedup saturates at ~1×; the counters
//!    below are hardware-independent.
//! 2. **Monotone pruning** — visited/pruned mask counts of both sweeps
//!    (`…/stats/*` ids): the Γ = 16 antichain sweep must visit well
//!    under half of the 2²⁰-mask lattice.
//! 3. **k-scaling** — `min_cost` at `k = 12, 16, 20` on the widest
//!    thread count, charting how the sweep grows with the lattice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sv_core::sweep::{min_cost_sweep, minimal_sets_sweep, SweepConfig};
use sv_core::StandaloneModule;
use sv_workflow::{library, ModuleId};

/// Γ for the branch-and-bound group: the optimum hides 8 wires of one
/// side (cost 8 of k = 20), so every mask cheaper than 8 must be probed
/// — a large, irregular workload for the work-stealing shards.
const GAMMA_MIN_COST: u128 = 256;

/// Γ for the antichain group: a hidden set's privacy level is
/// `2^(wires touched)`, so the minimal sets are "4 distinct wires,
/// one side each" — `2⁴ × C(10, 4) = 3360` sets. Layer 7 up is fully
/// covered by the antichain, so the layer cutoff skips > 99 % of the
/// `2^20` lattice.
const GAMMA_MINIMAL: u128 = 16;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One-one module over `wires` boolean wires (`k = 2 × wires`).
fn one_one_module(wires: usize) -> StandaloneModule {
    let wf = library::one_one_chain(1, wires);
    StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 21).unwrap()
}

fn bench_thread_scaling(c: &mut Criterion) {
    let m = one_one_module(10);
    let costs = vec![1u64; m.k()];
    let mut g = c.benchmark_group("e16_parallel_sweep");
    g.sample_size(10);
    for threads in THREADS {
        g.bench_with_input(
            BenchmarkId::new("min_cost/threads", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    min_cost_sweep(&m, &costs, GAMMA_MIN_COST, &SweepConfig::parallel(t)).unwrap()
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("minimal_sets/threads", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    minimal_sets_sweep(&m, GAMMA_MINIMAL, &SweepConfig::parallel(t)).unwrap()
                });
            },
        );
    }
    g.finish();

    // Derived speedups from this run's own measurements.
    for kind in ["min_cost", "minimal_sets"] {
        let t1 = criterion::recorded_value(&format!("e16_parallel_sweep/{kind}/threads/1"));
        let t8 = criterion::recorded_value(&format!("e16_parallel_sweep/{kind}/threads/8"));
        if let (Some(t1), Some(t8)) = (t1, t8) {
            criterion::record_metric(&format!("e16_parallel_sweep/{kind}/speedup_8t"), t1 / t8);
        }
    }
    criterion::record_metric(
        "e16_parallel_sweep/env/available_parallelism",
        std::thread::available_parallelism().map_or(0.0, |p| p.get() as f64),
    );
}

fn bench_k_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_parallel_sweep/scale_k");
    g.sample_size(10);
    for wires in [6usize, 8, 10] {
        let m = one_one_module(wires);
        let costs = vec![1u64; m.k()];
        g.bench_with_input(BenchmarkId::new("min_cost/k", 2 * wires), &m, |b, m| {
            b.iter(|| min_cost_sweep(m, &costs, GAMMA_MINIMAL, &SweepConfig::parallel(8)).unwrap());
        });
    }
    g.finish();
}

/// Pruning-counter metrics (deterministic, hardware-independent): the
/// acceptance bar is `minimal_sets` visiting < 50 % of the `2^20`
/// lattice. These rows are gated **exactly** in CI (`bench_gate
/// --exact`), so they are recorded from scheduling-independent sweeps:
/// `min_cost` runs serially (the parallel bound propagates at thread
/// timing, so its visited count is not deterministic across runs);
/// `minimal_sets` is layer-barriered, hence deterministic at any thread
/// count.
fn record_pruning_stats(_c: &mut Criterion) {
    let m = one_one_module(10);
    let costs = vec![1u64; m.k()];
    let (_, mc) = min_cost_sweep(&m, &costs, GAMMA_MIN_COST, &SweepConfig::serial()).unwrap();
    let (sets, ms) = minimal_sets_sweep(&m, GAMMA_MINIMAL, &SweepConfig::parallel(8)).unwrap();
    assert_eq!(sets.len(), 3360, "2⁴·C(10,4) minimal sets expected");
    for (kind, s) in [("min_cost", mc), ("minimal_sets", ms)] {
        let base = format!("e16_parallel_sweep/stats/{kind}");
        criterion::record_metric(&format!("{base}/lattice"), s.lattice as f64);
        criterion::record_metric(&format!("{base}/visited"), s.visited as f64);
        criterion::record_metric(&format!("{base}/pruned"), s.pruned as f64);
        criterion::record_metric(&format!("{base}/visited_fraction"), s.visited_fraction());
        // Trie-frontier counters: under border enumeration (PR 10) the
        // per-mask coverage queries are gone (`frontier_queries` is 0)
        // and the walks' emission/jump counts are the enumeration
        // effort. `minimal_sets` walks are layer-barriered, so its
        // counters are exact at any thread count; `min_cost`'s are
        // recorded from the serial run above. `frontier_nodes` is the
        // canonical trie shape — for `min_cost` that is the discovered
        // safe-mask antichain the border walk skipped against.
        criterion::record_metric(
            &format!("{base}/frontier_queries"),
            s.frontier_queries as f64,
        );
        criterion::record_metric(&format!("{base}/border_visited"), s.border_visited as f64);
        criterion::record_metric(&format!("{base}/border_jumps"), s.border_jumps as f64);
        criterion::record_metric(&format!("{base}/frontier_nodes"), s.frontier_nodes as f64);
    }
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_k_scaling,
    record_pruning_stats
);
criterion_main!(benches);
