//! E20 — the bitwise-trie frontier engine vs. its retained references,
//! across lattice widths k ∈ {16, 20, 22, 24} (flat-scan era) and
//! k ∈ {20, 24, 26, 28} (border-enumeration era; one-one modules over
//! 8–14 boolean wires).
//!
//! Five recordings into `BENCH_sweep.json` via `--save-baseline`:
//!
//! 1. **Coverage microbench** (timed, CI-gated ≥ 5× within-run) —
//!    replay the k = 20 sweep's layer-5..7 coverage queries (131,784
//!    masks against the 3,360-member Γ = 16 antichain) through the flat
//!    `Vec<u64>` scan and through `Frontier::covers`
//!    (`…/covers_microbench/{flat,trie}` ids).
//! 2. **Border microbench** (timed, CI-gated ≥ 3× within-run) —
//!    enumerate layers 6..8 of the k = 24, Γ = 32 sweep (1,216,171
//!    masks, 25,344-member antichain) exhaustively with one
//!    `Frontier::covers` per mask, vs. one `uncovered_in_layer` border
//!    walk per layer emitting the same 16,555 uncovered masks
//!    (`…/border_microbench/{layer,border}` ids).
//! 3. **Sweep scaling** (`…/wall/*`, informational) — wall-clock of the
//!    trie-backed `minimal_sets_sweep_frontier` and of the budgeted
//!    flat-scan reference at each k. The flat scan completes k ≤ 22 and
//!    **must** blow [`FLAT_SCAN_BUDGET`] at k = 24; the trie sweep
//!    completes everything.
//! 4. **Border budget family** (`…/border_budget/*`,
//!    `…/layer_reference/*`, exact-gated in CI) — Γ = 8 sweeps at
//!    k ∈ {20, 24, 26, 28} under [`ENUM_BUDGET`]: the k = 28 border
//!    sweep enumerates 3,774 masks and completes, while exhaustive
//!    layer enumeration provably blows the budget (122,438 masks
//!    needed) — the PR 6 flat-scan-at-k=24 pattern, one level up.
//! 5. **Deterministic counters** (`…/stats/*`, `…/flat_reference/*`,
//!    exact-gated in CI) — per-k visited/antichain/border/node counts
//!    and the references' enumeration totals; all layer-barriered or
//!    serial, hence bit-identical on any hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use sv_bench::flatscan::flat_scan_minimal_sets;
use sv_bench::layerscan::layer_scan_minimal_sets;
use sv_core::sweep::{minimal_sets_sweep_frontier, SweepConfig};
use sv_core::StandaloneModule;
use sv_workflow::{library, ModuleId};

/// `(wires, Γ)` per case: k = 2 × wires. Γ = 16 keeps the e16 workload
/// at k ≤ 22; k = 24 steps to Γ = 32 so the antichain density
/// (2⁵ × C(12, 5) = 25,344 members) keeps pace with the lattice.
const CASES: [(usize, u128); 4] = [(8, 16), (10, 16), (11, 16), (12, 32)];

/// Member-visit budget for the flat-scan reference: ~1.8× the k = 22
/// full-sweep cost (222.3M visits), a small fraction of the k = 24 cost
/// (> 2G visits before even leaving layer 7) — so it cleanly separates
/// "completes" from "cannot finish inside the bench budget".
const FLAT_SCAN_BUDGET: u64 = 400_000_000;

/// Wires for the Γ = 8 border-budget family: k = 2 × wires ∈
/// {20, 24, 26, 28}. Γ = 8 pins the antichain at layer 3 (8 × C(w, 3)
/// members), so the exhaustive enumeration cost Σ_{p≤5} C(k, p) grows
/// with k while the border stays a few thousand masks.
const BORDER_WIRES: [usize; 4] = [10, 12, 13, 14];

/// Enumeration budget for the layer-scan reference: exhaustive layer
/// enumeration needs Σ_{p≤5} C(k, p) materialized masks — 83,682 at
/// k = 26 (completes) but 122,438 at k = 28 (blows the budget) — while
/// the k = 28 border sweep emits only 3,774 masks in total.
const ENUM_BUDGET: u64 = 100_000;

/// One-one module over `wires` boolean wires (`k = 2 × wires`).
fn one_one_module(wires: usize) -> StandaloneModule {
    let wf = library::one_one_chain(1, wires);
    StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 26).unwrap()
}

/// All k-bit masks of popcount `lo..=hi`, in (popcount, mask) order —
/// the exact query stream the k = 20 sweep issues at those layers.
fn layer_masks(k: usize, lo: u32, hi: u32) -> Vec<u64> {
    let mut out = Vec::new();
    for p in lo..=hi {
        let mut mask = (1u64 << p) - 1;
        let last = mask << (k as u32 - p);
        loop {
            out.push(mask);
            if mask == last {
                break;
            }
            let c = mask & mask.wrapping_neg();
            let r = mask + c;
            mask = (((r ^ mask) >> 2) / c) | r;
        }
    }
    out
}

fn bench_covers_microbench(c: &mut Criterion) {
    let m = one_one_module(10);
    let (frontier, _) = minimal_sets_sweep_frontier(&m, 16, &SweepConfig::parallel(8)).unwrap();
    let members: Vec<u64> = frontier.iter().collect();
    assert_eq!(members.len(), 3360, "2⁴·C(10,4) minimal sets expected");
    let queries = layer_masks(20, 5, 7);
    assert_eq!(queries.len(), 131_784, "C(20,5)+C(20,6)+C(20,7)");

    // Both paths must agree before we time anything.
    let flat_hits = queries
        .iter()
        .filter(|&&q| members.iter().any(|&m| m | q == q))
        .count();
    let trie_hits = queries.iter().filter(|&&q| frontier.covers(q)).count();
    assert_eq!(flat_hits, trie_hits);
    criterion::record_metric(
        "e20_frontier_scaling/covers_microbench/queries",
        queries.len() as f64,
    );
    criterion::record_metric(
        "e20_frontier_scaling/covers_microbench/covered",
        flat_hits as f64,
    );

    let mut g = c.benchmark_group("e20_frontier_scaling");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("covers_microbench", "flat"),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &q in qs {
                    if members.iter().any(|&m| m | q == q) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        },
    );
    g.bench_with_input(
        BenchmarkId::new("covers_microbench", "trie"),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &q in qs {
                    if frontier.covers(q) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        },
    );
    g.finish();
}

/// Border-vs-layer enumeration microbench on the k = 24, Γ = 32
/// antichain (25,344 members): materialize layers 6..8 exhaustively
/// with one `covers` query per mask, vs. walk the uncovered border of
/// the same layers. Both sides produce the identical 16,555 uncovered
/// masks; the exhaustive side pays 1,216,171 enumerate+query steps to
/// find them. The within-run ratio is CI-gated ≥ 3×.
fn bench_border_microbench(c: &mut Criterion) {
    let m = one_one_module(12);
    let (frontier, _) = minimal_sets_sweep_frontier(&m, 32, &SweepConfig::parallel(8)).unwrap();
    assert_eq!(frontier.len(), 25_344, "2⁵·C(12,5) minimal sets expected");
    let k = 24usize;
    let layers = 6u32..=8;

    // Agreement before timing: the border walk emits exactly the masks
    // the exhaustive enumeration finds uncovered.
    let mut exhaustive_uncovered = 0u64;
    let mut enumerated = 0u64;
    for &q in &layer_masks(k, *layers.start(), *layers.end()) {
        enumerated += 1;
        if !frontier.covers(q) {
            exhaustive_uncovered += 1;
        }
    }
    let border: u64 = layers
        .clone()
        .map(|p| frontier.uncovered_in_layer(p as usize).masks)
        .sum();
    assert_eq!(enumerated, 1_216_171, "C(24,6)+C(24,7)+C(24,8)");
    assert_eq!(exhaustive_uncovered, 16_555, "12,100 + 3,960 + 495");
    assert_eq!(border, exhaustive_uncovered);
    criterion::record_metric(
        "e20_frontier_scaling/border_microbench/enumerated",
        enumerated as f64,
    );
    criterion::record_metric(
        "e20_frontier_scaling/border_microbench/uncovered",
        border as f64,
    );

    let queries = layer_masks(k, *layers.start(), *layers.end());
    let mut g = c.benchmark_group("e20_frontier_scaling");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("border_microbench", "layer"),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut uncovered = 0u64;
                for &q in qs {
                    if !frontier.covers(q) {
                        uncovered += 1;
                    }
                }
                black_box(uncovered)
            });
        },
    );
    g.bench_with_input(
        BenchmarkId::new("border_microbench", "border"),
        &layers,
        |b, ls| {
            b.iter(|| {
                let mut uncovered = 0u64;
                for p in ls.clone() {
                    uncovered += frontier.uncovered_in_layer(p as usize).masks;
                }
                black_box(uncovered)
            });
        },
    );
    g.finish();
}

/// The Γ = 8 border-budget family: the border sweep completes every
/// k ∈ {20, 24, 26, 28}, while the exhaustive layer-enumeration
/// reference completes k ≤ 26 and **must** blow [`ENUM_BUDGET`] at
/// k = 28. All counters are serial or layer-barriered — exact-gated.
fn record_border_budget(_c: &mut Criterion) {
    for wires in BORDER_WIRES {
        let k = 2 * wires;
        let m = one_one_module(wires);

        let t = Instant::now();
        let (frontier, stats) =
            minimal_sets_sweep_frontier(&m, 8, &SweepConfig::parallel(8)).unwrap();
        let border_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let layer = layer_scan_minimal_sets(&m, 8, ENUM_BUDGET);
        let layer_secs = t.elapsed().as_secs_f64();

        assert_eq!(frontier.len() as u64, 8 * binom_u64(wires, 3), "k={k}");
        assert!(
            stats.border_visited <= ENUM_BUDGET,
            "k={k}: the border sweep must fit the budget the reference blows"
        );
        if layer.completed {
            assert!(k <= 26, "only k ≤ 26 fits exhaustive enumeration");
            assert_eq!(layer.sets, frontier.len() as u64, "k={k}");
            assert_eq!(layer.visited, stats.visited, "k={k}");
            assert_eq!(layer.visited, stats.border_visited, "k={k}");
        } else {
            assert_eq!(k, 28, "only k = 28 may exhaust the enumeration budget");
            assert_eq!(layer.enumerated, ENUM_BUDGET);
        }

        let base = format!("e20_frontier_scaling/border_budget/k{k}");
        criterion::record_metric(&format!("{base}/antichain"), frontier.len() as f64);
        criterion::record_metric(&format!("{base}/visited"), stats.visited as f64);
        criterion::record_metric(
            &format!("{base}/border_visited"),
            stats.border_visited as f64,
        );
        criterion::record_metric(&format!("{base}/border_jumps"), stats.border_jumps as f64);
        let base = format!("e20_frontier_scaling/layer_reference/k{k}");
        criterion::record_metric(
            &format!("{base}/completed"),
            u64::from(layer.completed) as f64,
        );
        criterion::record_metric(&format!("{base}/enumerated"), layer.enumerated as f64);
        criterion::record_metric(&format!("{base}/sets"), layer.sets as f64);
        criterion::record_metric(
            "e20_frontier_scaling/layer_reference/budget",
            ENUM_BUDGET as f64,
        );
        criterion::record_metric(
            &format!("e20_frontier_scaling/wall/border/k{k}"),
            border_secs,
        );
        criterion::record_metric(
            &format!("e20_frontier_scaling/wall/layer_reference/k{k}"),
            layer_secs,
        );
    }
}

/// `C(n, 3)`-style small binomials for the assertions above.
fn binom_u64(n: usize, r: usize) -> u64 {
    let mut c = 1u64;
    for i in 0..r {
        c = c * (n - i) as u64 / (i as u64 + 1);
    }
    c
}

/// Per-k sweeps, one shot each (multi-second at k = 24, so timed with
/// `Instant` rather than a Criterion loop). Counters are exact-gated;
/// wall-clock rows are informational.
fn record_frontier_scaling(_c: &mut Criterion) {
    for (wires, gamma) in CASES {
        let k = 2 * wires;
        let m = one_one_module(wires);

        let t = Instant::now();
        let (frontier, stats) =
            minimal_sets_sweep_frontier(&m, gamma, &SweepConfig::parallel(8)).unwrap();
        let trie_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let flat = flat_scan_minimal_sets(&m, gamma, FLAT_SCAN_BUDGET);
        let flat_secs = t.elapsed().as_secs_f64();

        if flat.completed {
            assert_eq!(flat.sets, frontier.len() as u64, "k={k}");
            assert_eq!(flat.visited, stats.visited, "k={k}");
        } else {
            assert_eq!(k, 24, "only k = 24 may exhaust the flat budget");
        }
        if k == 24 {
            assert!(
                !flat.completed,
                "k = 24 must be out of reach for the flat scan"
            );
            assert_eq!(frontier.len(), 25_344, "2⁵·C(12,5) minimal sets");
        }

        let base = format!("e20_frontier_scaling/stats/k{k}");
        criterion::record_metric(&format!("{base}/lattice"), stats.lattice as f64);
        criterion::record_metric(&format!("{base}/visited"), stats.visited as f64);
        criterion::record_metric(&format!("{base}/antichain"), frontier.len() as f64);
        // Border enumeration (PR 10): per-mask coverage queries are
        // gone; the walks' emission/jump counts are the enumeration
        // effort, and both are exact at any thread count.
        criterion::record_metric(
            &format!("{base}/border_visited"),
            stats.border_visited as f64,
        );
        criterion::record_metric(&format!("{base}/border_jumps"), stats.border_jumps as f64);
        criterion::record_metric(
            &format!("{base}/frontier_nodes"),
            stats.frontier_nodes as f64,
        );
        let base = format!("e20_frontier_scaling/flat_reference/k{k}");
        criterion::record_metric(
            &format!("{base}/completed"),
            u64::from(flat.completed) as f64,
        );
        criterion::record_metric(&format!("{base}/scans"), flat.scans as f64);
        criterion::record_metric(&format!("{base}/sets"), flat.sets as f64);
        criterion::record_metric(
            "e20_frontier_scaling/flat_reference/budget",
            FLAT_SCAN_BUDGET as f64,
        );
        criterion::record_metric(&format!("e20_frontier_scaling/wall/trie/k{k}"), trie_secs);
        criterion::record_metric(&format!("e20_frontier_scaling/wall/flat/k{k}"), flat_secs);
    }
}

criterion_group!(
    benches,
    bench_covers_microbench,
    bench_border_microbench,
    record_frontier_scaling,
    record_border_budget
);
criterion_main!(benches);
