//! E20 — the bitwise-trie frontier engine vs. the retained flat-scan
//! reference, across lattice widths k ∈ {16, 20, 22, 24} (one-one
//! modules over 8–12 boolean wires).
//!
//! Three recordings into `BENCH_sweep.json` via `--save-baseline`:
//!
//! 1. **Coverage microbench** (timed, CI-gated ≥ 5× within-run) —
//!    replay the k = 20 sweep's layer-5..7 coverage queries (131,784
//!    masks against the 3,360-member Γ = 16 antichain) through the flat
//!    `Vec<u64>` scan and through `Frontier::covers`
//!    (`…/covers_microbench/{flat,trie}` ids).
//! 2. **Sweep scaling** (`…/wall/*`, informational) — wall-clock of the
//!    trie-backed `minimal_sets_sweep_frontier` and of the budgeted
//!    flat-scan reference at each k. The flat scan completes k ≤ 22 and
//!    **must** blow [`FLAT_SCAN_BUDGET`] at k = 24; the trie sweep
//!    completes everything.
//! 3. **Deterministic counters** (`…/stats/*`, `…/flat_reference/*`,
//!    exact-gated in CI) — per-k visited/antichain/frontier-query/node
//!    counts and the flat scan's member-visit totals; all
//!    layer-barriered or serial, hence bit-identical on any hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use sv_bench::flatscan::flat_scan_minimal_sets;
use sv_core::sweep::{minimal_sets_sweep_frontier, SweepConfig};
use sv_core::StandaloneModule;
use sv_workflow::{library, ModuleId};

/// `(wires, Γ)` per case: k = 2 × wires. Γ = 16 keeps the e16 workload
/// at k ≤ 22; k = 24 steps to Γ = 32 so the antichain density
/// (2⁵ × C(12, 5) = 25,344 members) keeps pace with the lattice.
const CASES: [(usize, u128); 4] = [(8, 16), (10, 16), (11, 16), (12, 32)];

/// Member-visit budget for the flat-scan reference: ~1.8× the k = 22
/// full-sweep cost (222.3M visits), a small fraction of the k = 24 cost
/// (> 2G visits before even leaving layer 7) — so it cleanly separates
/// "completes" from "cannot finish inside the bench budget".
const FLAT_SCAN_BUDGET: u64 = 400_000_000;

/// One-one module over `wires` boolean wires (`k = 2 × wires`).
fn one_one_module(wires: usize) -> StandaloneModule {
    let wf = library::one_one_chain(1, wires);
    StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 26).unwrap()
}

/// All k-bit masks of popcount `lo..=hi`, in (popcount, mask) order —
/// the exact query stream the k = 20 sweep issues at those layers.
fn layer_masks(k: usize, lo: u32, hi: u32) -> Vec<u64> {
    let mut out = Vec::new();
    for p in lo..=hi {
        let mut mask = (1u64 << p) - 1;
        let last = mask << (k as u32 - p);
        loop {
            out.push(mask);
            if mask == last {
                break;
            }
            let c = mask & mask.wrapping_neg();
            let r = mask + c;
            mask = (((r ^ mask) >> 2) / c) | r;
        }
    }
    out
}

fn bench_covers_microbench(c: &mut Criterion) {
    let m = one_one_module(10);
    let (frontier, _) = minimal_sets_sweep_frontier(&m, 16, &SweepConfig::parallel(8)).unwrap();
    let members: Vec<u64> = frontier.iter().collect();
    assert_eq!(members.len(), 3360, "2⁴·C(10,4) minimal sets expected");
    let queries = layer_masks(20, 5, 7);
    assert_eq!(queries.len(), 131_784, "C(20,5)+C(20,6)+C(20,7)");

    // Both paths must agree before we time anything.
    let flat_hits = queries
        .iter()
        .filter(|&&q| members.iter().any(|&m| m | q == q))
        .count();
    let trie_hits = queries.iter().filter(|&&q| frontier.covers(q)).count();
    assert_eq!(flat_hits, trie_hits);
    criterion::record_metric(
        "e20_frontier_scaling/covers_microbench/queries",
        queries.len() as f64,
    );
    criterion::record_metric(
        "e20_frontier_scaling/covers_microbench/covered",
        flat_hits as f64,
    );

    let mut g = c.benchmark_group("e20_frontier_scaling");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("covers_microbench", "flat"),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &q in qs {
                    if members.iter().any(|&m| m | q == q) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        },
    );
    g.bench_with_input(
        BenchmarkId::new("covers_microbench", "trie"),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for &q in qs {
                    if frontier.covers(q) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        },
    );
    g.finish();
}

/// Per-k sweeps, one shot each (multi-second at k = 24, so timed with
/// `Instant` rather than a Criterion loop). Counters are exact-gated;
/// wall-clock rows are informational.
fn record_frontier_scaling(_c: &mut Criterion) {
    for (wires, gamma) in CASES {
        let k = 2 * wires;
        let m = one_one_module(wires);

        let t = Instant::now();
        let (frontier, stats) =
            minimal_sets_sweep_frontier(&m, gamma, &SweepConfig::parallel(8)).unwrap();
        let trie_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let flat = flat_scan_minimal_sets(&m, gamma, FLAT_SCAN_BUDGET);
        let flat_secs = t.elapsed().as_secs_f64();

        if flat.completed {
            assert_eq!(flat.sets, frontier.len() as u64, "k={k}");
            assert_eq!(flat.visited, stats.visited, "k={k}");
        } else {
            assert_eq!(k, 24, "only k = 24 may exhaust the flat budget");
        }
        if k == 24 {
            assert!(
                !flat.completed,
                "k = 24 must be out of reach for the flat scan"
            );
            assert_eq!(frontier.len(), 25_344, "2⁵·C(12,5) minimal sets");
        }

        let base = format!("e20_frontier_scaling/stats/k{k}");
        criterion::record_metric(&format!("{base}/lattice"), stats.lattice as f64);
        criterion::record_metric(&format!("{base}/visited"), stats.visited as f64);
        criterion::record_metric(&format!("{base}/antichain"), frontier.len() as f64);
        criterion::record_metric(
            &format!("{base}/frontier_queries"),
            stats.frontier_queries as f64,
        );
        criterion::record_metric(
            &format!("{base}/frontier_nodes"),
            stats.frontier_nodes as f64,
        );
        let base = format!("e20_frontier_scaling/flat_reference/k{k}");
        criterion::record_metric(
            &format!("{base}/completed"),
            u64::from(flat.completed) as f64,
        );
        criterion::record_metric(&format!("{base}/scans"), flat.scans as f64);
        criterion::record_metric(&format!("{base}/sets"), flat.sets as f64);
        criterion::record_metric(
            "e20_frontier_scaling/flat_reference/budget",
            FLAT_SCAN_BUDGET as f64,
        );
        criterion::record_metric(&format!("e20_frontier_scaling/wall/trie/k{k}"), trie_secs);
        criterion::record_metric(&format!("e20_frontier_scaling/wall/flat/k{k}"), flat_secs);
    }
}

criterion_group!(benches, bench_covers_microbench, record_frontier_scaling);
criterion_main!(benches);
