//! E22 — **durability**: write-ahead ingest, group commit,
//! snapshotting, and crash recovery through `sv-durable`, measured end
//! to end.
//!
//! Workload: [`TENANTS`] streaming tenants (each a `one_one_chain(1,
//! 5)` — 10 boolean attributes, 32 distinct provenance rows) behind a
//! [`DurableRegistry`]. A seeded tape of [`FRAMES`] single-row ingest
//! frames — mostly fresh rows, a slice of exact duplicates (applied,
//! no epoch bump) and of FD-violating rows (rejected whole-frame
//! *before* logging, so they never reach the log) — is played twice:
//!
//! * **grouped** — the production path: frames are `submit`ted
//!   pipelined and `wait_durable` is called once per [`GROUP`]-frame
//!   chunk, so one fsync covers the whole chunk through the commit
//!   lane.
//! * **per-frame fsync** — `submit` + `wait_durable` on every frame,
//!   the pre-group-commit write-through cost.
//!
//! Reported into `BENCH_durable.json` via `--save-baseline`:
//!
//! * `ingest/ns_per_row` — grouped ingest cost (append + checksum +
//!   apply + amortized sync), best of [`EPISODES`] tapes.
//! * `ingest/per_frame_fsync_ns_per_row` — the same tape with one
//!   fsync per frame.
//! * `gate/grouped_speedup` — per-frame / grouped, **within the same
//!   run**; CI gates this at ≥ 3×.
//! * `recovery/ms`, `recovery/ns_per_replayed_row`,
//!   `replay/rows_per_sec` — full recovery (snapshot load + log-tail
//!   replay), best of [`EPISODES`] runs over the same on-disk state.
//! * `stats/*` — deterministic durability counters, exact-gated by CI:
//!   log bytes, snapshot bytes, records replayed past the snapshot,
//!   rows applied/rejected during replay (rejected is **0**: frames
//!   are validated before logging, so replay never re-rejects), the
//!   grouped run's lane counters (`fsyncs`, `coalesced`,
//!   `frames_appended`), and the recovered-epoch checksum (FNV-1a over
//!   every tenant's `(module, epoch)` pairs).
//! * `gate/recovered_equals_live` — `1.0` iff every recovery produced
//!   exactly the live run's ledger lengths and relation epochs.
//!   CI exact-gates this at `1.0`.
//!
//! The crash-fault property suite (`sv-durable/tests/crash_prop.rs`)
//! proves recovery correct at *every* byte-level crash point —
//! including cuts through the middle of coalesced batches; this bench
//! pins the *performance* and the deterministic counters of the
//! clean-shutdown path.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use sv_core::safety::IngestBatch;
use sv_durable::{fnv1a64, DurableRegistry, LaneStats, TenantDef, LOG_FILE};
use sv_relation::Tuple;
use sv_serve::{AdmissionLimits, TenantConfig, TenantId};
use sv_workflow::{library, Workflow};

/// Registered tenants.
const TENANTS: u64 = 8;
/// Boolean wires per tenant workflow: 10 attributes, 32 distinct rows.
const WIRES: usize = 5;
/// Single-row ingest frames on the tape.
const FRAMES: usize = 4096;
/// Frames covered by one `wait_durable` in grouped mode.
const GROUP: usize = 64;
/// The frame before which the one snapshot is taken.
const SNAPSHOT_AT: usize = 2048;
/// Episodes; the best (minimum) time is kept.
const EPISODES: usize = 3;

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sv-e22-{tag}-{}", std::process::id()))
}

fn tenant_workflow() -> Workflow {
    library::one_one_chain(1, WIRES)
}

fn chain_row(wf: &Workflow, bits: u32) -> Tuple {
    let input: Vec<u32> = (0..WIRES).map(|w| (bits >> w) & 1).collect();
    wf.run(&input).expect("chain accepts all boolean inputs")
}

/// One tape frame: (tenant, row). Mix: ~70% fresh/random rows, ~15%
/// exact duplicates of an applied row, ~15% FD-violating mutants of an
/// applied row (an output value flipped).
fn make_tape(wf: &Workflow) -> Vec<(TenantId, Tuple)> {
    let mut rng = StdRng::seed_from_u64(0xE22);
    let mut applied: Vec<Vec<Tuple>> = vec![Vec::new(); TENANTS as usize];
    (0..FRAMES)
        .map(|_| {
            let ti = rng.gen_range(0..TENANTS as usize);
            let kind = rng.gen_range(0..20u32);
            let row = if kind < 14 || applied[ti].is_empty() {
                let row = chain_row(wf, rng.gen_range(0..1u32 << WIRES));
                applied[ti].push(row.clone());
                row
            } else if kind < 17 {
                applied[ti][rng.gen_range(0..applied[ti].len())].clone()
            } else {
                let mut vals = applied[ti][rng.gen_range(0..applied[ti].len())]
                    .values()
                    .to_vec();
                let flip = rng.gen_range(WIRES..vals.len());
                vals[flip] ^= 1;
                Tuple::new(vals)
            };
            (TenantId(1 + ti as u64), row)
        })
        .collect()
}

/// Plays the tape into a fresh durable registry, acking durability
/// every `group` frames (1 = fsync per frame). Returns (elapsed ns,
/// frames applied, frames rejected, lane stats, the registry).
fn play_tape(
    dir: &std::path::Path,
    wf: &Workflow,
    tape: &[(TenantId, Tuple)],
    group: usize,
) -> (f64, u64, u64, LaneStats, Arc<DurableRegistry>) {
    let _ = std::fs::remove_dir_all(dir);
    let reg = Arc::new(DurableRegistry::create(dir).expect("create durable dir"));
    for t in 1..=TENANTS {
        reg.register(TenantId(t), TenantConfig::new(wf))
            .expect("register");
    }
    let mut applied = 0u64;
    let mut rejected = 0u64;
    let mut last_seq = 0u64;
    let start = Instant::now();
    for (frame, (tenant, row)) in tape.iter().enumerate() {
        if frame == SNAPSHOT_AT {
            // Snapshot anchors must not outrun durability.
            reg.wait_durable(last_seq).expect("sync before snapshot");
            reg.snapshot().expect("snapshot");
        }
        let batch = IngestBatch::new(vec![row.clone()]);
        match reg.submit(*tenant, &batch) {
            Ok(outcome) => {
                applied += 1;
                last_seq = outcome.log_seq;
            }
            Err(sv_durable::DurableIngestError::Rejected { .. }) => rejected += 1,
            Err(e) => panic!("durable failure: {e}"),
        }
        if (frame + 1) % group == 0 {
            reg.wait_durable(last_seq).expect("group commit");
        }
    }
    reg.wait_durable(last_seq).expect("final sync");
    let ns = start.elapsed().as_nanos() as f64;
    let stats = reg.lane_stats();
    (ns, applied, rejected, stats, reg)
}

/// The live state recovery must reproduce: per tenant, the relation
/// epochs in oracle order.
fn live_epochs(reg: &DurableRegistry) -> Vec<Vec<u64>> {
    (1..=TENANTS)
        .map(|t| {
            reg.tenant(TenantId(t))
                .expect("registered")
                .epochs()
                .iter()
                .map(|me| me.epoch)
                .collect()
        })
        .collect()
}

/// FNV-1a over every tenant's `(module, epoch)` pairs — one scalar that
/// pins the entire recovered epoch vector bit-for-bit.
fn epoch_checksum(epochs: &[Vec<u64>]) -> f64 {
    let mut bytes = Vec::new();
    for (t, tenant_epochs) in epochs.iter().enumerate() {
        bytes.extend_from_slice(&(t as u64).to_le_bytes());
        for (m, &e) in tenant_epochs.iter().enumerate() {
            bytes.extend_from_slice(&(m as u64).to_le_bytes());
            bytes.extend_from_slice(&e.to_le_bytes());
        }
    }
    // Fold to 52 bits so the checksum is exactly representable as f64
    // (the baseline file stores every metric as a double).
    (fnv1a64(&bytes) >> 12) as f64
}

fn run_durability(_c: &mut Criterion) {
    let wf = tenant_workflow();
    let tape = make_tape(&wf);
    let dir = bench_dir("main");

    // ── Per-frame fsync baseline: best of EPISODES full tapes. ─────
    let mut best_per_frame = f64::INFINITY;
    let mut per_frame_stats = LaneStats::default();
    for episode in 0..EPISODES {
        let edir = bench_dir(&format!("pf{episode}"));
        let (ns, applied, _, stats, reg) = play_tape(&edir, &wf, &tape, 1);
        best_per_frame = best_per_frame.min(ns / FRAMES as f64);
        assert_eq!(stats.fsyncs, applied, "per-frame mode syncs every frame");
        assert_eq!(stats.coalesced, 0, "single writer, no pipelining");
        per_frame_stats = stats;
        drop(reg);
        let _ = std::fs::remove_dir_all(&edir);
    }

    // ── Grouped ingest (the production path): best of EPISODES. ────
    let mut best_ingest = f64::INFINITY;
    let mut keep: Option<(u64, u64, LaneStats, Arc<DurableRegistry>)> = None;
    for episode in 0..EPISODES {
        let edir = if episode + 1 == EPISODES {
            dir.clone()
        } else {
            bench_dir(&format!("warm{episode}"))
        };
        let (ns, applied, rejected, stats, reg) = play_tape(&edir, &wf, &tape, GROUP);
        best_ingest = best_ingest.min(ns / FRAMES as f64);
        if episode + 1 == EPISODES {
            keep = Some((applied, rejected, stats, reg));
        } else {
            drop(reg);
            let _ = std::fs::remove_dir_all(&edir);
        }
    }
    let (applied, rejected, lane, reg) = keep.expect("last episode kept");
    assert_eq!(applied + rejected, FRAMES as u64);
    assert_eq!(lane.frames, applied, "every accepted frame is logged");
    assert_eq!(
        lane.frames_synced,
        lane.fsyncs + lane.coalesced,
        "coalesce identity"
    );
    assert!(
        lane.fsyncs < per_frame_stats.fsyncs,
        "grouping must shrink the fsync count"
    );
    let speedup = best_per_frame / best_ingest;
    let expected_epochs = live_epochs(&reg);
    let expected_ledgers: Vec<usize> = (1..=TENANTS)
        .map(|t| reg.ledger_len(TenantId(t)).expect("registered"))
        .collect();
    let log_bytes = reg.log_bytes();
    let snapshot_bytes = std::fs::metadata(dir.join(sv_durable::SNAPSHOT_FILE))
        .expect("snapshot written")
        .len();
    drop(reg);

    // ── Recovery: snapshot load + log-tail replay, best of EPISODES. ──
    let defs: Vec<TenantDef> = (1..=TENANTS)
        .map(|t| TenantDef {
            id: TenantId(t),
            workflow: &wf,
            limits: AdmissionLimits::default(),
        })
        .collect();
    let mut best_recover = f64::INFINITY;
    let mut replayed = 0u64;
    let mut replay_applied = 0u64;
    let mut replay_rejected = 0u64;
    let mut equals_live = true;
    for _ in 0..EPISODES {
        let start = Instant::now();
        let (rec, report) = DurableRegistry::recover(&dir, &defs).expect("recovery");
        let ns = start.elapsed().as_nanos() as f64;
        best_recover = best_recover.min(ns);
        assert!(report.tail.is_clean(), "clean shutdown leaves a clean log");
        assert!(report.snapshot_loaded);
        replayed = report.records_replayed;
        replay_applied = report.rows_applied;
        replay_rejected = report.rows_rejected;
        equals_live &= live_epochs(&rec) == expected_epochs;
        equals_live &= (1..=TENANTS)
            .map(|t| rec.ledger_len(TenantId(t)).expect("registered"))
            .collect::<Vec<_>>()
            == expected_ledgers;
    }
    assert!(
        replayed > 0,
        "snapshot mid-tape leaves a log tail to replay"
    );
    assert_eq!(
        replay_rejected, 0,
        "frames are validated before logging; replay never re-rejects"
    );

    criterion::record_metric("e22_durability/ingest/ns_per_row", best_ingest);
    criterion::record_metric(
        "e22_durability/ingest/per_frame_fsync_ns_per_row",
        best_per_frame,
    );
    criterion::record_metric("e22_durability/gate/grouped_speedup", speedup);
    criterion::record_metric(
        "e22_durability/gate/grouped_speedup_ok",
        f64::from(u8::from(speedup >= 3.0)),
    );
    criterion::record_metric("e22_durability/recovery/ms", best_recover / 1e6);
    criterion::record_metric(
        "e22_durability/recovery/ns_per_replayed_row",
        best_recover / replayed as f64,
    );
    criterion::record_metric(
        "e22_durability/replay/rows_per_sec",
        replayed as f64 / (best_recover / 1e9),
    );
    criterion::record_metric("e22_durability/stats/log_bytes", log_bytes as f64);
    criterion::record_metric("e22_durability/stats/snapshot_bytes", snapshot_bytes as f64);
    criterion::record_metric("e22_durability/stats/records_replayed", replayed as f64);
    criterion::record_metric(
        "e22_durability/stats/replay_rows_applied",
        replay_applied as f64,
    );
    criterion::record_metric(
        "e22_durability/stats/replay_rows_rejected",
        replay_rejected as f64,
    );
    criterion::record_metric("e22_durability/stats/rows_applied", applied as f64);
    criterion::record_metric("e22_durability/stats/rows_rejected", rejected as f64);
    criterion::record_metric("e22_durability/stats/frames_appended", lane.frames as f64);
    criterion::record_metric("e22_durability/stats/fsyncs", lane.fsyncs as f64);
    criterion::record_metric("e22_durability/stats/coalesced", lane.coalesced as f64);
    criterion::record_metric(
        "e22_durability/stats/per_frame_fsyncs",
        per_frame_stats.fsyncs as f64,
    );
    criterion::record_metric(
        "e22_durability/stats/epoch_checksum",
        epoch_checksum(&expected_epochs),
    );
    criterion::record_metric(
        "e22_durability/gate/recovered_equals_live",
        f64::from(u8::from(equals_live)),
    );
    criterion::record_metric("e22_durability/env/tenants", TENANTS as f64);
    criterion::record_metric("e22_durability/env/frames", FRAMES as f64);
    criterion::record_metric("e22_durability/env/group", GROUP as f64);
    criterion::record_metric("e22_durability/env/snapshot_at", SNAPSHOT_AT as f64);

    // Sanity anchor for the counters: the log and snapshot reflect the
    // same tape every run (sizes above are exact-gated in CI).
    assert_eq!(
        std::fs::metadata(dir.join(LOG_FILE))
            .expect("log exists")
            .len(),
        log_bytes
    );
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, run_durability);
criterion_main!(benches);
