//! E10 — Theorem 6: set-constraint LP + ℓmax-rounding vs exact, plus
//! the label-cover gadget (Figure 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sv_gen::labelcover::LabelCover;
use sv_gen::random::{random_set, InstanceParams};
use sv_gen::reductions::labelcover_to_set;
use sv_optimize::{exact_set, setcon};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_setcon");
    g.sample_size(10);
    for n in [3usize, 5, 6] {
        let p = InstanceParams {
            n_modules: n,
            attrs_per_module: 4,
            ..Default::default()
        };
        let inst = random_set(&mut StdRng::seed_from_u64(n as u64), &p);
        g.bench_with_input(BenchmarkId::new("lmax_rounding", n), &n, |bch, _| {
            bch.iter(|| setcon::solve_rounding(&inst).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("exact_enumeration", n), &n, |bch, _| {
            bch.iter(|| exact_set(&inst));
        });
    }
    let lc = LabelCover::random(&mut StdRng::seed_from_u64(4), 2, 2, 2, 0.5, 2);
    let red = labelcover_to_set(&lc);
    g.bench_function("labelcover_gadget_rounding", |bch| {
        bch.iter(|| setcon::solve_rounding(&red.instance).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
