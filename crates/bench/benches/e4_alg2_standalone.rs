//! E4/E5 — Algorithm 2: standalone Secure-View solve time, k sweep
//! (predicted O(2^k · N); the subset lattice dominates) and the
//! minimal-safe-set enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sv_core::StandaloneModule;
use sv_workflow::{library, ModuleId, Visibility, WorkflowBuilder};

fn xor_module(k: usize) -> StandaloneModule {
    let mut b = WorkflowBuilder::new();
    let ins = b.bool_attrs("x", k);
    let out = b.attr("y", sv_relation::Domain::boolean());
    b.module(
        "xor",
        &ins,
        &[out],
        Visibility::Private,
        library::xor_all_fn(),
    );
    StandaloneModule::from_workflow_module(&b.build().unwrap(), ModuleId(0), 1 << 22).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_alg2_standalone");
    g.sample_size(10);
    for k in [6usize, 8, 10, 12] {
        let m = xor_module(k);
        let costs = vec![1u64; k + 1];
        g.bench_with_input(BenchmarkId::new("min_cost_safe_hidden", k), &k, |bch, _| {
            bch.iter(|| m.min_cost_safe_hidden(&costs, 2).unwrap());
        });
    }
    for k in [4usize, 6, 8] {
        let m = xor_module(k);
        g.bench_with_input(BenchmarkId::new("minimal_safe_sets", k), &k, |bch, _| {
            bch.iter(|| m.minimal_safe_hidden_sets(2).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
