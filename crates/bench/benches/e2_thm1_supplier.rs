//! E2 — Theorem 1: time to decide safety of the disjointness view as N
//! grows (predicted Ω(N): the checker must stream essentially all rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use sv_core::oracle::{decide_safety_streaming, CountingSupplier};
use sv_gen::adversary::{disjointness_module, disjointness_visible};
use sv_workflow::ModuleFn;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_thm1_supplier_calls");
    g.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let a: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
        let m = disjointness_module(n, &a, &b);
        let rows: Vec<Vec<u32>> = m
            .relation()
            .rows()
            .iter()
            .map(|t| t.values()[..3].to_vec())
            .collect();
        let lookup: HashMap<Vec<u32>, Vec<u32>> = m
            .relation()
            .rows()
            .iter()
            .map(|t| (t.values()[..3].to_vec(), vec![t.values()[3]]))
            .collect();
        g.bench_with_input(BenchmarkId::new("disjoint", n), &n, |bch, _| {
            bch.iter(|| {
                let lk = lookup.clone();
                let mut sup = CountingSupplier::new(ModuleFn::closure(move |x: &[u32]| {
                    lk[&x.to_vec()].clone()
                }));
                decide_safety_streaming(&mut sup, &m, &rows, &disjointness_visible(), 2)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
