//! # sv-bench — benchmark harness for `secure-view`
//!
//! One Criterion bench per experiment of DESIGN.md's experiment index
//! (runtime scaling), plus the [`experiments`] support code backing
//! `src/bin/experiments.rs`, which prints the quality tables
//! (approximation ratios, oracle-call counts, world counts) recorded in
//! EXPERIMENTS.md, and the [`baseline`] comparison logic behind
//! `src/bin/bench_gate.rs`, the CI bench-regression gate over the
//! committed `BENCH_*.json` files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod flatscan;
pub mod layerscan;
