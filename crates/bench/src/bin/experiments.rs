//! Prints every quality-metric experiment table (E1–E14 of DESIGN.md's
//! index). The numbers recorded in EXPERIMENTS.md come from this
//! binary:
//!
//! ```sh
//! cargo run --release -p sv-bench --bin experiments
//! ```

fn main() {
    for line in sv_bench::experiments::run_all() {
        println!("{line}");
    }
}
