//! CI bench-regression gate: compares a fresh bench run against a
//! committed `BENCH_*.json` baseline and exits non-zero on regression.
//!
//! ```text
//! bench_gate --baseline BENCH_kernel.json --current current.json \
//!            [--max-ratio 2.0] [--prefix e9_kernel_swap/derive_requirements]... \
//!            [--exact e16_parallel_sweep/stats/]... \
//!            [--speedup slow_id,fast_id,min]...
//! ```
//!
//! `--current` accepts either a `--save-baseline`-produced JSON file or
//! raw bench output containing `BENCHJSON` lines. With no `--prefix`,
//! every baseline id is gated by ratio — unless `--exact` or
//! `--speedup` checks are given, in which case only those run.
//! `--exact` prefixes gate deterministic counters (sweep visited/pruned
//! masks): the current run must reproduce the committed value
//! bit-for-bit. `--speedup` checks are evaluated on the current run
//! alone (`slow/fast ≥ min`), so they hold regardless of how fast the
//! CI machine is relative to the one that recorded the committed
//! baseline.

use sv_bench::baseline::{compare, compare_exact, load_results, SpeedupCheck};

struct Args {
    baseline: String,
    current: String,
    max_ratio: f64,
    prefixes: Vec<String>,
    exacts: Vec<String>,
    speedups: Vec<SpeedupCheck>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut max_ratio = 2.0f64;
    let mut prefixes = Vec::new();
    let mut exacts = Vec::new();
    let mut speedups = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--max-ratio" => {
                max_ratio = value("--max-ratio")?
                    .parse()
                    .map_err(|e| format!("bad --max-ratio: {e}"))?;
            }
            "--prefix" => prefixes.push(value("--prefix")?),
            "--exact" => exacts.push(value("--exact")?),
            "--speedup" => speedups.push(SpeedupCheck::parse(&value("--speedup")?)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        max_ratio,
        prefixes,
        exacts,
        speedups,
    })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline =
        load_results(&read(&args.baseline)?).map_err(|e| format!("{}: {e}", args.baseline))?;
    let current =
        load_results(&read(&args.current)?).map_err(|e| format!("{}: {e}", args.current))?;
    let mut ok = true;
    // The ratio report runs when prefixes are given, or when nothing
    // else is (the legacy gate-everything default).
    if !args.prefixes.is_empty() || (args.exacts.is_empty() && args.speedups.is_empty()) {
        let report = compare(&baseline, &current, &args.prefixes, args.max_ratio);
        print!("{}", report.render());
        ok &= report.passed();
    }
    if !args.exacts.is_empty() {
        let report = compare_exact(&baseline, &current, &args.exacts);
        print!("{}", report.render());
        ok &= report.passed();
    }
    for check in &args.speedups {
        print!("{}", check.render(&current));
        ok &= check.evaluate(&current).1;
    }
    Ok(ok)
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => {
            eprintln!(
                "bench_gate: FAILED — see docs/BENCHMARKS.md for the measurement \
                 methodology, gate thresholds, and how to refresh a committed \
                 BENCH_*.json baseline after a deliberate change"
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench_gate: {e} (see docs/BENCHMARKS.md)");
            std::process::exit(2);
        }
    }
}
