//! CI bench-regression gate: compares fresh bench runs against the
//! committed `BENCH_*.json` baselines and exits non-zero on regression.
//!
//! ```text
//! bench_gate --baseline BENCH_kernel.json --current current.json \
//!            [--max-ratio 2.0] [--prefix e9_kernel_swap/derive_requirements]... \
//!            [--exact e16_parallel_sweep/stats/]... \
//!            [--speedup slow_id,fast_id,min]... \
//!            [--baseline BENCH_sweep.json --current sweep.json ...]...
//! ```
//!
//! Each `--baseline` starts a new **gate group**; the flags that follow
//! it (`--current`, `--max-ratio`, `--prefix`, `--exact`, `--speedup`)
//! configure that group. Every group is evaluated even when an earlier
//! one fails, and the exit summary names each failing group — so a
//! regenerated baseline surfaces *every* drift in one run instead of
//! stopping at the first failing invocation.
//!
//! `--current` accepts either a `--save-baseline`-produced JSON file or
//! raw bench output containing `BENCHJSON` lines. With no `--prefix`,
//! every baseline id is gated by ratio — unless `--exact` or
//! `--speedup` checks are given, in which case only those run.
//! `--exact` prefixes gate deterministic counters (sweep visited/pruned
//! masks, border walk emissions): the current run must reproduce the
//! committed value bit-for-bit. `--speedup` checks are evaluated on the
//! current run alone (`slow/fast ≥ min`), so they hold regardless of
//! how fast the CI machine is relative to the one that recorded the
//! committed baseline.

use sv_bench::baseline::{compare, compare_exact, load_results, SpeedupCheck};

#[derive(Debug)]
struct Group {
    baseline: String,
    current: Option<String>,
    max_ratio: f64,
    prefixes: Vec<String>,
    exacts: Vec<String>,
    speedups: Vec<SpeedupCheck>,
}

impl Group {
    fn new(baseline: String) -> Self {
        Self {
            baseline,
            current: None,
            max_ratio: 2.0,
            prefixes: Vec::new(),
            exacts: Vec::new(),
            speedups: Vec::new(),
        }
    }
}

fn parse_args<I: Iterator<Item = String>>(args: I) -> Result<Vec<Group>, String> {
    let mut groups: Vec<Group> = Vec::new();
    let mut it = args;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        if flag == "--baseline" {
            groups.push(Group::new(value("--baseline")?));
            continue;
        }
        let group = groups
            .last_mut()
            .ok_or(format!("{flag} must follow a --baseline"))?;
        match flag.as_str() {
            "--current" => group.current = Some(value("--current")?),
            "--max-ratio" => {
                group.max_ratio = value("--max-ratio")?
                    .parse()
                    .map_err(|e| format!("bad --max-ratio: {e}"))?;
            }
            "--prefix" => group.prefixes.push(value("--prefix")?),
            "--exact" => group.exacts.push(value("--exact")?),
            "--speedup" => group
                .speedups
                .push(SpeedupCheck::parse(&value("--speedup")?)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if groups.is_empty() {
        return Err("--baseline is required".into());
    }
    for g in &groups {
        if g.current.is_none() {
            return Err(format!("group {} is missing --current", g.baseline));
        }
    }
    Ok(groups)
}

/// Evaluates one gate group; returns whether it passed. All output goes
/// to stdout so every check's report is visible even when earlier
/// groups failed.
fn run_group(group: &Group) -> Result<bool, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline =
        load_results(&read(&group.baseline)?).map_err(|e| format!("{}: {e}", group.baseline))?;
    let current_path = group.current.as_deref().expect("validated in parse_args");
    let current = load_results(&read(current_path)?).map_err(|e| format!("{current_path}: {e}"))?;
    let mut ok = true;
    // The ratio report runs when prefixes are given, or when nothing
    // else is (the legacy gate-everything default).
    if !group.prefixes.is_empty() || (group.exacts.is_empty() && group.speedups.is_empty()) {
        let report = compare(&baseline, &current, &group.prefixes, group.max_ratio);
        print!("{}", report.render());
        ok &= report.passed();
    }
    if !group.exacts.is_empty() {
        let report = compare_exact(&baseline, &current, &group.exacts);
        print!("{}", report.render());
        ok &= report.passed();
    }
    for check in &group.speedups {
        print!("{}", check.render(&current));
        ok &= check.evaluate(&current).1;
    }
    Ok(ok)
}

fn run() -> Result<Vec<String>, String> {
    let groups = parse_args(std::env::args().skip(1))?;
    let many = groups.len() > 1;
    let mut failed = Vec::new();
    for group in &groups {
        if many {
            println!("=== gate group: {} ===", group.baseline);
        }
        // A group that cannot even load its inputs counts as a failure
        // of that group, not an abort of the whole run: every remaining
        // gate still gets evaluated and reported.
        let passed = match run_group(group) {
            Ok(passed) => passed,
            Err(e) => {
                println!("{}: ERROR {e}", group.baseline);
                false
            }
        };
        if !passed {
            failed.push(group.baseline.clone());
        }
    }
    Ok(failed)
}

fn main() {
    match run() {
        Ok(failed) if failed.is_empty() => {}
        Ok(failed) => {
            eprintln!(
                "bench_gate: FAILED ({}) — see docs/BENCHMARKS.md for the \
                 measurement methodology, gate thresholds, and how to refresh a \
                 committed BENCH_*.json baseline after a deliberate change",
                failed.join(", ")
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench_gate: {e} (see docs/BENCHMARKS.md)");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn single_group_keeps_legacy_shape() {
        let groups = parse_args(args(&[
            "--baseline",
            "a.json",
            "--current",
            "b.json",
            "--max-ratio",
            "3.5",
            "--prefix",
            "e9/",
            "--exact",
            "e16/stats/",
            "--speedup",
            "slow,fast,3.0",
        ]))
        .unwrap();
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.baseline, "a.json");
        assert_eq!(g.current.as_deref(), Some("b.json"));
        assert!((g.max_ratio - 3.5).abs() < f64::EPSILON);
        assert_eq!(g.prefixes, ["e9/"]);
        assert_eq!(g.exacts, ["e16/stats/"]);
        assert_eq!(g.speedups.len(), 1);
    }

    #[test]
    fn repeated_baseline_starts_new_groups_with_independent_flags() {
        let groups = parse_args(args(&[
            "--baseline",
            "a.json",
            "--current",
            "a_run.json",
            "--exact",
            "e16/",
            "--baseline",
            "b.json",
            "--current",
            "b_run.json",
            "--max-ratio",
            "4.0",
        ]))
        .unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].exacts, ["e16/"]);
        assert!(
            groups[1].exacts.is_empty(),
            "flags do not leak across groups"
        );
        assert!((groups[0].max_ratio - 2.0).abs() < f64::EPSILON);
        assert!((groups[1].max_ratio - 4.0).abs() < f64::EPSILON);
    }

    #[test]
    fn flags_before_any_baseline_are_rejected() {
        let err = parse_args(args(&["--current", "b.json"])).unwrap_err();
        assert!(err.contains("must follow a --baseline"), "{err}");
    }

    #[test]
    fn missing_current_is_rejected_per_group() {
        let err = parse_args(args(&[
            "--baseline",
            "a.json",
            "--current",
            "a_run.json",
            "--baseline",
            "b.json",
        ]))
        .unwrap_err();
        assert!(err.contains("b.json is missing --current"), "{err}");
    }

    #[test]
    fn no_arguments_is_an_error() {
        assert!(parse_args(args(&[])).is_err());
    }
}
