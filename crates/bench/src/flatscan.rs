//! Retained **flat-scan reference** for the minimal-sets sweep — the
//! pre-trie algorithm `minimal_sets_sweep` shipped before PR 6, kept as
//! a budgeted serial baseline so `e20_frontier_scaling` can measure the
//! trie frontier against the exact code path it replaced.
//!
//! The antichain is a plain sorted `Vec<u64>` and every enumerated mask
//! pays a linear `members.iter().any(|&m| m & mask == m)` coverage
//! scan. [`FlatScanOutcome::scans`] counts the **member-visits** of
//! those scans (the inner-loop work the trie makes sublinear); a run
//! aborts with `completed = false` once the visit budget is exhausted,
//! which is how the k = 24 case is shown to be out of reach for the
//! flat scan while the trie sweep finishes.

use sv_core::{MemoSafetyOracle, StandaloneModule};

/// Deterministic counters of one budgeted flat-scan sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlatScanOutcome {
    /// Whether the sweep ran to its layer cutoff within the budget.
    pub completed: bool,
    /// Antichain size at exit (final iff `completed`).
    pub sets: u64,
    /// Masks probed through the safety oracle (uncovered masks).
    pub visited: u64,
    /// Coverage-scan member-visits — the flat scan's inner-loop cost.
    pub scans: u64,
}

/// Serial minimal-sets sweep with a linear antichain scan, stopping as
/// soon as `scan_budget` coverage member-visits are spent.
///
/// Mirrors the layered enumeration of `sv_core::sweep`: masks are
/// visited in (popcount, mask) order via Gosper's hack, covered masks
/// are skipped without probing, and a fully-covered layer cuts off the
/// remaining lattice (Proposition 1).
#[must_use]
pub fn flat_scan_minimal_sets(
    module: &StandaloneModule,
    gamma: u128,
    scan_budget: u64,
) -> FlatScanOutcome {
    let k = module.k();
    let oracle = MemoSafetyOracle::new(module.clone());
    let mut scratch: Vec<u64> = Vec::new();
    let mut members: Vec<u64> = Vec::new();
    let mut visited = 0u64;
    let mut scans = 0u64;
    for layer in 0..=k {
        let mut layer_found: Vec<u64> = Vec::new();
        let mut uncovered = 0u64;
        let mut mask = if layer == 0 { 0 } else { (1u64 << layer) - 1 };
        let last = mask << (k - layer);
        loop {
            // Linear coverage test, paying one visit per member walked.
            let mut covered = false;
            for &m in &members {
                scans += 1;
                if m & mask == m {
                    covered = true;
                    break;
                }
            }
            if scans >= scan_budget {
                return FlatScanOutcome {
                    completed: false,
                    sets: members.len() as u64,
                    visited,
                    scans,
                };
            }
            if !covered {
                uncovered += 1;
                visited += 1;
                if oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch) {
                    layer_found.push(mask);
                }
            }
            if mask == last {
                break;
            }
            // Gosper's hack: next mask of the same popcount.
            let c = mask & mask.wrapping_neg();
            let r = mask + c;
            mask = (((r ^ mask) >> 2) / c) | r;
        }
        members.extend(layer_found);
        if layer > 0 && uncovered == 0 && !members.is_empty() {
            break; // fully-covered layer: the rest of the lattice is generated
        }
    }
    FlatScanOutcome {
        completed: true,
        sets: members.len() as u64,
        visited,
        scans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_core::sweep::{minimal_sets_sweep, SweepConfig};
    use sv_core::StandaloneModule;
    use sv_workflow::{library, ModuleId};

    fn one_one_module(wires: usize) -> StandaloneModule {
        let wf = library::one_one_chain(1, wires);
        StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 21).unwrap()
    }

    #[test]
    fn flat_scan_agrees_with_the_trie_sweep() {
        let m = one_one_module(4);
        for gamma in [2u128, 4, 16] {
            let out = flat_scan_minimal_sets(&m, gamma, u64::MAX);
            let (sets, stats) = minimal_sets_sweep(&m, gamma, &SweepConfig::serial()).unwrap();
            assert!(out.completed);
            assert_eq!(out.sets, sets.len() as u64, "gamma={gamma}");
            assert_eq!(out.visited, stats.visited, "gamma={gamma}");
        }
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let m = one_one_module(4);
        let out = flat_scan_minimal_sets(&m, 16, 64);
        assert!(!out.completed);
        assert!(out.scans >= 64);
    }
}
