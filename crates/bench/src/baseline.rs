//! Bench-regression gating against committed `BENCH_*.json` baselines.
//!
//! The CI `bench-gate` job runs the small fixed e9/e13 derivation
//! workloads, saves their results with the criterion shim's
//! `--save-baseline`, and then runs the `bench_gate` binary (built on
//! this module) to compare the fresh numbers against the committed
//! baseline: any gated id whose time regresses by more than the allowed
//! ratio fails the job. Ids are matched by prefix so the gate tracks
//! exactly the derivation benchmarks the kernel-swap baseline recorded.

use criterion::json::Json;

/// One compared benchmark id.
#[derive(Clone, Debug, PartialEq)]
pub struct GateRow {
    /// The benchmark id (`group/bench` path).
    pub id: String,
    /// Baseline value (ns/iter, or a recorded metric).
    pub baseline: f64,
    /// Current value, if the fresh run produced this id.
    pub current: Option<f64>,
    /// `current / baseline` (`None` when current is missing or the
    /// baseline is non-positive).
    pub ratio: Option<f64>,
}

impl GateRow {
    /// Whether this row passes under `max_ratio`.
    #[must_use]
    pub fn passes(&self, max_ratio: f64) -> bool {
        self.ratio.is_some_and(|r| r <= max_ratio)
    }
}

/// Outcome of one gate run.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// All compared rows, in baseline order.
    pub rows: Vec<GateRow>,
    /// The ratio threshold the report was evaluated under.
    pub max_ratio: f64,
    /// When set, rows pass only on **exact equality** with the baseline
    /// (`max_ratio` is ignored) — for deterministic, hardware-independent
    /// counters such as the sweep's visited/pruned mask counts.
    pub exact: bool,
}

impl GateReport {
    fn row_passes(&self, r: &GateRow) -> bool {
        if self.exact {
            r.current == Some(r.baseline)
        } else {
            r.passes(self.max_ratio)
        }
    }

    /// Whether every gated id passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        !self.rows.is_empty() && self.rows.iter().all(|r| self.row_passes(r))
    }

    /// Human-readable table plus verdict.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let status = if self.row_passes(r) { "ok  " } else { "FAIL" };
            match (r.current, r.ratio) {
                (Some(c), Some(ratio)) => out.push_str(&format!(
                    "{status} {:<60} base {:>14.1}  cur {c:>14.1}  ratio {ratio:>6.2}\n",
                    r.id, r.baseline
                )),
                // A present value with no ratio (zero baseline — e.g. a
                // deterministic counter that is exactly 0) is not
                // missing; exact mode still compares it bit-for-bit.
                (Some(c), None) => out.push_str(&format!(
                    "{status} {:<60} base {:>14.1}  cur {c:>14.1}  ratio    n/a\n",
                    r.id, r.baseline
                )),
                (None, _) => out.push_str(&format!(
                    "{status} {:<60} base {:>14.1}  cur        MISSING\n",
                    r.id, r.baseline
                )),
            }
        }
        if self.rows.is_empty() {
            out.push_str("FAIL no baseline ids matched the gate prefixes\n");
        }
        if self.exact {
            out.push_str(&format!(
                "bench-gate: {} (exact match required)\n",
                if self.passed() { "PASS" } else { "FAIL" },
            ));
        } else {
            out.push_str(&format!(
                "bench-gate: {} (max allowed ratio {:.2})\n",
                if self.passed() { "PASS" } else { "FAIL" },
                self.max_ratio
            ));
        }
        out
    }
}

/// Extracts `(id, value)` results from either supported format: a
/// baseline JSON document (numbers under `"results"`, nested keys
/// joined with `/`) or raw bench output containing `BENCHJSON {...}`
/// lines.
///
/// # Errors
/// Fails when the text is neither parseable JSON with a `results`
/// object nor contains any `BENCHJSON` line.
pub fn load_results(text: &str) -> Result<Vec<(String, f64)>, String> {
    if let Ok(doc) = Json::parse(text.trim()) {
        if let Some(results) = doc.get("results") {
            return Ok(results.flatten_numbers());
        }
        return Err("JSON document has no \"results\" object".into());
    }
    let mut out: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("BENCHJSON ") else {
            continue;
        };
        let doc = Json::parse(rest).map_err(|e| format!("bad BENCHJSON line: {e}"))?;
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .ok_or("BENCHJSON line without id")?;
        let v = doc
            .get("ns_per_iter")
            .and_then(Json::as_f64)
            .ok_or("BENCHJSON line without ns_per_iter")?;
        match out.iter_mut().find(|(k, _)| k == id) {
            Some(slot) => slot.1 = v,
            None => out.push((id.to_string(), v)),
        }
    }
    if out.is_empty() {
        return Err("no results: neither a baseline JSON nor BENCHJSON lines".into());
    }
    Ok(out)
}

/// A **within-run** speedup floor: `slow_id / fast_id ≥ min`, evaluated
/// on the current results only. Unlike the absolute baseline
/// comparison, this is machine-independent — both measurements come
/// from the same run on the same hardware — so it stays meaningful when
/// CI runners are faster or slower than the machine that produced the
/// committed baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeedupCheck {
    /// Id of the slow (baseline-path) measurement.
    pub slow: String,
    /// Id of the fast (optimized-path) measurement.
    pub fast: String,
    /// Minimum acceptable `slow / fast` ratio.
    pub min: f64,
}

impl SpeedupCheck {
    /// Parses the CLI form `slow_id,fast_id,min` (ids contain `/`, so
    /// commas separate the fields).
    ///
    /// # Errors
    /// Fails on a malformed spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(',').collect();
        let [slow, fast, min] = parts.as_slice() else {
            return Err(format!(
                "--speedup expects slow_id,fast_id,min — got {spec:?}"
            ));
        };
        Ok(Self {
            slow: (*slow).to_string(),
            fast: (*fast).to_string(),
            min: min
                .parse()
                .map_err(|e| format!("bad speedup minimum {min:?}: {e}"))?,
        })
    }

    /// Evaluates the check: `(actual ratio, passed)`. A missing id or a
    /// non-positive fast time yields `(None, false)`.
    #[must_use]
    pub fn evaluate(&self, current: &[(String, f64)]) -> (Option<f64>, bool) {
        let find = |id: &str| current.iter().find(|(k, _)| k == id).map(|(_, v)| *v);
        match (find(&self.slow), find(&self.fast)) {
            (Some(slow), Some(fast)) if fast > 0.0 => {
                let ratio = slow / fast;
                (Some(ratio), ratio >= self.min)
            }
            _ => (None, false),
        }
    }

    /// One rendered verdict line.
    #[must_use]
    pub fn render(&self, current: &[(String, f64)]) -> String {
        let (ratio, ok) = self.evaluate(current);
        let status = if ok { "ok  " } else { "FAIL" };
        match ratio {
            Some(r) => format!(
                "{status} speedup {} / {} = {r:.1}x (floor {:.1}x)\n",
                self.slow, self.fast, self.min
            ),
            None => format!(
                "{status} speedup {} / {}: measurement missing\n",
                self.slow, self.fast
            ),
        }
    }
}

/// Compares `current` against `baseline` over the ids matching any of
/// `prefixes` (all baseline ids when `prefixes` is empty).
#[must_use]
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    prefixes: &[String],
    max_ratio: f64,
) -> GateReport {
    let gated = baseline.iter().filter(|(id, _)| {
        prefixes.is_empty() || prefixes.iter().any(|p| id.starts_with(p.as_str()))
    });
    let rows = gated
        .map(|(id, base)| {
            let current = current.iter().find(|(cid, _)| cid == id).map(|(_, v)| *v);
            let ratio = current.and_then(|c| (*base > 0.0).then(|| c / *base));
            GateRow {
                id: id.clone(),
                baseline: *base,
                current,
                ratio,
            }
        })
        .collect();
    GateReport {
        rows,
        max_ratio,
        exact: false,
    }
}

/// [`compare`] in **exact** mode: every baseline id matching a prefix
/// must be reproduced bit-for-bit by the current run. This is the gate
/// for deterministic counters — the sweep layer's visited/pruned mask
/// counts are scheduling-independent by construction (serial
/// branch-and-bound; layer-barriered antichain sweeps), so any drift is
/// a semantic regression, not noise.
#[must_use]
pub fn compare_exact(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    prefixes: &[String],
) -> GateReport {
    GateReport {
        exact: true,
        ..compare(baseline, current, prefixes, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Vec<(String, f64)> {
        vec![
            (
                "e9_kernel_swap/derive_requirements/interned_kernel".into(),
                100.0,
            ),
            (
                "e13_kernel_swap/derive_general/interned_plus_memo".into(),
                200.0,
            ),
            ("e9_cardinality/lp_rounding/3".into(), 50.0),
        ]
    }

    #[test]
    fn gate_passes_within_ratio_and_fails_beyond() {
        let current = vec![
            (
                "e9_kernel_swap/derive_requirements/interned_kernel".into(),
                150.0,
            ),
            (
                "e13_kernel_swap/derive_general/interned_plus_memo".into(),
                390.0,
            ),
        ];
        let prefixes = vec![
            "e9_kernel_swap/derive".into(),
            "e13_kernel_swap/derive".into(),
        ];
        let report = compare(&baseline(), &current, &prefixes, 2.0);
        assert_eq!(report.rows.len(), 2, "lp_rounding is not gated");
        assert!(report.passed(), "{}", report.render());

        let regressed = vec![
            (
                "e9_kernel_swap/derive_requirements/interned_kernel".into(),
                250.0,
            ),
            (
                "e13_kernel_swap/derive_general/interned_plus_memo".into(),
                150.0,
            ),
        ];
        let report = compare(&baseline(), &regressed, &prefixes, 2.0);
        assert!(!report.passed());
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn missing_current_id_fails_the_gate() {
        let report = compare(&baseline(), &[], &["e9_kernel_swap".to_string()], 2.0);
        assert!(!report.passed());
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn empty_prefix_set_gates_everything() {
        let current = baseline();
        let report = compare(&baseline(), &current, &[], 2.0);
        assert_eq!(report.rows.len(), 3);
        assert!(report.passed());
    }

    #[test]
    fn no_matching_ids_is_a_failure_not_a_silent_pass() {
        let report = compare(&baseline(), &baseline(), &["does_not_exist".into()], 2.0);
        assert!(report.rows.is_empty());
        assert!(!report.passed());
    }

    #[test]
    fn exact_mode_requires_bit_identical_counters() {
        let base = vec![
            ("e16/stats/visited".to_string(), 137983.0),
            ("e16/stats/fraction".to_string(), 0.1315908432006836),
        ];
        let same = base.clone();
        let report = compare_exact(&base, &same, &["e16/stats/".into()]);
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("exact match required"));
        // A one-mask drift fails even though the ratio is ≈ 1.0.
        let drifted = vec![
            ("e16/stats/visited".to_string(), 137984.0),
            ("e16/stats/fraction".to_string(), 0.1315908432006836),
        ];
        let report = compare_exact(&base, &drifted, &["e16/stats/".into()]);
        assert!(!report.passed());
        assert!(report.render().contains("FAIL"));
        // Missing ids fail, and no matching prefix is a failure.
        assert!(!compare_exact(&base, &[], &["e16/stats/".into()]).passed());
        assert!(!compare_exact(&base, &same, &["nope".into()]).passed());
    }

    #[test]
    fn speedup_checks_parse_and_evaluate() {
        let c = SpeedupCheck::parse("a/slow,a/fast,5.0").unwrap();
        assert_eq!(
            (c.slow.as_str(), c.fast.as_str(), c.min),
            ("a/slow", "a/fast", 5.0)
        );
        assert!(SpeedupCheck::parse("only_two,fields").is_err());
        assert!(SpeedupCheck::parse("a,b,not_a_number").is_err());

        let current = vec![("a/slow".to_string(), 100.0), ("a/fast".to_string(), 10.0)];
        assert_eq!(c.evaluate(&current), (Some(10.0), true));
        assert!(c.render(&current).starts_with("ok"));
        let tight = SpeedupCheck::parse("a/slow,a/fast,20.0").unwrap();
        assert_eq!(tight.evaluate(&current), (Some(10.0), false));
        assert!(tight.render(&current).contains("FAIL"));
        // Missing measurements fail instead of silently passing.
        assert_eq!(c.evaluate(&[]), (None, false));
        assert!(c.render(&[]).contains("missing"));
    }

    #[test]
    fn load_results_reads_both_formats() {
        let json =
            "{\"generated_by\": \"x\", \"results\": {\"a/b\": 10.0, \"nested\": {\"c\": 2}}}";
        let r = load_results(json).unwrap();
        assert!(r.contains(&("a/b".into(), 10.0)));
        assert!(r.contains(&("nested/c".into(), 2.0)));

        let lines = "noise\nBENCHJSON {\"id\": \"a/b\", \"ns_per_iter\": 11.5}\nmore noise\n";
        let r = load_results(lines).unwrap();
        assert_eq!(r, vec![("a/b".to_string(), 11.5)]);

        assert!(load_results("garbage with no results").is_err());
        assert!(load_results("{\"no_results\": 1}").is_err());
    }
}
