//! Quality-metric experiments backing EXPERIMENTS.md.
//!
//! Each function regenerates one experiment of DESIGN.md's index and
//! returns printable table rows; `src/bin/experiments.rs` runs them
//! all. Runtime-scaling counterparts live in `benches/`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use sv_core::compose::{union_of_standalone_optima, WorldSearch};
use sv_core::oracle::{
    decide_safety_streaming, min_cost_via_oracle, CountingSupplier, HonestOracle,
};
use sv_core::safety::WorkflowOracles;
use sv_core::StandaloneModule;
use sv_gen::adversary::{
    cnf_module, cnf_visible, disjointness_module, disjointness_visible, thm3_costs, thm3_m1,
    AdversarialOracle, Cnf,
};
use sv_gen::gadgets::{
    example5_instance, prop2_chain, prop2_count_bruteforce, prop2_standalone_worlds_log2,
    prop2_workflow_worlds_log2,
};
use sv_gen::labelcover::LabelCover;
use sv_gen::random::{random_cardinality, random_layered_workflow, random_set, InstanceParams};
use sv_gen::reductions::{
    labelcover_to_general, labelcover_to_set, setcover_to_cardinality, setcover_to_general,
    vertexcover_to_cardinality,
};
use sv_gen::setcover::SetCover;
use sv_gen::vertexcover::{cover_size, CubicGraph};
use sv_optimize::exact::{exact_cardinality, exact_general, exact_set};
use sv_optimize::greedy::{greedy_cardinality, greedy_set};
use sv_optimize::{cardinality, general, setcon, CardinalityInstance};
use sv_relation::{AttrSet, Tuple};
use sv_workflow::{library, ModuleFn, ModuleId};

/// E1 — Figure 1 / Examples 1–3: the running example, verbatim.
#[must_use]
pub fn e1_fig1() -> Vec<String> {
    let mut out = vec!["E1  Figure 1 / Examples 1-3 (running example)".into()];
    let wf = library::fig1_workflow();
    let r = wf.provenance_relation(1 << 10).unwrap();
    out.push(format!(
        "  provenance rows = {} (paper: 4); FDs hold = {}",
        r.len(),
        r.check_fds(&wf.fds()).is_ok()
    ));
    let m1 = StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 20).unwrap();
    let v = AttrSet::from_indices(&[0, 2, 4]);
    out.push(format!(
        "  level(V={{a1,a3,a5}}) = {} (paper: safe for Gamma=4)",
        m1.privacy_level(&v)
    ));
    out.push(format!(
        "  level(V={{a3,a4,a5}}) = {} (paper: only 3 outputs, unsafe for 4)",
        m1.privacy_level(&AttrSet::from_indices(&[2, 3, 4]))
    ));
    let worlds = sv_core::worlds::enumerate_worlds(&m1, &v, 1 << 30).unwrap();
    out.push(format!(
        "  |Worlds(R1, V)| = {} (paper: sixty four)",
        worlds.len()
    ));
    let outs =
        sv_core::worlds::out_set_bruteforce(&m1, &v, &Tuple::new(vec![0, 0]), 1 << 30).unwrap();
    out.push(format!(
        "  |OUT_(0,0)| = {} (paper: 4 candidates)",
        outs.len()
    ));
    out
}

/// E2 — Theorem 1: data-supplier calls to decide safety, N sweep.
#[must_use]
pub fn e2_thm1_calls() -> Vec<String> {
    let mut out = vec![
        "E2  Theorem 1 (supplier calls to decide safety; Omega(N) predicted)".into(),
        format!(
            "  {:>6} {:>16} {:>16}",
            "N", "disjoint(calls)", "intersect(calls)"
        ),
    ];
    for n in [64usize, 256, 1024, 4096] {
        let a: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let b_disj: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
        let mut b_hit = b_disj.clone();
        b_hit[n / 2] = true; // common element at the median position
        let run = |bb: &Vec<bool>| {
            let m = disjointness_module(n, &a, bb);
            // Stream rows in id order (the natural supplier order), so
            // an intersecting instance can accept as soon as the second
            // distinct y value appears.
            let mut rows: Vec<Vec<u32>> = m
                .relation()
                .rows()
                .iter()
                .map(|t| t.values()[..3].to_vec())
                .collect();
            rows.sort_by_key(|r| r[2]);
            let lookup: HashMap<Vec<u32>, Vec<u32>> = m
                .relation()
                .rows()
                .iter()
                .map(|t| (t.values()[..3].to_vec(), vec![t.values()[3]]))
                .collect();
            let mut sup = CountingSupplier::new(ModuleFn::closure(move |x: &[u32]| {
                lookup[&x.to_vec()].clone()
            }));
            decide_safety_streaming(&mut sup, &m, &rows, &disjointness_visible(), 2).calls
        };
        out.push(format!(
            "  {:>6} {:>16} {:>16}",
            n,
            run(&b_disj),
            run(&b_hit)
        ));
    }
    out
}

/// E3 — Theorem 2: safety ⇔ UNSAT over random 3-CNFs.
#[must_use]
pub fn e3_thm2_unsat() -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(3);
    let mut agree = 0usize;
    let trials = 40;
    let mut sat_count = 0usize;
    for t in 0..trials {
        let n_clauses = if t % 2 == 0 { 4 } else { 40 };
        let g = Cnf::random_3cnf(&mut rng, 5, n_clauses);
        let m = cnf_module(&g);
        let safe = m.is_safe(&cnf_visible(5), 2);
        if safe != g.satisfiable() {
            agree += 1;
        }
        sat_count += usize::from(g.satisfiable());
    }
    vec![
        "E3  Theorem 2 (safe(V) iff UNSAT(g); co-NP-hardness carrier)".into(),
        format!(
            "  agreement {agree}/{trials} over random 3-CNFs ({sat_count} SAT, {} UNSAT)",
            trials - sat_count
        ),
    ]
}

/// E4 — Theorem 3: oracle-call lower bounds and honest probing costs.
#[must_use]
pub fn e4_thm3_oracle() -> Vec<String> {
    let mut out = vec![
        "E4  Theorem 3 (Safe-View oracle calls; 2^Omega(k) predicted)".into(),
        format!(
            "  {:>4} {:>18} {:>22}",
            "l", "adversary required", "(4/3)^(l/2) bound"
        ),
    ];
    for l in [8usize, 16, 32, 64] {
        let oracle = AdversarialOracle::new(l);
        out.push(format!(
            "  {:>4} {:>18.3e} {:>22.1}",
            l,
            oracle.required_queries(),
            (4.0f64 / 3.0).powi(l as i32 / 2)
        ));
    }
    // Honest probing on the realizable threshold module (fidelity note
    // in sv-gen::adversary applies).
    out.push(format!(
        "  {:>4} {:>18} {:>22}",
        "l", "honest calls", "optimum found"
    ));
    for l in [4usize, 8, 12] {
        let m1 = thm3_m1(l);
        let mut oracle = HonestOracle::new(m1, 2);
        let (found, calls) = min_cost_via_oracle(&mut oracle, &thm3_costs(l));
        out.push(format!(
            "  {:>4} {:>18} {:>22}",
            l,
            calls,
            found.map_or(0, |(_, c)| c)
        ));
    }
    out
}

/// E6 — Proposition 2: world-count collapse, closed forms vs brute
/// force, and preserved privacy.
#[must_use]
pub fn e6_prop2() -> Vec<String> {
    let mut out = vec![
        "E6  Proposition 2 (possible-world collapse; ratio doubly exponential)".into(),
        format!(
            "  {:>4} {:>6} {:>22} {:>22} {:>14}",
            "k", "Gamma", "log2|Worlds(R1,V)|", "log2|Worlds(R,V)|", "log2 ratio"
        ),
    ];
    for (k, gamma) in [(2usize, 2u128), (3, 2), (4, 4), (6, 4), (8, 8)] {
        let s = prop2_standalone_worlds_log2(k, gamma);
        let w = prop2_workflow_worlds_log2(k, gamma);
        out.push(format!(
            "  {:>4} {:>6} {:>22.1} {:>22.1} {:>14.1}",
            k,
            gamma,
            s,
            w,
            s - w
        ));
    }
    let (s, w) = prop2_count_bruteforce(2, 2);
    out.push(format!(
        "  brute force at k=2, Gamma=2: standalone {s} (closed form 16), workflow {w} (closed form 4)"
    ));
    let (wf, hidden) = prop2_chain(2, 2);
    let report = WorldSearch::new(&wf, hidden.complement(wf.schema().len()))
        .run(1 << 26)
        .unwrap();
    out.push(format!(
        "  privacy preserved: min |OUT| = {} for both modules (Gamma = 2)",
        wf.private_modules()
            .iter()
            .map(|&m| report.min_out(m))
            .min()
            .unwrap()
    ));
    out
}

/// E7 — Theorem 4: standalone→workflow composition on random layered
/// workflows, verified against function worlds.
#[must_use]
pub fn e7_thm4() -> Vec<String> {
    let mut ok = 0usize;
    let trials = 20;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let wf = random_layered_workflow(&mut rng, 2, 2, 2);
        let costs = vec![1u64; wf.schema().len()];
        if let Ok((hidden, _)) = union_of_standalone_optima(&wf, &costs, 2, 1 << 20) {
            let visible = hidden.complement(wf.schema().len());
            let report = WorldSearch::new(&wf, visible).run(1 << 26).unwrap();
            if report.is_gamma_private(&wf.private_modules(), 2) {
                ok += 1;
            }
        } else {
            ok += 1; // no safe standalone subset exists: vacuously fine
        }
    }
    vec![
        "E7  Theorem 4 (union of standalone-safe sets is workflow-safe)".into(),
        format!("  verified on {ok}/{trials} random layered workflows (predicted: all)"),
    ]
}

/// E8 — Example 5: the Ω(n) composition gap.
#[must_use]
pub fn e8_example5() -> Vec<String> {
    let mut out = vec![
        "E8  Example 5 (union-of-standalone-optima vs optimum; Omega(n) gap)".into(),
        format!(
            "  {:>4} {:>10} {:>10} {:>8}",
            "n", "union", "optimum", "ratio"
        ),
    ];
    for n in [2usize, 4, 8, 16, 22] {
        let inst = example5_instance(n);
        let g = greedy_set(&inst).unwrap();
        let o = exact_set(&inst).unwrap();
        out.push(format!(
            "  {:>4} {:>10} {:>10} {:>8.2}",
            n,
            g.cost,
            o.cost,
            g.cost as f64 / o.cost as f64
        ));
    }
    out
}

/// E9 — Theorem 5: LP-rounding quality for cardinality constraints on
/// random instances and set-cover gadgets.
#[must_use]
pub fn e9_cardinality() -> Vec<String> {
    let mut out = vec![
        "E9  Theorem 5 (cardinality constraints; O(log n)-approx rounding)".into(),
        format!(
            "  {:>10} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "family", "n", "LP/OPT", "round/OPT", "greedy/OPT", "16ln(n)"
        ),
    ];
    let mut rng = StdRng::seed_from_u64(9);
    for n_modules in [3usize, 5, 6] {
        let p = InstanceParams {
            n_modules,
            attrs_per_module: 4,
            ..Default::default()
        };
        let mut lp_r = 0.0;
        let mut rd_r: f64 = 0.0;
        let mut gr_r: f64 = 0.0;
        let mut cnt = 0;
        for _ in 0..5 {
            let inst = random_cardinality(&mut rng, &p);
            let Some(opt) = exact_cardinality(&inst) else {
                continue;
            };
            if opt.cost == 0 {
                continue;
            }
            let lb = cardinality::lp_lower_bound(&inst).unwrap();
            let rd = cardinality::solve_rounding(&inst, &mut rng).unwrap();
            let gr = greedy_cardinality(&inst).map_or(f64::NAN, |g| g.cost as f64);
            lp_r += lb / opt.cost as f64;
            rd_r += rd.cost as f64 / opt.cost as f64;
            gr_r += gr / opt.cost as f64;
            cnt += 1;
        }
        let c = cnt as f64;
        out.push(format!(
            "  {:>10} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.1}",
            "random",
            n_modules,
            lp_r / c,
            rd_r / c,
            gr_r / c,
            16.0 * (n_modules as f64).ln()
        ));
    }
    // Set-cover gadgets (B.4.2).
    for (ne, m) in [(6usize, 5usize), (8, 6), (10, 8)] {
        let sc = SetCover::random(&mut rng, ne, m, 0.35);
        let red = setcover_to_cardinality(&sc);
        let Some(opt) = exact_cardinality(&red.instance) else {
            continue;
        };
        let lb = cardinality::lp_lower_bound(&red.instance).unwrap();
        let rd = cardinality::solve_rounding(&red.instance, &mut rng).unwrap();
        out.push(format!(
            "  {:>10} {:>6} {:>10.3} {:>10.3} {:>10} {:>10.1}",
            "set-cover",
            red.instance.n_modules(),
            lb / opt.cost as f64,
            rd.cost as f64 / opt.cost as f64,
            "-",
            16.0 * (red.instance.n_modules() as f64).ln()
        ));
    }
    out
}

/// E10 — Theorem 6: ℓ_max-rounding quality for set constraints and the
/// Lemma-5 label-cover correspondence.
#[must_use]
pub fn e10_setcon() -> Vec<String> {
    let mut out = vec![
        "E10 Theorem 6 (set constraints; l_max-approx rounding)".into(),
        format!(
            "  {:>12} {:>6} {:>6} {:>10} {:>10}",
            "family", "n", "l_max", "LP/OPT", "round/OPT"
        ),
    ];
    let mut rng = StdRng::seed_from_u64(10);
    for n_modules in [3usize, 5, 6] {
        let p = InstanceParams {
            n_modules,
            attrs_per_module: 4,
            ..Default::default()
        };
        let mut lp_r = 0.0;
        let mut rd_r = 0.0;
        let mut lmax = 0usize;
        let mut cnt = 0;
        for _ in 0..5 {
            let inst = random_set(&mut rng, &p);
            let Some(opt) = exact_set(&inst) else {
                continue;
            };
            if opt.cost == 0 {
                continue;
            }
            let lb = setcon::lp_lower_bound(&inst).unwrap();
            let rd = setcon::solve_rounding(&inst).unwrap();
            lp_r += lb / opt.cost as f64;
            rd_r += rd.cost as f64 / opt.cost as f64;
            lmax = lmax.max(inst.l_max());
            cnt += 1;
        }
        let c = cnt as f64;
        out.push(format!(
            "  {:>12} {:>6} {:>6} {:>10.3} {:>10.3}",
            "random",
            n_modules,
            lmax,
            lp_r / c,
            rd_r / c
        ));
    }
    // Label-cover gadget (Lemma 5).
    let lc = LabelCover::random(&mut rng, 2, 2, 2, 0.5, 2);
    let red = labelcover_to_set(&lc);
    let opt = exact_set(&red.instance).unwrap();
    let asg = lc.exact();
    out.push(format!(
        "  label-cover correspondence: assignment {} == secure-view {}",
        asg.cost(),
        opt.cost
    ));
    out
}

/// E11 — Theorem 7: greedy under bounded data sharing (γ sweep) and
/// the Lemma-6 vertex-cover correspondence.
#[must_use]
pub fn e11_bounded_sharing() -> Vec<String> {
    let mut out = vec![
        "E11 Theorem 7 (greedy <= (gamma+1) OPT under gamma-bounded sharing)".into(),
        format!(
            "  {:>8} {:>12} {:>12} {:>8}",
            "sharing", "greedy/OPT", "bound(g+1)", "samples"
        ),
    ];
    let mut rng = StdRng::seed_from_u64(11);
    for shared in [0usize, 1, 2, 3] {
        let p = InstanceParams {
            n_modules: 5,
            attrs_per_module: 4,
            shared_inputs: shared,
            ..Default::default()
        };
        let mut worst: f64 = 1.0;
        let mut cnt = 0;
        for _ in 0..6 {
            let inst = random_set(&mut rng, &p);
            let (Some(opt), Some(g)) = (exact_set(&inst), greedy_set(&inst)) else {
                continue;
            };
            if opt.cost == 0 {
                continue;
            }
            worst = worst.max(g.cost as f64 / opt.cost as f64);
            cnt += 1;
        }
        out.push(format!(
            "  {:>8} {:>12.3} {:>12} {:>8}",
            shared,
            worst,
            shared + 2,
            cnt
        ));
    }
    let g = CubicGraph::random(&mut rng, 5, 0);
    let red = vertexcover_to_cardinality(&g);
    let opt = exact_cardinality(&red.instance).unwrap();
    let k = cover_size(&g.exact());
    out.push(format!(
        "  vertex-cover correspondence: m'+K = {}+{} == cost {}",
        red.m_edges, k, opt.cost
    ));
    out
}

/// E12 — Example 7 / Theorem 8: public modules break composition,
/// privatization repairs it.
#[must_use]
pub fn e12_public() -> Vec<String> {
    let wf = library::example8_chain(2);
    let m_priv = ModuleId(1);
    let gamma = 4u128;
    let mut out = vec!["E12 Example 7 / Theorem 8 (public modules and privatization)".into()];
    for (label, hidden, privatize) in [
        (
            "hide inputs, no privatization",
            AttrSet::from_indices(&[2, 3]),
            vec![],
        ),
        (
            "hide inputs, privatize m_const",
            AttrSet::from_indices(&[2, 3]),
            vec![ModuleId(0)],
        ),
        (
            "hide outputs, no privatization",
            AttrSet::from_indices(&[4, 5]),
            vec![],
        ),
        (
            "hide outputs, privatize m_inv",
            AttrSet::from_indices(&[4, 5]),
            vec![ModuleId(2)],
        ),
    ] {
        let report = WorldSearch::new(&wf, hidden.complement(wf.schema().len()))
            .with_privatized(privatize)
            .run(1 << 26)
            .unwrap();
        out.push(format!(
            "  {:<34} min |OUT| = {} (Gamma = {gamma}: {})",
            label,
            report.min_out(m_priv),
            if report.min_out(m_priv) >= gamma {
                "private"
            } else {
                "BROKEN"
            }
        ));
    }
    out
}

/// E13 — §5.2 / C.2 / C.4: general workflows with privatization costs.
#[must_use]
pub fn e13_general() -> Vec<String> {
    let mut out = vec![
        "E13 General workflows (attr costs + privatization costs)".into(),
        format!(
            "  {:>12} {:>10} {:>12} {:>14}",
            "family", "LP/OPT", "round/OPT", "blind-greedy/OPT"
        ),
    ];
    let mut rng = StdRng::seed_from_u64(13);
    // Random general instances.
    let mut lp_r = 0.0;
    let mut rd_r = 0.0;
    let mut gr_r = 0.0;
    let mut cnt = 0;
    for _ in 0..6 {
        let inst = sv_gen::random::random_general(
            &mut rng,
            &InstanceParams {
                n_modules: 4,
                attrs_per_module: 4,
                ..Default::default()
            },
            3,
            5,
        );
        let Some(opt) = exact_general(&inst) else {
            continue;
        };
        if opt.cost == 0 {
            continue;
        }
        let lb = general::lp_lower_bound(&inst).unwrap();
        let rd = general::solve_rounding(&inst).unwrap();
        // Privatization-blind greedy: solve the base set instance and
        // pay the induced privatizations afterwards.
        let blind = greedy_set(&inst.base).map_or(f64::NAN, |s| inst.cost(&s.hidden) as f64);
        lp_r += lb / opt.cost as f64;
        rd_r += rd.cost as f64 / opt.cost as f64;
        gr_r += blind / opt.cost as f64;
        cnt += 1;
    }
    let c = cnt as f64;
    out.push(format!(
        "  {:>12} {:>10.3} {:>12.3} {:>14.3}",
        "random",
        lp_r / c,
        rd_r / c,
        gr_r / c
    ));
    // C.2 set-cover gadget: blind greedy pays ~one privatization per
    // element, optimum pays the cover.
    let sc = SetCover::random(&mut rng, 5, 3, 0.4);
    let red = setcover_to_general(&sc);
    if red.instance.base.n_attrs <= 26 {
        if let Some(opt) = exact_general(&red.instance) {
            let blind = greedy_set(&red.instance.base)
                .map_or(f64::NAN, |s| red.instance.cost(&s.hidden) as f64);
            let rd = general::solve_rounding(&red.instance).unwrap();
            out.push(format!(
                "  {:>12} {:>10} {:>12.3} {:>14.3}",
                "C.2 gadget",
                "-",
                rd.cost as f64 / opt.cost.max(1) as f64,
                blind / opt.cost.max(1) as f64
            ));
        }
    }
    // Lemma-8 correspondence.
    let lc = LabelCover::random(&mut rng, 2, 2, 2, 0.5, 2);
    let red = labelcover_to_general(&lc);
    let opt = exact_general(&red.instance).unwrap();
    out.push(format!(
        "  Lemma-8 correspondence: assignment {} == secure-view {}",
        lc.exact().cost(),
        opt.cost
    ));
    out
}

/// E14 — B.4 ablations: LP value under dropped constraints vs the
/// faithful relaxation vs the IP optimum.
#[must_use]
pub fn e14_ablation() -> Vec<String> {
    use sv_optimize::cardinality::{build_lp, CardLpVariant};
    let mut out = vec![
        "E14 Figure-3 IP ablations (B.4: dropped constraints weaken the LP)".into(),
        format!(
            "  {:>6} {:>10} {:>12} {:>12} {:>8}",
            "seed", "full LP", "w/o caps", "w/o sums", "OPT"
        ),
    ];
    let mut rng = StdRng::seed_from_u64(14);
    for seed in 0..5u64 {
        let p = InstanceParams {
            n_modules: 4,
            attrs_per_module: 4,
            max_list: 3,
            ..Default::default()
        };
        let inst = random_cardinality(&mut rng, &p);
        let Some(opt) = exact_cardinality(&inst) else {
            continue;
        };
        let solve = |v: CardLpVariant| -> f64 {
            build_lp(&inst, v)
                .problem
                .solve()
                .map_or(f64::NAN, |s| s.objective)
        };
        out.push(format!(
            "  {:>6} {:>10.3} {:>12.3} {:>12.3} {:>8}",
            seed,
            solve(CardLpVariant::Full),
            solve(CardLpVariant::WithoutCaps),
            solve(CardLpVariant::WithoutSums),
            opt.cost
        ));
    }
    // Hand-crafted mixing witness: two complementary entries; dropping
    // the caps lets the LP blend them.
    let inst = CardinalityInstance {
        n_attrs: 6,
        costs: vec![1; 6],
        modules: vec![sv_optimize::CardModule {
            inputs: vec![0, 1, 2],
            outputs: vec![3, 4, 5],
            list: vec![(3, 0), (0, 3)],
        }],
    };
    let solve = |v: CardLpVariant| -> f64 {
        build_lp(&inst, v)
            .problem
            .solve()
            .map_or(f64::NAN, |s| s.objective)
    };
    out.push(format!(
        "  witness (3,0)/(0,3): full {:.3}, w/o caps {:.3}, OPT {}",
        solve(CardLpVariant::Full),
        solve(CardLpVariant::WithoutCaps),
        exact_cardinality(&inst).unwrap().cost
    ));
    out
}

/// E15 — the memoized safety-oracle layer: identical safety queries are
/// answered once per module instance regardless of which derivation
/// asks. Derives the set-constraints instance (full subset-lattice
/// sweep) and then the cardinality instance from the **same** oracles:
/// the second derivation must add zero kernel evaluations.
#[must_use]
pub fn e15_oracle_memo() -> Vec<String> {
    let wf = library::fig1_workflow();
    let gammas = vec![2u128; wf.private_modules().len()];
    let oracles = WorkflowOracles::for_workflow(&wf, 1 << 20).unwrap();
    let set = sv_optimize::SetInstance::from_oracles(&wf, &oracles, &gammas).unwrap();
    let (calls_set, misses_set) = (oracles.total_calls(), oracles.total_misses());
    let card = CardinalityInstance::from_oracles(&wf, &oracles, &gammas).unwrap();
    let (calls_all, misses_all) = (oracles.total_calls(), oracles.total_misses());
    vec![
        "E15 Memoized safety oracle (each distinct V evaluated once per module)".into(),
        format!(
            "  set-constraints derivation:  {} probes, {} kernel evaluations",
            calls_set, misses_set
        ),
        format!(
            "  + cardinality derivation:    {} probes, {} kernel evaluations ({} new)",
            calls_all,
            misses_all,
            misses_all - misses_set
        ),
        format!(
            "  instances: {} set modules, {} card modules; lattice of {} subsets per module",
            set.n_modules(),
            card.n_modules(),
            1 << 5
        ),
    ]
}

/// Runs every experiment in order, returning all lines.
#[must_use]
pub fn run_all() -> Vec<String> {
    let mut out = Vec::new();
    for section in [
        e1_fig1(),
        e2_thm1_calls(),
        e3_thm2_unsat(),
        e4_thm3_oracle(),
        e6_prop2(),
        e7_thm4(),
        e8_example5(),
        e9_cardinality(),
        e10_setcon(),
        e11_bounded_sharing(),
        e12_public(),
        e13_general(),
        e14_ablation(),
        e15_oracle_memo(),
    ] {
        out.extend(section);
        out.push(String::new());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_expected_facts() {
        let lines = e1_fig1().join("\n");
        assert!(lines.contains("provenance rows = 4"));
        assert!(lines.contains("|Worlds(R1, V)| = 64"));
        assert!(lines.contains("|OUT_(0,0)| = 4"));
    }

    #[test]
    fn e3_full_agreement() {
        let lines = e3_thm2_unsat().join("\n");
        assert!(lines.contains("agreement 40/40"), "{lines}");
    }

    #[test]
    fn e12_shows_break_and_repair() {
        let lines = e12_public().join("\n");
        assert_eq!(lines.matches("BROKEN").count(), 2);
        assert_eq!(lines.matches(": private").count(), 2);
    }

    #[test]
    fn e15_cardinality_derivation_is_free_after_set_derivation() {
        let lines = e15_oracle_memo().join("\n");
        assert!(lines.contains("(0 new)"), "{lines}");
    }
}
