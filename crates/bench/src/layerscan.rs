//! Retained **exhaustive layer-enumeration reference** for the border
//! sweep — the PR 6 algorithm `minimal_sets_sweep_frontier` shipped
//! before PR 10, kept as a budgeted serial baseline so
//! `e20_frontier_scaling` can measure uncovered-border enumeration
//! against the exact code path it replaced.
//!
//! The antichain is the real bitwise-trie [`Frontier`] (coverage queries
//! are sublinear, exactly as in the shipped exhaustive mode); what this
//! reference pays is the **enumeration**: every `C(k, p)` mask of every
//! swept layer is materialized via Gosper's hack and coverage-tested,
//! even when the frontier already covers almost all of them.
//! [`LayerScanOutcome::enumerated`] counts those materialized masks —
//! the per-layer work the border walk makes proportional to the border
//! — and a run aborts with `completed = false` once the enumeration
//! budget is exhausted, which is how the k = 28 case is shown to be out
//! of reach for exhaustive layer enumeration while the border sweep
//! finishes under the same budget.

use sv_core::{Frontier, MemoSafetyOracle, StandaloneModule};

/// Deterministic counters of one budgeted layer-enumeration sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerScanOutcome {
    /// Whether the sweep ran to its layer cutoff within the budget.
    pub completed: bool,
    /// Antichain size at exit (final iff `completed`).
    pub sets: u64,
    /// Masks probed through the safety oracle (uncovered masks).
    pub visited: u64,
    /// Masks materialized and coverage-tested — the exhaustive
    /// enumeration cost the border walk avoids.
    pub enumerated: u64,
}

/// Serial minimal-sets sweep with exhaustive per-layer enumeration and
/// trie coverage queries, stopping as soon as `enum_budget` masks have
/// been materialized.
///
/// Mirrors `sv_core::sweep`'s exhaustive (`without_border`) mode: masks
/// are visited in (popcount, mask) order via Gosper's hack, covered
/// masks are skipped without probing, and a fully-covered layer cuts
/// off the remaining lattice (Proposition 1).
#[must_use]
pub fn layer_scan_minimal_sets(
    module: &StandaloneModule,
    gamma: u128,
    enum_budget: u64,
) -> LayerScanOutcome {
    let k = module.k();
    let oracle = MemoSafetyOracle::new(module.clone());
    let mut scratch: Vec<u64> = Vec::new();
    let mut frontier = Frontier::new(k);
    let mut visited = 0u64;
    let mut enumerated = 0u64;
    for layer in 0..=k {
        let mut layer_found: Vec<u64> = Vec::new();
        let mut uncovered = 0u64;
        let mut mask = if layer == 0 { 0 } else { (1u64 << layer) - 1 };
        let last = mask << (k - layer);
        loop {
            enumerated += 1;
            if enumerated > enum_budget {
                return LayerScanOutcome {
                    completed: false,
                    sets: frontier.len() as u64,
                    visited,
                    enumerated: enumerated - 1,
                };
            }
            if !frontier.covers(mask) {
                uncovered += 1;
                visited += 1;
                if oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch) {
                    layer_found.push(mask);
                }
            }
            if mask == last {
                break;
            }
            // Gosper's hack: next mask of the same popcount.
            let c = mask & mask.wrapping_neg();
            let r = mask + c;
            mask = (((r ^ mask) >> 2) / c) | r;
        }
        for m in layer_found {
            frontier.insert(m);
        }
        if layer > 0 && uncovered == 0 && !frontier.is_empty() {
            break; // fully-covered layer: the rest of the lattice is generated
        }
    }
    LayerScanOutcome {
        completed: true,
        sets: frontier.len() as u64,
        visited,
        enumerated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_core::sweep::{minimal_sets_sweep_frontier, SweepConfig};
    use sv_core::StandaloneModule;
    use sv_workflow::{library, ModuleId};

    fn one_one_module(wires: usize) -> StandaloneModule {
        let wf = library::one_one_chain(1, wires);
        StandaloneModule::from_workflow_module(&wf, ModuleId(0), 1 << 21).unwrap()
    }

    #[test]
    fn layer_scan_agrees_with_the_border_sweep() {
        let m = one_one_module(4);
        for gamma in [2u128, 4, 16] {
            let out = layer_scan_minimal_sets(&m, gamma, u64::MAX);
            let (frontier, stats) =
                minimal_sets_sweep_frontier(&m, gamma, &SweepConfig::serial()).unwrap();
            assert!(out.completed);
            assert_eq!(out.sets, frontier.len() as u64, "gamma={gamma}");
            // Both modes probe exactly the uncovered masks, so the
            // probe ledger matches even though the enumeration differs.
            assert_eq!(out.visited, stats.visited, "gamma={gamma}");
            assert_eq!(out.visited, stats.border_visited, "gamma={gamma}");
            assert!(
                out.enumerated >= stats.border_visited,
                "exhaustive enumeration can never be cheaper than the border"
            );
        }
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let m = one_one_module(4);
        let out = layer_scan_minimal_sets(&m, 16, 64);
        assert!(!out.completed);
        assert_eq!(out.enumerated, 64, "stops exactly at the budget");
    }
}
