//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace ships
//! a small wall-clock harness exposing the subset of criterion's API the
//! `sv-bench` suite uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Benches must set
//! `harness = false` in their manifest (as real criterion also requires).
//!
//! Measurement model: a short warm-up, then adaptive batching until the
//! measured window exceeds ~60 ms (or an iteration cap), reporting the
//! mean ns/iteration over the best-of-three windows. Each benchmark also
//! emits one machine-readable line
//! `BENCHJSON {"id": "...", "ns_per_iter": ...}` so scripts can collect
//! results (the repo's `BENCH_kernel.json` is produced this way).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let _ = self;
        println!("\n── group {name} ──");
        BenchmarkGroup {
            name: name.to_string(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive harness ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with an input parameter baked into the id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, retaining the best (lowest mean) of three windows.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a handful of calls, bounded by time.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || (warm_start.elapsed().as_millis() < 10 && warm_iters < 1000) {
            black_box(f());
            warm_iters += 1;
        }
        // Estimate a batch size targeting ~20 ms per window.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let batch = (20_000_000u128 / per_iter.max(1)).clamp(1, 100_000) as u64;

        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.ns_per_iter = best;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        ns_per_iter: f64::NAN,
    };
    f(&mut b);
    if b.ns_per_iter.is_nan() {
        println!("{id:<56} (no measurement: Bencher::iter never called)");
        return;
    }
    println!("{:<56} {:>14.0} ns/iter", id, b.ns_per_iter);
    println!(
        "BENCHJSON {{\"id\": \"{id}\", \"ns_per_iter\": {:.1}}}",
        b.ns_per_iter
    );
}

/// Collects benchmark functions into a runnable group function
/// (stand-in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups
/// (stand-in for `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("t", 1), &1u32, |b, &x| {
            b.iter(|| black_box(x) + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
