//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this workspace ships
//! a small wall-clock harness exposing the subset of criterion's API the
//! `sv-bench` suite uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Benches must set
//! `harness = false` in their manifest (as real criterion also requires).
//!
//! Measurement model: a short warm-up, then adaptive batching until the
//! measured window exceeds ~60 ms (or an iteration cap), reporting the
//! mean ns/iteration over the best-of-three windows. Each benchmark also
//! emits one machine-readable line
//! `BENCHJSON {"id": "...", "ns_per_iter": ...}` so scripts can collect
//! results.
//!
//! Positional arguments filter benchmark ids by substring (like real
//! criterion): `cargo bench --bench e16_parallel_sweep -- stats` skips
//! every timed benchmark whose id lacks `stats`. Explicit
//! [`record_metric`] calls are unaffected — the CI sweep-counter gate
//! uses exactly this to produce the deterministic `stats/` rows without
//! paying for the timing groups.
//!
//! ### Mechanical baselines: `--save-baseline <file>`
//!
//! Every measurement (and every explicit [`record_metric`] call) is also
//! collected in an in-process registry. When a bench binary is invoked
//! with `--save-baseline <file>` (i.e. `cargo bench -p sv-bench --bench
//! e9_cardinality -- --save-baseline BENCH_kernel.json`), the registry
//! is written to `<file>` as `{"generated_by": …, "results": {id: ns}}`
//! on exit — **merging** with the file's existing `results`, so running
//! several bench binaries against the same file accumulates one
//! baseline. The repo's `BENCH_*.json` files are produced exactly this
//! way (no hand-editing), and the `bench_gate` binary in `sv-bench`
//! compares fresh runs against them in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub use std::hint::black_box;

/// Process-wide registry of `(id, value)` results backing
/// `--save-baseline` and [`recorded_value`].
fn registry() -> &'static Mutex<Vec<(String, f64)>> {
    static RESULTS: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn register(id: &str, value: f64) {
    let mut r = registry().lock().expect("registry lock");
    if let Some(slot) = r.iter_mut().find(|(k, _)| k == id) {
        slot.1 = value;
    } else {
        r.push((id.to_string(), value));
    }
}

/// Records an arbitrary named metric (a pruned-node count, a speedup
/// ratio, …) into the baseline registry and emits its `BENCHJSON` line,
/// so non-timing observability numbers land in saved `BENCH_*.json`
/// files next to the timings.
pub fn record_metric(id: &str, value: f64) {
    // Plain `{}` keeps full f64 fidelity (ratios and fractions would be
    // destroyed by fixed-point truncation).
    println!(
        "BENCHJSON {{\"id\": \"{}\", \"ns_per_iter\": {value}}}",
        json::escape(id)
    );
    register(id, value);
}

/// The value most recently recorded under `id` (measurement or metric)
/// in this process — lets a bench compute derived metrics such as
/// speedups from its own group's timings.
#[must_use]
pub fn recorded_value(id: &str) -> Option<f64> {
    registry()
        .lock()
        .expect("registry lock")
        .iter()
        .find(|(k, _)| k == id)
        .map(|(_, v)| *v)
}

/// Writes the registry to `path` in the mechanical baseline format,
/// merging with the `results` of an existing file at the same path.
///
/// # Errors
/// Propagates filesystem errors (an unparseable existing file is
/// ignored, not an error — it is overwritten).
pub fn save_baseline(path: &str) -> std::io::Result<()> {
    let mut merged: Vec<(String, f64)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::Json::parse(&text).ok())
        .and_then(|doc| doc.get("results").map(json::Json::flatten_numbers))
        .unwrap_or_default();
    for (id, v) in registry().lock().expect("registry lock").iter() {
        if let Some(slot) = merged.iter_mut().find(|(k, _)| k == id) {
            slot.1 = *v;
        } else {
            merged.push((id.clone(), *v));
        }
    }
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    out.push_str("{\n  \"generated_by\": \"crates/criterion shim --save-baseline (best-of-3 batched wall-clock windows, ns/iter; metrics recorded verbatim)\",\n  \"results\": {\n");
    for (i, (id, v)) in merged.iter().enumerate() {
        let sep = if i + 1 == merged.len() { "" } else { "," };
        // `{v:?}` (= Display for finite f64) round-trips the value; a
        // bare integer-valued float still prints a `.0`, keeping the
        // file unambiguously floating-point.
        out.push_str(&format!("    \"{}\": {v:?}{sep}\n", json::escape(id)));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out)
}

/// Handles the bench binary's CLI contract: honors
/// `--save-baseline <file>` and ignores anything else (cargo's filter
/// arguments). Called by [`criterion_main!`]-generated `main`s after all
/// groups ran.
pub fn finalize_from_args() {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--save-baseline" {
            if let Err(e) = save_baseline(&window[1]) {
                eprintln!("--save-baseline {}: {e}", window[1]);
                std::process::exit(1);
            }
            // Bench binaries run with CWD = the package root, so echo
            // where a relative path actually landed.
            let shown = std::fs::canonicalize(&window[1])
                .map_or_else(|_| window[1].clone(), |p| p.display().to_string());
            println!("baseline saved to {shown}");
        }
    }
}

/// Top-level harness handle (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let _ = self;
        println!("\n── group {name} ──");
        BenchmarkGroup {
            name: name.to_string(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive harness ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with an input parameter baked into the id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, retaining the best (lowest mean) of three windows.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a handful of calls, bounded by time.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || (warm_start.elapsed().as_millis() < 10 && warm_iters < 1000) {
            black_box(f());
            warm_iters += 1;
        }
        // Estimate a batch size targeting ~20 ms per window.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let batch = (20_000_000u128 / per_iter.max(1)).clamp(1, 100_000) as u64;

        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.ns_per_iter = best;
    }
}

/// Positional CLI arguments of the bench invocation, interpreted — like
/// real criterion — as substring filters on benchmark ids. Flags and
/// their values (`--save-baseline <file>`) are not filters. An empty
/// list means "run everything". Disabled under `cargo test`, where
/// positional arguments are libtest name filters, not bench filters.
fn filters() -> &'static [String] {
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    FILTERS.get_or_init(|| {
        if cfg!(test) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--save-baseline" {
                let _ = args.next();
            } else if !a.starts_with("--") {
                out.push(a);
            }
        }
        out
    })
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let filters = filters();
    if !filters.is_empty() && !filters.iter().any(|pat| id.contains(pat.as_str())) {
        return; // filtered out, like `cargo bench -- <substring>`
    }
    let mut b = Bencher {
        ns_per_iter: f64::NAN,
    };
    f(&mut b);
    if b.ns_per_iter.is_nan() {
        println!("{id:<56} (no measurement: Bencher::iter never called)");
        return;
    }
    println!("{:<56} {:>14.0} ns/iter", id, b.ns_per_iter);
    println!(
        "BENCHJSON {{\"id\": \"{}\", \"ns_per_iter\": {:.1}}}",
        json::escape(id),
        b.ns_per_iter
    );
    register(id, b.ns_per_iter);
}

/// Collects benchmark functions into a runnable group function
/// (stand-in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups, then honoring
/// `--save-baseline` (stand-in for `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize_from_args();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("t", 1), &1u32, |b, &x| {
            b.iter(|| black_box(x) + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
        assert!(recorded_value("shim/t/1").is_some());
    }

    #[test]
    fn save_baseline_merges_with_existing_file() {
        let dir = std::env::temp_dir().join("criterion-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let path = path.to_str().unwrap();
        std::fs::write(
            path,
            "{\"generated_by\": \"x\", \"results\": {\"old/id\": 5.0, \"metric/a\": 2.0}}",
        )
        .unwrap();
        record_metric("metric/a", 9.5);
        record_metric("metric/b", 1.0);
        save_baseline(path).unwrap();
        let doc = json::Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        let results = doc.get("results").unwrap().flatten_numbers();
        // Old entries survive, overlapping ids are overwritten.
        assert!(results.contains(&("old/id".into(), 5.0)));
        assert!(results.contains(&("metric/a".into(), 9.5)));
        assert!(results.contains(&("metric/b".into(), 1.0)));
        std::fs::remove_file(path).unwrap();
    }
}
