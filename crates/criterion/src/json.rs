//! Minimal JSON reading/writing for the offline bench harness.
//!
//! The build environment has no network access (no `serde`), but the
//! baseline workflow needs structured round-trips: `--save-baseline`
//! merges into an existing `BENCH_*.json`, and the `bench_gate` CI
//! binary compares a fresh run against the committed baselines. This is
//! a small recursive-descent parser over exactly the JSON subset those
//! files use (objects, arrays, strings, numbers, booleans, null), plus
//! an escaping writer for flat `id → number` result maps.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    /// Returns a human-readable message with a byte offset on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Flattens every numeric leaf under this value into
    /// `("path/to/key", value)` pairs, joining nested object keys with
    /// `/` — the shape bench ids take, so a nested baseline file and a
    /// flat one compare identically.
    #[must_use]
    pub fn flatten_numbers(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, prefix: &str, out: &mut Vec<(String, f64)>) {
        match self {
            Json::Num(n) => out.push((prefix.to_string(), *n)),
            Json::Obj(fields) => {
                for (k, v) in fields {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}/{k}")
                    };
                    v.flatten_into(&path, out);
                }
            }
            _ => {}
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'b' => s.push('\u{8}'),
                    b'f' => s.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .and_then(|x| std::str::from_utf8(x).ok())
                    .ok_or("invalid UTF-8 in string")?;
                s.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_baseline_shapes() {
        let doc = r#"{
            "title": "x",
            "nested": {"a/b": {"c": 12.5, "d": 3}},
            "flat": 7,
            "arr": [1, "two", null, true, false],
            "esc": "a\"b\\c\ndA"
        }"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.get("flat").and_then(Json::as_f64), Some(7.0));
        assert_eq!(j.get("title").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("esc").and_then(Json::as_str), Some("a\"b\\c\ndA"));
        let flat = j.flatten_numbers();
        assert!(flat.contains(&("nested/a/b/c".into(), 12.5)));
        assert!(flat.contains(&("nested/a/b/d".into(), 3.0)));
        assert!(flat.contains(&("flat".into(), 7.0)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let raw = "line\none\t\"quoted\" \\slash\\ ünïcode";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("k").and_then(Json::as_str), Some(raw));
    }

    #[test]
    fn numbers_parse_in_scientific_notation() {
        let j = Json::parse("{\"a\": 1.5e3, \"b\": -2E-2}").unwrap();
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(j.get("b").and_then(Json::as_f64), Some(-0.02));
    }
}
