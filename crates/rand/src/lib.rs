//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace ships
//! the **minimal** `rand`-compatible API surface the repository uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`choose` / `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic per seed, which is all the experiment sweeps require.
//! Range sampling uses simple rejection-free modulo reduction; the tiny
//! bias is irrelevant for test-data generation and is stable across
//! platforms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generator (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; the exact stream differs from upstream, which is fine —
    /// all callers treat seeds as opaque reproducibility handles).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// `choose` / `shuffle` on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let left: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let right: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_ne!(left, right);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: usize = rng.gen_range(3..3);
    }
}
