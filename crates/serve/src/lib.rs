//! # sv-serve — the provenance-privacy serving tier
//!
//! Layer 5 of the stack: a multi-tenant server that answers Γ-privacy
//! safety probes for *many* workflows at once, over a framed
//! request/response protocol.
//!
//! Davidson et al. (PODS 2011) define when a view of workflow
//! provenance keeps each module Γ-private; the layers below this one
//! decide single probes ([`sv_core`]), batches, and whole view-lattice
//! frontiers. This crate is where those engines meet callers that
//! live outside the process:
//!
//! * [`TenantRegistry`] — many workflows, each a [`Tenant`] with its
//!   own warm [`WorkflowOracles`](sv_core::safety::WorkflowOracles),
//!   per-module epochs, admission limits, and serving stats.
//! * [`Server`] — the transport-agnostic dispatcher: decode → admit →
//!   serve → encode, never panicking on client input.
//! * [`Transport`] — how frames travel: [`LoopbackTransport`]
//!   (in-process, deterministic) and [`SocketTransport`] /
//!   [`SocketServer`] (local stream sockets, thread-per-core accept
//!   loop).
//! * [`Client`] — the typed view: `probe` / `ingest` / `epochs` with
//!   [`ServeError::Busy`] and [`ServeError::Fault`] surfacing the
//!   backpressure and epoch contracts.
//!
//! Probe traffic runs on shared oracles (per-module read locks, a
//! seqlock-published epoch vector); ingest frames are all-or-nothing:
//! validated up front, applied with per-module write locks (probes to
//! other modules proceed concurrently), then published atomically.
//! Durable servers route ingest through an [`IngestSink`] commit lane
//! that coalesces concurrent frames into group-commit fsyncs; the
//! [`Client`] receives an [`sv_core::wire::IngestReceipt`] whose
//! `durable_seq` covers the frame. The full protocol and operational
//! guide is `docs/SERVING.md`.
//!
//! ## Example
//! ```
//! use std::sync::Arc;
//! use sv_core::safety::ProbeRequest;
//! use sv_relation::AttrSet;
//! use sv_serve::{Client, LoopbackTransport, Server, TenantConfig, TenantId, TenantRegistry};
//! use sv_workflow::{library::one_one_chain, ModuleId};
//!
//! // Two tenants, two different workflows, one server.
//! let registry = Arc::new(TenantRegistry::new());
//! registry.create(TenantId(1), TenantConfig::new(&one_one_chain(2, 2)).budget(1 << 16))?;
//! registry.create(TenantId(2), TenantConfig::new(&one_one_chain(3, 2)).budget(1 << 16))?;
//! let transport = LoopbackTransport::new(Arc::new(Server::new(registry)));
//!
//! let mut client = Client::connect(&transport)?;
//! for tenant in [TenantId(1), TenantId(2)] {
//!     let outcomes = client.probe(
//!         tenant,
//!         &[ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 1]), 2)],
//!     )?;
//!     assert_eq!(outcomes.len(), 1);
//! }
//! # Ok::<(), sv_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
mod server;
mod tenant;
mod transport;

pub use client::Client;
pub use error::ServeError;
pub use server::{IngestSink, IngestSinkError, IngestSubmission, MemorySink, Server};
pub use sv_core::safety::IngestBatch;
pub use tenant::{
    AdmissionLimits, AdmissionPermit, BatchIngestError, BatchOutcome, IngestFailure, Tenant,
    TenantConfig, TenantId, TenantRegistry, TenantStats, DEFAULT_MATERIALIZE_BUDGET,
};
pub use transport::{Connection, LoopbackTransport, Transport};
#[cfg(unix)]
pub use transport::{SocketServer, SocketTransport};
