//! Transports: how framed payloads reach the [`Server`].
//!
//! The build/CI environment has **no network**, so the serving tier is
//! written against a [`Transport`] trait with two implementations that
//! share every byte of protocol logic:
//!
//! * [`LoopbackTransport`] — in-process and fully deterministic: a
//!   connection's [`request`](Connection::request) runs the complete
//!   wire path (length-prefix framing, payload decode, dispatch,
//!   response encode) as a plain function call on the client's thread.
//!   Tests and benches use this; it measures true per-frame protocol
//!   cost with zero scheduler noise.
//! * [`SocketTransport`] / [`SocketServer`] — local (Unix-domain)
//!   stream sockets behind a **thread-per-core accept loop**: `N`
//!   acceptor threads share one listener, and each accepted connection
//!   is served to completion on its acceptor's thread (no
//!   per-connection spawning, no cross-thread handoff — the
//!   thread-per-core discipline; concurrency = acceptor count, excess
//!   connects queue in the listen backlog).
//!
//! Both ends speak the frame layout of [`sv_core::wire`]: a 4-byte
//! little-endian length prefix, then the payload, request/response
//! strictly alternating per connection.

use crate::error::ServeError;
use crate::server::Server;
use std::io::{Read, Write};
use std::sync::Arc;
use sv_core::wire::MAX_FRAME_LEN;

/// A connection factory. Implementations must be shareable across
/// client threads; each thread opens its own [`Connection`].
///
/// # Examples
/// Serving Example 3 over the in-process loopback:
/// ```
/// use std::sync::Arc;
/// use sv_core::safety::ProbeRequest;
/// use sv_relation::AttrSet;
/// use sv_serve::{Client, LoopbackTransport, Server, TenantConfig, TenantId, TenantRegistry};
/// use sv_workflow::{library::fig1_workflow, ModuleId};
///
/// let registry = Arc::new(TenantRegistry::new());
/// let wf = fig1_workflow();
/// registry
///     .create(TenantId(1), TenantConfig::new(&wf))
///     .unwrap();
/// let transport = LoopbackTransport::new(Arc::new(Server::new(registry)));
///
/// let mut client = Client::connect(&transport).unwrap();
/// let outcomes = client
///     .probe(
///         TenantId(1),
///         &[ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 2, 4]), 4)],
///     )
///     .unwrap();
/// assert!(outcomes[0].safe, "Example 3: V = {{a1, a3, a5}} is 4-safe");
/// ```
pub trait Transport {
    /// Opens a new connection to the server.
    ///
    /// # Errors
    /// Transport-specific connect failures ([`ServeError::Io`]).
    fn connect(&self) -> Result<Box<dyn Connection>, ServeError>;
}

/// One client ↔ server conversation: strictly alternating framed
/// request/response payloads.
pub trait Connection: Send {
    /// Sends one request payload and blocks for its response payload
    /// (both without the length prefix — the connection adds and
    /// strips it).
    ///
    /// # Errors
    /// [`ServeError::Io`] / [`ServeError::Wire`] on transport or
    /// framing failures. Server-side conditions (busy, faults) are
    /// **not** errors at this layer — they come back as response
    /// payloads.
    fn request(&mut self, payload: &[u8]) -> Result<Vec<u8>, ServeError>;
}

// ── Loopback ────────────────────────────────────────────────────────

/// The deterministic in-process transport (see module docs).
pub struct LoopbackTransport {
    server: Arc<Server>,
}

impl LoopbackTransport {
    /// Wraps a server.
    #[must_use]
    pub fn new(server: Arc<Server>) -> Self {
        Self { server }
    }
}

impl Transport for LoopbackTransport {
    fn connect(&self) -> Result<Box<dyn Connection>, ServeError> {
        Ok(Box::new(LoopbackConnection {
            server: Arc::clone(&self.server),
        }))
    }
}

struct LoopbackConnection {
    server: Arc<Server>,
}

impl Connection for LoopbackConnection {
    fn request(&mut self, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        // Run the *whole* wire path — frame, unframe, dispatch, frame,
        // unframe — so loopback-measured cost includes framing and a
        // loopback-tested server is wire-equivalent to the socket one.
        let framed = sv_core::wire::frame(payload);
        let request = sv_core::wire::unframe(&framed)?;
        let response = self.server.handle_frame(request);
        let framed = sv_core::wire::frame(&response);
        Ok(sv_core::wire::unframe(&framed)?.to_vec())
    }
}

// ── Local stream sockets (Unix) ─────────────────────────────────────

fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a
/// frame boundary (the peer hung up between requests).
fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::other(format!(
            "frame of {len} bytes exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(unix)]
mod socket {
    use super::{read_frame, write_frame, Connection, ServeError, Transport};
    use crate::server::Server;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// The socket side of the serving binary: a bound local socket and
    /// its thread-per-core acceptor pool. Call [`shutdown`](Self::shutdown)
    /// (or drop) to stop; shutdown waits for open connections to
    /// drain — close clients first.
    pub struct SocketServer {
        path: PathBuf,
        stop: Arc<AtomicBool>,
        acceptors: Vec<JoinHandle<()>>,
    }

    impl SocketServer {
        /// Binds `path` (any stale socket file is replaced) and spawns
        /// `acceptors` accept-loop threads — size this to the core
        /// count; it is the connection-concurrency bound.
        ///
        /// # Errors
        /// [`ServeError::Io`] on bind/clone failures.
        pub fn bind(
            server: Arc<Server>,
            path: impl AsRef<Path>,
            acceptors: usize,
        ) -> Result<Self, ServeError> {
            let path = path.as_ref().to_path_buf();
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            let stop = Arc::new(AtomicBool::new(false));
            let mut handles = Vec::new();
            for _ in 0..acceptors.max(1) {
                let listener = listener.try_clone()?;
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                handles.push(std::thread::spawn(move || {
                    accept_loop(&listener, &server, &stop);
                }));
            }
            Ok(Self {
                path,
                stop,
                acceptors: handles,
            })
        }

        /// The bound socket path.
        #[must_use]
        pub fn path(&self) -> &Path {
            &self.path
        }

        /// Stops the acceptors and removes the socket file. Idempotent;
        /// also runs on drop.
        pub fn shutdown(&mut self) {
            if self.acceptors.is_empty() {
                return;
            }
            self.stop.store(true, Ordering::SeqCst);
            // Wake every acceptor blocked in accept() with a throwaway
            // connection; ones mid-conversation exit when their client
            // hangs up.
            for _ in 0..self.acceptors.len() {
                let _ = UnixStream::connect(&self.path);
            }
            for handle in self.acceptors.drain(..) {
                let _ = handle.join();
            }
            let _ = std::fs::remove_file(&self.path);
        }
    }

    impl Drop for SocketServer {
        fn drop(&mut self) {
            self.shutdown();
        }
    }

    fn accept_loop(listener: &UnixListener, server: &Arc<Server>, stop: &Arc<AtomicBool>) {
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    serve_connection(server, stream);
                }
                Err(_) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
            }
        }
    }

    /// Serves one connection to completion on the acceptor's thread.
    /// I/O failures (including mid-frame disconnects) drop the
    /// connection; they never take the acceptor down.
    fn serve_connection(server: &Arc<Server>, mut stream: UnixStream) {
        while let Ok(Some(payload)) = read_frame(&mut stream) {
            let response = server.handle_frame(&payload);
            if write_frame(&mut stream, &response).is_err() {
                break;
            }
        }
    }

    /// Client-side factory for [`SocketServer`] endpoints.
    pub struct SocketTransport {
        path: PathBuf,
    }

    impl SocketTransport {
        /// Points at a socket path (usually [`SocketServer::path`]).
        #[must_use]
        pub fn new(path: impl AsRef<Path>) -> Self {
            Self {
                path: path.as_ref().to_path_buf(),
            }
        }
    }

    impl Transport for SocketTransport {
        fn connect(&self) -> Result<Box<dyn Connection>, ServeError> {
            Ok(Box::new(SocketConnection {
                stream: UnixStream::connect(&self.path)?,
            }))
        }
    }

    struct SocketConnection {
        stream: UnixStream,
    }

    impl Connection for SocketConnection {
        fn request(&mut self, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
            write_frame(&mut self.stream, payload)?;
            match read_frame(&mut self.stream)? {
                Some(response) => Ok(response),
                None => Err(ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-request",
                ))),
            }
        }
    }
}

#[cfg(unix)]
pub use socket::{SocketServer, SocketTransport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_io_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
        // Truncated header and oversized length are hard errors.
        let mut cursor = &buf[..2];
        assert!(read_frame(&mut cursor).unwrap().is_none());
        let huge = (u32::MAX).to_le_bytes();
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
