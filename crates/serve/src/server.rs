//! The frame dispatcher: decode → admit → serve → encode.
//!
//! [`Server`] is transport-agnostic: every transport ultimately calls
//! [`Server::handle_frame`] with a decoded payload and writes back the
//! returned response payload. All tenancy, admission, and epoch
//! semantics live here, so the in-process loopback and the socket
//! accept loop are *guaranteed* to serve identically — the property
//! suite relies on this (`crates/serve/tests/tier_prop.rs`).

use crate::tenant::{Tenant, TenantId, TenantRegistry};
use std::sync::Arc;
use sv_core::safety::IngestBatch;
use sv_core::wire::{IngestReceipt, Request, Response, ServeFault};
use sv_core::CoreError;
use sv_relation::Tuple;

/// An ingest frame's failure as reported by an [`IngestSink`]: how many
/// rows landed (always 0 under frame-atomic ingest), plus
/// human-readable detail for the client's [`ServeFault::Rejected`]
/// answer.
#[derive(Debug)]
pub struct IngestSinkError {
    /// Rows of the frame applied before the failure — 0 under the
    /// frame-atomic batch path.
    pub applied: u64,
    /// Why the frame stopped (rendered for the wire).
    pub detail: String,
}

/// One frame accepted by an [`IngestSink`]: the application outcome
/// plus the submission's position in the sink's durability order.
/// `seq == 0` means the sink has no durability (loopback/in-memory).
#[derive(Clone, Debug)]
pub struct IngestSubmission {
    /// New module rows the frame added.
    pub added: u64,
    /// Per-module epochs after the frame applied.
    pub epochs: Vec<sv_core::wire::ModuleEpoch>,
    /// The frame's last write-ahead-log sequence number (0 = sink is
    /// not durable).
    pub seq: u64,
}

/// The commit-lane contract every serving flavour shares — loopback,
/// socket, and durable servers all route ingest through this pair:
///
/// * [`submit`](Self::submit) runs validate → (log) → apply → publish
///   for one frame on the tenant's single-writer lane and returns
///   immediately — the frame is *applied* but not necessarily durable;
/// * [`wait_durable`](Self::wait_durable) blocks until the submission
///   is covered by a sync, returning the covering durable sequence.
///
/// The in-memory sink ([`MemorySink`]) applies and reports
/// `durable_seq = 0` without waiting; the durable registry's sink
/// coalesces concurrent submissions into one group-commit fsync.
/// Probe and epoch traffic never touches the sink.
pub trait IngestSink: Send + Sync {
    /// Applies one ingest frame to `tenant`, returning its submission
    /// (applied outcome + log position).
    ///
    /// # Errors
    /// [`IngestSinkError`] when the frame is rejected (validation) or
    /// the sink cannot log it; nothing was applied.
    fn submit(
        &self,
        tenant: &Arc<Tenant>,
        batch: IngestBatch,
    ) -> Result<IngestSubmission, IngestSinkError>;

    /// Blocks until `submission` is durable, returning the covering
    /// durable sequence (`>= submission.seq`; 0 for non-durable sinks).
    ///
    /// # Errors
    /// [`IngestSinkError`] when the sync fails — the frame is applied
    /// in memory but **not** durable.
    fn wait_durable(&self, submission: &IngestSubmission) -> Result<u64, IngestSinkError>;
}

/// The default sink: plain in-memory apply on the tenant's ingest
/// lane; `wait_durable` returns 0 immediately (nothing to sync).
#[derive(Clone, Copy, Debug, Default)]
pub struct MemorySink;

impl IngestSink for MemorySink {
    fn submit(
        &self,
        tenant: &Arc<Tenant>,
        batch: IngestBatch,
    ) -> Result<IngestSubmission, IngestSinkError> {
        let outcome = tenant
            .ingest_batch(&batch)
            .map_err(|failure| IngestSinkError {
                applied: failure.applied,
                detail: failure.error.to_string(),
            })?;
        Ok(IngestSubmission {
            added: outcome.added,
            epochs: outcome.epochs,
            seq: 0,
        })
    }

    fn wait_durable(&self, _submission: &IngestSubmission) -> Result<u64, IngestSinkError> {
        Ok(0)
    }
}

/// The serving tier's request dispatcher. Cheap to share
/// (`Arc<Server>`); all state lives in the registry's tenants.
pub struct Server {
    registry: Arc<TenantRegistry>,
    ingest: Arc<dyn IngestSink>,
}

impl Server {
    /// Wraps a tenant registry with the in-memory [`MemorySink`].
    #[must_use]
    pub fn new(registry: Arc<TenantRegistry>) -> Self {
        Self {
            registry,
            ingest: Arc::new(MemorySink),
        }
    }

    /// Wraps a tenant registry with a custom [`IngestSink`] — the
    /// durable-serving constructor. Every transport (loopback and
    /// socket) dispatches through [`handle_frame`](Self::handle_frame),
    /// so installing the sink here covers them all.
    #[must_use]
    pub fn with_ingest_sink(registry: Arc<TenantRegistry>, sink: Arc<dyn IngestSink>) -> Self {
        Self {
            registry,
            ingest: sink,
        }
    }

    /// The registry behind this server (register/deregister tenants at
    /// runtime; the data plane picks changes up on its next frame).
    #[must_use]
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// Serves one request payload (no length prefix), returning the
    /// response payload. **Never panics on client input**: malformed
    /// payloads, unknown tenants/modules, stale epochs, and admission
    /// rejections all come back as typed [`Response`] payloads.
    #[must_use]
    pub fn handle_frame(&self, payload: &[u8]) -> Vec<u8> {
        self.dispatch(payload).encode()
    }

    fn dispatch(&self, payload: &[u8]) -> Response {
        let request = match Request::decode(payload) {
            Ok(r) => r,
            Err(e) => {
                return Response::Error(ServeFault::Malformed {
                    detail: e.to_string(),
                })
            }
        };
        match request {
            Request::Probe { tenant, probes } => {
                let Some(t) = self.registry.get(TenantId(tenant)) else {
                    return Response::Error(ServeFault::UnknownTenant { tenant });
                };
                let permit = match t.try_admit(probes.len() as u64, payload.len() as u64) {
                    Ok(p) => p,
                    Err(reason) => return Response::Busy(reason),
                };
                // The read guard spans the whole batch: `probe_batch`
                // validates and answers atomically against one epoch
                // snapshot per module.
                let outcome = t.oracles().probe_batch(&probes);
                drop(permit);
                match outcome {
                    Ok(outcomes) => {
                        t.note_probe_frame(outcomes.len() as u64);
                        Response::Probe(outcomes)
                    }
                    Err(CoreError::MissingOracle { module }) => {
                        Response::Error(ServeFault::UnknownModule {
                            module: module as u32,
                        })
                    }
                    Err(CoreError::StaleEpoch {
                        module,
                        expected,
                        actual,
                    }) => Response::Error(ServeFault::StaleEpoch {
                        module: module as u32,
                        expected,
                        actual,
                    }),
                    // `probe_batch` raises no other variant; a future
                    // one still gets a typed answer, not a panic.
                    Err(e) => Response::Error(ServeFault::Rejected {
                        applied: 0,
                        detail: e.to_string(),
                    }),
                }
            }
            Request::Ingest { tenant, rows } => {
                let Some(t) = self.registry.get(TenantId(tenant)) else {
                    return Response::Error(ServeFault::UnknownTenant { tenant });
                };
                let permit = match t.try_admit(rows.len() as u64, payload.len() as u64) {
                    Ok(p) => p,
                    Err(reason) => return Response::Busy(reason),
                };
                let tuples: Vec<Tuple> = rows.into_iter().map(Tuple::new).collect();
                let result =
                    self.ingest
                        .submit(&t, IngestBatch::new(tuples))
                        .and_then(|submission| {
                            let durable_seq = self.ingest.wait_durable(&submission)?;
                            Ok((submission, durable_seq))
                        });
                drop(permit);
                match result {
                    Ok((submission, durable_seq)) => Response::Receipt(IngestReceipt {
                        added: submission.added,
                        epochs: submission.epochs,
                        durable_seq,
                    }),
                    Err(failure) => Response::Error(ServeFault::Rejected {
                        applied: failure.applied,
                        detail: failure.detail,
                    }),
                }
            }
            Request::Epochs { tenant } => match self.registry.get(TenantId(tenant)) {
                Some(t) => Response::Epochs(t.epochs()),
                None => Response::Error(ServeFault::UnknownTenant { tenant }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{AdmissionLimits, TenantConfig};
    use sv_core::safety::ProbeRequest;
    use sv_core::wire::BusyReason;
    use sv_relation::AttrSet;
    use sv_workflow::{library::fig1_workflow, ModuleId};

    fn server_with_fig1() -> Server {
        let registry = Arc::new(TenantRegistry::new());
        registry
            .create(
                TenantId(1),
                TenantConfig::new(&fig1_workflow()).budget(1 << 20),
            )
            .unwrap();
        Server::new(registry)
    }

    fn roundtrip(server: &Server, req: &Request) -> Response {
        Response::decode(&server.handle_frame(&req.encode())).unwrap()
    }

    #[test]
    fn serves_example3_probe() {
        let server = server_with_fig1();
        let resp = roundtrip(
            &server,
            &Request::Probe {
                tenant: 1,
                probes: vec![
                    ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 2, 4]), 4),
                    ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 2, 4]), 8),
                ],
            },
        );
        let Response::Probe(outcomes) = resp else {
            panic!("expected probe outcomes, got {resp:?}");
        };
        assert!(outcomes[0].safe && !outcomes[1].safe);
    }

    #[test]
    fn unknown_tenant_module_and_malformed() {
        let server = server_with_fig1();
        assert_eq!(
            roundtrip(&server, &Request::Epochs { tenant: 99 }),
            Response::Error(ServeFault::UnknownTenant { tenant: 99 })
        );
        let resp = roundtrip(
            &server,
            &Request::Probe {
                tenant: 1,
                probes: vec![ProbeRequest::new(ModuleId(7), AttrSet::new(), 2)],
            },
        );
        assert_eq!(
            resp,
            Response::Error(ServeFault::UnknownModule { module: 7 })
        );
        let resp = Response::decode(&server.handle_frame(&[0xee])).unwrap();
        assert!(matches!(
            resp,
            Response::Error(ServeFault::Malformed { .. })
        ));
    }

    #[test]
    fn stale_epoch_is_a_typed_fault() {
        let server = server_with_fig1();
        let resp = roundtrip(
            &server,
            &Request::Probe {
                tenant: 1,
                probes: vec![
                    ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0]), 2).at_epoch(5),
                ],
            },
        );
        assert_eq!(
            resp,
            Response::Error(ServeFault::StaleEpoch {
                module: 0,
                expected: 5,
                actual: 0,
            })
        );
    }

    #[test]
    fn oversized_batch_is_busy() {
        let registry = Arc::new(TenantRegistry::new());
        registry
            .create(
                TenantId(1),
                TenantConfig::new(&fig1_workflow())
                    .budget(1 << 20)
                    .limits(AdmissionLimits {
                        max_batch_requests: 1,
                        ..AdmissionLimits::default()
                    }),
            )
            .unwrap();
        let server = Server::new(registry);
        let resp = roundtrip(
            &server,
            &Request::Probe {
                tenant: 1,
                probes: vec![
                    ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0]), 2),
                    ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[1]), 2),
                ],
            },
        );
        assert_eq!(
            resp,
            Response::Busy(BusyReason::BatchRequests { got: 2, limit: 1 })
        );
    }
}
