//! Error type of the serving tier.

use std::fmt;
use sv_core::wire::{BusyReason, ServeFault, WireError};
use sv_core::CoreError;

/// Everything that can go wrong on the client or registry side of the
/// serving tier.
///
/// Two variants deserve emphasis because they are part of the serving
/// *contract*, not exceptional conditions:
///
/// * [`ServeError::Busy`] — admission control bounced the frame
///   (backpressure). Tenant state was not touched; the client retries
///   later or shrinks its batch.
/// * [`ServeError::Fault`] with [`ServeFault::StaleEpoch`] — an
///   epoch-conditioned probe raced an ingest. The whole batch was
///   rejected atomically; the client re-reads epochs and retries.
#[derive(Debug)]
pub enum ServeError {
    /// A transport I/O failure (socket read/write, connect).
    Io(std::io::Error),
    /// A framing/encoding failure (corrupt or truncated payload).
    Wire(WireError),
    /// A privacy-core failure during tenant registration
    /// (materialization budget, structural workflow errors).
    Core(CoreError),
    /// [`TenantRegistry::create`](crate::TenantRegistry::create)
    /// was asked for an id that is already registered.
    DuplicateTenant {
        /// The already-registered tenant id.
        tenant: u64,
    },
    /// The server applied backpressure: admission control rejected the
    /// frame without touching tenant state.
    Busy(BusyReason),
    /// The server answered with a typed fault (unknown tenant/module,
    /// stale epoch, rejected ingest row, malformed frame).
    Fault(ServeFault),
    /// The server's reply did not match the request kind — a protocol
    /// bug, not a recoverable condition.
    UnexpectedReply,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport I/O error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Core(e) => write!(f, "core error: {e}"),
            Self::DuplicateTenant { tenant } => {
                write!(f, "tenant {tenant} is already registered")
            }
            Self::Busy(reason) => write!(f, "server busy: {reason}"),
            Self::Fault(fault) => write!(f, "server fault: {fault}"),
            Self::UnexpectedReply => write!(f, "reply kind does not match the request"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Wire(e) => Some(e),
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::DuplicateTenant { tenant: 3 };
        assert!(e.to_string().contains('3'));
        let e = ServeError::Busy(BusyReason::BatchRequests { got: 9, limit: 4 });
        assert!(e.to_string().contains("busy"));
        let e: ServeError = WireError::Truncated.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ServeError = std::io::Error::other("x").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
