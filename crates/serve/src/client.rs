//! A typed client over any [`Transport`].
//!
//! [`Client`] turns the framed request/response protocol back into the
//! vocabulary of the privacy core: probe batches in, probe outcomes
//! out. Server-side pushback surfaces as typed errors —
//! [`ServeError::Busy`] for admission rejections and
//! [`ServeError::Fault`] for tenancy/epoch faults — so callers can
//! write retry loops against the backpressure contract instead of
//! parsing payloads.

use crate::error::ServeError;
use crate::tenant::TenantId;
use crate::transport::{Connection, Transport};
use sv_core::safety::{ProbeOutcome, ProbeRequest};
use sv_core::wire::{IngestReceipt, ModuleEpoch, Request, Response};
use sv_relation::Value;

/// One connection's worth of typed protocol operations. Open one per
/// client thread ([`Connection`]s are not shared).
pub struct Client {
    conn: Box<dyn Connection>,
}

impl Client {
    /// Opens a connection through `transport`.
    ///
    /// # Errors
    /// Propagates the transport's connect failure.
    pub fn connect(transport: &dyn Transport) -> Result<Self, ServeError> {
        Ok(Self {
            conn: transport.connect()?,
        })
    }

    /// Wraps an already-open connection.
    #[must_use]
    pub fn from_connection(conn: Box<dyn Connection>) -> Self {
        Self { conn }
    }

    fn exchange(&mut self, payload: &[u8]) -> Result<Response, ServeError> {
        let reply = self.conn.request(payload)?;
        match Response::decode(&reply)? {
            Response::Busy(reason) => Err(ServeError::Busy(reason)),
            Response::Error(fault) => Err(ServeError::Fault(fault)),
            resp => Ok(resp),
        }
    }

    /// Sends one probe batch and returns its outcomes (one per request,
    /// in order).
    ///
    /// # Errors
    /// [`ServeError::Busy`] under backpressure, [`ServeError::Fault`]
    /// for unknown tenant/module or a stale epoch (the whole batch is
    /// rejected atomically), I/O and wire failures otherwise.
    pub fn probe(
        &mut self,
        tenant: TenantId,
        probes: &[ProbeRequest],
    ) -> Result<Vec<ProbeOutcome>, ServeError> {
        // Hot path: encode straight from the slice, no Request built.
        let payload = Request::encode_probe(tenant.0, probes);
        match self.exchange(&payload)? {
            Response::Probe(outcomes) => Ok(outcomes),
            _ => Err(ServeError::UnexpectedReply),
        }
    }

    /// Ingests one frame of execution rows atomically on the tenant's
    /// ingest lane; returns a [`IngestReceipt`] carrying the rows
    /// added, the post-frame epochs, and the durable sequence covering
    /// the frame (`0` when the server has no durability configured).
    ///
    /// A legacy server answering with the old ingest-reply tag is
    /// accepted and mapped to a receipt with `durable_seq = 0`.
    ///
    /// # Errors
    /// [`ServeError::Busy`] under backpressure; [`ServeError::Fault`]
    /// with `Rejected { applied: 0, .. }` when any row fails — the
    /// frame is all-or-nothing, nothing was applied.
    pub fn ingest(
        &mut self,
        tenant: TenantId,
        rows: &[Vec<Value>],
    ) -> Result<IngestReceipt, ServeError> {
        let payload = Request::Ingest {
            tenant: tenant.0,
            rows: rows.to_vec(),
        }
        .encode();
        match self.exchange(&payload)? {
            Response::Receipt(receipt) => Ok(receipt),
            Response::Ingest(reply) => Ok(IngestReceipt {
                added: reply.added,
                epochs: reply.epochs,
                durable_seq: 0,
            }),
            _ => Err(ServeError::UnexpectedReply),
        }
    }

    /// Reads the tenant's current per-module epochs (to condition
    /// subsequent probes with [`ProbeRequest::at_epoch`]).
    ///
    /// # Errors
    /// [`ServeError::Fault`] for an unknown tenant, I/O and wire
    /// failures otherwise.
    pub fn epochs(&mut self, tenant: TenantId) -> Result<Vec<ModuleEpoch>, ServeError> {
        let payload = Request::Epochs { tenant: tenant.0 }.encode();
        match self.exchange(&payload)? {
            Response::Epochs(epochs) => Ok(epochs),
            _ => Err(ServeError::UnexpectedReply),
        }
    }
}
