//! The `sv-serve` binary: bind a local socket and serve safety probes.
//!
//! ```text
//! sv-serve --socket /tmp/sv.sock [--acceptors N] [--tenants T] [--wires K]
//! ```
//!
//! Registers `T` demo tenants (ids `1..=T`), each a streaming
//! single-module boolean workflow with `K` wires
//! (`library::one_one_chain(1, K)`), then accepts connections until
//! SIGINT/EOF on stdin. Real deployments embed [`sv_serve`] as a
//! library and register their own workflows; the binary exists so the
//! socket path can be exercised end to end from the shell — see
//! `docs/SERVING.md` for a walkthrough.

use std::process::ExitCode;
use std::sync::Arc;
use sv_serve::{Server, SocketServer, TenantConfig, TenantId, TenantRegistry};
use sv_workflow::library::one_one_chain;

struct Options {
    socket: String,
    acceptors: usize,
    tenants: u64,
    wires: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        socket: String::new(),
        acceptors: std::thread::available_parallelism().map_or(2, usize::from),
        tenants: 4,
        wires: 4,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--socket" => opts.socket = value("--socket")?,
            "--acceptors" => {
                opts.acceptors = value("--acceptors")?
                    .parse()
                    .map_err(|e| format!("--acceptors: {e}"))?;
            }
            "--tenants" => {
                opts.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--wires" => {
                opts.wires = value("--wires")?
                    .parse()
                    .map_err(|e| format!("--wires: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: sv-serve --socket PATH [--acceptors N] [--tenants T] [--wires K]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.socket.is_empty() {
        return Err("--socket PATH is required (see --help)".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let registry = Arc::new(TenantRegistry::new());
    let workflow = one_one_chain(1, opts.wires);
    for id in 1..=opts.tenants {
        if let Err(e) = registry.create(TenantId(id), TenantConfig::new(&workflow).streaming(true))
        {
            eprintln!("registering tenant {id}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let server = Arc::new(Server::new(registry));
    let mut socket = match SocketServer::bind(server, &opts.socket, opts.acceptors) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("binding {}: {e}", opts.socket);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "sv-serve: {} tenants on {} ({} acceptors); close stdin to stop",
        opts.tenants,
        socket.path().display(),
        opts.acceptors
    );

    // Block until stdin closes (Ctrl-D, or the supervisor hanging up),
    // then drain the acceptors and remove the socket file.
    let mut sink = String::new();
    while matches!(std::io::stdin().read_line(&mut sink), Ok(n) if n > 0) {
        sink.clear();
    }
    socket.shutdown();
    ExitCode::SUCCESS
}
