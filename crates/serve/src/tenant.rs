//! The tenant registry: many independent workflows behind one server.
//!
//! A **tenant** is one workflow's serving state — its warm
//! [`WorkflowOracles`] (one memoized safety oracle per private module),
//! its per-module relation epochs, its admission-control counters, and
//! its single-writer ingest lane. The [`TenantRegistry`] multiplexes
//! any number of tenants behind one [`Server`](crate::Server): probe
//! traffic for different tenants shares nothing but the registry's
//! read-mostly map, so tenants are isolated both for correctness
//! (separate oracles, separate epochs) and for capacity (admission is
//! bounded per tenant — one tenant's overload turns into `Busy`
//! responses for *that* tenant, never latency for its neighbours).
//!
//! ## Locking discipline (per tenant)
//!
//! * **Probes** take the tenant's oracle `RwLock` in **read** mode —
//!   any number of serving threads hold it concurrently; the oracle's
//!   own probe surface is `&self` (sharded once-publication caches and
//!   per-module locks below), so the read guard adds one uncontended
//!   atomic per frame, amortized over the whole batch.
//! * **Ingest** goes through the **single-writer lane**
//!   ([`Tenant::ingest_batch`]): a per-tenant mutex serializes ingest
//!   frames, the whole [`IngestBatch`] is validated up front, and the
//!   apply phase takes only **per-module** write locks — the tenant's
//!   outer oracle lock stays in *read* mode, so warm probes proceed
//!   during an append (a probe waits only for the one module currently
//!   being mutated). New epochs are published through the oracle set's
//!   seqlock pair, so [`Tenant::epochs`] never blocks on a writer.
//! * **Control plane** ([`Tenant::with_oracles_mut`], recovery and
//!   compaction) is the only taker of the outer write lock.
//! * **Admission** is lock-free: in-flight request/byte counts are
//!   atomics, checked and rolled back without blocking
//!   ([`Tenant::try_admit`]).

use crate::error::ServeError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use sv_core::safety::{IngestBatch, WorkflowOracles};
use sv_core::wire::{BusyReason, ModuleEpoch};
use sv_core::CoreError;
use sv_relation::Tuple;
use sv_workflow::Workflow;

/// A tenant's identity on the wire: an opaque 64-bit id chosen by the
/// operator at registration time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

/// Per-tenant admission-control bounds. Frames beyond these bounds get
/// an explicit [`BusyReason`] response — backpressure is a typed
/// answer, never a hang.
///
/// Two layers:
/// * **per-frame** bounds (`max_batch_*`) reject a single oversized
///   frame outright (it could never be admitted);
/// * **in-flight** bounds (`max_inflight_*`) bound the total work
///   admitted but not yet answered across all serving threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Most requests (probes or ingest rows) one frame may carry.
    pub max_batch_requests: u64,
    /// Most payload bytes one frame may carry.
    pub max_batch_bytes: u64,
    /// Most requests admitted but unanswered at once.
    pub max_inflight_requests: u64,
    /// Most payload bytes admitted but unanswered at once.
    pub max_inflight_bytes: u64,
}

impl Default for AdmissionLimits {
    /// Permissive defaults sized for batched serving: 8192
    /// requests / 1 MiB per frame, 64k requests / 16 MiB in flight.
    fn default() -> Self {
        Self {
            max_batch_requests: 8_192,
            max_batch_bytes: 1 << 20,
            max_inflight_requests: 1 << 16,
            max_inflight_bytes: 16 << 20,
        }
    }
}

/// A snapshot of one tenant's serving counters (all monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Probe frames answered.
    pub probe_frames: u64,
    /// Individual probes answered.
    pub probes_served: u64,
    /// Ingest frames fully applied.
    pub ingest_frames: u64,
    /// New module rows landed by ingest.
    pub rows_ingested: u64,
    /// Frames bounced by admission control.
    pub busy_rejections: u64,
}

/// One registered workflow: warm oracles plus serving state. Create
/// through the [`TenantRegistry`]; share as `Arc<Tenant>`.
pub struct Tenant {
    id: TenantId,
    limits: AdmissionLimits,
    oracles: RwLock<WorkflowOracles>,
    /// The single-writer ingest lane: at most one ingest frame per
    /// tenant is applying rows at any time, so the oracle write lock is
    /// only ever contended by *one* writer (against many readers).
    ingest_lane: Mutex<()>,
    inflight_requests: AtomicU64,
    inflight_bytes: AtomicU64,
    probe_frames: AtomicU64,
    probes_served: AtomicU64,
    ingest_frames: AtomicU64,
    rows_ingested: AtomicU64,
    busy_rejections: AtomicU64,
}

/// An admitted frame's RAII token: holds the frame's requests/bytes in
/// the tenant's in-flight counters and releases them on drop.
pub struct AdmissionPermit<'a> {
    tenant: &'a Tenant,
    requests: u64,
    bytes: u64,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.tenant
            .inflight_requests
            .fetch_sub(self.requests, Ordering::Relaxed);
        self.tenant
            .inflight_bytes
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// An ingest frame's failure. Frames are **all-or-nothing** since the
/// batch-ingest redesign: validation covers the whole frame before any
/// module is touched, so `applied` is always 0 on rejection (the field
/// survives for the wire contract's `Rejected { applied }` shape). The
/// error is frame-positioned: its [`CoreError::row_index`] names the
/// offending row's index **within the frame**, so a client can repair
/// and resubmit the exact row.
#[derive(Debug)]
pub struct IngestFailure {
    /// Rows of the frame applied before the failure — always 0 under
    /// frame-atomic ingest.
    pub applied: u64,
    /// Why the offending row was rejected.
    pub error: CoreError,
}

/// Why an ingest frame was not applied
/// ([`Tenant::ingest_batch_with`]): either validation rejected a row,
/// or the caller's write-ahead hook refused the frame (e.g. the
/// durability layer could not log it). In both cases **nothing** was
/// applied.
#[derive(Debug)]
pub enum BatchIngestError<E> {
    /// A row failed domain/FD validation; no module was touched and
    /// the frame was not logged.
    Rejected(IngestFailure),
    /// The write-ahead hook failed after validation — the frame was
    /// neither logged nor applied.
    Wal(E),
}

/// A successfully applied ingest frame, as reported by
/// [`Tenant::ingest_batch`] / [`Tenant::ingest_batch_with`].
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Total **new** module rows across all private modules (a module
    /// already holding a row's projection contributes 0).
    pub added: u64,
    /// The per-module epochs after the frame was applied (published
    /// through the seqlock pair — consistent cut, no lock taken).
    pub epochs: Vec<ModuleEpoch>,
    /// The write-ahead hook's sequence number for the frame (0 when no
    /// durability hook ran).
    pub log_seq: u64,
}

impl Tenant {
    fn new(id: TenantId, oracles: WorkflowOracles, limits: AdmissionLimits) -> Self {
        Self {
            id,
            limits,
            oracles: RwLock::new(oracles),
            ingest_lane: Mutex::new(()),
            inflight_requests: AtomicU64::new(0),
            inflight_bytes: AtomicU64::new(0),
            probe_frames: AtomicU64::new(0),
            probes_served: AtomicU64::new(0),
            ingest_frames: AtomicU64::new(0),
            rows_ingested: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
        }
    }

    /// The tenant's wire id.
    #[must_use]
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's admission bounds (fixed at registration).
    #[must_use]
    pub fn limits(&self) -> &AdmissionLimits {
        &self.limits
    }

    /// Read access to the tenant's oracles — the probe path. Any
    /// number of threads hold this concurrently; every probe entry
    /// point on [`WorkflowOracles`] takes `&self`.
    ///
    /// # Panics
    /// If the lock is poisoned (a panic inside an earlier critical
    /// section — unrecoverable serving state).
    pub fn oracles(&self) -> RwLockReadGuard<'_, WorkflowOracles> {
        self.oracles.read().expect("tenant oracle lock poisoned")
    }

    /// Attempts to admit a frame of `requests` requests and `bytes`
    /// payload bytes. On success the returned permit holds the
    /// capacity until dropped; on rejection the tenant's
    /// `busy_rejections` counter ticks and **no state changes**.
    ///
    /// # Errors
    /// The [`BusyReason`] to answer the client with.
    pub fn try_admit(&self, requests: u64, bytes: u64) -> Result<AdmissionPermit<'_>, BusyReason> {
        let reason = self.try_admit_inner(requests, bytes);
        match reason {
            Ok(permit) => Ok(permit),
            Err(r) => {
                self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                Err(r)
            }
        }
    }

    fn try_admit_inner(
        &self,
        requests: u64,
        bytes: u64,
    ) -> Result<AdmissionPermit<'_>, BusyReason> {
        if requests > self.limits.max_batch_requests {
            return Err(BusyReason::BatchRequests {
                got: requests,
                limit: self.limits.max_batch_requests,
            });
        }
        if bytes > self.limits.max_batch_bytes {
            return Err(BusyReason::BatchBytes {
                got: bytes,
                limit: self.limits.max_batch_bytes,
            });
        }
        let now_req = self
            .inflight_requests
            .fetch_add(requests, Ordering::Relaxed)
            + requests;
        if now_req > self.limits.max_inflight_requests {
            self.inflight_requests
                .fetch_sub(requests, Ordering::Relaxed);
            return Err(BusyReason::InflightRequests {
                got: now_req,
                limit: self.limits.max_inflight_requests,
            });
        }
        let now_bytes = self.inflight_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if now_bytes > self.limits.max_inflight_bytes {
            self.inflight_bytes.fetch_sub(bytes, Ordering::Relaxed);
            self.inflight_requests
                .fetch_sub(requests, Ordering::Relaxed);
            return Err(BusyReason::InflightBytes {
                got: now_bytes,
                limit: self.limits.max_inflight_bytes,
            });
        }
        Ok(AdmissionPermit {
            tenant: self,
            requests,
            bytes,
        })
    }

    /// Applies provenance rows on the tenant's **single-writer lane**
    /// as one frame-atomic [`IngestBatch`] — sugar over
    /// [`ingest_batch`](Self::ingest_batch) for row slices.
    ///
    /// Returns the number of **new** module rows (a row whose
    /// projections all modules already hold adds 0 — and bumps no
    /// epoch).
    ///
    /// # Errors
    /// [`IngestFailure`] when any row is invalid (domain or FD
    /// violation): **nothing** is applied; the error's
    /// [`CoreError::row_index`] names the offending row.
    pub fn ingest_rows(&self, rows: &[Tuple]) -> Result<u64, IngestFailure> {
        self.ingest_batch(&IngestBatch::from_rows(rows))
            .map(|outcome| outcome.added)
    }

    /// Applies one typed [`IngestBatch`] on the tenant's single-writer
    /// lane: validate the whole frame up front, apply per-module
    /// mutations (concurrently for large frames), publish epochs.
    /// Probes proceed throughout — the outer oracle lock is held in
    /// **read** mode; only the module currently under append blocks,
    /// and only probes addressed to it.
    ///
    /// # Errors
    /// [`IngestFailure`] when validation rejects the frame — nothing
    /// was applied.
    pub fn ingest_batch(&self, batch: &IngestBatch) -> Result<BatchOutcome, IngestFailure> {
        self.ingest_batch_with(batch, |_| Ok::<u64, std::convert::Infallible>(0), |_, _| ())
            .map_err(|e| match e {
                BatchIngestError::Rejected(failure) => failure,
                BatchIngestError::Wal(never) => match never {},
            })
    }

    /// [`ingest_batch`](Self::ingest_batch) with durability hooks —
    /// the write-through point for a commit lane. The pipeline, all
    /// under the single-writer lane:
    ///
    /// 1. **validate** the whole batch (read locks only; a rejection
    ///    leaves nothing logged and nothing applied);
    /// 2. **`wal(batch)`** — the write-ahead hook logs the frame and
    ///    returns its log sequence (its error aborts the frame
    ///    unapplied);
    /// 3. **apply** per-module mutations (cannot fail for a validated
    ///    batch under the lane);
    /// 4. **publish** the new epochs (seqlock);
    /// 5. **`committed(batch, added)`** — still under the lane, so a
    ///    durability layer can append the frame to its replay ledger in
    ///    exactly log order.
    ///
    /// Because validation precedes logging, a frame in the log is by
    /// construction a frame that applied — replay never re-rejects.
    ///
    /// # Errors
    /// [`BatchIngestError::Rejected`] on validation failure,
    /// [`BatchIngestError::Wal`] when the write-ahead hook refuses the
    /// frame. Nothing is applied in either case.
    pub fn ingest_batch_with<E>(
        &self,
        batch: &IngestBatch,
        wal: impl FnOnce(&IngestBatch) -> Result<u64, E>,
        committed: impl FnOnce(&IngestBatch, u64),
    ) -> Result<BatchOutcome, BatchIngestError<E>> {
        let _lane = self
            .ingest_lane
            .lock()
            .expect("tenant ingest lane poisoned");
        let guard = self.oracles.read().expect("tenant oracle lock poisoned");
        let validated = guard
            .validate_batch(batch)
            .map_err(|error| BatchIngestError::Rejected(IngestFailure { applied: 0, error }))?;
        let log_seq = wal(batch).map_err(BatchIngestError::Wal)?;
        let added = guard
            .apply_batch(validated)
            .map_err(|error| BatchIngestError::Rejected(IngestFailure { applied: 0, error }))?
            as u64;
        let epochs = Self::epochs_from(&guard);
        committed(batch, added);
        self.ingest_frames.fetch_add(1, Ordering::Relaxed);
        self.rows_ingested.fetch_add(added, Ordering::Relaxed);
        Ok(BatchOutcome {
            added,
            epochs,
            log_seq,
        })
    }

    fn epochs_from(oracles: &WorkflowOracles) -> Vec<ModuleEpoch> {
        oracles
            .epoch_snapshot()
            .into_iter()
            .map(|(module, epoch)| ModuleEpoch { module, epoch })
            .collect()
    }

    /// Exclusive access to the tenant's oracles, serialized behind the
    /// single-writer ingest lane — the recovery/compaction control
    /// path. While `f` runs, no ingest frame can interleave and no
    /// probe can observe a half-restored oracle set (the write lock is
    /// held for the whole closure).
    ///
    /// # Panics
    /// If either lock is poisoned.
    pub fn with_oracles_mut<R>(&self, f: impl FnOnce(&mut WorkflowOracles) -> R) -> R {
        let _lane = self
            .ingest_lane
            .lock()
            .expect("tenant ingest lane poisoned");
        let mut guard = self.oracles.write().expect("tenant oracle lock poisoned");
        f(&mut guard)
    }

    /// The tenant's current per-module relation epochs, in
    /// `private_modules()` order — read from the seqlock publication,
    /// so this never blocks on an in-flight append's module locks.
    #[must_use]
    pub fn epochs(&self) -> Vec<ModuleEpoch> {
        Self::epochs_from(&self.oracles())
    }

    /// Snapshot of the serving counters. Exact when no frame is in
    /// flight; monotone lower bounds otherwise.
    #[must_use]
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            probe_frames: self.probe_frames.load(Ordering::Relaxed),
            probes_served: self.probes_served.load(Ordering::Relaxed),
            ingest_frames: self.ingest_frames.load(Ordering::Relaxed),
            rows_ingested: self.rows_ingested.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
        }
    }

    /// Records an answered probe frame (called by the server after a
    /// successful `probe_batch`).
    pub(crate) fn note_probe_frame(&self, probes: u64) {
        self.probe_frames.fetch_add(1, Ordering::Relaxed);
        self.probes_served.fetch_add(probes, Ordering::Relaxed);
    }
}

/// Default materialization budget for [`TenantConfig`]-built tenants
/// (rows per module relation) — matches the budget the repository's
/// examples and tests registered with before the builder existed.
pub const DEFAULT_MATERIALIZE_BUDGET: u128 = 1 << 20;

/// Where a [`TenantConfig`]'s oracles come from.
enum TenantSource<'a> {
    /// Build from a workflow (materialized or streaming).
    Workflow(&'a Workflow),
    /// Pre-built oracles (e.g. warmed offline, or restored).
    Prebuilt(WorkflowOracles),
}

/// The one way to describe a tenant: workflow (or pre-built oracles),
/// streaming flag, materialization budget, admission limits. Replaced
/// the old `register` / `register_streaming` / `insert` triple.
///
/// # Examples
/// ```
/// use sv_serve::{AdmissionLimits, TenantConfig, TenantId, TenantRegistry};
/// use sv_workflow::library::fig1_workflow;
///
/// let registry = TenantRegistry::new();
/// let wf = fig1_workflow();
/// // A materialized tenant with explicit budget and limits…
/// registry
///     .create(
///         TenantId(1),
///         TenantConfig::new(&wf)
///             .budget(1 << 20)
///             .limits(AdmissionLimits::default()),
///     )
///     .unwrap();
/// // …and a streaming tenant (modules start empty, grow by ingest).
/// registry
///     .create(TenantId(2), TenantConfig::new(&wf).streaming(true))
///     .unwrap();
/// assert_eq!(registry.len(), 2);
/// ```
pub struct TenantConfig<'a> {
    source: TenantSource<'a>,
    streaming: bool,
    budget: u128,
    limits: AdmissionLimits,
}

impl<'a> TenantConfig<'a> {
    /// A tenant over `workflow`: **materialized** by default (full
    /// input domain, capped at [`DEFAULT_MATERIALIZE_BUDGET`] unless
    /// [`budget`](Self::budget) overrides), or **streaming** when
    /// [`streaming(true)`](Self::streaming) is set.
    #[must_use]
    pub fn new(workflow: &'a Workflow) -> Self {
        Self {
            source: TenantSource::Workflow(workflow),
            streaming: false,
            budget: DEFAULT_MATERIALIZE_BUDGET,
            limits: AdmissionLimits::default(),
        }
    }

    /// A tenant over pre-built oracles (e.g. warmed offline, or
    /// restored from durable storage). The streaming flag and budget
    /// are irrelevant for this source.
    #[must_use]
    pub fn prebuilt(oracles: WorkflowOracles) -> TenantConfig<'static> {
        TenantConfig {
            source: TenantSource::Prebuilt(oracles),
            streaming: false,
            budget: DEFAULT_MATERIALIZE_BUDGET,
            limits: AdmissionLimits::default(),
        }
    }

    /// Streaming mode: modules start empty and grow through ingest
    /// ([`WorkflowOracles::for_workflow_streaming`]).
    #[must_use]
    pub fn streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Materialization budget (rows per module relation) for
    /// non-streaming workflow tenants.
    #[must_use]
    pub fn budget(mut self, budget: u128) -> Self {
        self.budget = budget;
        self
    }

    /// The tenant's admission-control bounds.
    #[must_use]
    pub fn limits(mut self, limits: AdmissionLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// The registry: tenant id → serving state, behind a read-mostly lock.
/// Registration and deregistration are rare control-plane operations;
/// the serving data plane only ever takes the read side.
///
/// # Examples
/// ```
/// use sv_serve::{TenantConfig, TenantId, TenantRegistry};
/// use sv_workflow::library::fig1_workflow;
///
/// let registry = TenantRegistry::new();
/// let wf = fig1_workflow();
/// let tenant = registry.create(TenantId(1), TenantConfig::new(&wf)).unwrap();
/// assert_eq!(tenant.id(), TenantId(1));
/// assert_eq!(registry.len(), 1);
/// // A second registration under the same id is refused.
/// assert!(registry.create(TenantId(1), TenantConfig::new(&wf)).is_err());
/// assert!(registry.deregister(TenantId(1)).is_some());
/// assert!(registry.is_empty());
/// ```
#[derive(Default)]
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<u64, Arc<Tenant>>>,
}

impl TenantRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tenant described by a [`TenantConfig`] — the single
    /// registration entry point.
    ///
    /// # Errors
    /// [`ServeError::DuplicateTenant`] if `id` is taken;
    /// [`ServeError::Core`] if oracle construction fails
    /// (materialization budget, structural workflow errors).
    pub fn create(
        &self,
        id: TenantId,
        config: TenantConfig<'_>,
    ) -> Result<Arc<Tenant>, ServeError> {
        let oracles = match config.source {
            TenantSource::Prebuilt(oracles) => oracles,
            TenantSource::Workflow(wf) if config.streaming => {
                WorkflowOracles::for_workflow_streaming(wf)?
            }
            TenantSource::Workflow(wf) => WorkflowOracles::for_workflow(wf, config.budget)?,
        };
        self.insert_oracles(id, oracles, config.limits)
    }

    fn insert_oracles(
        &self,
        id: TenantId,
        oracles: WorkflowOracles,
        limits: AdmissionLimits,
    ) -> Result<Arc<Tenant>, ServeError> {
        let mut map = self.tenants.write().expect("registry lock poisoned");
        if map.contains_key(&id.0) {
            return Err(ServeError::DuplicateTenant { tenant: id.0 });
        }
        let tenant = Arc::new(Tenant::new(id, oracles, limits));
        map.insert(id.0, Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Looks a tenant up (the per-frame data-plane operation: one read
    /// lock, one map lookup, one `Arc` clone).
    #[must_use]
    pub fn get(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .get(&id.0)
            .cloned()
    }

    /// Removes a tenant; in-flight frames holding the `Arc` finish
    /// against the removed state, new frames get
    /// [`ServeFault::UnknownTenant`](sv_core::wire::ServeFault::UnknownTenant).
    #[must_use]
    pub fn deregister(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.tenants
            .write()
            .expect("registry lock poisoned")
            .remove(&id.0)
    }

    /// Number of registered tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.read().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registered tenant ids, ascending.
    #[must_use]
    pub fn ids(&self) -> Vec<TenantId> {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .keys()
            .map(|&k| TenantId(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::one_one_chain;

    fn small_tenant(limits: AdmissionLimits) -> Arc<Tenant> {
        let registry = TenantRegistry::new();
        registry
            .create(
                TenantId(9),
                TenantConfig::new(&one_one_chain(1, 3))
                    .budget(1 << 16)
                    .limits(limits),
            )
            .unwrap()
    }

    #[test]
    fn admission_batch_bounds() {
        let t = small_tenant(AdmissionLimits {
            max_batch_requests: 4,
            max_batch_bytes: 100,
            ..AdmissionLimits::default()
        });
        assert!(matches!(
            t.try_admit(5, 10),
            Err(BusyReason::BatchRequests { got: 5, limit: 4 })
        ));
        assert!(matches!(
            t.try_admit(4, 101),
            Err(BusyReason::BatchBytes {
                got: 101,
                limit: 100
            })
        ));
        assert!(t.try_admit(4, 100).is_ok());
        assert_eq!(t.stats().busy_rejections, 2);
    }

    #[test]
    fn admission_inflight_bounds_and_release() {
        let t = small_tenant(AdmissionLimits {
            max_batch_requests: 10,
            max_batch_bytes: 1000,
            max_inflight_requests: 10,
            max_inflight_bytes: 1000,
        });
        let p1 = t.try_admit(6, 10).unwrap();
        // 6 + 6 > 10 in flight.
        assert!(matches!(
            t.try_admit(6, 10),
            Err(BusyReason::InflightRequests { got: 12, limit: 10 })
        ));
        // Requests fit (4), bytes do not (10 + 991 > 1000) — and the
        // request reservation must be rolled back with the rejection.
        assert!(matches!(
            t.try_admit(4, 991),
            Err(BusyReason::InflightBytes { .. })
        ));
        drop(p1);
        // Everything released: the full budget admits again.
        let p = t.try_admit(10, 1000).unwrap();
        drop(p);
    }

    #[test]
    fn ingest_frames_are_all_or_nothing() {
        let wf = one_one_chain(1, 2);
        let registry = TenantRegistry::new();
        let t = registry
            .create(TenantId(0), TenantConfig::new(&wf).streaming(true))
            .unwrap();
        let good = wf.run(&[0, 1]).unwrap();
        let added = t.ingest_rows(std::slice::from_ref(&good)).unwrap();
        assert_eq!(added, 1);
        // Same row again: dedup, 0 added, no failure.
        assert_eq!(t.ingest_rows(std::slice::from_ref(&good)).unwrap(), 0);
        // A frame holding a valid fresh row *and* a row violating the
        // module FD `I -> O` applies nothing: validation covers the
        // whole frame before any module is touched.
        let epochs_before = t.epochs();
        let other = wf.run(&[1, 0]).unwrap();
        let mut bad = good.values().to_vec();
        bad[2] ^= 1; // flip one output bit -> FD violation
        let failure = t
            .ingest_rows(&[other.clone(), Tuple::new(bad)])
            .expect_err("FD violation must fail the frame");
        assert_eq!(failure.applied, 0, "frame-atomic: nothing applied");
        assert_eq!(failure.error.row_index(), Some(1), "offending row named");
        assert_eq!(t.epochs(), epochs_before, "no epoch moved");
        // The valid row alone still lands.
        assert_eq!(t.ingest_rows(std::slice::from_ref(&other)).unwrap(), 1);
    }

    #[test]
    fn wal_hook_failure_applies_nothing() {
        let wf = one_one_chain(1, 2);
        let registry = TenantRegistry::new();
        let t = registry
            .create(TenantId(0), TenantConfig::new(&wf).streaming(true))
            .unwrap();
        let batch = IngestBatch::new(vec![wf.run(&[0, 1]).unwrap()]);
        let err = t
            .ingest_batch_with(&batch, |_| Err::<u64, &str>("disk full"), |_, _| ())
            .expect_err("wal refusal aborts the frame");
        assert!(matches!(err, BatchIngestError::Wal("disk full")));
        assert!(t.epochs().iter().all(|me| me.epoch == 0));
        assert_eq!(t.stats().ingest_frames, 0);
        // A validation rejection never reaches the wal hook.
        let mut bad = wf.run(&[1, 0]).unwrap().values().to_vec();
        bad[2] ^= 1;
        let bad_batch = IngestBatch::new(vec![wf.run(&[1, 0]).unwrap(), Tuple::new(bad)]);
        let err = t
            .ingest_batch_with(
                &bad_batch,
                |_| -> Result<u64, &str> { panic!("wal hook must not run for invalid frames") },
                |_, _| (),
            )
            .expect_err("invalid frame");
        assert!(matches!(err, BatchIngestError::Rejected(_)));
    }

    #[test]
    fn epochs_track_ingest() {
        let wf = one_one_chain(1, 2);
        let registry = TenantRegistry::new();
        let t = registry
            .create(TenantId(0), TenantConfig::new(&wf).streaming(true))
            .unwrap();
        assert!(t.epochs().iter().all(|me| me.epoch == 0));
        t.ingest_rows(&[wf.run(&[0, 0]).unwrap()]).unwrap();
        assert!(t.epochs().iter().all(|me| me.epoch == 1));
    }

    #[test]
    fn create_covers_every_tenant_source() {
        // Materialized, streaming, and prebuilt registrations all go
        // through the single `create` entry point (the deprecated
        // register/register_streaming/insert shims are gone).
        let wf = one_one_chain(1, 2);
        let registry = TenantRegistry::new();
        registry
            .create(TenantId(1), TenantConfig::new(&wf).budget(1 << 16))
            .unwrap();
        registry
            .create(TenantId(2), TenantConfig::new(&wf).streaming(true))
            .unwrap();
        let oracles = sv_core::safety::WorkflowOracles::for_workflow_streaming(&wf).unwrap();
        registry
            .create(TenantId(3), TenantConfig::prebuilt(oracles))
            .unwrap();
        assert_eq!(registry.len(), 3);
    }
}
