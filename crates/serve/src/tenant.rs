//! The tenant registry: many independent workflows behind one server.
//!
//! A **tenant** is one workflow's serving state — its warm
//! [`WorkflowOracles`] (one memoized safety oracle per private module),
//! its per-module relation epochs, its admission-control counters, and
//! its single-writer ingest lane. The [`TenantRegistry`] multiplexes
//! any number of tenants behind one [`Server`](crate::Server): probe
//! traffic for different tenants shares nothing but the registry's
//! read-mostly map, so tenants are isolated both for correctness
//! (separate oracles, separate epochs) and for capacity (admission is
//! bounded per tenant — one tenant's overload turns into `Busy`
//! responses for *that* tenant, never latency for its neighbours).
//!
//! ## Locking discipline (per tenant)
//!
//! * **Probes** take the tenant's oracle `RwLock` in **read** mode —
//!   any number of serving threads hold it concurrently; the oracle's
//!   own probe surface is `&self` (sharded once-publication caches
//!   below), so the read guard adds one uncontended atomic per frame,
//!   amortized over the whole batch.
//! * **Ingest** goes through the **single-writer lane**
//!   ([`Tenant::ingest_rows`]): a per-tenant mutex serializes ingest
//!   frames, and the oracle write lock is taken **per row**, not per
//!   frame — so a large ingest frame interleaves with probe batches
//!   row-by-row and every landed row's epoch bump is visible to the
//!   next probe batch immediately.
//! * **Admission** is lock-free: in-flight request/byte counts are
//!   atomics, checked and rolled back without blocking
//!   ([`Tenant::try_admit`]).

use crate::error::ServeError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use sv_core::safety::{SafetyOracle as _, WorkflowOracles};
use sv_core::wire::{BusyReason, ModuleEpoch};
use sv_core::CoreError;
use sv_relation::Tuple;
use sv_workflow::Workflow;

/// A tenant's identity on the wire: an opaque 64-bit id chosen by the
/// operator at registration time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

/// Per-tenant admission-control bounds. Frames beyond these bounds get
/// an explicit [`BusyReason`] response — backpressure is a typed
/// answer, never a hang.
///
/// Two layers:
/// * **per-frame** bounds (`max_batch_*`) reject a single oversized
///   frame outright (it could never be admitted);
/// * **in-flight** bounds (`max_inflight_*`) bound the total work
///   admitted but not yet answered across all serving threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Most requests (probes or ingest rows) one frame may carry.
    pub max_batch_requests: u64,
    /// Most payload bytes one frame may carry.
    pub max_batch_bytes: u64,
    /// Most requests admitted but unanswered at once.
    pub max_inflight_requests: u64,
    /// Most payload bytes admitted but unanswered at once.
    pub max_inflight_bytes: u64,
}

impl Default for AdmissionLimits {
    /// Permissive defaults sized for batched serving: 8192
    /// requests / 1 MiB per frame, 64k requests / 16 MiB in flight.
    fn default() -> Self {
        Self {
            max_batch_requests: 8_192,
            max_batch_bytes: 1 << 20,
            max_inflight_requests: 1 << 16,
            max_inflight_bytes: 16 << 20,
        }
    }
}

/// A snapshot of one tenant's serving counters (all monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Probe frames answered.
    pub probe_frames: u64,
    /// Individual probes answered.
    pub probes_served: u64,
    /// Ingest frames fully applied.
    pub ingest_frames: u64,
    /// New module rows landed by ingest.
    pub rows_ingested: u64,
    /// Frames bounced by admission control.
    pub busy_rejections: u64,
}

/// One registered workflow: warm oracles plus serving state. Create
/// through the [`TenantRegistry`]; share as `Arc<Tenant>`.
pub struct Tenant {
    id: TenantId,
    limits: AdmissionLimits,
    oracles: RwLock<WorkflowOracles>,
    /// The single-writer ingest lane: at most one ingest frame per
    /// tenant is applying rows at any time, so the oracle write lock is
    /// only ever contended by *one* writer (against many readers).
    ingest_lane: Mutex<()>,
    inflight_requests: AtomicU64,
    inflight_bytes: AtomicU64,
    probe_frames: AtomicU64,
    probes_served: AtomicU64,
    ingest_frames: AtomicU64,
    rows_ingested: AtomicU64,
    busy_rejections: AtomicU64,
}

/// An admitted frame's RAII token: holds the frame's requests/bytes in
/// the tenant's in-flight counters and releases them on drop.
pub struct AdmissionPermit<'a> {
    tenant: &'a Tenant,
    requests: u64,
    bytes: u64,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.tenant
            .inflight_requests
            .fetch_sub(self.requests, Ordering::Relaxed);
        self.tenant
            .inflight_bytes
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// An ingest frame's failure: the offending row's error plus how many
/// earlier rows of the frame had already landed (rows apply in order,
/// row-atomically). The error is frame-positioned: its
/// [`CoreError::row_index`] names the offending row's index **within
/// the frame**, so a client can repair and resubmit the exact row.
#[derive(Debug)]
pub struct IngestFailure {
    /// Rows of the frame applied before the failure.
    pub applied: u64,
    /// Why the offending row was rejected.
    pub error: CoreError,
}

/// Why an ingest frame stopped early ([`Tenant::ingest_rows_with`]):
/// either a row failed validation, or the caller's pre-apply hook
/// refused to let the row reach the oracle (e.g. a durability layer
/// could not log it). In both cases earlier rows stay applied.
#[derive(Debug)]
pub enum IngestInterrupt<E> {
    /// A row failed domain/FD validation.
    Rejected(IngestFailure),
    /// The pre-apply hook failed **before** the row touched any oracle
    /// state — the row was neither logged nor applied.
    Hook {
        /// Rows of the frame applied before the hook refused.
        applied: u64,
        /// The hook's error.
        error: E,
    },
}

impl Tenant {
    fn new(id: TenantId, oracles: WorkflowOracles, limits: AdmissionLimits) -> Self {
        Self {
            id,
            limits,
            oracles: RwLock::new(oracles),
            ingest_lane: Mutex::new(()),
            inflight_requests: AtomicU64::new(0),
            inflight_bytes: AtomicU64::new(0),
            probe_frames: AtomicU64::new(0),
            probes_served: AtomicU64::new(0),
            ingest_frames: AtomicU64::new(0),
            rows_ingested: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
        }
    }

    /// The tenant's wire id.
    #[must_use]
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's admission bounds (fixed at registration).
    #[must_use]
    pub fn limits(&self) -> &AdmissionLimits {
        &self.limits
    }

    /// Read access to the tenant's oracles — the probe path. Any
    /// number of threads hold this concurrently; every probe entry
    /// point on [`WorkflowOracles`] takes `&self`.
    ///
    /// # Panics
    /// If the lock is poisoned (a panic inside an earlier critical
    /// section — unrecoverable serving state).
    pub fn oracles(&self) -> RwLockReadGuard<'_, WorkflowOracles> {
        self.oracles.read().expect("tenant oracle lock poisoned")
    }

    /// Attempts to admit a frame of `requests` requests and `bytes`
    /// payload bytes. On success the returned permit holds the
    /// capacity until dropped; on rejection the tenant's
    /// `busy_rejections` counter ticks and **no state changes**.
    ///
    /// # Errors
    /// The [`BusyReason`] to answer the client with.
    pub fn try_admit(&self, requests: u64, bytes: u64) -> Result<AdmissionPermit<'_>, BusyReason> {
        let reason = self.try_admit_inner(requests, bytes);
        match reason {
            Ok(permit) => Ok(permit),
            Err(r) => {
                self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                Err(r)
            }
        }
    }

    fn try_admit_inner(
        &self,
        requests: u64,
        bytes: u64,
    ) -> Result<AdmissionPermit<'_>, BusyReason> {
        if requests > self.limits.max_batch_requests {
            return Err(BusyReason::BatchRequests {
                got: requests,
                limit: self.limits.max_batch_requests,
            });
        }
        if bytes > self.limits.max_batch_bytes {
            return Err(BusyReason::BatchBytes {
                got: bytes,
                limit: self.limits.max_batch_bytes,
            });
        }
        let now_req = self
            .inflight_requests
            .fetch_add(requests, Ordering::Relaxed)
            + requests;
        if now_req > self.limits.max_inflight_requests {
            self.inflight_requests
                .fetch_sub(requests, Ordering::Relaxed);
            return Err(BusyReason::InflightRequests {
                got: now_req,
                limit: self.limits.max_inflight_requests,
            });
        }
        let now_bytes = self.inflight_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if now_bytes > self.limits.max_inflight_bytes {
            self.inflight_bytes.fetch_sub(bytes, Ordering::Relaxed);
            self.inflight_requests
                .fetch_sub(requests, Ordering::Relaxed);
            return Err(BusyReason::InflightBytes {
                got: now_bytes,
                limit: self.limits.max_inflight_bytes,
            });
        }
        Ok(AdmissionPermit {
            tenant: self,
            requests,
            bytes,
        })
    }

    /// Applies provenance rows on the tenant's **single-writer lane**:
    /// the lane mutex serializes ingest frames, and each row takes the
    /// oracle write lock individually — probes interleave between rows,
    /// and each landed row's epoch bump is immediately visible to
    /// subsequent probe batches.
    ///
    /// Returns the number of **new** module rows (a row whose
    /// projections all modules already hold adds 0 — and bumps no
    /// epoch).
    ///
    /// # Errors
    /// [`IngestFailure`] on the first invalid row (domain or FD
    /// violation): earlier rows of the frame stay applied; the
    /// offending row and everything after it do not.
    pub fn ingest_rows(&self, rows: &[Tuple]) -> Result<u64, IngestFailure> {
        self.ingest_rows_with(rows, |_, _| Ok::<(), std::convert::Infallible>(()))
            .map_err(|stop| match stop {
                IngestInterrupt::Rejected(failure) => failure,
                IngestInterrupt::Hook { error, .. } => match error {},
            })
    }

    /// [`ingest_rows`](Self::ingest_rows) with a **pre-apply hook**: for
    /// each row, `hook(frame_index, row)` runs *before* the row takes
    /// the oracle write lock. This is the write-through point for a
    /// durability layer — log the row, then let it land — with the same
    /// prefix discipline as validation failures: if the hook errs, the
    /// row and everything after it are neither logged nor applied, and
    /// earlier rows stay.
    ///
    /// The hook runs under the single-writer ingest lane, so for one
    /// tenant the sequence of hook calls is exactly the sequence of
    /// apply attempts — a log written by the hook replays to the same
    /// state.
    ///
    /// # Errors
    /// [`IngestInterrupt::Rejected`] on the first invalid row (its
    /// error re-indexed to the frame position);
    /// [`IngestInterrupt::Hook`] when the hook refuses a row.
    pub fn ingest_rows_with<E, F>(
        &self,
        rows: &[Tuple],
        mut hook: F,
    ) -> Result<u64, IngestInterrupt<E>>
    where
        F: FnMut(u64, &Tuple) -> Result<(), E>,
    {
        let _lane = self
            .ingest_lane
            .lock()
            .expect("tenant ingest lane poisoned");
        let mut added = 0u64;
        for (i, row) in rows.iter().enumerate() {
            if let Err(error) = hook(i as u64, row) {
                return Err(IngestInterrupt::Hook {
                    applied: i as u64,
                    error,
                });
            }
            let mut guard = self.oracles.write().expect("tenant oracle lock poisoned");
            match guard.ingest_execution(row) {
                Ok(n) => added += n as u64,
                Err(error) => {
                    drop(guard);
                    return Err(IngestInterrupt::Rejected(IngestFailure {
                        applied: i as u64,
                        error: error.at_row(i),
                    }));
                }
            }
        }
        self.ingest_frames.fetch_add(1, Ordering::Relaxed);
        self.rows_ingested.fetch_add(added, Ordering::Relaxed);
        Ok(added)
    }

    /// Exclusive access to the tenant's oracles, serialized behind the
    /// single-writer ingest lane — the recovery/compaction control
    /// path. While `f` runs, no ingest frame can interleave and no
    /// probe can observe a half-restored oracle set (the write lock is
    /// held for the whole closure).
    ///
    /// # Panics
    /// If either lock is poisoned.
    pub fn with_oracles_mut<R>(&self, f: impl FnOnce(&mut WorkflowOracles) -> R) -> R {
        let _lane = self
            .ingest_lane
            .lock()
            .expect("tenant ingest lane poisoned");
        let mut guard = self.oracles.write().expect("tenant oracle lock poisoned");
        f(&mut guard)
    }

    /// The tenant's current per-module relation epochs, in
    /// `private_modules()` order.
    #[must_use]
    pub fn epochs(&self) -> Vec<ModuleEpoch> {
        let guard = self.oracles();
        guard
            .iter()
            .map(|(id, oracle)| ModuleEpoch {
                module: id,
                epoch: oracle.relation_epoch(),
            })
            .collect()
    }

    /// Snapshot of the serving counters. Exact when no frame is in
    /// flight; monotone lower bounds otherwise.
    #[must_use]
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            probe_frames: self.probe_frames.load(Ordering::Relaxed),
            probes_served: self.probes_served.load(Ordering::Relaxed),
            ingest_frames: self.ingest_frames.load(Ordering::Relaxed),
            rows_ingested: self.rows_ingested.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
        }
    }

    /// Records an answered probe frame (called by the server after a
    /// successful `probe_batch`).
    pub(crate) fn note_probe_frame(&self, probes: u64) {
        self.probe_frames.fetch_add(1, Ordering::Relaxed);
        self.probes_served.fetch_add(probes, Ordering::Relaxed);
    }
}

/// The registry: tenant id → serving state, behind a read-mostly lock.
/// Registration and deregistration are rare control-plane operations;
/// the serving data plane only ever takes the read side.
///
/// # Examples
/// ```
/// use sv_serve::{AdmissionLimits, TenantId, TenantRegistry};
/// use sv_workflow::library::fig1_workflow;
///
/// let registry = TenantRegistry::new();
/// let tenant = registry
///     .register(TenantId(1), &fig1_workflow(), 1 << 20, AdmissionLimits::default())
///     .unwrap();
/// assert_eq!(tenant.id(), TenantId(1));
/// assert_eq!(registry.len(), 1);
/// // A second registration under the same id is refused.
/// assert!(registry
///     .register(TenantId(1), &fig1_workflow(), 1 << 20, AdmissionLimits::default())
///     .is_err());
/// assert!(registry.deregister(TenantId(1)).is_some());
/// assert!(registry.is_empty());
/// ```
#[derive(Default)]
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<u64, Arc<Tenant>>>,
}

impl TenantRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tenant whose modules are **materialized** over the
    /// full input domain (budget-capped), the batch construction of
    /// [`WorkflowOracles::for_workflow`].
    ///
    /// # Errors
    /// [`ServeError::DuplicateTenant`] if `id` is taken;
    /// [`ServeError::Core`] if materialization fails (budget).
    pub fn register(
        &self,
        id: TenantId,
        workflow: &Workflow,
        budget: u128,
        limits: AdmissionLimits,
    ) -> Result<Arc<Tenant>, ServeError> {
        let oracles = WorkflowOracles::for_workflow(workflow, budget)?;
        self.insert(id, oracles, limits)
    }

    /// Registers a **streaming** tenant: every module starts empty and
    /// grows through ingest ([`WorkflowOracles::for_workflow_streaming`]).
    ///
    /// # Errors
    /// [`ServeError::DuplicateTenant`] if `id` is taken;
    /// [`ServeError::Core`] on structural workflow errors.
    pub fn register_streaming(
        &self,
        id: TenantId,
        workflow: &Workflow,
        limits: AdmissionLimits,
    ) -> Result<Arc<Tenant>, ServeError> {
        let oracles = WorkflowOracles::for_workflow_streaming(workflow)?;
        self.insert(id, oracles, limits)
    }

    /// Registers pre-built oracles (e.g. warmed offline) under `id`.
    ///
    /// # Errors
    /// [`ServeError::DuplicateTenant`] if `id` is taken.
    pub fn insert(
        &self,
        id: TenantId,
        oracles: WorkflowOracles,
        limits: AdmissionLimits,
    ) -> Result<Arc<Tenant>, ServeError> {
        let mut map = self.tenants.write().expect("registry lock poisoned");
        if map.contains_key(&id.0) {
            return Err(ServeError::DuplicateTenant { tenant: id.0 });
        }
        let tenant = Arc::new(Tenant::new(id, oracles, limits));
        map.insert(id.0, Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Looks a tenant up (the per-frame data-plane operation: one read
    /// lock, one map lookup, one `Arc` clone).
    #[must_use]
    pub fn get(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .get(&id.0)
            .cloned()
    }

    /// Removes a tenant; in-flight frames holding the `Arc` finish
    /// against the removed state, new frames get
    /// [`ServeFault::UnknownTenant`](sv_core::wire::ServeFault::UnknownTenant).
    #[must_use]
    pub fn deregister(&self, id: TenantId) -> Option<Arc<Tenant>> {
        self.tenants
            .write()
            .expect("registry lock poisoned")
            .remove(&id.0)
    }

    /// Number of registered tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.read().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registered tenant ids, ascending.
    #[must_use]
    pub fn ids(&self) -> Vec<TenantId> {
        self.tenants
            .read()
            .expect("registry lock poisoned")
            .keys()
            .map(|&k| TenantId(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::one_one_chain;

    fn small_tenant(limits: AdmissionLimits) -> Arc<Tenant> {
        let registry = TenantRegistry::new();
        registry
            .register(TenantId(9), &one_one_chain(1, 3), 1 << 16, limits)
            .unwrap()
    }

    #[test]
    fn admission_batch_bounds() {
        let t = small_tenant(AdmissionLimits {
            max_batch_requests: 4,
            max_batch_bytes: 100,
            ..AdmissionLimits::default()
        });
        assert!(matches!(
            t.try_admit(5, 10),
            Err(BusyReason::BatchRequests { got: 5, limit: 4 })
        ));
        assert!(matches!(
            t.try_admit(4, 101),
            Err(BusyReason::BatchBytes {
                got: 101,
                limit: 100
            })
        ));
        assert!(t.try_admit(4, 100).is_ok());
        assert_eq!(t.stats().busy_rejections, 2);
    }

    #[test]
    fn admission_inflight_bounds_and_release() {
        let t = small_tenant(AdmissionLimits {
            max_batch_requests: 10,
            max_batch_bytes: 1000,
            max_inflight_requests: 10,
            max_inflight_bytes: 1000,
        });
        let p1 = t.try_admit(6, 10).unwrap();
        // 6 + 6 > 10 in flight.
        assert!(matches!(
            t.try_admit(6, 10),
            Err(BusyReason::InflightRequests { got: 12, limit: 10 })
        ));
        // Requests fit (4), bytes do not (10 + 991 > 1000) — and the
        // request reservation must be rolled back with the rejection.
        assert!(matches!(
            t.try_admit(4, 991),
            Err(BusyReason::InflightBytes { .. })
        ));
        drop(p1);
        // Everything released: the full budget admits again.
        let p = t.try_admit(10, 1000).unwrap();
        drop(p);
    }

    #[test]
    fn ingest_reports_partial_application() {
        let wf = one_one_chain(1, 2);
        let registry = TenantRegistry::new();
        let t = registry
            .register_streaming(TenantId(0), &wf, AdmissionLimits::default())
            .unwrap();
        let good = wf.run(&[0, 1]).unwrap();
        let added = t.ingest_rows(std::slice::from_ref(&good)).unwrap();
        assert_eq!(added, 1);
        // Same row again: dedup, 0 added, no failure.
        assert_eq!(t.ingest_rows(std::slice::from_ref(&good)).unwrap(), 0);
        // A row violating the module FD `I -> O` (same input, different
        // output than recorded) fails after the first (valid) row.
        let other = wf.run(&[1, 0]).unwrap();
        let mut bad = good.values().to_vec();
        bad[2] ^= 1; // flip one output bit -> FD violation
        let failure = t
            .ingest_rows(&[other, Tuple::new(bad)])
            .expect_err("FD violation must fail the frame");
        assert_eq!(failure.applied, 1);
    }

    #[test]
    fn epochs_track_ingest() {
        let wf = one_one_chain(1, 2);
        let registry = TenantRegistry::new();
        let t = registry
            .register_streaming(TenantId(0), &wf, AdmissionLimits::default())
            .unwrap();
        assert!(t.epochs().iter().all(|me| me.epoch == 0));
        t.ingest_rows(&[wf.run(&[0, 0]).unwrap()]).unwrap();
        assert!(t.epochs().iter().all(|me| me.epoch == 1));
    }
}
