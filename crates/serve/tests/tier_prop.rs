//! Serving-tier property suite: the wire changes *nothing*.
//!
//! The contract under test: a probe served through the framed protocol
//! (loopback or socket) answers exactly like a direct
//! `WorkflowOracles::probe_batch` call against the same relation state
//! — under concurrency, under interleaved ingest, and across every
//! fault path. Concretely:
//!
//! * **Epoch-indexed equivalence** — with ingest racing 1/2/4/8 client
//!   threads, every served outcome must equal the direct answer *at the
//!   epoch the server stamped on it* (single-module tenant, so the
//!   epoch fully determines relation state).
//! * **Backpressure** — admission overflow surfaces as a typed `Busy`
//!   through the wire, with no tenant state touched.
//! * **Stale-epoch atomicity** — one stale probe fails its whole batch
//!   before any oracle work happens (`total_calls` unchanged).
//! * **Socket ≡ loopback** — the Unix-socket transport serves the same
//!   bytes the loopback does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use sv_core::safety::{ProbeRequest, WorkflowOracles};
use sv_core::wire::BusyReason;
use sv_relation::{AttrSet, Tuple};
use sv_serve::{
    AdmissionLimits, Client, LoopbackTransport, ServeError, Server, TenantConfig, TenantId,
    TenantRegistry,
};
use sv_workflow::library::one_one_chain;
use sv_workflow::{ModuleId, Workflow};

const WIRES: usize = 3;
const TENANT: TenantId = TenantId(7);

/// Every input of the K-wire chain, as executed provenance rows.
/// Each distinct row adds exactly one relation row, so ingesting
/// `rows[..e]` puts the single module at epoch `e`.
fn all_rows(wf: &Workflow) -> Vec<Tuple> {
    (0..1u32 << WIRES)
        .map(|bits| {
            let input: Vec<u32> = (0..WIRES).map(|w| (bits >> w) & 1).collect();
            wf.run(&input).expect("chain accepts all boolean inputs")
        })
        .collect()
}

/// A fixed probe mix: a spread of visible sets and Γ values.
fn probe_mix() -> Vec<ProbeRequest> {
    let mut probes = Vec::new();
    for word in [0b000011u64, 0b001100, 0b110000, 0b010101, 0b111111, 0] {
        for gamma in [1u128, 2, 4, 8] {
            probes.push(ProbeRequest::new(
                ModuleId(0),
                AttrSet::from_word(word),
                gamma,
            ));
        }
    }
    probes
}

/// The ground truth: `expected[e][p]` = direct `probe_batch` answer for
/// probe `p` after ingesting the first `e` rows.
fn reference_table(wf: &Workflow, rows: &[Tuple], probes: &[ProbeRequest]) -> Vec<Vec<bool>> {
    let mut oracles = WorkflowOracles::for_workflow_streaming(wf).unwrap();
    let mut table = Vec::with_capacity(rows.len() + 1);
    for e in 0..=rows.len() {
        if e > 0 {
            assert_eq!(oracles.ingest_execution(&rows[e - 1]).unwrap(), 1);
        }
        let outcomes = oracles.probe_batch(probes).unwrap();
        assert!(outcomes.iter().all(|o| o.epoch == e as u64));
        table.push(outcomes.into_iter().map(|o| o.safe).collect());
    }
    table
}

fn serve_equivalence_under_ingest(client_threads: usize) {
    let wf = one_one_chain(1, WIRES);
    let rows = all_rows(&wf);
    let probes = probe_mix();
    let expected = reference_table(&wf, &rows, &probes);

    let registry = Arc::new(TenantRegistry::new());
    registry
        .create(TENANT, TenantConfig::new(&wf).streaming(true))
        .unwrap();
    let transport = LoopbackTransport::new(Arc::new(Server::new(registry)));
    let done = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..client_threads {
            let transport = &transport;
            let probes = &probes;
            let expected = &expected;
            let done = &done;
            scope.spawn(move || {
                let mut client = Client::connect(transport).unwrap();
                let mut last_epoch = 0u64;
                // Rotate through batch sizes so frames of different
                // shapes race the ingest lane.
                let mut start = t % probes.len();
                while done.load(Ordering::Acquire) == 0 {
                    let len = (1 + start % 5).min(probes.len() - start);
                    let batch = &probes[start..start + len];
                    let outcomes = client.probe(TENANT, batch).unwrap();
                    assert_eq!(outcomes.len(), batch.len());
                    for (i, outcome) in outcomes.iter().enumerate() {
                        // The server stamps the epoch it answered at;
                        // the answer must be the direct one for that
                        // epoch, and epochs never run backwards.
                        assert!(outcome.epoch >= last_epoch, "epoch regressed");
                        last_epoch = outcome.epoch;
                        assert_eq!(
                            outcome.safe,
                            expected[outcome.epoch as usize][start + i],
                            "served answer diverged from direct probe_batch \
                             (thread {t}, probe {}, epoch {})",
                            start + i,
                            outcome.epoch
                        );
                    }
                    start = (start + len) % probes.len();
                }
            });
        }
        // The ingest side: land every row through the wire, one frame
        // per row, while the probe threads hammer the same tenant.
        let mut ingest = Client::connect(&transport).unwrap();
        for row in &rows {
            let reply = ingest.ingest(TENANT, &[row.values().to_vec()]).unwrap();
            assert_eq!(reply.added, 1);
        }
        // Let the probers observe the final epoch before stopping.
        let mut settle = Client::connect(&transport).unwrap();
        let final_epoch = rows.len() as u64;
        loop {
            let outcomes = settle.probe(TENANT, &probes[..1]).unwrap();
            if outcomes[0].epoch == final_epoch {
                break;
            }
        }
        done.store(1, Ordering::Release);
    });
}

#[test]
fn loopback_matches_direct_1_thread() {
    serve_equivalence_under_ingest(1);
}

#[test]
fn loopback_matches_direct_2_threads() {
    serve_equivalence_under_ingest(2);
}

#[test]
fn loopback_matches_direct_4_threads() {
    serve_equivalence_under_ingest(4);
}

#[test]
fn loopback_matches_direct_8_threads() {
    serve_equivalence_under_ingest(8);
}

#[test]
fn busy_surfaces_through_the_wire_without_touching_state() {
    let wf = one_one_chain(1, WIRES);
    let registry = Arc::new(TenantRegistry::new());
    let tenant = registry
        .create(
            TENANT,
            TenantConfig::new(&wf)
                .streaming(true)
                .limits(AdmissionLimits {
                    max_batch_requests: 2,
                    max_inflight_requests: 2,
                    ..AdmissionLimits::default()
                }),
        )
        .unwrap();
    let transport = LoopbackTransport::new(Arc::new(Server::new(registry)));
    let mut client = Client::connect(&transport).unwrap();

    // Per-frame overflow: three probes against a two-probe bound.
    let probes = probe_mix();
    let err = client.probe(TENANT, &probes[..3]).unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Busy(BusyReason::BatchRequests { got: 3, limit: 2 })
        ),
        "got {err}"
    );

    // In-flight overflow: saturate the in-flight budget directly (as a
    // stalled frame would), then probe through the wire.
    let permit = tenant.try_admit(2, 0).expect("budget fits exactly");
    let err = client.probe(TENANT, &probes[..1]).unwrap_err();
    assert!(
        matches!(err, ServeError::Busy(BusyReason::InflightRequests { .. })),
        "got {err}"
    );
    drop(permit);

    // Both wire rejections were counted, and no probe work happened.
    let stats = tenant.stats();
    assert_eq!(stats.busy_rejections, 2);
    assert_eq!(stats.probe_frames, 0);
    assert_eq!(stats.probes_served, 0);
    assert_eq!(tenant.oracles().total_calls(), 0);

    // And the tenant still serves once capacity frees up.
    assert_eq!(client.probe(TENANT, &probes[..2]).unwrap().len(), 2);
}

#[test]
fn stale_epoch_fails_the_whole_batch_atomically() {
    let wf = one_one_chain(1, WIRES);
    let rows = all_rows(&wf);
    let registry = Arc::new(TenantRegistry::new());
    let tenant = registry
        .create(TENANT, TenantConfig::new(&wf).streaming(true))
        .unwrap();
    let transport = LoopbackTransport::new(Arc::new(Server::new(registry)));
    let mut client = Client::connect(&transport).unwrap();

    // Move the tenant to epoch 2: one epoch step per ingest frame
    // (frames apply atomically), so two frames of one row each.
    client.ingest(TENANT, &[rows[0].values().to_vec()]).unwrap();
    client.ingest(TENANT, &[rows[1].values().to_vec()]).unwrap();
    let epochs = client.epochs(TENANT).unwrap();
    assert_eq!(epochs[0].epoch, 2);

    // A batch of valid probes with one stale-epoch straggler: the
    // *whole* batch is rejected before any oracle work.
    let calls_before = tenant.oracles().total_calls();
    let batch = vec![
        ProbeRequest::new(ModuleId(0), AttrSet::from_word(0b11), 2).at_epoch(2),
        ProbeRequest::new(ModuleId(0), AttrSet::from_word(0b1100), 2),
        ProbeRequest::new(ModuleId(0), AttrSet::from_word(0b110000), 2).at_epoch(1),
    ];
    let err = client.probe(TENANT, &batch).unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Fault(sv_core::wire::ServeFault::StaleEpoch {
                module: 0,
                expected: 1,
                actual: 2,
            })
        ),
        "got {err}"
    );
    assert_eq!(
        tenant.oracles().total_calls(),
        calls_before,
        "a rejected batch must not touch the oracles"
    );
    assert_eq!(tenant.stats().probe_frames, 0);

    // The recovery loop the protocol prescribes: re-read epochs, retry
    // with the current one.
    let epoch = client.epochs(TENANT).unwrap()[0].epoch;
    let retried: Vec<ProbeRequest> = batch.into_iter().map(|p| p.at_epoch(epoch)).collect();
    assert_eq!(client.probe(TENANT, &retried).unwrap().len(), 3);
}

#[cfg(unix)]
#[test]
fn socket_transport_matches_loopback() {
    use sv_serve::{SocketServer, SocketTransport};

    let wf = one_one_chain(1, WIRES);
    let rows = all_rows(&wf);
    let probes = probe_mix();

    let registry = Arc::new(TenantRegistry::new());
    registry
        .create(TENANT, TenantConfig::new(&wf).streaming(true))
        .unwrap();
    let server = Arc::new(Server::new(Arc::clone(&registry)));
    let loopback = LoopbackTransport::new(Arc::clone(&server));
    let path = std::env::temp_dir().join(format!("sv-serve-prop-{}.sock", std::process::id()));
    let mut socket_server = SocketServer::bind(Arc::clone(&server), &path, 2).unwrap();
    let socket = SocketTransport::new(socket_server.path());

    let mut over_socket = Client::connect(&socket).unwrap();
    let mut over_loopback = Client::connect(&loopback).unwrap();

    // Ingest over the socket, then compare every probe answer across
    // both transports at every epoch along the way.
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            over_socket
                .ingest(TENANT, &[row.values().to_vec()])
                .unwrap()
                .added,
            1
        );
        assert_eq!(over_socket.epochs(TENANT).unwrap()[0].epoch, (i + 1) as u64);
        let a = over_socket.probe(TENANT, &probes).unwrap();
        let b = over_loopback.probe(TENANT, &probes).unwrap();
        assert_eq!(a, b, "socket and loopback diverged at epoch {}", i + 1);
    }

    // Faults travel the socket identically too.
    let stale = [ProbeRequest::new(ModuleId(0), AttrSet::from_word(1), 2).at_epoch(0)];
    let err = over_socket.probe(TENANT, &stale).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Fault(sv_core::wire::ServeFault::StaleEpoch { .. })
    ));
    let err = over_socket.probe(TenantId(999), &probes[..1]).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Fault(sv_core::wire::ServeFault::UnknownTenant { tenant: 999 })
    ));

    drop(over_socket);
    socket_server.shutdown();
    assert!(!socket_server.path().exists(), "socket file cleaned up");
}

/// Restart story: a socket server draining and a **fresh** server over a
/// crash-recovered registry must answer exactly like the server that
/// went down. Ingest runs write-ahead through `sv-durable`; shutdown is
/// drain-and-join; recovery is snapshot + log replay.
#[cfg(unix)]
#[test]
fn restarted_server_over_recovered_registry_answers_identically() {
    use sv_durable::{DurableRegistry, TenantDef};
    use sv_serve::{SocketServer, SocketTransport};

    let wf = one_one_chain(1, WIRES);
    let rows = all_rows(&wf);
    let probes = probe_mix();
    let dir = std::env::temp_dir().join(format!("sv-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ── First life: durable registry behind a socket server. ──
    let durable = Arc::new(DurableRegistry::create(&dir).unwrap());
    durable.register(TENANT, TenantConfig::new(&wf)).unwrap();
    let server = Arc::new(Server::with_ingest_sink(
        Arc::clone(durable.registry()),
        Arc::clone(&durable) as _,
    ));
    let path = dir.join("first.sock");
    let mut socket_server = SocketServer::bind(Arc::clone(&server), &path, 2).unwrap();
    let mut client = Client::connect(&SocketTransport::new(socket_server.path())).unwrap();
    let mut last_durable = 0;
    for row in &rows[..5] {
        let receipt = client.ingest(TENANT, &[row.values().to_vec()]).unwrap();
        assert_eq!(receipt.added, 1);
        assert!(
            receipt.durable_seq > last_durable,
            "durable server acks with a covering sync sequence"
        );
        last_durable = receipt.durable_seq;
    }
    // The pre-restart reference: every probe answer (and its epoch),
    // captured over the in-process loopback against the live server.
    let mut reference_client =
        Client::connect(&LoopbackTransport::new(Arc::clone(&server))).unwrap();
    let reference = reference_client.probe(TENANT, &probes).unwrap();
    let reference_epochs = reference_client.epochs(TENANT).unwrap();

    // ── Crash: drain-and-join the socket, drop every live handle. ──
    drop(client);
    socket_server.shutdown();
    drop(reference_client);
    drop(server);
    drop(durable);

    // ── Second life: recover from disk, serve from a fresh server. ──
    let defs = [TenantDef {
        id: TENANT,
        workflow: &wf,
        limits: AdmissionLimits::default(),
    }];
    let (recovered, report) = DurableRegistry::recover(&dir, &defs).unwrap();
    assert!(report.tail.is_clean(), "clean shutdown left a clean log");
    assert_eq!(report.rows_applied, 5);
    let recovered = Arc::new(recovered);
    let server = Arc::new(Server::with_ingest_sink(
        Arc::clone(recovered.registry()),
        Arc::clone(&recovered) as _,
    ));
    let path = dir.join("second.sock");
    let mut socket_server = SocketServer::bind(Arc::clone(&server), &path, 2).unwrap();
    let mut client = Client::connect(&SocketTransport::new(socket_server.path())).unwrap();

    // Identical answers — same safe flags AND same epochs, over the
    // socket, from a process that shares no memory with the first life.
    assert_eq!(client.epochs(TENANT).unwrap(), reference_epochs);
    assert_eq!(client.probe(TENANT, &probes).unwrap(), reference);

    // And the recovered tier keeps serving: further ingest lands
    // write-ahead and advances the epoch from where the first life left.
    assert_eq!(
        client
            .ingest(TENANT, &[rows[5].values().to_vec()])
            .unwrap()
            .added,
        1
    );
    assert_eq!(client.epochs(TENANT).unwrap()[0].epoch, 6);

    drop(client);
    socket_server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
