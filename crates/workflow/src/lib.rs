//! # sv-workflow — workflow substrate for `secure-view`
//!
//! Implements the workflow model of §2.3 of *Provenance Views for Module
//! Privacy* (PODS 2011):
//!
//! * a [`Module`] has input attributes `I_i`, output attributes `O_i`, a
//!   total function `m_i : ∏ Δ_{I_i} → ∏ Δ_{O_i}`, and a visibility
//!   ([`Visibility::Private`] or [`Visibility::Public`]);
//! * a [`Workflow`] connects `n` modules in a DAG by attribute-name
//!   identity; outputs of distinct modules are disjoint, an attribute may
//!   feed several modules (*data sharing*, Definition 3);
//! * executing the workflow on an assignment of the initial inputs `I_0`
//!   yields one provenance tuple over all attributes `A`; the set of all
//!   executions is the provenance relation
//!   `R = R_1 ⋈ R_2 ⋈ … ⋈ R_n` (§4).
//!
//! The [`library`] module provides the concrete modules used by the
//! paper's examples (the Figure-1 gates, one-one functions, constants,
//! invertible functions, majority, …) plus generic building blocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
pub mod library;
mod module;
mod workflow;

pub use builder::WorkflowBuilder;
pub use error::WorkflowError;
pub use module::{Module, ModuleFn, ModuleId, Visibility};
pub use workflow::Workflow;
