//! Ergonomic workflow construction.

use crate::error::WorkflowError;
use crate::module::{Module, ModuleFn, ModuleId, Visibility};
use crate::workflow::Workflow;
use sv_relation::{AttrDef, AttrId, Domain, Schema};

/// Incremental builder for [`Workflow`]s.
///
/// ```
/// use sv_workflow::{WorkflowBuilder, Visibility, ModuleFn};
/// use sv_relation::Domain;
///
/// let mut b = WorkflowBuilder::new();
/// let x = b.attr("x", Domain::boolean());
/// let y = b.attr("y", Domain::boolean());
/// b.module(
///     "not",
///     &[x],
///     &[y],
///     Visibility::Private,
///     ModuleFn::closure(|v| vec![1 - v[0]]),
/// );
/// let w = b.build().unwrap();
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Default)]
pub struct WorkflowBuilder {
    attrs: Vec<AttrDef>,
    modules: Vec<Module>,
}

impl WorkflowBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an attribute and returns its id.
    pub fn attr(&mut self, name: &str, domain: Domain) -> AttrId {
        let id = AttrId(self.attrs.len() as u32);
        self.attrs.push(AttrDef {
            name: name.to_string(),
            domain,
        });
        id
    }

    /// Declares `n` boolean attributes named `{prefix}0 … {prefix}{n-1}`.
    pub fn bool_attrs(&mut self, prefix: &str, n: usize) -> Vec<AttrId> {
        (0..n)
            .map(|i| self.attr(&format!("{prefix}{i}"), Domain::boolean()))
            .collect()
    }

    /// Adds a module and returns its id.
    pub fn module(
        &mut self,
        name: &str,
        inputs: &[AttrId],
        outputs: &[AttrId],
        visibility: Visibility,
        func: ModuleFn,
    ) -> ModuleId {
        let id = ModuleId(self.modules.len() as u32);
        self.modules.push(Module {
            name: name.to_string(),
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
            visibility,
            func,
        });
        id
    }

    /// Finalizes the workflow, running all structural validation.
    ///
    /// # Errors
    /// See [`Workflow::new`].
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        Workflow::new(Schema::new(self.attrs), self.modules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = WorkflowBuilder::new();
        let a = b.attr("a", Domain::boolean());
        let c = b.attr("c", Domain::new(3));
        assert_eq!(a, AttrId(0));
        assert_eq!(c, AttrId(1));
        let ids = b.bool_attrs("x", 3);
        assert_eq!(ids, vec![AttrId(2), AttrId(3), AttrId(4)]);
    }

    #[test]
    fn chain_of_two_modules() {
        let mut b = WorkflowBuilder::new();
        let x = b.attr("x", Domain::boolean());
        let y = b.attr("y", Domain::boolean());
        let z = b.attr("z", Domain::boolean());
        let m1 = b.module(
            "inc",
            &[x],
            &[y],
            Visibility::Private,
            ModuleFn::closure(|v| vec![1 - v[0]]),
        );
        let m2 = b.module(
            "copy",
            &[y],
            &[z],
            Visibility::Public,
            ModuleFn::closure(|v| vec![v[0]]),
        );
        assert_eq!((m1, m2), (ModuleId(0), ModuleId(1)));
        let w = b.build().unwrap();
        let t = w.run(&[0]).unwrap();
        assert_eq!(t.values(), &[0, 1, 1]);
        assert_eq!(w.private_modules(), vec![ModuleId(0)]);
        assert_eq!(w.public_modules(), vec![ModuleId(1)]);
    }
}
