//! Errors raised by workflow construction and execution.

use std::fmt;

/// Errors raised while building, validating, or executing a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// Two modules produce the same attribute, violating the paper's
    /// requirement `O_i ∩ O_j = ∅` for `i ≠ j` (§2.3).
    OutputClash {
        /// Name of the doubly-produced attribute.
        attr: String,
    },
    /// A module lists the same attribute as both input and output,
    /// violating `I_i ∩ O_i = ∅`.
    InputOutputOverlap {
        /// Module name.
        module: String,
        /// Offending attribute name.
        attr: String,
    },
    /// The module graph contains a directed cycle, so it is not a DAG.
    Cyclic,
    /// A module function returned the wrong number of outputs.
    BadFunctionArity {
        /// Module name.
        module: String,
        /// Expected output arity.
        expected: usize,
        /// Arity actually returned.
        got: usize,
    },
    /// A module function returned a value outside an output's domain.
    FunctionValueOutOfDomain {
        /// Module name.
        module: String,
        /// Output attribute name.
        attr: String,
        /// Offending value.
        value: u32,
    },
    /// The initial-input assignment has the wrong arity.
    BadInputArity {
        /// Expected arity (number of initial inputs).
        expected: usize,
        /// Arity supplied.
        got: usize,
    },
    /// A supplied input value is outside its attribute's domain.
    InputValueOutOfDomain {
        /// Attribute name.
        attr: String,
        /// Offending value.
        value: u32,
    },
    /// Enumerating all executions would exceed the given row budget.
    DomainTooLarge {
        /// Number of executions that full enumeration would produce.
        executions: u128,
        /// The caller's budget.
        budget: u128,
    },
    /// A referenced module id is out of range.
    NoSuchModule {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutputClash { attr } => {
                write!(f, "attribute `{attr}` is produced by more than one module")
            }
            Self::InputOutputOverlap { module, attr } => write!(
                f,
                "module `{module}` lists `{attr}` as both input and output"
            ),
            Self::Cyclic => write!(f, "module graph is not acyclic"),
            Self::BadFunctionArity {
                module,
                expected,
                got,
            } => write!(
                f,
                "module `{module}` returned {got} outputs, expected {expected}"
            ),
            Self::FunctionValueOutOfDomain {
                module,
                attr,
                value,
            } => write!(
                f,
                "module `{module}` produced out-of-domain value {value} for `{attr}`"
            ),
            Self::BadInputArity { expected, got } => {
                write!(f, "initial input arity {got}, expected {expected}")
            }
            Self::InputValueOutOfDomain { attr, value } => {
                write!(f, "input value {value} out of domain for `{attr}`")
            }
            Self::DomainTooLarge { executions, budget } => write!(
                f,
                "full enumeration needs {executions} executions, budget is {budget}"
            ),
            Self::NoSuchModule { index } => write!(f, "no module with index {index}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        assert!(WorkflowError::Cyclic.to_string().contains("acyclic"));
        assert!(WorkflowError::OutputClash { attr: "a3".into() }
            .to_string()
            .contains("a3"));
        assert!(WorkflowError::DomainTooLarge {
            executions: 1 << 40,
            budget: 1 << 20
        }
        .to_string()
        .contains("budget"));
    }
}
