//! Standard module library: the paper's example modules and reusable
//! building blocks.
//!
//! * [`fig1_workflow`] — the running example of Figure 1 (`m1, m2, m3`
//!   over boolean attributes `a1 … a7`),
//! * one-one functions (`identity`, bitwise negation, bit rotation) used
//!   by Example 6, Example 7, and Proposition 2,
//! * constant and invertible public modules of Example 7/8,
//! * the 2k-input majority function of Example 6.

use crate::module::ModuleFn;
use crate::workflow::Workflow;
use crate::{Visibility, WorkflowBuilder};
use sv_relation::{Domain, Value};

/// `a3 = a1 ∨ a2`, `a4 = ¬(a1 ∧ a2)`, `a5 = ¬(a1 ⊕ a2)` — module `m1`
/// of Example 1.
#[must_use]
pub fn m1_fn() -> ModuleFn {
    ModuleFn::closure(|v| {
        let (a1, a2) = (v[0], v[1]);
        vec![a1 | a2, 1 - (a1 & a2), 1 - (a1 ^ a2)]
    })
}

/// `a6 = a3 ⊕ a4` — module `m2` of Figure 1. The paper does not state
/// `m2` in closed form, but XOR is consistent with every row of the
/// workflow-execution relation in Figure 1(b).
#[must_use]
pub fn m2_fn() -> ModuleFn {
    ModuleFn::closure(|v| vec![v[0] ^ v[1]])
}

/// `a7 = a4 ⊕ a5` — module `m3` of Figure 1; together with [`m2_fn`] it
/// reproduces the `(a6, a7)` columns of Figure 1(b) exactly.
#[must_use]
pub fn m3_fn() -> ModuleFn {
    ModuleFn::closure(|v| vec![v[0] ^ v[1]])
}

/// Builds the paper's Figure-1 workflow:
/// `m1(a1,a2) → (a3,a4,a5)`, `m2(a3,a4) → a6`, `m3(a4,a5) → a7`,
/// all modules private, all attributes boolean.
///
/// Its provenance relation equals Figure 1(b) row for row.
#[must_use]
pub fn fig1_workflow() -> Workflow {
    let mut b = WorkflowBuilder::new();
    let a1 = b.attr("a1", Domain::boolean());
    let a2 = b.attr("a2", Domain::boolean());
    let a3 = b.attr("a3", Domain::boolean());
    let a4 = b.attr("a4", Domain::boolean());
    let a5 = b.attr("a5", Domain::boolean());
    let a6 = b.attr("a6", Domain::boolean());
    let a7 = b.attr("a7", Domain::boolean());
    b.module("m1", &[a1, a2], &[a3, a4, a5], Visibility::Private, m1_fn());
    b.module("m2", &[a3, a4], &[a6], Visibility::Private, m2_fn());
    b.module("m3", &[a4, a5], &[a7], Visibility::Private, m3_fn());
    b.build().expect("fig1 workflow is structurally valid")
}

/// The k-bit identity function (a one-one module; Proposition 2 uses it
/// as `m1` of the two-module chain).
#[must_use]
pub fn identity_fn() -> ModuleFn {
    ModuleFn::closure(|v| v.to_vec())
}

/// Bitwise negation of k boolean inputs (the paper's example of a second
/// one-one module: "m2 reverses the values of its k inputs",
/// Proposition 2).
#[must_use]
pub fn negate_fn() -> ModuleFn {
    ModuleFn::closure(|v| v.iter().map(|&x| 1 - x).collect())
}

/// Left-rotation of k boolean inputs by one position — another one-one
/// permutation, handy for building distinct invertible public modules.
#[must_use]
pub fn rotate_fn() -> ModuleFn {
    ModuleFn::closure(|v| {
        let mut out = v.to_vec();
        out.rotate_left(1);
        out
    })
}

/// The constant function `∀x. m(x) = c` of Example 7 (a public module
/// that destroys its inputs' entropy).
#[must_use]
pub fn constant_fn(c: Vec<Value>) -> ModuleFn {
    ModuleFn::closure(move |_| c.clone())
}

/// Majority over `2k` boolean inputs: outputs 1 iff at least `k` inputs
/// are 1 (Example 6: hiding `k+1` inputs or the single output gives
/// 2-privacy).
#[must_use]
pub fn majority_fn() -> ModuleFn {
    ModuleFn::closure(|v| {
        let ones = v.iter().filter(|&&x| x == 1).count();
        vec![u32::from(2 * ones >= v.len())]
    })
}

/// XOR of all inputs — a maximally input-sensitive single-output module.
#[must_use]
pub fn xor_all_fn() -> ModuleFn {
    ModuleFn::closure(|v| vec![v.iter().fold(0, |acc, &x| acc ^ x)])
}

/// A chain of `n` one-one modules over `k` boolean wires each:
/// `m_1` is the identity, subsequent modules alternate negation and
/// rotation. Used by Proposition 2 (`n = 2`) and Example 6.
///
/// Attribute names are `w{level}_{bit}`; all modules are private.
#[must_use]
pub fn one_one_chain(n: usize, k: usize) -> Workflow {
    assert!(n >= 1 && k >= 1);
    let mut b = WorkflowBuilder::new();
    let mut wires = b.bool_attrs("w0_", k);
    for level in 1..=n {
        let next = b.bool_attrs(&format!("w{level}_"), k);
        let f = match level % 3 {
            1 => identity_fn(),
            2 => negate_fn(),
            _ => rotate_fn(),
        };
        b.module(&format!("m{level}"), &wires, &next, Visibility::Private, f);
        wires = next;
    }
    b.build().expect("one-one chain is structurally valid")
}

/// The Example-8 chain `m′ → m → m″` over `k` boolean wires:
/// a **public constant** module, a **private one-one** module (negation),
/// and a **public invertible one-one** module (rotation).
///
/// This is the canonical witness that standalone privacy does not
/// compose in the presence of public modules (Example 7) and that
/// privatization restores it (Theorem 8).
#[must_use]
pub fn example8_chain(k: usize) -> Workflow {
    assert!(k >= 1);
    let mut b = WorkflowBuilder::new();
    let x = b.bool_attrs("x", k);
    let y = b.bool_attrs("y", k);
    let z = b.bool_attrs("z", k);
    let t = b.bool_attrs("t", k);
    b.module(
        "m_const",
        &x,
        &y,
        Visibility::Public,
        constant_fn(vec![1; k]),
    );
    b.module("m_priv", &y, &z, Visibility::Private, negate_fn());
    b.module("m_inv", &z, &t, Visibility::Public, rotate_fn());
    b.build().expect("example-8 chain is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_relation::Tuple;

    #[test]
    fn m1_matches_figure_1c() {
        // Figure 1(c): the relation R1 of m1.
        let f = m1_fn();
        assert_eq!(f.apply(&[0, 0]), vec![0, 1, 1]);
        assert_eq!(f.apply(&[0, 1]), vec![1, 1, 0]);
        assert_eq!(f.apply(&[1, 0]), vec![1, 1, 0]);
        assert_eq!(f.apply(&[1, 1]), vec![1, 0, 1]);
    }

    #[test]
    fn fig1_runs_all_rows() {
        let w = fig1_workflow();
        assert_eq!(
            w.run(&[0, 0]).unwrap(),
            Tuple::new(vec![0, 0, 0, 1, 1, 1, 0])
        );
        assert_eq!(
            w.run(&[1, 1]).unwrap(),
            Tuple::new(vec![1, 1, 1, 0, 1, 1, 1])
        );
    }

    #[test]
    fn one_one_fns_are_permutations() {
        for f in [identity_fn(), negate_fn(), rotate_fn()] {
            let mut seen = std::collections::HashSet::new();
            for x in 0..8u32 {
                let bits = vec![x >> 2 & 1, x >> 1 & 1, x & 1];
                assert!(seen.insert(f.apply(&bits)), "not injective");
            }
        }
    }

    #[test]
    fn majority_threshold() {
        let f = majority_fn();
        assert_eq!(f.apply(&[0, 0, 0, 1]), vec![0]);
        assert_eq!(f.apply(&[0, 1, 0, 1]), vec![1]);
        assert_eq!(f.apply(&[1, 1, 1, 1]), vec![1]);
    }

    #[test]
    fn xor_all() {
        let f = xor_all_fn();
        assert_eq!(f.apply(&[1, 1, 1]), vec![1]);
        assert_eq!(f.apply(&[1, 1]), vec![0]);
    }

    #[test]
    fn chain_shape() {
        let w = one_one_chain(2, 3);
        assert_eq!(w.len(), 2);
        assert_eq!(w.initial_inputs().len(), 3);
        assert_eq!(w.final_outputs().len(), 3);
        assert_eq!(w.data_sharing_degree(), 1);
        // Executions: 8 distinct inputs → 8 distinct provenance rows.
        let r = w.provenance_relation(1 << 10).unwrap();
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn example8_chain_shape() {
        let w = example8_chain(2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.public_modules().len(), 2);
        assert_eq!(w.private_modules().len(), 1);
        // Constant module collapses everything after it.
        let r = w.provenance_relation(1 << 10).unwrap();
        assert_eq!(r.len(), 4); // 4 distinct initial inputs
        let t = w.run(&[0, 1]).unwrap();
        // y = (1,1); z = ¬y = (0,0); t = rot(z) = (0,0).
        assert_eq!(t.values()[2..], [1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn constant_fn_ignores_input() {
        let f = constant_fn(vec![1, 0]);
        assert_eq!(f.apply(&[0, 0]), vec![1, 0]);
        assert_eq!(f.apply(&[1, 1]), vec![1, 0]);
    }
}
