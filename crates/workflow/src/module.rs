//! Modules: relations `R_i` over `I_i ∪ O_i` satisfying `I_i -> O_i`,
//! represented intensionally as total functions.

use crate::error::WorkflowError;
use std::fmt;
use std::sync::Arc;
use sv_relation::{AttrId, AttrSet, Fd, Relation, Schema, Tuple, Value};

/// Index of a module within a [`Workflow`](crate::Workflow).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub u32);

impl ModuleId {
    /// The module's positional index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m#{}", self.0)
    }
}

/// Whether a module's behaviour is a-priori known to the adversary.
///
/// The paper distinguishes **private** modules (the user knows only what
/// the view reveals — proprietary software) from **public** modules whose
/// full relation is known (reformatting, sorting; §2.2). Public modules
/// constrain the possible worlds (Definition 4) unless *privatized*
/// (hidden) per §5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// Behaviour must be protected: the module carries a Γ requirement.
    Private,
    /// Behaviour is known to all users.
    Public,
}

/// Shared closure type behind [`ModuleFn::Closure`].
pub type BoxedFn = Arc<dyn Fn(&[Value]) -> Vec<Value> + Send + Sync>;

/// A module function: a total map from input values (in declared input
/// order) to output values (in declared output order).
///
/// Functions are shared immutably; the enum lets generators store random
/// modules as explicit tables while library modules stay as closures.
#[derive(Clone)]
pub enum ModuleFn {
    /// Computed by a closure.
    Closure(BoxedFn),
    /// Explicit lookup table: `table[dense_input_index] = outputs`.
    ///
    /// The dense index of inputs `(v_1, …, v_p)` with domain sizes
    /// `(d_1, …, d_p)` is the mixed-radix value `((v_1·d_2 + v_2)·d_3 + …)`.
    Table {
        /// Domain sizes of the inputs, in declared order.
        input_sizes: Vec<u32>,
        /// One output tuple per dense input index.
        rows: Arc<Vec<Vec<Value>>>,
    },
}

impl ModuleFn {
    /// Wraps a closure.
    pub fn closure<F>(f: F) -> Self
    where
        F: Fn(&[Value]) -> Vec<Value> + Send + Sync + 'static,
    {
        Self::Closure(Arc::new(f))
    }

    /// Builds a table function from an exhaustive row list.
    ///
    /// `rows[i]` holds the outputs for the `i`-th input assignment in
    /// mixed-radix order.
    #[must_use]
    pub fn table(input_sizes: Vec<u32>, rows: Vec<Vec<Value>>) -> Self {
        let expected: usize = input_sizes.iter().map(|&s| s as usize).product();
        assert_eq!(rows.len(), expected, "table must cover the full domain");
        Self::Table {
            input_sizes,
            rows: Arc::new(rows),
        }
    }

    /// Applies the function.
    #[must_use]
    pub fn apply(&self, inputs: &[Value]) -> Vec<Value> {
        match self {
            Self::Closure(f) => f(inputs),
            Self::Table { input_sizes, rows } => {
                debug_assert_eq!(inputs.len(), input_sizes.len());
                let mut idx: usize = 0;
                for (v, d) in inputs.iter().zip(input_sizes.iter()) {
                    idx = idx * (*d as usize) + *v as usize;
                }
                rows[idx].clone()
            }
        }
    }
}

impl fmt::Debug for ModuleFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closure(_) => write!(f, "ModuleFn::Closure"),
            Self::Table { rows, .. } => write!(f, "ModuleFn::Table({} rows)", rows.len()),
        }
    }
}

/// A workflow module `m_i`: named, typed, with ordered input/output
/// attribute lists referring to the owning workflow's global [`Schema`].
#[derive(Clone, Debug)]
pub struct Module {
    /// Human-readable name (`m1`, `blast`, …).
    pub name: String,
    /// Input attributes `I_i`, in function-application order.
    pub inputs: Vec<AttrId>,
    /// Output attributes `O_i`, in function-result order.
    pub outputs: Vec<AttrId>,
    /// Public or private.
    pub visibility: Visibility,
    /// The module's function.
    pub func: ModuleFn,
}

impl Module {
    /// Input attributes as a set (`I_i`).
    #[must_use]
    pub fn input_set(&self) -> AttrSet {
        AttrSet::from_iter(self.inputs.iter().copied())
    }

    /// Output attributes as a set (`O_i`).
    #[must_use]
    pub fn output_set(&self) -> AttrSet {
        AttrSet::from_iter(self.outputs.iter().copied())
    }

    /// `I_i ∪ O_i`.
    #[must_use]
    pub fn attr_set(&self) -> AttrSet {
        self.input_set().union(&self.output_set())
    }

    /// The module's functional dependency `I_i -> O_i`.
    #[must_use]
    pub fn fd(&self) -> Fd {
        Fd::new(self.input_set(), self.output_set())
    }

    /// Applies the module to input values (declared order), validating
    /// arity and output domains against `schema`.
    ///
    /// # Errors
    /// [`WorkflowError::BadFunctionArity`] or
    /// [`WorkflowError::FunctionValueOutOfDomain`] on a misbehaving
    /// function.
    pub fn apply(&self, schema: &Schema, inputs: &[Value]) -> Result<Vec<Value>, WorkflowError> {
        debug_assert_eq!(inputs.len(), self.inputs.len());
        let out = self.func.apply(inputs);
        if out.len() != self.outputs.len() {
            return Err(WorkflowError::BadFunctionArity {
                module: self.name.clone(),
                expected: self.outputs.len(),
                got: out.len(),
            });
        }
        for (&a, &v) in self.outputs.iter().zip(out.iter()) {
            if !schema.attr(a).domain.contains(v) {
                return Err(WorkflowError::FunctionValueOutOfDomain {
                    module: self.name.clone(),
                    attr: schema.attr(a).name.clone(),
                    value: v,
                });
            }
        }
        Ok(out)
    }

    /// Number of input assignments `|Dom| = ∏_{a∈I_i} |Δ_a|`.
    #[must_use]
    pub fn domain_size(&self, schema: &Schema) -> u128 {
        self.inputs
            .iter()
            .map(|&a| u128::from(schema.attr(a).domain.size()))
            .product()
    }

    /// Materializes the module's **standalone relation** `R_i` over the
    /// sub-schema `I_i ∪ O_i` by enumerating its full input domain
    /// (§2.1: "tuples in R describe executions of m").
    ///
    /// The resulting schema lists the module's attributes in global
    /// attribute-id order, matching [`Tuple::project`] conventions.
    ///
    /// # Errors
    /// [`WorkflowError::DomainTooLarge`] if `|Dom| > budget`, or function
    /// misbehaviour errors.
    pub fn standalone_relation(
        &self,
        schema: &Schema,
        budget: u128,
    ) -> Result<Relation, WorkflowError> {
        let n = self.domain_size(schema);
        if n > budget {
            return Err(WorkflowError::DomainTooLarge {
                executions: n,
                budget,
            });
        }

        let attr_set = self.attr_set();
        let sub_schema = Schema::new(
            attr_set
                .iter()
                .map(|a| schema.attr(a).clone())
                .collect::<Vec<_>>(),
        );
        // Position of each module attribute inside the sub-schema.
        let order: Vec<AttrId> = attr_set.iter().collect();

        let mut rows = Vec::with_capacity(n as usize);
        let sizes: Vec<u32> = self
            .inputs
            .iter()
            .map(|&a| schema.attr(a).domain.size())
            .collect();
        let mut assign = vec![0u32; self.inputs.len()];
        loop {
            let out = self.apply(schema, &assign)?;
            let mut vals = vec![0u32; order.len()];
            for (pos, &a) in order.iter().enumerate() {
                if let Some(i) = self.inputs.iter().position(|&x| x == a) {
                    vals[pos] = assign[i];
                } else {
                    let o = self
                        .outputs
                        .iter()
                        .position(|&x| x == a)
                        .expect("attr is input or output");
                    vals[pos] = out[o];
                }
            }
            rows.push(Tuple::new(vals));
            // Mixed-radix increment; breaks after the last assignment.
            let mut carry = true;
            for i in (0..assign.len()).rev() {
                assign[i] += 1;
                if assign[i] < sizes[i] {
                    carry = false;
                    break;
                }
                assign[i] = 0;
            }
            if carry {
                break;
            }
        }
        Ok(Relation::from_rows(sub_schema, rows).expect("module rows are schema-valid"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_relation::Domain;

    fn xor_module() -> Module {
        Module {
            name: "xor".into(),
            inputs: vec![AttrId(0), AttrId(1)],
            outputs: vec![AttrId(2)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|v| vec![v[0] ^ v[1]]),
        }
    }

    #[test]
    fn closure_apply() {
        let s = Schema::booleans(&["a", "b", "c"]);
        let m = xor_module();
        assert_eq!(m.apply(&s, &[1, 0]).unwrap(), vec![1]);
        assert_eq!(m.apply(&s, &[1, 1]).unwrap(), vec![0]);
    }

    #[test]
    fn table_fn_mixed_radix() {
        // f(x: bool, y: {0,1,2}) = x + y mod 2.
        let rows: Vec<Vec<Value>> = (0..2u32)
            .flat_map(|x| (0..3u32).map(move |y| vec![(x + y) % 2]))
            .collect();
        let f = ModuleFn::table(vec![2, 3], rows);
        assert_eq!(f.apply(&[0, 2]), vec![0]);
        assert_eq!(f.apply(&[1, 2]), vec![1]);
        assert_eq!(f.apply(&[1, 1]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "full domain")]
    fn table_must_cover_domain() {
        let _ = ModuleFn::table(vec![2, 2], vec![vec![0]]);
    }

    #[test]
    fn standalone_relation_enumerates_domain() {
        let s = Schema::booleans(&["a", "b", "c"]);
        let m = xor_module();
        let r = m.standalone_relation(&s, 1 << 20).unwrap();
        assert_eq!(r.len(), 4);
        assert!(r.satisfies(&Fd::new(
            AttrSet::from_indices(&[0, 1]),
            AttrSet::from_indices(&[2])
        )));
        assert!(r.contains(&Tuple::new(vec![1, 0, 1])));
        assert!(r.contains(&Tuple::new(vec![1, 1, 0])));
    }

    #[test]
    fn standalone_relation_respects_budget() {
        let s = Schema::booleans(&["a", "b", "c"]);
        let m = xor_module();
        assert!(matches!(
            m.standalone_relation(&s, 3),
            Err(WorkflowError::DomainTooLarge { .. })
        ));
    }

    #[test]
    fn misbehaving_function_detected() {
        let s = Schema::booleans(&["a", "b"]);
        let bad_arity = Module {
            name: "bad".into(),
            inputs: vec![AttrId(0)],
            outputs: vec![AttrId(1)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|_| vec![0, 0]),
        };
        assert!(matches!(
            bad_arity.apply(&s, &[0]),
            Err(WorkflowError::BadFunctionArity { .. })
        ));
        let bad_value = Module {
            name: "bad2".into(),
            inputs: vec![AttrId(0)],
            outputs: vec![AttrId(1)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|_| vec![5]),
        };
        assert!(matches!(
            bad_value.apply(&s, &[0]),
            Err(WorkflowError::FunctionValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn domain_size_with_mixed_domains() {
        let s = Schema::new(vec![
            sv_relation::AttrDef {
                name: "x".into(),
                domain: Domain::new(3),
            },
            sv_relation::AttrDef {
                name: "y".into(),
                domain: Domain::new(4),
            },
            sv_relation::AttrDef {
                name: "z".into(),
                domain: Domain::boolean(),
            },
        ]);
        let m = Module {
            name: "m".into(),
            inputs: vec![AttrId(0), AttrId(1)],
            outputs: vec![AttrId(2)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|v| vec![(v[0] + v[1]) % 2]),
        };
        assert_eq!(m.domain_size(&s), 12);
        let r = m.standalone_relation(&s, 100).unwrap();
        assert_eq!(r.len(), 12);
    }
}
