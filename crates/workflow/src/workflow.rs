//! Workflows: DAGs of modules over a shared attribute space, and their
//! provenance relations.

use crate::error::WorkflowError;
use crate::module::{Module, ModuleId, Visibility};
use std::fmt;
use sv_relation::{AttrId, AttrSet, Fd, Relation, Schema, Tuple, Value};

/// A workflow `W` over modules `m_1 … m_n` (§2.3).
///
/// Invariants enforced at construction:
/// * `I_i ∩ O_i = ∅` for every module,
/// * `O_i ∩ O_j = ∅` for `i ≠ j` (every data item has a unique producer),
/// * the module dependency graph is acyclic.
///
/// Attributes not produced by any module are the **initial inputs** `I_0`;
/// they form the key of the provenance relation `R`. Attributes consumed
/// by several modules constitute *data sharing* (Definition 3).
#[derive(Clone)]
pub struct Workflow {
    schema: Schema,
    modules: Vec<Module>,
    topo: Vec<ModuleId>,
    initial_inputs: Vec<AttrId>,
    producer: Vec<Option<ModuleId>>,
    consumers: Vec<Vec<ModuleId>>,
}

impl Workflow {
    /// Validates and assembles a workflow.
    ///
    /// # Errors
    /// Any of the structural violations in [`WorkflowError`].
    pub fn new(schema: Schema, modules: Vec<Module>) -> Result<Self, WorkflowError> {
        let n_attrs = schema.len();
        let mut producer: Vec<Option<ModuleId>> = vec![None; n_attrs];
        let mut consumers: Vec<Vec<ModuleId>> = vec![Vec::new(); n_attrs];

        for (mi, m) in modules.iter().enumerate() {
            let mid = ModuleId(mi as u32);
            let iset = m.input_set();
            for &o in &m.outputs {
                if iset.contains(o) {
                    return Err(WorkflowError::InputOutputOverlap {
                        module: m.name.clone(),
                        attr: schema.attr(o).name.clone(),
                    });
                }
                if producer[o.index()].is_some() {
                    return Err(WorkflowError::OutputClash {
                        attr: schema.attr(o).name.clone(),
                    });
                }
                producer[o.index()] = Some(mid);
            }
            for &i in &m.inputs {
                consumers[i.index()].push(mid);
            }
        }

        let topo = Self::topo_sort(&modules, &producer)?;

        let initial_inputs: Vec<AttrId> = (0..n_attrs)
            .map(|i| AttrId(i as u32))
            .filter(|a| producer[a.index()].is_none() && !consumers[a.index()].is_empty())
            .collect();

        Ok(Self {
            schema,
            modules,
            topo,
            initial_inputs,
            producer,
            consumers,
        })
    }

    /// Kahn topological sort on the module dependency graph
    /// (`m_i → m_j` iff some output of `m_i` is an input of `m_j`).
    fn topo_sort(
        modules: &[Module],
        producer: &[Option<ModuleId>],
    ) -> Result<Vec<ModuleId>, WorkflowError> {
        let n = modules.len();
        let mut indeg = vec![0usize; n];
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, m) in modules.iter().enumerate() {
            for &i in &m.inputs {
                if let Some(p) = producer[i.index()] {
                    edges[p.index()].push(j);
                    indeg[j] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(ModuleId(u as u32));
            for &v in &edges[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(WorkflowError::Cyclic)
        }
    }

    /// The global attribute schema `A = ∪ (I_i ∪ O_i)`.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The modules, in declaration order.
    #[must_use]
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Number of modules `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the workflow has no modules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The module with the given id.
    ///
    /// # Errors
    /// [`WorkflowError::NoSuchModule`] if out of range.
    pub fn module(&self, id: ModuleId) -> Result<&Module, WorkflowError> {
        self.modules
            .get(id.index())
            .ok_or(WorkflowError::NoSuchModule { index: id.index() })
    }

    /// Module ids in a valid topological order.
    #[must_use]
    pub fn topo_order(&self) -> &[ModuleId] {
        &self.topo
    }

    /// Initial (external) input attributes `I_0`, in id order.
    #[must_use]
    pub fn initial_inputs(&self) -> &[AttrId] {
        &self.initial_inputs
    }

    /// Attributes produced by some module but consumed by none — the
    /// workflow's final outputs.
    #[must_use]
    pub fn final_outputs(&self) -> Vec<AttrId> {
        (0..self.schema.len())
            .map(|i| AttrId(i as u32))
            .filter(|a| self.producer[a.index()].is_some() && self.consumers[a.index()].is_empty())
            .collect()
    }

    /// The module producing attribute `a`, if any.
    #[must_use]
    pub fn producer(&self, a: AttrId) -> Option<ModuleId> {
        self.producer[a.index()]
    }

    /// The modules consuming attribute `a`.
    #[must_use]
    pub fn consumers(&self, a: AttrId) -> &[ModuleId] {
        &self.consumers[a.index()]
    }

    /// The workflow's data-sharing degree `γ` (Definition 3): the maximum,
    /// over attributes, of the number of modules taking the attribute as
    /// input.
    #[must_use]
    pub fn data_sharing_degree(&self) -> usize {
        self.consumers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The FD set `F = {I_i -> O_i}` of the provenance relation.
    #[must_use]
    pub fn fds(&self) -> Vec<Fd> {
        self.modules.iter().map(Module::fd).collect()
    }

    /// Ids of private modules.
    #[must_use]
    pub fn private_modules(&self) -> Vec<ModuleId> {
        self.filter_by_visibility(Visibility::Private)
    }

    /// Ids of public modules.
    #[must_use]
    pub fn public_modules(&self) -> Vec<ModuleId> {
        self.filter_by_visibility(Visibility::Public)
    }

    fn filter_by_visibility(&self, v: Visibility) -> Vec<ModuleId> {
        self.modules
            .iter()
            .enumerate()
            .filter(|(_, m)| m.visibility == v)
            .map(|(i, _)| ModuleId(i as u32))
            .collect()
    }

    /// Whether every module is private (the §4 *all-private* setting).
    #[must_use]
    pub fn is_all_private(&self) -> bool {
        self.modules
            .iter()
            .all(|m| m.visibility == Visibility::Private)
    }

    /// Returns a copy with module `id`'s visibility replaced — the
    /// *privatization* operation of §5 (hiding a public module's name).
    ///
    /// # Errors
    /// [`WorkflowError::NoSuchModule`] if out of range.
    pub fn with_visibility(
        &self,
        id: ModuleId,
        visibility: Visibility,
    ) -> Result<Self, WorkflowError> {
        let mut w = self.clone();
        w.modules
            .get_mut(id.index())
            .ok_or(WorkflowError::NoSuchModule { index: id.index() })?
            .visibility = visibility;
        Ok(w)
    }

    /// Returns a copy with module `id`'s function replaced (used by the
    /// Lemma-1 flipping construction to build alternative worlds).
    ///
    /// # Errors
    /// [`WorkflowError::NoSuchModule`] if out of range.
    pub fn with_function(
        &self,
        id: ModuleId,
        func: crate::module::ModuleFn,
    ) -> Result<Self, WorkflowError> {
        let mut w = self.clone();
        w.modules
            .get_mut(id.index())
            .ok_or(WorkflowError::NoSuchModule { index: id.index() })?
            .func = func;
        Ok(w)
    }

    /// Executes the workflow on an assignment of the initial inputs
    /// (given in [`Self::initial_inputs`] order), producing the full
    /// provenance tuple over `A`.
    ///
    /// # Errors
    /// Input validation or module misbehaviour errors.
    pub fn run(&self, inputs: &[Value]) -> Result<Tuple, WorkflowError> {
        if inputs.len() != self.initial_inputs.len() {
            return Err(WorkflowError::BadInputArity {
                expected: self.initial_inputs.len(),
                got: inputs.len(),
            });
        }
        let mut vals = vec![0u32; self.schema.len()];
        for (&a, &v) in self.initial_inputs.iter().zip(inputs.iter()) {
            let def = self.schema.attr(a);
            if !def.domain.contains(v) {
                return Err(WorkflowError::InputValueOutOfDomain {
                    attr: def.name.clone(),
                    value: v,
                });
            }
            vals[a.index()] = v;
        }
        for &mid in &self.topo {
            let m = &self.modules[mid.index()];
            let ins: Vec<Value> = m.inputs.iter().map(|&a| vals[a.index()]).collect();
            let outs = m.apply(&self.schema, &ins)?;
            for (&a, &v) in m.outputs.iter().zip(outs.iter()) {
                vals[a.index()] = v;
            }
        }
        Ok(Tuple::new(vals))
    }

    /// Number of distinct initial-input assignments.
    #[must_use]
    pub fn input_space_size(&self) -> u128 {
        self.initial_inputs
            .iter()
            .map(|&a| u128::from(self.schema.attr(a).domain.size()))
            .product()
    }

    /// Materializes the **provenance relation** `R` over all executions
    /// (one row per initial-input assignment; §2.3: "each tuple in R
    /// describes an execution of the workflow W").
    ///
    /// # Errors
    /// [`WorkflowError::DomainTooLarge`] if the input space exceeds
    /// `budget`.
    pub fn provenance_relation(&self, budget: u128) -> Result<Relation, WorkflowError> {
        let n = self.input_space_size();
        if n > budget {
            return Err(WorkflowError::DomainTooLarge {
                executions: n,
                budget,
            });
        }
        let sizes: Vec<u32> = self
            .initial_inputs
            .iter()
            .map(|&a| self.schema.attr(a).domain.size())
            .collect();
        let mut rows = Vec::with_capacity(n as usize);
        let mut assign = vec![0u32; sizes.len()];
        loop {
            rows.push(self.run(&assign)?);
            let mut done = true;
            for i in (0..assign.len()).rev() {
                assign[i] += 1;
                if assign[i] < sizes[i] {
                    done = false;
                    break;
                }
                assign[i] = 0;
            }
            if done {
                break;
            }
        }
        Ok(Relation::from_rows(self.schema.clone(), rows).expect("execution rows are valid"))
    }

    /// Materializes the provenance relation restricted to the given
    /// initial-input assignments (an *instance* of `R`, §1: "An instance
    /// of R represents the set of workflow executions that have been run").
    ///
    /// # Errors
    /// Input validation or module misbehaviour errors.
    pub fn provenance_for(&self, inputs: &[Vec<Value>]) -> Result<Relation, WorkflowError> {
        let mut rows = Vec::with_capacity(inputs.len());
        for x in inputs {
            rows.push(self.run(x)?);
        }
        Ok(Relation::from_rows(self.schema.clone(), rows).expect("execution rows are valid"))
    }

    /// The visible attribute set `V` given hidden attributes `hidden`
    /// (`V = A \ V̄`).
    #[must_use]
    pub fn visible_from_hidden(&self, hidden: &AttrSet) -> AttrSet {
        hidden.complement(self.schema.len())
    }

    /// Renders the workflow as Graphviz DOT: one node per module
    /// (private modules drawn as boxes, public ones as ellipses), one
    /// edge per produced-consumed attribute, labelled with the
    /// attribute name. Attributes in `hidden` are drawn dashed/red —
    /// handy for documenting a chosen secure view.
    #[must_use]
    pub fn to_dot(&self, hidden: &AttrSet) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph workflow {\n  rankdir=LR;\n");
        for (i, m) in self.modules.iter().enumerate() {
            let shape = match m.visibility {
                Visibility::Private => "box",
                Visibility::Public => "ellipse",
            };
            let _ = writeln!(out, "  m{i} [label=\"{}\", shape={shape}];", m.name);
        }
        let _ = writeln!(out, "  src [label=\"inputs\", shape=plaintext];");
        let _ = writeln!(out, "  sink [label=\"outputs\", shape=plaintext];");
        for a in (0..self.schema.len()).map(|i| AttrId(i as u32)) {
            let name = &self.schema.attr(a).name;
            let style = if hidden.contains(a) {
                ", style=dashed, color=red"
            } else {
                ""
            };
            let from = match self.producer(a) {
                Some(p) => format!("m{}", p.index()),
                None => "src".to_string(),
            };
            if self.consumers(a).is_empty() {
                if self.producer(a).is_some() {
                    let _ = writeln!(out, "  {from} -> sink [label=\"{name}\"{style}];");
                }
            } else {
                for c in self.consumers(a) {
                    let _ = writeln!(out, "  {from} -> m{} [label=\"{name}\"{style}];", c.index());
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Debug for Workflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Workflow ({} modules)", self.modules.len())?;
        for m in &self.modules {
            writeln!(
                f,
                "  {} [{:?}]: {:?} -> {:?}",
                m.name,
                m.visibility,
                self.schema.names(&m.input_set()),
                self.schema.names(&m.output_set()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleFn;

    /// The Figure-1 workflow from the paper: m1(a1,a2)→(a3,a4,a5),
    /// m2(a3,a4)→a6, m3(a4,a5)→a7.
    fn fig1() -> Workflow {
        crate::library::fig1_workflow()
    }

    #[test]
    fn fig1_structure() {
        let w = fig1();
        assert_eq!(w.len(), 3);
        assert_eq!(w.initial_inputs().len(), 2);
        assert_eq!(
            w.schema()
                .names(&AttrSet::from_iter(w.initial_inputs().iter().copied())),
            vec!["a1", "a2"]
        );
        let fin = w.final_outputs();
        assert_eq!(
            w.schema().names(&AttrSet::from_iter(fin.into_iter())),
            vec!["a6", "a7"]
        );
        // a4 feeds m2 and m3 ⇒ γ = 2, as stated after Definition 3.
        assert_eq!(w.data_sharing_degree(), 2);
        assert!(w.is_all_private());
    }

    #[test]
    fn fig1_provenance_matches_paper_table() {
        // Figure 1(b) of the paper, rows over (a1,…,a7).
        let w = fig1();
        let r = w.provenance_relation(1 << 10).unwrap();
        assert_eq!(r.len(), 4);
        for row in [
            vec![0, 0, 0, 1, 1, 1, 0],
            vec![0, 1, 1, 1, 0, 0, 1],
            vec![1, 0, 1, 1, 0, 0, 1],
            vec![1, 1, 1, 0, 1, 1, 1],
        ] {
            assert!(r.contains(&Tuple::new(row)));
        }
        r.check_fds(&w.fds()).unwrap();
    }

    #[test]
    fn provenance_equals_join_of_standalone_relations() {
        // §4: R = R1 ⋈ R2 ⋈ … ⋈ Rn restricted to reachable executions.
        let w = fig1();
        let r = w.provenance_relation(1 << 10).unwrap();
        let rels: Vec<Relation> = w
            .modules()
            .iter()
            .map(|m| m.standalone_relation(w.schema(), 1 << 10).unwrap())
            .collect();
        let mut join = rels[0].clone();
        for r2 in &rels[1..] {
            join = sv_relation::natural_join(&join, r2).unwrap();
        }
        // The join of *total* module relations contains exactly the
        // executions (same attribute set, same rows) here because every
        // intermediate value combination in the join is consistent.
        assert_eq!(join.len(), r.len());
        for t in r.rows() {
            // Join schema may order attributes differently; compare via
            // name-indexed projection.
            let names: Vec<&str> = (0..w.schema().len())
                .map(|i| w.schema().attr(AttrId(i as u32)).name.as_str())
                .collect();
            let perm: Vec<usize> = names
                .iter()
                .map(|n| join.schema().by_name(n).unwrap().index())
                .collect();
            let reordered: Vec<Value> = (0..names.len()).map(|i| t.values()[i]).collect();
            let mut found = false;
            for jt in join.rows() {
                if perm
                    .iter()
                    .enumerate()
                    .all(|(i, &p)| jt.values()[p] == reordered[i])
                {
                    found = true;
                    break;
                }
            }
            assert!(found, "execution row {t:?} missing from join");
        }
    }

    #[test]
    fn rejects_output_clash() {
        let s = Schema::booleans(&["x", "y", "z"]);
        let m1 = Module {
            name: "p".into(),
            inputs: vec![AttrId(0)],
            outputs: vec![AttrId(2)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|v| vec![v[0]]),
        };
        let m2 = Module {
            name: "q".into(),
            inputs: vec![AttrId(1)],
            outputs: vec![AttrId(2)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|v| vec![v[0]]),
        };
        assert!(matches!(
            Workflow::new(s, vec![m1, m2]),
            Err(WorkflowError::OutputClash { .. })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let s = Schema::booleans(&["x", "y"]);
        let m1 = Module {
            name: "p".into(),
            inputs: vec![AttrId(0)],
            outputs: vec![AttrId(1)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|v| vec![v[0]]),
        };
        let m2 = Module {
            name: "q".into(),
            inputs: vec![AttrId(1)],
            outputs: vec![AttrId(0)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|v| vec![v[0]]),
        };
        assert!(matches!(
            Workflow::new(s, vec![m1, m2]),
            Err(WorkflowError::Cyclic)
        ));
    }

    #[test]
    fn rejects_input_output_overlap() {
        let s = Schema::booleans(&["x"]);
        let m = Module {
            name: "p".into(),
            inputs: vec![AttrId(0)],
            outputs: vec![AttrId(0)],
            visibility: Visibility::Private,
            func: ModuleFn::closure(|v| vec![v[0]]),
        };
        assert!(matches!(
            Workflow::new(s, vec![m]),
            Err(WorkflowError::InputOutputOverlap { .. })
        ));
    }

    #[test]
    fn run_validates_inputs() {
        let w = fig1();
        assert!(matches!(
            w.run(&[0]),
            Err(WorkflowError::BadInputArity { .. })
        ));
        assert!(matches!(
            w.run(&[0, 9]),
            Err(WorkflowError::InputValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn privatization_changes_visibility() {
        let w = fig1();
        let w2 = w.with_visibility(ModuleId(1), Visibility::Public).unwrap();
        assert!(!w2.is_all_private());
        assert_eq!(w2.public_modules(), vec![ModuleId(1)]);
        assert!(w.is_all_private(), "original untouched");
        assert!(w.with_visibility(ModuleId(9), Visibility::Public).is_err());
    }

    #[test]
    fn provenance_for_subset_of_inputs() {
        let w = fig1();
        let r = w.provenance_for(&[vec![0, 0], vec![1, 1]]).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn budget_enforced() {
        let w = fig1();
        assert!(matches!(
            w.provenance_relation(3),
            Err(WorkflowError::DomainTooLarge { .. })
        ));
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::library::{example8_chain, fig1_workflow};

    #[test]
    fn dot_contains_modules_and_edges() {
        let w = fig1_workflow();
        let dot = w.to_dot(&AttrSet::new());
        assert!(dot.contains("m0 [label=\"m1\", shape=box]"));
        assert!(dot.contains("src -> m0 [label=\"a1\"]"));
        // a4 fans out to both m2 and m3.
        assert_eq!(dot.matches("label=\"a4\"").count(), 2);
        assert!(dot.contains("-> sink [label=\"a7\"]"));
    }

    #[test]
    fn dot_marks_hidden_attrs_and_public_shapes() {
        let w = example8_chain(1);
        let hidden = AttrSet::from_indices(&[1]); // y0
        let dot = w.to_dot(&hidden);
        assert!(dot.contains("shape=ellipse"), "public modules as ellipses");
        assert!(
            dot.contains("style=dashed, color=red"),
            "hidden edge marked"
        );
    }
}
