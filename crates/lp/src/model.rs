//! LP model builder.

use crate::simplex::{self, LpError};
use std::fmt;

/// Index of a decision variable within an [`LpProblem`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

pub(crate) struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: Option<f64>,
    pub obj: f64,
}

pub(crate) struct Constraint {
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear **minimization** problem
/// `min cᵀx  s.t.  Ax {≤,≥,=} b,  l ≤ x ≤ u`.
#[derive(Default)]
pub struct LpProblem {
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

/// An optimal LP solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal variable values, indexed by [`VarId`].
    pub values: Vec<f64>,
}

impl LpSolution {
    /// Value of variable `v`.
    #[must_use]
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }
}

impl LpProblem {
    /// Creates an empty problem.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with bounds `[lower, upper]` (upper `None` = +∞)
    /// and objective coefficient `obj`. Returns its id.
    ///
    /// # Panics
    /// Panics on NaN coefficients or `lower > upper`.
    pub fn add_var(&mut self, name: &str, lower: f64, upper: Option<f64>, obj: f64) -> VarId {
        assert!(!lower.is_nan() && !obj.is_nan(), "NaN in variable");
        if let Some(u) = upper {
            assert!(lower <= u, "lower bound exceeds upper bound for {name}");
        }
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.to_string(),
            lower,
            upper,
            obj,
        });
        id
    }

    /// Adds a `[0, 1]`-bounded variable (the common case in the paper's
    /// relaxations, constraint (23) of Appendix C.4).
    pub fn add_unit_var(&mut self, name: &str, obj: f64) -> VarId {
        self.add_var(name, 0.0, Some(1.0), obj)
    }

    /// Adds the constraint `Σ coeff·var  cmp  rhs`.
    ///
    /// # Panics
    /// Panics on NaN or out-of-range variable ids.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) {
        assert!(!rhs.is_nan(), "NaN rhs");
        let mut t = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.0 < self.vars.len(), "unknown variable {v:?}");
            assert!(!c.is_nan(), "NaN coefficient");
            t.push((v.0, c));
        }
        self.cons.push(Constraint { terms: t, cmp, rhs });
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints (excluding variable bounds).
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Solves the problem with two-phase primal simplex.
    ///
    /// # Errors
    /// [`LpError::Infeasible`] or [`LpError::Unbounded`].
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        simplex::solve(self)
    }

    /// Name of variable `v` (diagnostics).
    #[must_use]
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_lp_optimum() {
        // min x + y  s.t.  x + 2y ≥ 4, 3x + y ≥ 6, x,y ≥ 0
        // Optimum at intersection: x = 8/5, y = 6/5, obj = 14/5.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, None, 1.0);
        let y = p.add_var("y", 0.0, None, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        p.add_constraint(&[(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 2.8).abs() < 1e-7, "obj = {}", s.objective);
        assert!((s.value(x) - 1.6).abs() < 1e-7);
        assert!((s.value(y) - 1.2).abs() < 1e-7);
    }

    #[test]
    fn equality_and_upper_bounds() {
        // min -x - 2y  s.t.  x + y = 3, 0 ≤ x ≤ 2, 0 ≤ y ≤ 2.
        // Optimum: y = 2, x = 1, obj = -5.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, Some(2.0), -1.0);
        let y = p.add_var("y", 0.0, Some(2.0), -2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        let s = p.solve().unwrap();
        assert!((s.objective + 5.0).abs() < 1e-7);
        assert!((s.value(x) - 1.0).abs() < 1e-7);
        assert!((s.value(y) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = LpProblem::new();
        let x = p.add_unit_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
        assert!(matches!(p.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, None, -1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 0.0);
        assert!(matches!(p.solve(), Err(LpError::Unbounded)));
    }

    #[test]
    fn le_constraints_and_degenerate_rows() {
        // min -x  s.t.  x ≤ 5, x ≤ 5 (duplicate), x ≥ 0.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, None, -1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 5.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 5.0);
        let s = p.solve().unwrap();
        assert!((s.value(x) - 5.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // min x  s.t.  -x ≤ -3  (i.e. x ≥ 3).
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, None, 1.0);
        p.add_constraint(&[(x, -1.0)], Cmp::Le, -3.0);
        let s = p.solve().unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y  s.t.  x + y ≥ 1, x ≥ 2, y ≥ 0 (lb on x via bound).
        let mut p = LpProblem::new();
        let x = p.add_var("x", 2.0, None, 1.0);
        let y = p.add_var("y", 0.0, None, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let s = p.solve().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-7);
        assert!((s.value(x) - 2.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper")]
    fn bad_bounds_rejected() {
        let mut p = LpProblem::new();
        let _ = p.add_var("x", 2.0, Some(1.0), 0.0);
    }
}
