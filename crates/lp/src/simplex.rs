//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! Structure:
//! 1. shift variables by their (finite) lower bounds so all variables
//!    are `≥ 0`; upper bounds become explicit `≤` rows;
//! 2. normalize rows to non-negative right-hand sides; add slack,
//!    surplus, and artificial columns;
//! 3. **phase 1** minimizes the artificial sum (infeasible if positive);
//!    basic artificials are driven out or their rows dropped as
//!    redundant;
//! 4. **phase 2** minimizes the original objective with artificial
//!    columns banned from entering.
//!
//! Bland's rule (lowest-index entering column, lowest-basis-index ratio
//! tie-break) guarantees termination; an iteration cap converts any
//! numerical pathology into an explicit error rather than a hang.

use crate::model::{Cmp, LpProblem, LpSolution};
use std::fmt;

const EPS: f64 = 1e-9;

/// Errors from the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// Iteration cap exceeded (numerical trouble).
    Numerical,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "LP is infeasible"),
            Self::Unbounded => write!(f, "LP is unbounded"),
            Self::Numerical => write!(f, "simplex iteration cap exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

struct Tableau {
    /// `rows[i]` has `ncols + 1` entries; the last is the rhs.
    rows: Vec<Vec<f64>>,
    /// Reduced-cost row, `ncols + 1` entries; last = −objective.
    cost: Vec<f64>,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Columns allowed to enter the basis.
    allowed: Vec<bool>,
    ncols: usize,
}

impl Tableau {
    fn pivot(&mut self, r: usize, c: usize) {
        let piv = self.rows[r][c];
        debug_assert!(piv.abs() > EPS);
        for v in self.rows[r].iter_mut() {
            *v /= piv;
        }
        let pivot_row = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == r {
                continue;
            }
            let f = row[c];
            if f.abs() > EPS {
                for (v, pv) in row.iter_mut().zip(pivot_row.iter()) {
                    *v -= f * pv;
                }
                row[c] = 0.0; // exact
            }
        }
        let f = self.cost[c];
        if f.abs() > EPS {
            for (v, pv) in self.cost.iter_mut().zip(pivot_row.iter()) {
                *v -= f * pv;
            }
            self.cost[c] = 0.0;
        }
        self.basis[r] = c;
    }

    /// Subtracts basic-variable cost rows so reduced costs of basic
    /// columns are zero.
    fn reduce_cost_row(&mut self) {
        for i in 0..self.rows.len() {
            let b = self.basis[i];
            let f = self.cost[b];
            if f.abs() > EPS {
                let row = self.rows[i].clone();
                for (v, rv) in self.cost.iter_mut().zip(row.iter()) {
                    *v -= f * rv;
                }
                self.cost[b] = 0.0;
            }
        }
    }

    /// Runs simplex iterations to optimality (Bland's rule).
    fn optimize(&mut self) -> Result<(), LpError> {
        let max_iter = 2000 + 200 * (self.rows.len() + self.ncols);
        for _ in 0..max_iter {
            // Entering: lowest-index allowed column with negative
            // reduced cost.
            let Some(c) = (0..self.ncols).find(|&j| self.allowed[j] && self.cost[j] < -EPS) else {
                return Ok(());
            };
            // Leaving: min ratio, ties by lowest basis index.
            let mut best: Option<(usize, f64)> = None;
            for (i, row) in self.rows.iter().enumerate() {
                if row[c] > EPS {
                    let ratio = row[self.ncols] / row[c];
                    match best {
                        None => best = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - EPS
                                || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                            {
                                best = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((r, _)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(r, c);
        }
        Err(LpError::Numerical)
    }

    fn objective(&self) -> f64 {
        -self.cost[self.ncols]
    }
}

pub(crate) fn solve(p: &LpProblem) -> Result<LpSolution, LpError> {
    let n = p.vars.len();
    for v in &p.vars {
        assert!(
            v.lower.is_finite(),
            "variable `{}` needs a finite lower bound",
            v.name
        );
    }
    let shift: Vec<f64> = p.vars.iter().map(|v| v.lower).collect();

    // Collect rows over shifted variables x' = x − l ≥ 0.
    struct Row {
        coef: Vec<f64>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in &p.cons {
        let mut coef = vec![0.0; n];
        let mut rhs = c.rhs;
        for &(j, a) in &c.terms {
            coef[j] += a;
            rhs -= a * shift[j];
        }
        rows.push(Row {
            coef,
            cmp: c.cmp,
            rhs,
        });
    }
    // Upper bounds as rows: x'_j ≤ u_j − l_j.
    for (j, v) in p.vars.iter().enumerate() {
        if let Some(u) = v.upper {
            let mut coef = vec![0.0; n];
            coef[j] = 1.0;
            rows.push(Row {
                coef,
                cmp: Cmp::Le,
                rhs: u - v.lower,
            });
        }
    }
    // Normalize rhs ≥ 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            for a in r.coef.iter_mut() {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    let n_slack = rows.iter().filter(|r| r.cmp == Cmp::Le).count();
    let n_surplus = rows.iter().filter(|r| r.cmp == Cmp::Ge).count();
    let n_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
    let ncols = n + n_slack + n_surplus + n_art;

    let mut tab = Tableau {
        rows: vec![vec![0.0; ncols + 1]; m],
        cost: vec![0.0; ncols + 1],
        basis: vec![usize::MAX; m],
        allowed: vec![true; ncols],
        ncols,
    };
    let mut next_slack = n;
    let mut next_surplus = n + n_slack;
    let mut next_art = n + n_slack + n_surplus;
    let art_start = next_art;
    for (i, r) in rows.iter().enumerate() {
        tab.rows[i][..n].copy_from_slice(&r.coef);
        tab.rows[i][ncols] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                tab.rows[i][next_slack] = 1.0;
                tab.basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                tab.rows[i][next_surplus] = -1.0;
                next_surplus += 1;
                tab.rows[i][next_art] = 1.0;
                tab.basis[i] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                tab.rows[i][next_art] = 1.0;
                tab.basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    // Phase 1: minimize artificial sum.
    if n_art > 0 {
        for j in art_start..ncols {
            tab.cost[j] = 1.0;
        }
        tab.reduce_cost_row();
        tab.optimize()?;
        if tab.objective() > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive basic artificials out; drop redundant rows.
        let mut drop_rows: Vec<usize> = Vec::new();
        for i in 0..m {
            if tab.basis[i] >= art_start {
                if let Some(c) = (0..art_start).find(|&j| tab.rows[i][j].abs() > EPS) {
                    tab.pivot(i, c);
                } else {
                    drop_rows.push(i);
                }
            }
        }
        for &i in drop_rows.iter().rev() {
            tab.rows.remove(i);
            tab.basis.remove(i);
        }
        for j in art_start..ncols {
            tab.allowed[j] = false;
        }
    }

    // Phase 2: original objective.
    tab.cost = vec![0.0; ncols + 1];
    for (j, v) in p.vars.iter().enumerate() {
        tab.cost[j] = v.obj;
    }
    tab.reduce_cost_row();
    tab.optimize()?;

    // Extract shifted values.
    let mut xp = vec![0.0; ncols];
    for (i, &b) in tab.basis.iter().enumerate() {
        xp[b] = tab.rows[i][tab.ncols];
    }
    let values: Vec<f64> = (0..n).map(|j| xp[j] + shift[j]).collect();
    let objective: f64 = p
        .vars
        .iter()
        .zip(values.iter())
        .map(|(v, &x)| v.obj * x)
        .sum();
    Ok(LpSolution { objective, values })
}

#[cfg(test)]
mod tests {
    use super::LpError;
    use crate::model::{Cmp, LpProblem};

    /// Classic Beale cycling example — Bland's rule must terminate.
    #[test]
    fn beale_cycling_instance_terminates() {
        // min -0.75x4 + 150x5 - 0.02x6 + 6x7
        // s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 ≤ 0
        //      0.5x4 - 90x5 - 0.02x6 + 3x7 ≤ 0
        //      x6 ≤ 1
        let mut p = LpProblem::new();
        let x4 = p.add_var("x4", 0.0, None, -0.75);
        let x5 = p.add_var("x5", 0.0, None, 150.0);
        let x6 = p.add_var("x6", 0.0, None, -0.02);
        let x7 = p.add_var("x7", 0.0, None, 6.0);
        p.add_constraint(
            &[(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(
            &[(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(&[(x6, 1.0)], Cmp::Le, 1.0);
        let s = p.solve().unwrap();
        assert!((s.objective + 0.05).abs() < 1e-7, "obj = {}", s.objective);
    }

    #[test]
    fn redundant_equalities_are_dropped() {
        // x + y = 2 stated twice; min x.
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, None, 1.0);
        let y = p.add_var("y", 0.0, None, 0.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let s = p.solve().unwrap();
        assert!(s.objective.abs() < 1e-7);
        assert!((s.value(y) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn conflicting_equalities_infeasible() {
        let mut p = LpProblem::new();
        let x = p.add_var("x", 0.0, None, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Eq, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Eq, 2.0);
        assert!(matches!(p.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn empty_problem_solves_trivially() {
        let p = LpProblem::new();
        let s = p.solve().unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn larger_random_like_instance_agrees_with_known_optimum() {
        // A small transportation-style LP with known optimum.
        // min Σ c_ij x_ij, supplies 20/30, demands 10/25/15.
        let mut p = LpProblem::new();
        let c = [[8.0, 6.0, 10.0], [9.0, 12.0, 13.0]];
        let mut x = Vec::new();
        for (i, row) in c.iter().enumerate() {
            for (j, &cost) in row.iter().enumerate() {
                x.push(p.add_var(&format!("x{i}{j}"), 0.0, None, cost));
            }
        }
        let supplies = [20.0, 30.0];
        let demands = [10.0, 25.0, 15.0];
        for i in 0..2 {
            let terms: Vec<_> = (0..3).map(|j| (x[3 * i + j], 1.0)).collect();
            p.add_constraint(&terms, Cmp::Le, supplies[i]);
        }
        for j in 0..3 {
            let terms: Vec<_> = (0..2).map(|i| (x[3 * i + j], 1.0)).collect();
            p.add_constraint(&terms, Cmp::Ge, demands[j]);
        }
        let s = p.solve().unwrap();
        // Optimal plan: x01=20 (6), x10=10 (9), x11=5 (12), x12=15 (13):
        // 120 + 90 + 60 + 195 = 465.
        assert!((s.objective - 465.0).abs() < 1e-6, "obj = {}", s.objective);
    }
}

#[cfg(test)]
mod prop_tests {
    use crate::model::{Cmp, LpProblem};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// On random box-constrained covering LPs, the simplex optimum is
    /// feasible and no coarse grid point beats it.
    #[test]
    fn simplex_beats_grid_on_covering_lps() {
        let mut rng = StdRng::seed_from_u64(0x51D5);
        for _case in 0..48 {
            let n = rng.gen_range(2usize..5);
            let n_rows = rng.gen_range(3usize..6);
            let seeds: Vec<u64> = (0..n_rows).map(|_| rng.gen_range(0u64..1000)).collect();
            let mut p = LpProblem::new();
            let xs: Vec<_> = (0..n)
                .map(|i| p.add_unit_var(&format!("x{i}"), ((i % 3) + 1) as f64))
                .collect();
            // Random ≥ rows with coefficients in {0,1,2}.
            let mut rows = Vec::new();
            for &s in &seeds {
                let coefs: Vec<f64> = (0..n).map(|i| ((s >> (2 * i)) % 3) as f64).collect();
                if coefs.iter().all(|&c| c == 0.0) {
                    continue;
                }
                let terms: Vec<_> = xs.iter().zip(coefs.iter()).map(|(&v, &c)| (v, c)).collect();
                p.add_constraint(&terms, Cmp::Ge, 1.0);
                rows.push(coefs);
            }
            let sol = p.solve().unwrap();
            // Feasibility of the optimum.
            for coefs in &rows {
                let lhs: f64 = coefs
                    .iter()
                    .zip(sol.values.iter())
                    .map(|(c, x)| c * x)
                    .sum();
                assert!(lhs >= 1.0 - 1e-6);
            }
            // Grid search over {0, 1/2, 1}^n.
            let mut best = f64::INFINITY;
            for code in 0..3usize.pow(n as u32) {
                let mut c = code;
                let pt: Vec<f64> = (0..n)
                    .map(|_| {
                        let v = (c % 3) as f64 / 2.0;
                        c /= 3;
                        v
                    })
                    .collect();
                let feas = rows.iter().all(|coefs| {
                    coefs.iter().zip(pt.iter()).map(|(a, x)| a * x).sum::<f64>() >= 1.0 - 1e-9
                });
                if feas {
                    let obj: f64 = pt
                        .iter()
                        .enumerate()
                        .map(|(i, x)| ((i % 3) + 1) as f64 * x)
                        .sum();
                    best = best.min(obj);
                }
            }
            assert!(
                sol.objective <= best + 1e-6,
                "simplex {} worse than grid {}",
                sol.objective,
                best
            );
        }
    }
}
