//! Branch-and-bound integer programming over the LP relaxation.
//!
//! Used for the paper's *exact* Secure-View baselines: the benchmarks
//! compare the polynomial-time rounding algorithms (Theorems 5–7)
//! against true optima on instances small enough for exact search. The
//! solver does depth-first branch-and-bound with LP lower bounds and
//! most-fractional branching.

use crate::model::{LpProblem, LpSolution, VarId};
use crate::simplex::LpError;

const INT_EPS: f64 = 1e-6;

/// An optimal integer solution.
#[derive(Clone, Debug)]
pub struct IntSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Variable values (integral on the requested variables).
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
}

impl IntSolution {
    /// Value of variable `v`, rounded to the nearest integer if within
    /// tolerance.
    #[must_use]
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Integer value of variable `v`.
    ///
    /// # Panics
    /// Panics if the value is not integral within tolerance.
    #[must_use]
    pub fn int_value(&self, v: VarId) -> i64 {
        let x = self.values[v.0];
        let r = x.round();
        assert!((x - r).abs() < 1e-4, "value {x} of {v:?} is not integral");
        r as i64
    }
}

/// Solves `problem` with the listed variables required integral.
///
/// `node_limit` bounds the search tree (exceeding it yields
/// [`LpError::Numerical`], signalling "too hard for the exact
/// baseline").
///
/// # Errors
/// [`LpError::Infeasible`] if no integral point exists;
/// [`LpError::Unbounded`] / [`LpError::Numerical`] as in the LP solver.
pub fn solve_integer(
    problem: &LpProblem,
    integer_vars: &[VarId],
    node_limit: u64,
) -> Result<IntSolution, LpError> {
    // Branch state: additional bounds per integer var.
    #[derive(Clone)]
    struct Node {
        lo: Vec<f64>,
        hi: Vec<f64>,
    }
    let base_lo: Vec<f64> = problem.vars.iter().map(|v| v.lower).collect();
    let base_hi: Vec<f64> = problem
        .vars
        .iter()
        .map(|v| v.upper.unwrap_or(f64::INFINITY))
        .collect();

    let solve_with = |node: &Node| -> Result<LpSolution, LpError> {
        // Re-build with tightened bounds (cheap at our sizes; keeps the
        // simplex core stateless).
        let mut p = LpProblem::new();
        for (j, v) in problem.vars.iter().enumerate() {
            let hi = if node.hi[j].is_finite() {
                Some(node.hi[j])
            } else {
                None
            };
            p.add_var(&v.name, node.lo[j], hi, v.obj);
        }
        for c in &problem.cons {
            let terms: Vec<(VarId, f64)> = c.terms.iter().map(|&(j, a)| (VarId(j), a)).collect();
            p.add_constraint(&terms, c.cmp, c.rhs);
        }
        p.solve()
    };

    let root = Node {
        lo: base_lo,
        hi: base_hi,
    };
    // Infeasible bound boxes can arise from branching; treat as pruned.
    let mut stack = vec![root];
    let mut best: Option<IntSolution> = None;
    let mut nodes: u64 = 0;

    while let Some(node) = stack.pop() {
        if node.lo.iter().zip(node.hi.iter()).any(|(l, h)| l > h) {
            continue;
        }
        nodes += 1;
        if nodes > node_limit {
            return Err(LpError::Numerical);
        }
        let relax = match solve_with(&node) {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        if let Some(b) = &best {
            if relax.objective >= b.objective - INT_EPS {
                continue; // bound prune
            }
        }
        // Most-fractional integral variable.
        let frac = integer_vars
            .iter()
            .map(|&v| {
                let x = relax.values[v.0];
                (v, (x - x.round()).abs())
            })
            .filter(|&(_, f)| f > INT_EPS)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        match frac {
            None => {
                // Integral: candidate incumbent.
                let cand = IntSolution {
                    objective: relax.objective,
                    values: relax.values,
                    nodes,
                };
                if best
                    .as_ref()
                    .is_none_or(|b| cand.objective < b.objective - INT_EPS)
                {
                    best = Some(cand);
                }
            }
            Some((v, _)) => {
                let x = relax.values[v.0];
                let mut down = node.clone();
                down.hi[v.0] = x.floor();
                let mut up = node;
                up.lo[v.0] = x.ceil();
                // DFS: explore the side closer to the LP value first by
                // pushing it last.
                if x - x.floor() > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }
    match best {
        Some(mut b) => {
            b.nodes = nodes;
            Ok(b)
        }
        None => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cmp;

    #[test]
    fn knapsack_exact() {
        // max 10a + 6b + 4c s.t. a+b+c ≤ 2 (binary) → min form.
        let mut p = LpProblem::new();
        let a = p.add_unit_var("a", -10.0);
        let b = p.add_unit_var("b", -6.0);
        let c = p.add_unit_var("c", -4.0);
        p.add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Le, 2.0);
        let s = solve_integer(&p, &[a, b, c], 1 << 16).unwrap();
        assert!((s.objective + 16.0).abs() < 1e-6);
        assert_eq!(s.int_value(a), 1);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 0);
    }

    #[test]
    fn set_cover_exact() {
        // Universe {1..4}; sets A={1,2}, B={3,4}, C={1,3}, D={2,4},
        // E={1,2,3,4} with cost 3. Optimum: {E} cost 3 vs any pair cost 2
        // → actually A+B covers all at cost 2. Expect 2.
        let mut p = LpProblem::new();
        let a = p.add_unit_var("A", 1.0);
        let b = p.add_unit_var("B", 1.0);
        let c = p.add_unit_var("C", 1.0);
        let d = p.add_unit_var("D", 1.0);
        let e = p.add_unit_var("E", 3.0);
        let cover = |p: &mut LpProblem, sets: &[(VarId, f64)]| {
            p.add_constraint(sets, Cmp::Ge, 1.0);
        };
        cover(&mut p, &[(a, 1.0), (c, 1.0), (e, 1.0)]); // elem 1
        cover(&mut p, &[(a, 1.0), (d, 1.0), (e, 1.0)]); // elem 2
        cover(&mut p, &[(b, 1.0), (c, 1.0), (e, 1.0)]); // elem 3
        cover(&mut p, &[(b, 1.0), (d, 1.0), (e, 1.0)]); // elem 4
        let s = solve_integer(&p, &[a, b, c, d, e], 1 << 16).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn fractional_lp_vs_integer_gap() {
        // Odd-cycle vertex cover: LP optimum 1.5 (all ½), IP optimum 2.
        let mut p = LpProblem::new();
        let x: Vec<VarId> = (0..3)
            .map(|i| p.add_unit_var(&format!("v{i}"), 1.0))
            .collect();
        for i in 0..3 {
            p.add_constraint(&[(x[i], 1.0), (x[(i + 1) % 3], 1.0)], Cmp::Ge, 1.0);
        }
        let lp = p.solve().unwrap();
        assert!((lp.objective - 1.5).abs() < 1e-6);
        let ip = solve_integer(&p, &x, 1 << 16).unwrap();
        assert!((ip.objective - 2.0).abs() < 1e-6);
        assert!(ip.nodes >= 1);
    }

    #[test]
    fn integer_infeasible() {
        // 0 ≤ x ≤ 1 integer with 0.4 ≤ x ≤ 0.6 has LP points but no
        // integer ones.
        let mut p = LpProblem::new();
        let x = p.add_unit_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 0.4);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 0.6);
        assert!(matches!(
            solve_integer(&p, &[x], 1 << 10),
            Err(LpError::Infeasible)
        ));
    }

    #[test]
    fn node_limit_enforced() {
        // A 12-var equality knapsack that needs some branching.
        let mut p = LpProblem::new();
        let xs: Vec<VarId> = (0..12)
            .map(|i| p.add_unit_var(&format!("x{i}"), -((i % 5) as f64 + 1.0)))
            .collect();
        let terms: Vec<(VarId, f64)> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 3 + 1) as f64))
            .collect();
        p.add_constraint(&terms, Cmp::Le, 7.0);
        assert!(matches!(
            solve_integer(&p, &xs, 1),
            Err(LpError::Numerical) | Ok(_)
        ));
    }
}
