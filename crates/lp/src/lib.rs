//! # sv-lp — linear programming substrate for `secure-view`
//!
//! The paper's approximation algorithms round optimal solutions of LP
//! relaxations (the cardinality-constraint IP of Figure 3 with its
//! `O(log n)` randomized rounding, the set-constraint LP of Appendix
//! B.5.1 with `ℓ_max` rounding, and the general-workflow LP of Appendix
//! C.4). No LP solver exists in the offline dependency set, so this
//! crate implements one from scratch:
//!
//! * [`LpProblem`] — model builder (minimization, `≤ / ≥ / =` rows,
//!   per-variable bounds);
//! * a **dense two-phase primal simplex** with Bland's anti-cycling rule
//!   ([`LpProblem::solve`]);
//! * [`solve_integer`] — branch-and-bound over the LP relaxation for the
//!   exact (exponential-time) baselines the benchmarks compare against.
//!
//! Instances produced by the paper's reductions are small-to-medium
//! (thousands of nonzeros), where dense simplex is exact and fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod model;
mod simplex;

pub use branch_bound::{solve_integer, IntSolution};
pub use model::{Cmp, LpProblem, LpSolution, VarId};
pub use simplex::LpError;
