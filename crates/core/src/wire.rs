//! Wire framing for the provenance-privacy serving tier.
//!
//! The serving tier (`sv-serve`) moves batches of safety probes and
//! append ingest between clients and a tenant-multiplexing server. This
//! module defines the **transport-independent** part of that protocol:
//! the request/response payload types and their binary encoding. The
//! transports themselves (in-process loopback, local sockets) live in
//! `sv-serve`; both carry exactly these payloads.
//!
//! ## Frame layout
//!
//! A frame is a 4-byte little-endian `u32` payload length followed by
//! the payload bytes; payloads longer than [`MAX_FRAME_LEN`] are
//! rejected before any decoding. Within a payload every integer is
//! little-endian; the first byte is a message tag (see [`Request`] and
//! [`Response`]). [`frame`] / [`unframe`] implement the prefix for
//! in-memory buffers; stream transports read the 4-byte header first
//! and then the payload.
//!
//! ## Epochs on the wire
//!
//! A [`ProbeRequest`] may be conditioned on a module's relation epoch;
//! the server rejects the **whole batch** with
//! [`ServeFault::StaleEpoch`] when any conditioned probe's epoch does
//! not match the module's current one — exactly the
//! [`CoreError::StaleEpoch`](crate::CoreError::StaleEpoch) semantics of
//! [`WorkflowOracles::probe_batch`](crate::safety::WorkflowOracles::probe_batch),
//! surfaced as a typed response instead of a Rust error. Every probe
//! outcome carries the epoch it was answered at, so clients can chain
//! conditioned probes without a separate epoch query.
//!
//! ## Durability receipts
//!
//! Ingest frames are acknowledged with [`Response::Receipt`] (tag
//! `0x86`): the applied-row count, the post-frame epochs, and
//! [`IngestReceipt::durable_seq`] — the highest write-ahead-log
//! sequence whose fsync covers the frame (0 when the server has no
//! durability configured). The pre-durability acknowledgement
//! [`Response::Ingest`] (tag `0x82`) remains decodable for
//! compatibility with older servers.
//!
//! The full protocol specification (tenancy model, backpressure
//! contract, operational guide) is `docs/SERVING.md` in the repository
//! root.
//!
//! # Examples
//! ```
//! use sv_core::safety::ProbeRequest;
//! use sv_core::wire::{frame, unframe, Request};
//! use sv_relation::AttrSet;
//! use sv_workflow::ModuleId;
//!
//! let req = Request::Probe {
//!     tenant: 7,
//!     probes: vec![ProbeRequest::new(ModuleId(0), AttrSet::from_indices(&[0, 2]), 4).at_epoch(1)],
//! };
//! let payload = req.encode();
//! let framed = frame(&payload);
//! assert_eq!(unframe(&framed).unwrap(), &payload[..]);
//! assert_eq!(Request::decode(&payload).unwrap(), req);
//! ```

use crate::safety::{ProbeOutcome, ProbeRequest};
use std::fmt;
use sv_relation::{AttrId, AttrSet, Value};
use sv_workflow::ModuleId;

/// Maximum payload length a conforming endpoint accepts (64 MiB). The
/// length prefix is checked against this before any allocation, so a
/// corrupt or hostile header cannot trigger an outsized buffer.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Maximum attribute id accepted in a wire-encoded attribute set.
/// `AttrSet` is a bitset sized by its largest member, so without this
/// bound a single corrupt id (e.g. a flipped high bit turning attr 2
/// into attr 2³¹) would make the decoder allocate a multi-hundred-MiB
/// set. 2²⁰ attributes is far beyond any real workflow schema while
/// capping the allocation at 128 KiB.
pub const MAX_WIRE_ATTR_ID: u32 = 1 << 20;

// ── Message tags ────────────────────────────────────────────────────
const TAG_REQ_PROBE: u8 = 0x01;
const TAG_REQ_INGEST: u8 = 0x02;
const TAG_REQ_EPOCHS: u8 = 0x03;
const TAG_RESP_PROBE: u8 = 0x81;
const TAG_RESP_INGEST: u8 = 0x82;
const TAG_RESP_EPOCHS: u8 = 0x83;
const TAG_RESP_BUSY: u8 = 0x84;
const TAG_RESP_ERROR: u8 = 0x85;
const TAG_RESP_RECEIPT: u8 = 0x86;
const TAG_SET_WORD: u8 = 0x00;
const TAG_SET_LIST: u8 = 0x01;

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// A batch of safety probes against one tenant's workflow, answered
    /// atomically by
    /// [`WorkflowOracles::probe_batch`](crate::safety::WorkflowOracles::probe_batch):
    /// either every probe is answered (in request order) or the whole
    /// batch is rejected with a typed fault.
    Probe {
        /// The tenant the batch addresses.
        tenant: u64,
        /// The probes, in the order outcomes come back.
        probes: Vec<ProbeRequest>,
    },
    /// Append ingest: full provenance rows over the tenant workflow's
    /// schema, applied **frame-atomically** on the tenant's
    /// single-writer lane (the whole batch is validated against every
    /// private module before any module sees a row; an invalid row
    /// fails the frame with [`ServeFault::Rejected`] and **nothing** is
    /// applied).
    Ingest {
        /// The tenant the rows belong to.
        tenant: u64,
        /// Provenance rows (workflow-schema order).
        rows: Vec<Vec<Value>>,
    },
    /// Reads the tenant's current per-module relation epochs (for
    /// conditioning subsequent probes).
    Epochs {
        /// The tenant to read.
        tenant: u64,
    },
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Probe outcomes, in request order.
    Probe(Vec<ProbeOutcome>),
    /// Ingest acknowledgement (legacy, pre-durability tag). Servers now
    /// answer [`Response::Receipt`]; this variant stays decodable so
    /// new clients interoperate with old servers.
    Ingest(IngestReply),
    /// Ingest acknowledgement with durability: epochs *and* the
    /// covering log sequence number.
    Receipt(IngestReceipt),
    /// Per-module relation epochs.
    Epochs(Vec<ModuleEpoch>),
    /// Admission control rejected the frame; retry later (or shrink the
    /// batch). The server did **not** touch tenant state.
    Busy(BusyReason),
    /// The request failed; the fault says why.
    Error(ServeFault),
}

/// One module's relation epoch, as reported on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModuleEpoch {
    /// The private module's id (workflow index).
    pub module: ModuleId,
    /// Its current relation epoch.
    pub epoch: u64,
}

/// Acknowledgement of an [`Request::Ingest`] frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestReply {
    /// Total **new** module rows across all private modules (a module
    /// already holding a row's projection contributes 0).
    pub added: u64,
    /// The per-module epochs after the frame was applied.
    pub epochs: Vec<ModuleEpoch>,
}

/// Acknowledgement of an [`Request::Ingest`] frame with durability
/// semantics ([`Response::Receipt`], wire tag `0x86`): everything
/// [`IngestReply`] carried, plus the highest write-ahead-log sequence
/// number whose fsync covered this frame. `durable_seq == 0` means the
/// serving path has no durability configured (loopback / in-memory
/// sinks); a nonzero value is the commit-lane guarantee that the frame
/// survives a crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Total **new** module rows across all private modules.
    pub added: u64,
    /// The per-module epochs after the frame was applied.
    pub epochs: Vec<ModuleEpoch>,
    /// Highest durable log sequence covering this frame (0 = no
    /// durability configured).
    pub durable_seq: u64,
}

/// Why admission control bounced a frame ([`Response::Busy`]). Every
/// variant reports the observed value and the tenant's configured
/// limit, so clients can right-size their batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusyReason {
    /// The frame alone exceeds the tenant's per-frame request budget.
    BatchRequests {
        /// Requests in the offending frame.
        got: u64,
        /// The per-frame limit.
        limit: u64,
    },
    /// The frame alone exceeds the tenant's per-frame byte budget.
    BatchBytes {
        /// Payload bytes of the offending frame.
        got: u64,
        /// The per-frame limit.
        limit: u64,
    },
    /// Admitting the frame would push the tenant's in-flight request
    /// count over its bound.
    InflightRequests {
        /// In-flight requests including this frame.
        got: u64,
        /// The in-flight limit.
        limit: u64,
    },
    /// Admitting the frame would push the tenant's in-flight bytes over
    /// their bound.
    InflightBytes {
        /// In-flight bytes including this frame.
        got: u64,
        /// The in-flight limit.
        limit: u64,
    },
}

impl fmt::Display for BusyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BatchRequests { got, limit } => {
                write!(f, "frame carries {got} requests, per-frame limit {limit}")
            }
            Self::BatchBytes { got, limit } => {
                write!(f, "frame is {got} bytes, per-frame limit {limit}")
            }
            Self::InflightRequests { got, limit } => {
                write!(f, "{got} in-flight requests, limit {limit}")
            }
            Self::InflightBytes { got, limit } => {
                write!(f, "{got} in-flight bytes, limit {limit}")
            }
        }
    }
}

/// A typed serving fault ([`Response::Error`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeFault {
    /// The frame named a tenant the registry does not hold.
    UnknownTenant {
        /// The unregistered tenant id.
        tenant: u64,
    },
    /// A probe named a module the tenant's workflow has no oracle for.
    /// The whole batch was rejected before any oracle was touched.
    UnknownModule {
        /// The uncovered module index.
        module: u32,
    },
    /// An epoch-conditioned probe's epoch no longer matches the
    /// module's relation epoch: the module ingested provenance after
    /// the client read the epoch. The **whole batch** was rejected
    /// before any oracle state was touched — re-read epochs and retry.
    StaleEpoch {
        /// The module whose epoch mismatched.
        module: u32,
        /// The epoch the probe was conditioned on.
        expected: u64,
        /// The module's current epoch.
        actual: u64,
    },
    /// The payload failed to decode (or carried a request the server
    /// does not speak).
    Malformed {
        /// Decoder diagnostic.
        detail: String,
    },
    /// An ingest row failed validation (domain or FD violation).
    /// `applied` rows earlier in the frame had already landed.
    Rejected {
        /// Rows of the frame applied before the failure.
        applied: u64,
        /// Validation diagnostic.
        detail: String,
    },
}

impl fmt::Display for ServeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant}"),
            Self::UnknownModule { module } => {
                write!(f, "tenant workflow has no private module {module}")
            }
            Self::StaleEpoch {
                module,
                expected,
                actual,
            } => write!(
                f,
                "stale epoch on module {module}: probe conditioned on {expected}, module at {actual}"
            ),
            Self::Malformed { detail } => write!(f, "malformed request: {detail}"),
            Self::Rejected { applied, detail } => {
                write!(f, "ingest rejected after {applied} rows: {detail}")
            }
        }
    }
}

/// Decoding failures. These are *transport-level* errors (a framing or
/// encoding bug, truncation, corruption) — servers answer them with
/// [`ServeFault::Malformed`]; a client treats them as a broken
/// connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced content.
    Truncated,
    /// Decoding finished with bytes left over.
    Trailing {
        /// Number of undecoded bytes.
        extra: usize,
    },
    /// An unknown message (or field) tag.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
    },
    /// A length field announces more elements than the remaining bytes
    /// could possibly hold.
    Oversize {
        /// The announced element count.
        count: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An attribute id beyond [`MAX_WIRE_ATTR_ID`]: decoding it would
    /// size a bitset by the corrupt value.
    AttrIdOutOfRange {
        /// The offending id.
        id: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "payload truncated"),
            Self::Trailing { extra } => write!(f, "{extra} trailing bytes after payload"),
            Self::BadTag { tag } => write!(f, "unknown tag 0x{tag:02x}"),
            Self::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds maximum {MAX_FRAME_LEN}")
            }
            Self::Oversize { count } => {
                write!(
                    f,
                    "length field announces {count} elements beyond the payload"
                )
            }
            Self::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            Self::AttrIdOutOfRange { id } => {
                write!(f, "attribute id {id} exceeds maximum {MAX_WIRE_ATTR_ID}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Prepends the 4-byte little-endian length prefix to a payload.
///
/// # Panics
/// If `payload` exceeds [`MAX_FRAME_LEN`] (an encoder bug, not a
/// runtime condition — encoders bound batches far below it).
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame exceeds MAX_FRAME_LEN"
    );
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Strips and validates the 4-byte length prefix, returning the
/// payload slice.
///
/// # Errors
/// [`WireError::Truncated`] if the buffer is shorter than the header
/// announces; [`WireError::FrameTooLarge`] for an oversized prefix;
/// [`WireError::Trailing`] if bytes follow the framed payload.
pub fn unframe(buf: &[u8]) -> Result<&[u8], WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    if buf.len() < 4 + len {
        return Err(WireError::Truncated);
    }
    if buf.len() > 4 + len {
        return Err(WireError::Trailing {
            extra: buf.len() - 4 - len,
        });
    }
    Ok(&buf[4..4 + len])
}

// ── Encode helpers ──────────────────────────────────────────────────

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_attrset(buf: &mut Vec<u8>, set: &AttrSet) {
    match set.as_word() {
        Some(w) => {
            buf.push(TAG_SET_WORD);
            put_u64(buf, w);
        }
        None => {
            buf.push(TAG_SET_LIST);
            let ids: Vec<AttrId> = set.iter().collect();
            put_u32(buf, ids.len() as u32);
            for a in ids {
                put_u32(buf, a.0);
            }
        }
    }
}

fn put_probe(buf: &mut Vec<u8>, p: &ProbeRequest) {
    put_u32(buf, p.module.0);
    put_attrset(buf, &p.visible);
    put_u128(buf, p.gamma);
    match p.epoch {
        Some(e) => {
            buf.push(1);
            put_u64(buf, e);
        }
        None => buf.push(0),
    }
}

fn put_module_epoch(buf: &mut Vec<u8>, me: &ModuleEpoch) {
    put_u32(buf, me.module.0);
    put_u64(buf, me.epoch);
}

// ── Decode helpers ──────────────────────────────────────────────────

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.bytes(16)?.try_into().unwrap()))
    }

    /// Reads an element count and guards it against the bytes actually
    /// left (`min_elem` = the smallest possible encoding of one
    /// element), so a corrupt count cannot trigger a huge allocation.
    fn count(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem) > self.remaining() {
            return Err(WireError::Oversize { count: n });
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn attrset(&mut self) -> Result<AttrSet, WireError> {
        match self.u8()? {
            TAG_SET_WORD => Ok(AttrSet::from_word(self.u64()?)),
            TAG_SET_LIST => {
                let n = self.count(4)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = self.u32()?;
                    if id > MAX_WIRE_ATTR_ID {
                        return Err(WireError::AttrIdOutOfRange { id });
                    }
                    ids.push(AttrId(id));
                }
                Ok(AttrSet::from_iter(ids))
            }
            tag => Err(WireError::BadTag { tag }),
        }
    }

    fn probe(&mut self) -> Result<ProbeRequest, WireError> {
        let module = ModuleId(self.u32()?);
        let visible = self.attrset()?;
        let gamma = self.u128()?;
        let epoch = match self.u8()? {
            0 => None,
            1 => Some(self.u64()?),
            tag => return Err(WireError::BadTag { tag }),
        };
        Ok(ProbeRequest {
            module,
            visible,
            gamma,
            epoch,
        })
    }

    fn module_epoch(&mut self) -> Result<ModuleEpoch, WireError> {
        Ok(ModuleEpoch {
            module: ModuleId(self.u32()?),
            epoch: self.u64()?,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.remaining(),
            })
        }
    }
}

impl Request {
    /// Encodes a probe batch directly from a borrowed slice — the
    /// serving hot path, shaped so clients never clone their probe
    /// buffers just to build a frame. Equivalent to
    /// `Request::Probe { tenant, probes: probes.to_vec() }.encode()`.
    #[must_use]
    pub fn encode_probe(tenant: u64, probes: &[ProbeRequest]) -> Vec<u8> {
        // Word-set probes dominate: 30 bytes each (see `decode`).
        let mut buf = Vec::with_capacity(13 + 30 * probes.len());
        buf.push(TAG_REQ_PROBE);
        put_u64(&mut buf, tenant);
        put_u32(&mut buf, probes.len() as u32);
        for p in probes {
            put_probe(&mut buf, p);
        }
        buf
    }

    /// Encodes the request into a fresh payload (no length prefix —
    /// see [`frame`]).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            Self::Probe { tenant, probes } => {
                return Self::encode_probe(*tenant, probes);
            }
            Self::Ingest { tenant, rows } => {
                buf.push(TAG_REQ_INGEST);
                put_u64(&mut buf, *tenant);
                put_u32(&mut buf, rows.len() as u32);
                for row in rows {
                    put_u32(&mut buf, row.len() as u32);
                    for &v in row {
                        put_u32(&mut buf, v);
                    }
                }
            }
            Self::Epochs { tenant } => {
                buf.push(TAG_REQ_EPOCHS);
                put_u64(&mut buf, *tenant);
            }
        }
        buf
    }

    /// Decodes a request payload (no length prefix).
    ///
    /// # Errors
    /// Any [`WireError`]: truncation, trailing bytes, unknown tags,
    /// corrupt length fields.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            TAG_REQ_PROBE => {
                let tenant = r.u64()?;
                // Smallest probe: module(4) + word set(9) + Γ(16) + no
                // epoch(1) = 30 bytes.
                let n = r.count(30)?;
                let mut probes = Vec::with_capacity(n);
                for _ in 0..n {
                    probes.push(r.probe()?);
                }
                Self::Probe { tenant, probes }
            }
            TAG_REQ_INGEST => {
                let tenant = r.u64()?;
                let n = r.count(4)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = r.count(4)?;
                    let mut row = Vec::with_capacity(len);
                    for _ in 0..len {
                        row.push(r.u32()?);
                    }
                    rows.push(row);
                }
                Self::Ingest { tenant, rows }
            }
            TAG_REQ_EPOCHS => Self::Epochs { tenant: r.u64()? },
            tag => return Err(WireError::BadTag { tag }),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response into a fresh payload (no length prefix —
    /// see [`frame`]).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            Self::Probe(outcomes) => {
                buf.push(TAG_RESP_PROBE);
                put_u32(&mut buf, outcomes.len() as u32);
                for o in outcomes {
                    put_u32(&mut buf, o.module.0);
                    buf.push(u8::from(o.safe));
                    put_u64(&mut buf, o.epoch);
                }
            }
            Self::Ingest(reply) => {
                buf.push(TAG_RESP_INGEST);
                put_u64(&mut buf, reply.added);
                put_u32(&mut buf, reply.epochs.len() as u32);
                for me in &reply.epochs {
                    put_module_epoch(&mut buf, me);
                }
            }
            Self::Receipt(receipt) => {
                buf.push(TAG_RESP_RECEIPT);
                put_u64(&mut buf, receipt.added);
                put_u64(&mut buf, receipt.durable_seq);
                put_u32(&mut buf, receipt.epochs.len() as u32);
                for me in &receipt.epochs {
                    put_module_epoch(&mut buf, me);
                }
            }
            Self::Epochs(epochs) => {
                buf.push(TAG_RESP_EPOCHS);
                put_u32(&mut buf, epochs.len() as u32);
                for me in epochs {
                    put_module_epoch(&mut buf, me);
                }
            }
            Self::Busy(reason) => {
                buf.push(TAG_RESP_BUSY);
                let (code, got, limit) = match *reason {
                    BusyReason::BatchRequests { got, limit } => (0u8, got, limit),
                    BusyReason::BatchBytes { got, limit } => (1, got, limit),
                    BusyReason::InflightRequests { got, limit } => (2, got, limit),
                    BusyReason::InflightBytes { got, limit } => (3, got, limit),
                };
                buf.push(code);
                put_u64(&mut buf, got);
                put_u64(&mut buf, limit);
            }
            Self::Error(fault) => {
                buf.push(TAG_RESP_ERROR);
                match fault {
                    ServeFault::UnknownTenant { tenant } => {
                        buf.push(0);
                        put_u64(&mut buf, *tenant);
                    }
                    ServeFault::UnknownModule { module } => {
                        buf.push(1);
                        put_u32(&mut buf, *module);
                    }
                    ServeFault::StaleEpoch {
                        module,
                        expected,
                        actual,
                    } => {
                        buf.push(2);
                        put_u32(&mut buf, *module);
                        put_u64(&mut buf, *expected);
                        put_u64(&mut buf, *actual);
                    }
                    ServeFault::Malformed { detail } => {
                        buf.push(3);
                        put_str(&mut buf, detail);
                    }
                    ServeFault::Rejected { applied, detail } => {
                        buf.push(4);
                        put_u64(&mut buf, *applied);
                        put_str(&mut buf, detail);
                    }
                }
            }
        }
        buf
    }

    /// Decodes a response payload (no length prefix).
    ///
    /// # Errors
    /// Any [`WireError`]: truncation, trailing bytes, unknown tags,
    /// corrupt length fields.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            TAG_RESP_PROBE => {
                let n = r.count(13)?;
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    let module = ModuleId(r.u32()?);
                    let safe = match r.u8()? {
                        0 => false,
                        1 => true,
                        tag => return Err(WireError::BadTag { tag }),
                    };
                    let epoch = r.u64()?;
                    outcomes.push(ProbeOutcome {
                        module,
                        safe,
                        epoch,
                    });
                }
                Self::Probe(outcomes)
            }
            TAG_RESP_INGEST => {
                let added = r.u64()?;
                let n = r.count(12)?;
                let mut epochs = Vec::with_capacity(n);
                for _ in 0..n {
                    epochs.push(r.module_epoch()?);
                }
                Self::Ingest(IngestReply { added, epochs })
            }
            TAG_RESP_RECEIPT => {
                let added = r.u64()?;
                let durable_seq = r.u64()?;
                let n = r.count(12)?;
                let mut epochs = Vec::with_capacity(n);
                for _ in 0..n {
                    epochs.push(r.module_epoch()?);
                }
                Self::Receipt(IngestReceipt {
                    added,
                    epochs,
                    durable_seq,
                })
            }
            TAG_RESP_EPOCHS => {
                let n = r.count(12)?;
                let mut epochs = Vec::with_capacity(n);
                for _ in 0..n {
                    epochs.push(r.module_epoch()?);
                }
                Self::Epochs(epochs)
            }
            TAG_RESP_BUSY => {
                let code = r.u8()?;
                let got = r.u64()?;
                let limit = r.u64()?;
                Self::Busy(match code {
                    0 => BusyReason::BatchRequests { got, limit },
                    1 => BusyReason::BatchBytes { got, limit },
                    2 => BusyReason::InflightRequests { got, limit },
                    3 => BusyReason::InflightBytes { got, limit },
                    tag => return Err(WireError::BadTag { tag }),
                })
            }
            TAG_RESP_ERROR => Self::Error(match r.u8()? {
                0 => ServeFault::UnknownTenant { tenant: r.u64()? },
                1 => ServeFault::UnknownModule { module: r.u32()? },
                2 => ServeFault::StaleEpoch {
                    module: r.u32()?,
                    expected: r.u64()?,
                    actual: r.u64()?,
                },
                3 => ServeFault::Malformed {
                    detail: r.string()?,
                },
                4 => ServeFault::Rejected {
                    applied: r.u64()?,
                    detail: r.string()?,
                },
                tag => return Err(WireError::BadTag { tag }),
            }),
            tag => return Err(WireError::BadTag { tag }),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let payload = req.encode();
        assert_eq!(&Request::decode(&payload).unwrap(), req);
        assert_eq!(unframe(&frame(&payload)).unwrap(), &payload[..]);
    }

    fn roundtrip_response(resp: &Response) {
        let payload = resp.encode();
        assert_eq!(&Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(&Request::Epochs { tenant: 42 });
        roundtrip_request(&Request::Probe {
            tenant: 7,
            probes: vec![
                ProbeRequest::new(ModuleId(0), AttrSet::from_word(0b1010), 4),
                ProbeRequest::new(ModuleId(3), AttrSet::from_indices(&[1, 65, 130]), 1 << 90)
                    .at_epoch(12),
            ],
        });
        roundtrip_request(&Request::Probe {
            tenant: 0,
            probes: Vec::new(),
        });
        roundtrip_request(&Request::Ingest {
            tenant: u64::MAX,
            rows: vec![vec![0, 1, 2], Vec::new(), vec![u32::MAX]],
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(&Response::Probe(vec![
            ProbeOutcome {
                module: ModuleId(1),
                safe: true,
                epoch: 9,
            },
            ProbeOutcome {
                module: ModuleId(0),
                safe: false,
                epoch: 0,
            },
        ]));
        roundtrip_response(&Response::Ingest(IngestReply {
            added: 3,
            epochs: vec![ModuleEpoch {
                module: ModuleId(0),
                epoch: 5,
            }],
        }));
        roundtrip_response(&Response::Receipt(IngestReceipt {
            added: 3,
            epochs: vec![
                ModuleEpoch {
                    module: ModuleId(0),
                    epoch: 5,
                },
                ModuleEpoch {
                    module: ModuleId(2),
                    epoch: 0,
                },
            ],
            durable_seq: u64::MAX,
        }));
        roundtrip_response(&Response::Receipt(IngestReceipt {
            added: 0,
            epochs: Vec::new(),
            durable_seq: 0,
        }));
        roundtrip_response(&Response::Epochs(Vec::new()));
        for reason in [
            BusyReason::BatchRequests { got: 9, limit: 4 },
            BusyReason::BatchBytes {
                got: 100,
                limit: 64,
            },
            BusyReason::InflightRequests { got: 5, limit: 4 },
            BusyReason::InflightBytes {
                got: 2048,
                limit: 1024,
            },
        ] {
            roundtrip_response(&Response::Busy(reason));
        }
        roundtrip_response(&Response::Error(ServeFault::UnknownTenant { tenant: 1 }));
        roundtrip_response(&Response::Error(ServeFault::UnknownModule { module: 2 }));
        roundtrip_response(&Response::Error(ServeFault::StaleEpoch {
            module: 0,
            expected: 1,
            actual: 2,
        }));
        roundtrip_response(&Response::Error(ServeFault::Malformed {
            detail: "tag 0xff".into(),
        }));
        roundtrip_response(&Response::Error(ServeFault::Rejected {
            applied: 2,
            detail: "FD violation".into(),
        }));
    }

    #[test]
    fn decode_rejects_corruption() {
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
        assert_eq!(
            Request::decode(&[0x7f]),
            Err(WireError::BadTag { tag: 0x7f })
        );
        // Truncated probe batch: the count guard sees 1 announced probe
        // but fewer bytes than one probe's minimum encoding.
        let mut buf = Request::Probe {
            tenant: 1,
            probes: vec![ProbeRequest::new(ModuleId(0), AttrSet::from_word(1), 2)],
        }
        .encode();
        buf.truncate(buf.len() - 1);
        assert_eq!(Request::decode(&buf), Err(WireError::Oversize { count: 1 }));
        // Truncated before the batch header even completes.
        buf.truncate(5);
        assert_eq!(Request::decode(&buf), Err(WireError::Truncated));
        // Trailing garbage.
        let mut buf = Request::Epochs { tenant: 3 }.encode();
        buf.push(0);
        assert_eq!(Request::decode(&buf), Err(WireError::Trailing { extra: 1 }));
        // A count field announcing more elements than bytes remain.
        let mut buf = vec![TAG_REQ_PROBE];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Request::decode(&buf),
            Err(WireError::Oversize {
                count: u32::MAX as usize
            })
        );
        // A corrupt attr id must be rejected before it sizes a bitset:
        // one wide-set probe whose single id is past the bound.
        let mut buf = vec![TAG_REQ_PROBE];
        buf.extend_from_slice(&1u64.to_le_bytes()); // tenant
        buf.extend_from_slice(&1u32.to_le_bytes()); // 1 probe
        buf.extend_from_slice(&0u32.to_le_bytes()); // module
        buf.push(TAG_SET_LIST);
        buf.extend_from_slice(&1u32.to_le_bytes()); // 1 id
        buf.extend_from_slice(&(MAX_WIRE_ATTR_ID + 1).to_le_bytes());
        buf.extend_from_slice(&2u128.to_le_bytes()); // Γ
        buf.push(0); // no epoch
        assert_eq!(
            Request::decode(&buf),
            Err(WireError::AttrIdOutOfRange {
                id: MAX_WIRE_ATTR_ID + 1
            })
        );
        // Oversized length prefix.
        let mut framed = vec![0u8; 4];
        framed[0..4].copy_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        assert_eq!(
            unframe(&framed),
            Err(WireError::FrameTooLarge {
                len: MAX_FRAME_LEN + 1
            })
        );
    }
}
