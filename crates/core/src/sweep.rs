//! Parallel **work-stealing sweep** over the `2^k` hidden-set lattice.
//!
//! The standalone Secure-View problem is an exponential search
//! (Theorem 3 shows `2^Ω(k)` oracle calls are unavoidable), so the only
//! levers are (a) pruning the lattice and (b) sharding it across
//! threads. This module provides both, behind one [`SweepConfig`]:
//!
//! * **Work stealing.** The mask space is split into fixed-size shards
//!   claimed off a shared atomic cursor; fast workers drain more shards,
//!   so load balances regardless of where the expensive probes cluster.
//!   All workers share **one** concurrent [`MemoSafetyOracle`] (its
//!   level cache is sharded and `&self`-probed, see [`crate::safety`]),
//!   so a mask probed by one worker is a warm hit for every other —
//!   cross-shard memo reuse replaces the per-worker cold clones of the
//!   earlier design. Each worker pins its **own kernel scratch buffer**
//!   ([`MemoSafetyOracle::is_safe_hidden_word_with`]), so shards never
//!   contend on probe buffers.
//! * **Branch-and-bound** ([`min_cost_sweep`]). A shared `AtomicU64`
//!   best-cost bound lets every worker skip masks that cannot improve
//!   the optimum; a second atomic carries the best mask so tie-cost
//!   masks resolve deterministically (lexicographically smallest safe
//!   mask of minimum cost — exactly the serial reference answer,
//!   regardless of thread count).
//! * **Monotone antichain pruning** ([`minimal_sets_sweep`]).
//!   Proposition 1 makes safety monotone in the hidden set, so the
//!   ⊆-minimal safe sets form an antichain generating all safe sets by
//!   superset closure. The sweep walks the lattice popcount layer by
//!   popcount layer (a barrier per layer keeps it equivalent to the
//!   serial ascending-popcount scan), skips every mask in the up-set of
//!   the antichain found so far, and — once an entire layer is covered —
//!   cuts off all higher layers wholesale without enumerating them.
//!   The antichain lives in a bitwise-trie [`Frontier`]
//!   ([`crate::frontier`]): the per-mask up-set test is the sublinear
//!   [`Frontier::covers`] query against a read-only per-layer snapshot,
//!   and the layer barrier merges each worker's sorted discoveries
//!   straight into the trie ([`minimal_sets_sweep_frontier`] exposes
//!   the trie itself).
//! * **Uncovered-border enumeration** (PR 10, [`SweepConfig::border`],
//!   on by default). Instead of materializing every `C(k, p)` mask of a
//!   layer and testing each against the frontier, one serial
//!   [`Frontier::uncovered_in_layer`] trie walk emits only the masks
//!   *not* covered — skipping covered up-set regions in path-compressed
//!   jumps — and workers steal disjoint uncovered runs. Enumeration
//!   cost scales with the border (`SweepStats::border_visited`, exact at
//!   any thread count) instead of the lattice, which is what pushes the
//!   sweeps from `k = 24` to `k = 28+`.
//!
//! Every entry point reports [`SweepStats`] (visited vs. pruned masks)
//! for observability; `visited + pruned == lattice` always holds.
//!
//! [`WorkflowSweeper`] lifts the per-module sweeps to workflows: it
//! materializes each private module **once**, hoists global→local cost
//! slices out of the per-call loop ([`WorkflowSweeper::localize_costs`]),
//! and backs the composition entry points
//! ([`crate::compose::union_of_standalone_optima_sweep`],
//! [`crate::public::greedy_general_solution_sweep`]) and the
//! `sv-optimize` instance derivations.
//!
//! * **Cross-module work stealing** ([`sweep_workflow_parallel`]).
//!   Each private module's `2^k` lattice is independent, so
//!   workflow-level calls ([`WorkflowSweeper::union_of_optima`],
//!   [`WorkflowSweeper::minimal_sets_all`] and the `from_sweeper`
//!   derivations riding it) steal *modules* off a shared cursor and
//!   nest the intra-module shard pool under the same [`SweepConfig`]
//!   thread budget — per-module results stay deterministic, counters
//!   merge into one [`SweepStats`].
//!
//! The serial enumerations in [`crate::safety`] remain the executable
//! specification; the property suites assert sweep ≡ serial ≡
//! brute-force worlds for every configuration.

use crate::compose::ModuleLens;
use crate::error::CoreError;
use crate::frontier::{BorderRun, Frontier};
use crate::safety::MemoSafetyOracle;
use crate::standalone::{StandaloneModule, MAX_DENSE_ATTRS};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use sv_relation::{AttrId, AttrSet};
use sv_workflow::{ModuleId, Workflow};

/// How a lattice sweep runs: worker count and whether monotone pruning
/// is enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepConfig {
    /// Number of worker threads (clamped to `1..=64`). `1` runs the
    /// sharded sweep on the calling thread — same code path, no spawns.
    pub threads: usize,
    /// Enables the branch-and-bound cost cutoff ([`min_cost_sweep`]) and
    /// the antichain up-set skip ([`minimal_sets_sweep`]). Disabling it
    /// probes every enumerated mask — the ablation baseline the benches
    /// chart pruning against.
    pub prune: bool,
    /// Enumerates each popcount layer through the frontier's
    /// **uncovered-border walk** ([`Frontier::uncovered_in_layer`]):
    /// workers receive disjoint uncovered runs and never issue a
    /// per-mask coverage query, so enumeration cost scales with the
    /// border instead of `C(k, p)`. Disabling it
    /// ([`without_border`](Self::without_border)) falls back to
    /// exhaustive layer enumeration with one [`Frontier::covers`] test
    /// per mask — the PR 6 path, kept as the within-run comparison
    /// baseline. Only meaningful when `prune` is set (the ablation
    /// enumerates everything regardless).
    pub border: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::serial()
    }
}

impl SweepConfig {
    /// Single-threaded, pruned, border-enumerated — the default, and
    /// the configuration the rewired serial entry points use.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: 1,
            prune: true,
            border: true,
        }
    }

    /// Pruned, border-enumerated sweep over `threads` workers.
    #[must_use]
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads,
            prune: true,
            border: true,
        }
    }

    /// Pruned sweep over all available cores
    /// (`std::thread::available_parallelism`).
    #[must_use]
    pub fn auto() -> Self {
        Self::parallel(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Disables pruning (ablation baseline).
    #[must_use]
    pub fn without_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Disables border enumeration: layers are enumerated exhaustively
    /// with a per-mask coverage query (the comparison baseline the
    /// benches gate the border speedup against).
    #[must_use]
    pub fn without_border(mut self) -> Self {
        self.border = false;
        self
    }

    fn worker_count(&self) -> usize {
        self.threads.clamp(1, 64)
    }
}

/// Visited/pruned counters of one sweep (or the merged counters of the
/// per-module sweeps of a workflow-level call).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Total masks in the swept lattice(s): `Σ 2^k`.
    pub lattice: u64,
    /// Masks actually probed through an oracle.
    pub visited: u64,
    /// Masks skipped — by the branch-and-bound cost bound, by the
    /// antichain up-set test, or by the whole-layer cutoff (which prunes
    /// without even enumerating). `visited + pruned == lattice`.
    pub pruned: u64,
    /// Coverage queries answered by the trie frontier
    /// ([`Frontier::covers`]) during an antichain sweep — one per
    /// enumerated mask, so the count is deterministic at any thread
    /// count (layer barriers make each mask queried exactly once).
    /// Zero under border enumeration (the walk replaces per-mask
    /// queries) and for the exhaustive branch-and-bound sweep, which
    /// carries no frontier.
    pub frontier_queries: u64,
    /// Live trie nodes of the final frontier ([`Frontier::node_count`])
    /// — deterministic: the trie shape is canonical in the member set.
    /// Under border-mode branch-and-bound this is the discovered
    /// safe-mask antichain; zero for the exhaustive branch-and-bound
    /// sweep, which carries no frontier.
    pub frontier_nodes: u64,
    /// Masks emitted by the uncovered-border walks
    /// ([`Frontier::uncovered_in_layer`]) — the layers' entire
    /// enumeration cost under `border` mode. Each layer's walk runs
    /// against the barrier-merged frontier snapshot, so the count is
    /// exact at any thread count. Zero when border enumeration is off.
    pub border_visited: u64,
    /// Covered subtrees the border walks skipped whole (one
    /// path-compressed descent each, in place of up to `C(k, p)`
    /// per-mask coverage queries). Exact at any thread count, like
    /// `border_visited`.
    pub border_jumps: u64,
    /// Worker threads the sweep ran with.
    pub threads: usize,
}

impl SweepStats {
    /// Folds another sweep's counters into this one (workflow-level
    /// aggregation; keeps the maximum thread count).
    pub fn merge(&mut self, other: &SweepStats) {
        self.lattice += other.lattice;
        self.visited += other.visited;
        self.pruned += other.pruned;
        self.frontier_queries += other.frontier_queries;
        self.frontier_nodes += other.frontier_nodes;
        self.border_visited += other.border_visited;
        self.border_jumps += other.border_jumps;
        self.threads = self.threads.max(other.threads);
    }

    /// Fraction of the lattice that was probed (`1.0` on an empty
    /// lattice, which cannot occur for `k ≥ 0`).
    #[must_use]
    pub fn visited_fraction(&self) -> f64 {
        if self.lattice == 0 {
            1.0
        } else {
            self.visited as f64 / self.lattice as f64
        }
    }
}

fn check_k(k: usize) -> Result<(), CoreError> {
    if k > MAX_DENSE_ATTRS {
        return Err(CoreError::TooManyAttributes {
            k,
            max: MAX_DENSE_ATTRS,
        });
    }
    Ok(())
}

/// Masks per work-stealing shard. Small enough that 8 workers load-
/// balance a `2^12` lattice, large enough that the atomic cursor is
/// cold compared to the probes.
const SHARD: u64 = 256;

/// Split-table cost lookup: `cost(mask) = lo[mask & lo_mask] +
/// hi[mask >> lo_bits]`, with both tables built by subset-sum DP.
struct CostTable {
    lo: Vec<u64>,
    hi: Vec<u64>,
    lo_bits: u32,
    lo_mask: u64,
}

impl CostTable {
    fn new(costs: &[u64]) -> Self {
        let k = costs.len();
        let lo_bits = (k.div_ceil(2)) as u32;
        let hi_bits = (k as u32) - lo_bits;
        let build = |offset: u32, bits: u32| -> Vec<u64> {
            let mut t = vec![0u64; 1usize << bits];
            for m in 1..t.len() {
                let low = m.trailing_zeros();
                t[m] = t[m & (m - 1)].saturating_add(costs[(offset + low) as usize]);
            }
            t
        };
        Self {
            lo: build(0, lo_bits),
            hi: build(lo_bits, hi_bits),
            lo_bits,
            lo_mask: (1u64 << lo_bits) - 1,
        }
    }

    #[inline]
    fn cost(&self, mask: u64) -> u64 {
        self.lo[(mask & self.lo_mask) as usize]
            .saturating_add(self.hi[(mask >> self.lo_bits) as usize])
    }
}

/// Runs `worker` on `n` scoped threads when `n > 1`, inline otherwise
/// (the `threads == 1` path must not pay a spawn, and must stay
/// debuggable as plain straight-line code).
fn run_workers<F: Fn() + Sync>(n: usize, worker: F) {
    if n <= 1 {
        worker();
        return;
    }
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(&worker);
        }
    });
}

/// Work-steals **whole modules** onto the worker pool: the `n_modules`
/// jobs are claimed off a shared atomic cursor, so fast modules drain
/// quickly and the pool stays busy however unevenly the per-module
/// lattices are sized — the cross-module analogue of the intra-module
/// shard stealing. Both levels nest under **one** [`SweepConfig`]: with
/// `W = config.threads` workers and `M` jobs, `min(W, M)` outer workers
/// claim modules and each claimed module sweeps with the remaining
/// `W / min(W, M)` threads as its intra-module shard pool, so the total
/// concurrency never exceeds the configured budget.
///
/// `f(idx, inner)` runs one module's sweep under the nested `inner`
/// configuration and may be any epoch-memoized entry point
/// ([`WorkflowSweeper::union_of_optima`] and the `sv-optimize`
/// `from_sweeper` derivations route through here). Results come back in
/// module order — and because every per-module sweep is deterministic at
/// any thread count, the whole cross-module sweep is too: parallel ≡
/// serial for every `(threads, prune)` configuration (property-tested in
/// `tests/serve_prop.rs`).
///
/// # Errors
/// Returns the lowest-module-index error if any job fails (every job
/// still runs to completion first, keeping the error deterministic).
pub fn sweep_workflow_parallel<T, F>(
    n_modules: usize,
    config: &SweepConfig,
    f: F,
) -> Result<Vec<T>, CoreError>
where
    T: Send,
    F: Fn(usize, &SweepConfig) -> Result<T, CoreError> + Sync,
{
    if n_modules == 0 {
        return Ok(Vec::new());
    }
    let outer = config.worker_count().min(n_modules);
    let inner = SweepConfig {
        threads: (config.worker_count() / outer).max(1),
        ..*config
    };
    let cursor = AtomicU64::new(0);
    let cancelled = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T, CoreError>>>> =
        (0..n_modules).map(|_| Mutex::new(None)).collect();
    run_workers(outer, || loop {
        // A failed job stops further claims — no point sweeping the
        // remaining lattices when the call is going to error anyway.
        // Modules are claimed in ascending index order, so every index
        // below the lowest failing one still completes, keeping the
        // reported error deterministic.
        if cancelled.load(Ordering::Relaxed) {
            break;
        }
        let idx = cursor.fetch_add(1, Ordering::Relaxed) as usize;
        if idx >= n_modules {
            break;
        }
        let result = f(idx, &inner);
        if result.is_err() {
            cancelled.store(true, Ordering::Relaxed);
        }
        *slots[idx].lock().expect("lock") = Some(result);
    });
    let mut out = Vec::with_capacity(n_modules);
    for s in slots {
        match s.into_inner().expect("lock") {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Unclaimed ⇒ some lower-index job failed; the loop above
            // already returned its error before reaching this slot.
            None => unreachable!("slot skipped without a prior error"),
        }
    }
    Ok(out)
}

/// Minimum-cost safe hidden set by parallel branch-and-bound sweep.
///
/// Deterministic for every `(threads, prune, border)` configuration:
/// returns the lexicographically smallest safe mask of minimum cost,
/// exactly like the serial reference
/// [`crate::safety::min_cost_safe_hidden`].
///
/// Under the default border mode the sweep walks the lattice popcount
/// layer by popcount layer, keeps the safe masks discovered so far as a
/// [`Frontier`], and enumerates each layer through its uncovered border
/// — a mask containing a known safe mask can never beat the recorded
/// `(cost, mask)`-lexicographic best (costs are non-negative and a
/// strict superset is numerically larger), so covered subtrees are
/// skipped whole, bound-aware. Two extra cutoffs fall out: a layer
/// whose border is empty covers every higher layer (stop), and a layer
/// whose cheapest-possible cost (sum of the `p` smallest attribute
/// costs) exceeds the bound cannot improve it, nor can any layer above
/// (stop). [`SweepConfig::without_border`] falls back to the flat
/// numeric-order shard sweep.
///
/// # Errors
/// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
///
/// # Panics
/// Panics unless `costs.len() == k`.
pub fn min_cost_sweep(
    module: &StandaloneModule,
    costs: &[u64],
    gamma: u128,
    config: &SweepConfig,
) -> Result<(Option<(AttrSet, u64)>, SweepStats), CoreError> {
    let k = module.k();
    check_k(k)?;
    assert_eq!(costs.len(), k, "one cost per attribute");
    if config.prune && config.border {
        return min_cost_sweep_border(module, costs, gamma, config);
    }
    let total: u64 = 1u64 << k;
    let workers = config.worker_count();
    let table = CostTable::new(costs);

    let cursor = AtomicU64::new(0);
    // Branch-and-bound state. Readers load `bound` then `best_mask`;
    // the writer (under the mutex) stores `best_mask` *first*, then
    // `bound` with Release, so a reader that observes a bound value also
    // observes a best-mask no older than that bound's update. Stale
    // best-mask reads are always conservative (they only ever cause an
    // extra probe or prune a mask that is provably not the final
    // optimum — see the tie-break argument in the worker).
    let bound = AtomicU64::new(u64::MAX);
    let best_mask = AtomicU64::new(u64::MAX);
    let best = Mutex::new(None::<(u64, u64)>); // (cost, mask)
    let stats = Mutex::new(SweepStats {
        lattice: total,
        threads: workers,
        ..SweepStats::default()
    });

    // One concurrent oracle shared by every worker: levels cached by
    // one shard are warm hits for all others. Workers pin their own
    // kernel scratch so probes never contend on a shared buffer.
    let oracle = MemoSafetyOracle::new(module.clone());
    run_workers(workers, || {
        let mut scratch: Vec<u64> = Vec::new();
        let mut visited = 0u64;
        let mut pruned = 0u64;
        loop {
            let start = cursor.fetch_add(SHARD, Ordering::Relaxed);
            if start >= total {
                break;
            }
            let end = (start + SHARD).min(total);
            for mask in start..end {
                let cost = table.cost(mask);
                if config.prune {
                    // A mask is prunable iff it cannot beat the current
                    // best under the (cost, mask) lexicographic order.
                    // The true optimum (c*, m*) is never pruned: bound
                    // never drops below c*, and when bound == c* the
                    // best-mask atomic holds a genuine safe c*-cost mask
                    // ≤ m*, which equals m* only once m* is recorded.
                    let b = bound.load(Ordering::Acquire);
                    if cost > b || (cost == b && mask >= best_mask.load(Ordering::Acquire)) {
                        pruned += 1;
                        continue;
                    }
                }
                visited += 1;
                if oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch) {
                    let mut slot = best.lock().expect("lock");
                    let improves = match *slot {
                        None => true,
                        Some((bc, bm)) => cost < bc || (cost == bc && mask < bm),
                    };
                    if improves {
                        *slot = Some((cost, mask));
                        best_mask.store(mask, Ordering::Release);
                        bound.store(cost, Ordering::Release);
                    }
                }
            }
        }
        let mut s = stats.lock().expect("lock");
        s.visited += visited;
        s.pruned += pruned;
    });

    let found = best
        .into_inner()
        .expect("lock")
        .map(|(cost, mask)| (AttrSet::from_word(mask), cost));
    Ok((found, stats.into_inner().expect("lock")))
}

/// The border-enumerated branch-and-bound sweep behind
/// [`min_cost_sweep`]'s default mode; see its documentation for the
/// pruning argument.
fn min_cost_sweep_border(
    module: &StandaloneModule,
    costs: &[u64],
    gamma: u128,
    config: &SweepConfig,
) -> Result<(Option<(AttrSet, u64)>, SweepStats), CoreError> {
    let k = module.k();
    let workers = config.worker_count();
    let binom = binomials(k);
    let table = CostTable::new(costs);
    // Per-layer cost floor: a popcount-p mask costs at least the sum of
    // the p smallest attribute costs — non-decreasing in p, so a layer
    // whose floor exceeds the bound ends the sweep, not just the layer.
    let mut sorted = costs.to_vec();
    sorted.sort_unstable();
    let mut floor = vec![0u64; k + 1];
    for p in 1..=k {
        floor[p] = floor[p - 1].saturating_add(sorted[p - 1]);
    }

    // Antichain of the safe masks discovered so far: covered masks are
    // supersets of a recorded safe mask and can never improve the
    // (cost, mask)-lexicographic best.
    let mut frontier = Frontier::new(k);
    let mut stats = SweepStats {
        lattice: 1u64 << k,
        threads: workers,
        ..SweepStats::default()
    };
    let bound = AtomicU64::new(u64::MAX);
    let best_mask = AtomicU64::new(u64::MAX);
    let best = Mutex::new(None::<(u64, u64)>); // (cost, mask)
    let oracle = MemoSafetyOracle::new(module.clone());

    for p in 0..=k {
        let layer_total = binom[k][p];
        if floor[p] > bound.load(Ordering::Acquire) {
            // Cost floor cutoff: every mask at this layer and above is
            // strictly costlier than a safe mask already in hand.
            stats.pruned += binom[k][p..=k].iter().sum::<u64>();
            break;
        }
        let scan = frontier.uncovered_in_layer(p);
        stats.border_visited += scan.masks;
        stats.border_jumps += scan.jumps;
        stats.pruned += layer_total - scan.masks;
        if scan.masks == 0 && !frontier.is_empty() {
            // Fully covered layer ⇒ every higher layer is covered too.
            stats.pruned += binom[k][p + 1..=k].iter().sum::<u64>();
            break;
        }
        let chunks = chunk_runs(&binom, k, p, &scan.runs);
        let cursor = AtomicU64::new(0);
        let layer_visited = AtomicU64::new(0);
        let layer_pruned = AtomicU64::new(0);
        let runs = Mutex::new(Vec::<Vec<u64>>::new());
        let layer_workers = workers.min(chunks.len().max(1));
        run_workers(layer_workers, || {
            let mut scratch: Vec<u64> = Vec::new();
            let mut visited = 0u64;
            let mut pruned = 0u64;
            let mut local_found: Vec<u64> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                let Some(&(first, len)) = chunks.get(i) else {
                    break;
                };
                let mut mask = first;
                for j in 0..len {
                    let cost = table.cost(mask);
                    // Same pruning/tie-break contract as the flat sweep:
                    // the true optimum is never pruned.
                    let b = bound.load(Ordering::Acquire);
                    if cost > b || (cost == b && mask >= best_mask.load(Ordering::Acquire)) {
                        pruned += 1;
                    } else {
                        visited += 1;
                        if oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch) {
                            local_found.push(mask);
                            let mut slot = best.lock().expect("lock");
                            let improves = match *slot {
                                None => true,
                                Some((bc, bm)) => cost < bc || (cost == bc && mask < bm),
                            };
                            if improves {
                                *slot = Some((cost, mask));
                                best_mask.store(mask, Ordering::Release);
                                bound.store(cost, Ordering::Release);
                            }
                        }
                    }
                    if j + 1 < len {
                        mask = next_same_popcount(mask);
                    }
                }
            }
            layer_visited.fetch_add(visited, Ordering::Relaxed);
            layer_pruned.fetch_add(pruned, Ordering::Relaxed);
            if !local_found.is_empty() {
                runs.lock().expect("lock").push(local_found);
            }
        });
        stats.visited += layer_visited.load(Ordering::Relaxed);
        stats.pruned += layer_pruned.load(Ordering::Relaxed);
        merge_layer_runs(&mut frontier, runs.into_inner().expect("lock"));
    }

    stats.frontier_nodes = frontier.node_count() as u64;
    let found = best
        .into_inner()
        .expect("lock")
        .map(|(cost, mask)| (AttrSet::from_word(mask), cost));
    Ok((found, stats))
}

/// Splits a layer's uncovered runs into work-stealing chunks of at most
/// [`SHARD`] masks, locating interior chunk starts by combinatorial
/// rank/unrank instead of stepping mask-by-mask.
fn chunk_runs(binom: &[Vec<u64>], k: usize, p: usize, runs: &[BorderRun]) -> Vec<(u64, u64)> {
    let mut chunks = Vec::new();
    for r in runs {
        if r.len <= SHARD {
            chunks.push((r.first, r.len));
            continue;
        }
        let base = rank_combination(binom, r.first);
        let mut off = 0u64;
        while off < r.len {
            let len = SHARD.min(r.len - off);
            let first = if off == 0 {
                r.first
            } else {
                unrank_combination(binom, k, p, base + off)
            };
            chunks.push((first, len));
            off += len;
        }
    }
    chunks
}

/// `C(n, r)` table up to `n = MAX_DENSE_ATTRS` (fits `u64` comfortably).
fn binomials(n: usize) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let mut row = vec![0u64; n + 1];
        row[0] = 1;
        for j in 1..=i {
            // Pascal: C(i, j) = C(i-1, j-1) + C(i-1, j).
            let prev = &rows[i - 1];
            row[j] = prev[j - 1] + prev[j];
        }
        rows.push(row);
    }
    rows
}

/// The `rank`-th `k`-bit mask of popcount `p`, in ascending numeric
/// order (rank 0 = lowest mask).
fn unrank_combination(binom: &[Vec<u64>], k: usize, p: usize, mut rank: u64) -> u64 {
    let mut mask = 0u64;
    let mut p = p;
    for bit in (0..k).rev() {
        if p == 0 {
            break;
        }
        let without = binom[bit][p]; // masks using only bits < `bit`
        if rank < without {
            continue; // bit stays clear
        }
        rank -= without;
        mask |= 1u64 << bit;
        p -= 1;
    }
    mask
}

/// Inverse of [`unrank_combination`]: the ascending-numeric rank of
/// `mask` within its popcount layer. Colexicographic rank — sum
/// `C(b_j, j + 1)` over the set bit positions `b_j` in ascending order.
fn rank_combination(binom: &[Vec<u64>], mask: u64) -> u64 {
    let mut rank = 0u64;
    let mut seen = 0usize;
    let mut m = mask;
    while m != 0 {
        let bit = m.trailing_zeros() as usize;
        seen += 1;
        rank += binom[bit][seen];
        m &= m - 1;
    }
    rank
}

/// Gosper's hack: next mask with the same popcount, ascending. Must not
/// be called on `0` or the all-ones top mask of the width.
#[inline]
fn next_same_popcount(v: u64) -> u64 {
    let t = v | (v - 1);
    let nt = !t;
    (t + 1) | (((nt & nt.wrapping_neg()) - 1) >> (v.trailing_zeros() + 1))
}

/// All ⊆-minimal safe hidden sets by parallel layered sweep with
/// antichain pruning.
///
/// Result and order are identical to the serial reference
/// [`crate::safety::minimal_safe_hidden_sets`] (ascending popcount,
/// ascending mask within a layer) for every configuration. Thin wrapper
/// over [`minimal_sets_sweep_frontier`], which keeps the antichain as a
/// queryable [`Frontier`].
///
/// # Errors
/// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
pub fn minimal_sets_sweep(
    module: &StandaloneModule,
    gamma: u128,
    config: &SweepConfig,
) -> Result<(Vec<AttrSet>, SweepStats), CoreError> {
    let (frontier, stats) = minimal_sets_sweep_frontier(module, gamma, config)?;
    Ok((frontier.iter().map(AttrSet::from_word).collect(), stats))
}

/// [`minimal_sets_sweep`] returning the swept antichain as a
/// [`Frontier`] — the form the memo layer caches and the algebraic
/// consumers ([`crate::requirements::cardinality_constraints_from_frontier`],
/// [`WorkflowSweeper::union_of_optima`]) keep querying.
///
/// In the default **border mode** (`config.border`, honoured when
/// pruning is on) each layer is produced by one serial
/// [`Frontier::uncovered_in_layer`] walk: covered up-set regions are
/// skipped in path-compressed trie jumps and never materialized, the
/// surviving ascending runs are split into ≤ 256-mask chunks by
/// combinatorial rank, and workers claim chunks off an atomic cursor and
/// probe every mask they are handed — zero per-mask `covers` calls, so
/// `SweepStats::frontier_queries` is 0 and the exact enumeration effort
/// is `border_visited`/`border_jumps`. With [`SweepConfig::without_border`]
/// the pre-PR-10 path runs instead: workers enumerate the whole layer by
/// rank shards and test each mask with the trie's sublinear
/// [`Frontier::covers`]. Either way each layer's workers share one
/// read-only snapshot of the frontier (`&self` queries), and the layer
/// barrier merges their sorted discovery runs straight into the trie in
/// (popcount, mask) order — no intermediate collect-and-resort. The
/// whole-layer cutoff fires when the frontier covered every mask of the
/// layer (border: the walk emits nothing; exhaustive: coverage count ==
/// layer total), which covers every higher layer too.
///
/// # Errors
/// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
pub fn minimal_sets_sweep_frontier(
    module: &StandaloneModule,
    gamma: u128,
    config: &SweepConfig,
) -> Result<(Frontier, SweepStats), CoreError> {
    minimal_sets_sweep_frontier_seeded(module, gamma, config, None)
}

/// [`minimal_sets_sweep_frontier`] with an optional **seed antichain**
/// from an earlier sweep of a related module (the memoized re-sweep
/// path: a streamed append changes the relation but usually perturbs few
/// minimal sets).
///
/// Every seed mask is revalidated against *this* module's oracle before
/// it enters the frontier — no monotonicity of the data is assumed. A
/// still-safe seed makes its whole strict up-set skippable from layer 0
/// (in border mode those masks are never even enumerated); a seed that
/// stopped being safe is dropped; a seed that stopped being *minimal* is
/// evicted later by [`Frontier::insert`]'s dominance eviction when the
/// sweep discovers the smaller safe set below it. Revalidation probes
/// are deliberately **not** counted in `visited`/`pruned`, so
/// `visited + pruned == lattice` stays exact in every mode.
///
/// # Errors
/// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
pub fn minimal_sets_sweep_frontier_seeded(
    module: &StandaloneModule,
    gamma: u128,
    config: &SweepConfig,
    seeds: Option<&Frontier>,
) -> Result<(Frontier, SweepStats), CoreError> {
    let k = module.k();
    check_k(k)?;
    let workers = config.worker_count();
    let binom = binomials(k);
    let mut frontier = Frontier::new(k);
    let mut stats = SweepStats {
        lattice: 1u64 << k,
        threads: workers,
        ..SweepStats::default()
    };
    // One concurrent oracle shared by every worker and every layer:
    // group caches and level memos warm once and stay warm across the
    // layer barriers, and a mask probed by one shard is a warm hit for
    // all others. Workers pin per-worker kernel scratch buffers.
    let oracle = MemoSafetyOracle::new(module.clone());

    if let Some(seeds) = seeds {
        let mut scratch: Vec<u64> = Vec::new();
        let mut still_safe: Vec<u64> = seeds
            .iter()
            .filter(|&m| {
                m.checked_shr(k as u32).unwrap_or(0) == 0
                    && oracle.is_safe_hidden_word_with(m, gamma, &mut scratch)
            })
            .collect();
        // Seeds come from an antichain, so they are pairwise
        // incomparable and insertion order cannot trigger evictions;
        // sort anyway so the trie's growth is deterministic.
        still_safe.sort_unstable_by_key(|&m| (m.count_ones(), m));
        for m in still_safe {
            frontier.insert(m);
        }
    }
    let border = config.prune && config.border;

    for p in 0..=k {
        let layer_total = binom[k][p];
        if border {
            // Border mode: one serial trie walk finds every uncovered
            // mask of the layer as disjoint ascending runs — covered
            // up-set regions are skipped in path-compressed jumps and
            // never enumerated, so workers probe every mask they see
            // (no per-mask `covers`).
            let scan = frontier.uncovered_in_layer(p);
            stats.border_visited += scan.masks;
            stats.border_jumps += scan.jumps;
            stats.pruned += layer_total - scan.masks;
            if scan.masks == 0 {
                // Fully covered layer ⇒ every higher layer is covered
                // too (same argument as the exhaustive cutoff below).
                if !frontier.is_empty() {
                    stats.pruned += binom[k][p + 1..=k].iter().sum::<u64>();
                    break;
                }
                continue;
            }
            let chunks = chunk_runs(&binom, k, p, &scan.runs);
            let cursor = AtomicU64::new(0);
            let layer_visited = AtomicU64::new(0);
            let runs = Mutex::new(Vec::<Vec<u64>>::new());
            let layer_workers = workers.min(chunks.len());
            run_workers(layer_workers, || {
                let mut scratch: Vec<u64> = Vec::new();
                let mut visited = 0u64;
                let mut local_found: Vec<u64> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                    let Some(&(first, len)) = chunks.get(i) else {
                        break;
                    };
                    let mut mask = first;
                    for j in 0..len {
                        visited += 1;
                        if oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch) {
                            local_found.push(mask);
                        }
                        if j + 1 < len {
                            mask = next_same_popcount(mask);
                        }
                    }
                }
                layer_visited.fetch_add(visited, Ordering::Relaxed);
                if !local_found.is_empty() {
                    runs.lock().expect("lock").push(local_found);
                }
            });
            stats.visited += layer_visited.load(Ordering::Relaxed);
            merge_layer_runs(&mut frontier, runs.into_inner().expect("lock"));
            continue;
        }
        let cursor = AtomicU64::new(0);
        // One sorted run per worker: each worker's claimed shards are
        // ascending (atomic cursor) and masks ascend within a shard, so
        // its discoveries are already in ascending mask order.
        let runs = Mutex::new(Vec::<Vec<u64>>::new());
        let layer_visited = AtomicU64::new(0);
        let layer_pruned = AtomicU64::new(0);
        let layer_queries = AtomicU64::new(0);
        // Read-only frontier snapshot shared by this layer's workers;
        // merging waits for the barrier below.
        let snapshot = &frontier;
        // No point spawning more workers than the layer has shards —
        // small layers (the lattice's bottom and top) run inline or on
        // a couple of threads instead of paying `workers` spawns per
        // layer barrier.
        let layer_workers = workers.min(usize::try_from(layer_total.div_ceil(SHARD)).unwrap_or(1));

        run_workers(layer_workers, || {
            let mut scratch: Vec<u64> = Vec::new();
            let mut visited = 0u64;
            let mut pruned = 0u64;
            // Queries are tallied worker-locally (one `covers` per
            // enumerated mask) and summed at the barrier, so the exact
            // gated total never depends on the frontier's own relaxed
            // convenience counter.
            let mut queries = 0u64;
            let mut local_found: Vec<u64> = Vec::new();
            loop {
                let start = cursor.fetch_add(SHARD, Ordering::Relaxed);
                if start >= layer_total {
                    break;
                }
                let end = (start + SHARD).min(layer_total);
                let mut mask = unrank_combination(&binom, k, p, start);
                for rank in start..end {
                    // A mask in the up-set of the antichain is safe by
                    // Proposition 1 but cannot be minimal.
                    let covered = snapshot.covers(mask);
                    queries += 1;
                    if covered {
                        if config.prune {
                            pruned += 1;
                        } else {
                            // Ablation: probe anyway, discard the answer.
                            visited += 1;
                            let _ = oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch);
                        }
                    } else {
                        visited += 1;
                        if oracle.is_safe_hidden_word_with(mask, gamma, &mut scratch) {
                            local_found.push(mask);
                        }
                    }
                    if rank + 1 < end {
                        mask = next_same_popcount(mask);
                    }
                }
            }
            layer_visited.fetch_add(visited, Ordering::Relaxed);
            layer_pruned.fetch_add(pruned, Ordering::Relaxed);
            layer_queries.fetch_add(queries, Ordering::Relaxed);
            if !local_found.is_empty() {
                runs.lock().expect("lock").push(local_found);
            }
        });

        let visited = layer_visited.load(Ordering::Relaxed);
        stats.visited += visited;
        stats.pruned += layer_pruned.load(Ordering::Relaxed);
        stats.frontier_queries += layer_queries.load(Ordering::Relaxed);
        merge_layer_runs(&mut frontier, runs.into_inner().expect("lock"));

        // Layer cutoff: the trie covered every enumerated mask of this
        // layer (visited == 0 ⇔ coverage count == layer total), so every
        // mask of every higher layer contains a covered p-subset and is
        // covered too — skip the remaining up-sets without enumerating.
        if config.prune && layer_total > 0 && visited == 0 && !frontier.is_empty() {
            stats.pruned += binom[k][p + 1..=k].iter().sum::<u64>();
            break;
        }
    }

    stats.frontier_nodes = frontier.node_count() as u64;
    Ok((frontier, stats))
}

/// Merges one layer's per-worker sorted runs into the frontier by k-way
/// merge, preserving the serial (popcount, mask) discovery order without
/// the old collect-extend-resort round trip. Same-layer discoveries all
/// share one popcount and were probed *because* no earlier member
/// covered them, so every merged mask extends the antichain.
fn merge_layer_runs(frontier: &mut Frontier, mut runs: Vec<Vec<u64>>) {
    runs.retain(|r| !r.is_empty());
    let mut heads = vec![0usize; runs.len()];
    let mut last: Option<u64> = None;
    loop {
        let mut next: Option<(u64, usize)> = None;
        for (i, run) in runs.iter().enumerate() {
            if let Some(&v) = run.get(heads[i]) {
                if next.is_none_or(|(nv, _)| v < nv) {
                    next = Some((v, i));
                }
            }
        }
        let Some((mask, i)) = next else { break };
        heads[i] += 1;
        debug_assert!(
            last.is_none_or(|l| l < mask),
            "layer merge must emit strictly ascending masks"
        );
        last = Some(mask);
        let inserted = frontier.insert(mask);
        debug_assert!(inserted, "same-popcount discoveries are incomparable");
    }
}

/// Per-module antichains of a workflow-level sweep, in
/// `private_modules()` order (the [`WorkflowSweeper::minimal_sets_all`]
/// result shape).
pub type ModuleAntichains = Vec<(ModuleId, Vec<AttrSet>)>;

/// Per-module trie frontiers of a workflow-level sweep, in
/// `private_modules()` order (the
/// [`WorkflowSweeper::minimal_frontiers_all`] result shape). The
/// [`Arc`]s alias the sweeper's epoch-stamped memo entries — cloning
/// one never copies the trie.
pub type ModuleFrontiers = Vec<(ModuleId, Arc<Frontier>)>;

/// Per-module hoisted state for workflow-level sweeps: lens, globals,
/// and the materialized standalone module.
struct SweepModule {
    id: ModuleId,
    lens: ModuleLens,
    /// The module's attributes in global-id order (= local-id order).
    globals: Vec<AttrId>,
    /// The same attributes as a global [`AttrSet`] (provenance-row
    /// projection mask for streaming ingest).
    global_set: AttrSet,
    module: StandaloneModule,
}

/// One memoized antichain sweep: the swept [`Frontier`], its counters,
/// and the relation epoch it was swept at. Shared out as [`Arc`]s so
/// derivations query the memoized trie in place instead of cloning
/// member lists.
struct CachedFrontier {
    frontier: Arc<Frontier>,
    stats: SweepStats,
    epoch: u64,
}

/// One memoized min-cost sweep (the map key carries the module, Γ, and
/// the local cost slice it ran under).
struct CachedMinCost {
    found: Option<(AttrSet, u64)>,
    stats: SweepStats,
    epoch: u64,
}

/// Interior sweep memos of a [`WorkflowSweeper`]; see
/// [`WorkflowSweeper::sweeps_performed`].
#[derive(Default)]
struct SweepCaches {
    minimal: HashMap<(usize, u128), CachedFrontier>,
    /// Keyed by `(module index, Γ, local costs)`, so alternating cost
    /// models each keep their own memo instead of thrashing one slot.
    min_cost: HashMap<(usize, u128, Vec<u64>), CachedMinCost>,
    /// Lattice sweeps actually executed (cache misses + stale entries).
    sweeps: u64,
}

/// Global costs localized once per workflow — the hoisted form of the
/// per-call cost-slice rebuild `compose::union_of_standalone_optima_with`
/// and `public::greedy_general_solution` used to do per module call.
/// Build once with [`WorkflowSweeper::localize_costs`], reuse across Γ
/// sweeps.
pub struct WorkflowCosts {
    global: Vec<u64>,
    per_module: Vec<Vec<u64>>,
}

impl WorkflowCosts {
    /// The global cost vector the localization was built from.
    #[must_use]
    pub fn global(&self) -> &[u64] {
        &self.global
    }

    /// The hoisted local cost slice of the `idx`-th private module.
    #[must_use]
    pub fn local(&self, idx: usize) -> &[u64] {
        &self.per_module[idx]
    }
}

/// Workflow-level sweep driver: every private module materialized
/// **once**, swept (in parallel, per [`SweepConfig`]) as many times as
/// the caller needs — union-of-optima assemblies, requirement-list
/// derivations, greedy general solutions.
///
/// ### Epoch-aware sweep memos
///
/// Per-module sweep results (the minimal-sets antichain, min-cost
/// optima) are memoized together with the relation epoch
/// ([`StandaloneModule::epoch`]) they were computed at. When provenance
/// streams in ([`ingest_execution`](Self::ingest_execution) /
/// [`append_execution`](Self::append_execution)), only the modules
/// whose relations actually changed are re-swept on the next
/// derivation; the rest answer from the memo with zero probes
/// (observable via [`sweeps_performed`](Self::sweeps_performed)).
///
/// # Examples
/// ```
/// use sv_core::{SweepConfig, WorkflowSweeper};
/// use sv_workflow::library::fig1_workflow;
///
/// let wf = fig1_workflow();
/// let sweeper = WorkflowSweeper::for_workflow(&wf, 1 << 20, SweepConfig::serial()).unwrap();
/// let gamma = 2;
/// for id in sweeper.module_ids() {
///     let (antichain, stats) = sweeper.module_minimal_sets(id, gamma).unwrap();
///     assert!(!antichain.is_empty());
///     assert_eq!(stats.visited + stats.pruned, stats.lattice);
/// }
/// // Same question again: answered from the epoch-stamped memo.
/// let before = sweeper.sweeps_performed();
/// let _ = sweeper.module_minimal_sets(sweeper.module_ids()[0], gamma).unwrap();
/// assert_eq!(sweeper.sweeps_performed(), before);
/// ```
pub struct WorkflowSweeper {
    config: SweepConfig,
    n_attrs: usize,
    mods: Vec<SweepModule>,
    caches: Mutex<SweepCaches>,
}

impl WorkflowSweeper {
    /// Materializes each private module's relation (budget-capped) and
    /// its global↔local lens.
    ///
    /// # Errors
    /// Propagates module-materialization failures.
    pub fn for_workflow(
        workflow: &Workflow,
        budget: u128,
        config: SweepConfig,
    ) -> Result<Self, CoreError> {
        Self::build(workflow, config, |id| {
            StandaloneModule::from_workflow_module(workflow, id, budget)
        })
    }

    /// The **streaming** constructor: every private module starts with
    /// an empty relation and grows through
    /// [`ingest_execution`](Self::ingest_execution) /
    /// [`append_execution`](Self::append_execution) as provenance
    /// arrives. Sweeps answer with respect to the executions recorded
    /// so far (an empty module is vacuously safe: its antichain is the
    /// empty hidden set).
    ///
    /// # Errors
    /// Propagates structural workflow errors.
    pub fn for_workflow_streaming(
        workflow: &Workflow,
        config: SweepConfig,
    ) -> Result<Self, CoreError> {
        Self::build(workflow, config, |id| {
            StandaloneModule::empty_from_workflow_module(workflow, id)
        })
    }

    fn build(
        workflow: &Workflow,
        config: SweepConfig,
        make: impl Fn(ModuleId) -> Result<StandaloneModule, CoreError>,
    ) -> Result<Self, CoreError> {
        let mut mods = Vec::new();
        for id in workflow.private_modules() {
            let module = make(id)?;
            let lens = ModuleLens::new(workflow, id)?;
            let globals: Vec<AttrId> = workflow.module(id)?.attr_set().iter().collect();
            let global_set = AttrSet::from_iter(globals.iter().copied());
            mods.push(SweepModule {
                id,
                lens,
                globals,
                global_set,
                module,
            });
        }
        Ok(Self {
            config,
            n_attrs: workflow.schema().len(),
            mods,
            caches: Mutex::new(SweepCaches::default()),
        })
    }

    /// The sweep configuration in use.
    #[must_use]
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Replaces the sweep configuration (e.g. to rerun a derivation with
    /// more threads without re-materializing modules). Drops the sweep
    /// memos: results are configuration-independent, but their recorded
    /// [`SweepStats`] are not.
    pub fn set_config(&mut self, config: SweepConfig) {
        self.config = config;
        *self.caches.lock().expect("lock") = SweepCaches::default();
    }

    /// Ingests one workflow execution (a full provenance row over the
    /// **workflow** schema, e.g. from [`Workflow::run`]): each private
    /// module appends its projection. Sweep memos of the modules that
    /// gained a row go stale and re-sweep on next use; unchanged
    /// modules keep answering from the memo. Returns the number of new
    /// module rows.
    ///
    /// Atomic across modules: every projection is validated
    /// ([`StandaloneModule::validate_executions`]) before any module is
    /// touched, so a row that is invalid for one module mutates none.
    ///
    /// # Errors
    /// Propagates append validation failures (domains, FD).
    pub fn ingest_execution(&mut self, row: &sv_relation::Tuple) -> Result<usize, CoreError> {
        let projections: Vec<sv_relation::Tuple> = self
            .mods
            .iter()
            .map(|m| row.project(&m.global_set))
            .collect();
        for (m, p) in self.mods.iter().zip(&projections) {
            m.module.validate_executions(std::slice::from_ref(p))?;
        }
        let mut added = 0;
        for (m, p) in self.mods.iter_mut().zip(&projections) {
            added += m
                .module
                .append_execution(std::slice::from_ref(p))
                .expect("validated above");
        }
        Ok(added)
    }

    /// Streams executions (rows over the **module** sub-schema) into one
    /// module; see [`StandaloneModule::append_execution`].
    ///
    /// # Errors
    /// [`CoreError::MissingOracle`] for an uncovered module id;
    /// propagates append validation failures.
    pub fn append_execution(
        &mut self,
        id: ModuleId,
        rows: &[sv_relation::Tuple],
    ) -> Result<usize, CoreError> {
        let m = self
            .mods
            .iter_mut()
            .find(|m| m.id == id)
            .ok_or(CoreError::MissingOracle { module: id.index() })?;
        m.module.append_execution(rows)
    }

    /// The relation epoch of one covered module.
    #[must_use]
    pub fn module_epoch(&self, id: ModuleId) -> Option<u64> {
        self.entry(id).map(|m| m.module.epoch())
    }

    /// Lattice sweeps actually executed so far — cache misses plus
    /// stale (post-append) entries. Streaming consumers watch this to
    /// confirm that re-derivations only re-sweep changed modules.
    #[must_use]
    pub fn sweeps_performed(&self) -> u64 {
        self.caches.lock().expect("lock").sweeps
    }

    /// Number of attributes of the underlying workflow schema.
    #[must_use]
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Covered module ids, in `private_modules()` order.
    #[must_use]
    pub fn module_ids(&self) -> Vec<ModuleId> {
        self.mods.iter().map(|m| m.id).collect()
    }

    /// The materialized standalone module for `id`.
    #[must_use]
    pub fn module(&self, id: ModuleId) -> Option<&StandaloneModule> {
        self.mods.iter().find(|m| m.id == id).map(|m| &m.module)
    }

    /// Global attribute ids of module `id`'s inputs (local-id order).
    #[must_use]
    pub fn global_inputs(&self, id: ModuleId) -> Option<Vec<u32>> {
        self.entry(id).map(|m| {
            m.module
                .inputs()
                .iter()
                .map(|a| m.globals[a.index()].0)
                .collect()
        })
    }

    /// Global attribute ids of module `id`'s outputs (local-id order).
    #[must_use]
    pub fn global_outputs(&self, id: ModuleId) -> Option<Vec<u32>> {
        self.entry(id).map(|m| {
            m.module
                .outputs()
                .iter()
                .map(|a| m.globals[a.index()].0)
                .collect()
        })
    }

    /// Maps a module-local attribute set to global ids.
    #[must_use]
    pub fn to_global(&self, id: ModuleId, local: &AttrSet) -> Option<AttrSet> {
        self.entry(id).map(|m| m.lens.to_global(local))
    }

    fn entry(&self, id: ModuleId) -> Option<&SweepModule> {
        self.mods.iter().find(|m| m.id == id)
    }

    /// Localizes a global cost vector into per-module slices, **once**
    /// — the hoist that keeps repeated assemblies (Γ sweeps, cost
    /// sweeps) from rebuilding slices per module call.
    ///
    /// # Panics
    /// Panics unless `global_costs.len()` matches the workflow schema.
    #[must_use]
    pub fn localize_costs(&self, global_costs: &[u64]) -> WorkflowCosts {
        assert_eq!(global_costs.len(), self.n_attrs, "one cost per attribute");
        WorkflowCosts {
            global: global_costs.to_vec(),
            per_module: self
                .mods
                .iter()
                .map(|m| m.globals.iter().map(|a| global_costs[a.index()]).collect())
                .collect(),
        }
    }

    /// Union-of-standalone-optima (Example 5 / Theorem 4) through the
    /// parallel sweep: per private module the min-cost safe hidden set,
    /// hidden sets unioned in global coordinates. Returns the hidden
    /// set, its global cost, and the merged sweep counters.
    ///
    /// The per-module sweeps are **work-stolen across modules**
    /// ([`sweep_workflow_parallel`]) under this sweeper's
    /// [`SweepConfig`]: each `2^k` lattice is independent, so modules
    /// sweep concurrently while each claimed module shards its own
    /// lattice over the nested thread budget. The result is identical to
    /// the serial module loop at any thread count. Modules whose
    /// minimal-sets [`Frontier`] is already memoized at the current
    /// epoch skip the branch-and-bound sweep entirely: the optimum is
    /// read off the trie by [`Frontier::min_cost_member`] with zero
    /// probes.
    ///
    /// # Errors
    /// [`CoreError::BudgetExceeded`] if some module admits no safe
    /// subset; propagates sweep errors.
    pub fn union_of_optima(
        &self,
        costs: &WorkflowCosts,
        gamma: u128,
    ) -> Result<(AttrSet, u64, SweepStats), CoreError> {
        // A module with no safe subset errors inside the worker, so the
        // cross-module sweep cancels instead of finishing every other
        // lattice first (the serial loop's early exit, preserved).
        let per_module = sweep_workflow_parallel(self.mods.len(), &self.config, |idx, inner| {
            let (found, s) = self.min_cost_memo(idx, costs.local(idx), gamma, inner)?;
            found
                .ok_or(CoreError::BudgetExceeded {
                    what: "no safe standalone subset exists for a module",
                    required: gamma,
                    budget: 0,
                })
                .map(|f| (f, s))
        })?;
        let mut hidden = AttrSet::new();
        let mut stats = SweepStats::default();
        for (m, ((local_hidden, _), s)) in self.mods.iter().zip(per_module) {
            stats.merge(&s);
            hidden.union_with(&m.lens.to_global(&local_hidden));
        }
        let cost = hidden.iter().map(|a| costs.global()[a.index()]).sum();
        Ok((hidden, cost, stats))
    }

    /// Every module's ⊆-minimal safe hidden sets (module-local ids) with
    /// per-module privacy requirements, swept **in parallel across
    /// modules** ([`sweep_workflow_parallel`]) and memoized exactly like
    /// [`module_minimal_sets`](Self::module_minimal_sets) — the
    /// work-horse behind the `sv-optimize` `from_sweeper` instance
    /// derivations. Returns the per-module antichains in
    /// `private_modules()` order plus the merged sweep counters.
    ///
    /// # Errors
    /// Propagates sweep errors.
    ///
    /// # Panics
    /// Panics unless `gammas` has one entry per covered module.
    pub fn minimal_sets_all(
        &self,
        gammas: &[u128],
    ) -> Result<(ModuleAntichains, SweepStats), CoreError> {
        let (frontiers, stats) = self.minimal_frontiers_all(gammas)?;
        let out = frontiers
            .into_iter()
            .map(|(id, f)| (id, f.iter().map(AttrSet::from_word).collect()))
            .collect();
        Ok((out, stats))
    }

    /// [`minimal_sets_all`](Self::minimal_sets_all) in frontier form:
    /// every module's ⊆-minimal antichain as a shared [`Frontier`]
    /// handle into the epoch memo — the zero-copy shape the
    /// `sv-optimize` `from_sweeper` derivations and the cardinality
    /// recovery ([`crate::requirements::cardinality_constraints_from_frontier`])
    /// consume.
    ///
    /// # Errors
    /// Propagates sweep errors.
    ///
    /// # Panics
    /// Panics unless `gammas` has one entry per covered module.
    pub fn minimal_frontiers_all(
        &self,
        gammas: &[u128],
    ) -> Result<(ModuleFrontiers, SweepStats), CoreError> {
        assert_eq!(gammas.len(), self.mods.len(), "one Γ per private module");
        let per_module = sweep_workflow_parallel(self.mods.len(), &self.config, |idx, inner| {
            self.minimal_sets_memo(idx, gammas[idx], inner)
        })?;
        let mut stats = SweepStats::default();
        let mut out = Vec::with_capacity(self.mods.len());
        for (m, (frontier, s)) in self.mods.iter().zip(per_module) {
            stats.merge(&s);
            out.push((m.id, frontier));
        }
        Ok((out, stats))
    }

    /// Minimum-cost safe hidden set of one module under hoisted costs.
    /// Memoized per `(module, Γ, local costs)` with the module's
    /// relation epoch: repeats are free, appends re-sweep only the
    /// changed module.
    ///
    /// # Errors
    /// Propagates sweep errors; [`CoreError::MissingOracle`] if `id` is
    /// not a covered private module.
    pub fn module_min_cost(
        &self,
        id: ModuleId,
        costs: &WorkflowCosts,
        gamma: u128,
    ) -> Result<(Option<(AttrSet, u64)>, SweepStats), CoreError> {
        let idx = self
            .mods
            .iter()
            .position(|m| m.id == id)
            .ok_or(CoreError::MissingOracle { module: id.index() })?;
        self.min_cost_memo(idx, costs.local(idx), gamma, &self.config)
    }

    /// The epoch-validated min-cost memo behind
    /// [`module_min_cost`](Self::module_min_cost) and
    /// [`union_of_optima`](Self::union_of_optima). `run_config` is the
    /// configuration a cache miss actually sweeps with — the full pool
    /// for direct calls, the nested per-module share inside a
    /// cross-module [`sweep_workflow_parallel`] (results are identical
    /// either way; only the recorded [`SweepStats::threads`] differ).
    fn min_cost_memo(
        &self,
        idx: usize,
        local_costs: &[u64],
        gamma: u128,
        run_config: &SweepConfig,
    ) -> Result<(Option<(AttrSet, u64)>, SweepStats), CoreError> {
        let module = &self.mods[idx].module;
        let epoch = module.epoch();
        let key = (idx, gamma, local_costs.to_vec());
        {
            let mut caches = self.caches.lock().expect("lock");
            if let Some(c) = caches.min_cost.get(&key) {
                if c.epoch == epoch {
                    return Ok((c.found.clone(), c.stats));
                }
            }
            // Frontier algebra: a current-epoch minimal-sets frontier
            // for (module, Γ) already determines the optimum — by
            // Proposition 1 the (cost, mask)-lexicographic minimum over
            // all safe sets is attained at an antichain member
            // ([`Frontier::min_cost_member`]) — so answer with **zero
            // probes** and no lattice sweep. The recorded stats are
            // those of the antichain sweep that built the frontier.
            if let Some(c) = caches.minimal.get(&(idx, gamma)) {
                if c.epoch == epoch {
                    let found = c
                        .frontier
                        .min_cost_member(local_costs)
                        .map(|(mask, cost)| (AttrSet::from_word(mask), cost));
                    let stats = c.stats;
                    caches.min_cost.insert(
                        key,
                        CachedMinCost {
                            found: found.clone(),
                            stats,
                            epoch,
                        },
                    );
                    return Ok((found, stats));
                }
            }
        }
        let (found, stats) = min_cost_sweep(module, local_costs, gamma, run_config)?;
        let mut caches = self.caches.lock().expect("lock");
        caches.sweeps += 1;
        caches.min_cost.insert(
            key,
            CachedMinCost {
                found: found.clone(),
                stats,
                epoch,
            },
        );
        Ok((found, stats))
    }

    /// One module's ⊆-minimal safe hidden sets (module-local ids) via
    /// the parallel layered sweep. Memoized per `(module, Γ)` with the
    /// module's relation epoch: a repeated derivation answers from the
    /// memo with zero probes, and after streamed appends only the
    /// modules whose relations changed are re-swept.
    ///
    /// # Errors
    /// Propagates sweep errors; [`CoreError::MissingOracle`] if `id` is
    /// not a covered private module.
    pub fn module_minimal_sets(
        &self,
        id: ModuleId,
        gamma: u128,
    ) -> Result<(Vec<AttrSet>, SweepStats), CoreError> {
        let (frontier, stats) = self.module_minimal_frontier(id, gamma)?;
        Ok((frontier.iter().map(AttrSet::from_word).collect(), stats))
    }

    /// [`module_minimal_sets`](Self::module_minimal_sets) in frontier
    /// form: a shared handle to the memoized trie, for callers that keep
    /// querying ([`Frontier::covers`]) or run set algebra instead of
    /// walking a member list.
    ///
    /// # Errors
    /// Propagates sweep errors; [`CoreError::MissingOracle`] if `id` is
    /// not a covered private module.
    pub fn module_minimal_frontier(
        &self,
        id: ModuleId,
        gamma: u128,
    ) -> Result<(Arc<Frontier>, SweepStats), CoreError> {
        let idx = self
            .mods
            .iter()
            .position(|m| m.id == id)
            .ok_or(CoreError::MissingOracle { module: id.index() })?;
        self.minimal_sets_memo(idx, gamma, &self.config)
    }

    /// The epoch-validated frontier memo behind
    /// [`module_minimal_sets`](Self::module_minimal_sets) and
    /// [`minimal_sets_all`](Self::minimal_sets_all); `run_config` as in
    /// `min_cost_memo`.
    fn minimal_sets_memo(
        &self,
        idx: usize,
        gamma: u128,
        run_config: &SweepConfig,
    ) -> Result<(Arc<Frontier>, SweepStats), CoreError> {
        let module = &self.mods[idx].module;
        let epoch = module.epoch();
        // A stale (pre-append) frontier is not discarded: its members
        // seed the re-sweep. Each seed is revalidated against the new
        // relation, and still-safe seeds let the border walk skip their
        // up-sets from layer 0 — streamed appends re-enumerate only the
        // border above the stale frontier.
        let seeds = {
            let caches = self.caches.lock().expect("lock");
            match caches.minimal.get(&(idx, gamma)) {
                Some(c) if c.epoch == epoch => {
                    return Ok((Arc::clone(&c.frontier), c.stats));
                }
                Some(c) => Some(Arc::clone(&c.frontier)),
                None => None,
            }
        };
        let (frontier, stats) =
            minimal_sets_sweep_frontier_seeded(module, gamma, run_config, seeds.as_deref())?;
        let frontier = Arc::new(frontier);
        let mut caches = self.caches.lock().expect("lock");
        caches.sweeps += 1;
        caches.minimal.insert(
            (idx, gamma),
            CachedFrontier {
                frontier: Arc::clone(&frontier),
                stats,
                epoch,
            },
        );
        Ok((frontier, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::{self, KernelOracle};
    use sv_workflow::library::{fig1_workflow, one_one_chain};

    fn m1() -> StandaloneModule {
        StandaloneModule::from_workflow_module(&fig1_workflow(), ModuleId(0), 1 << 20).unwrap()
    }

    #[test]
    fn cost_table_matches_bitwise_sum() {
        let costs = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let t = CostTable::new(&costs);
        for mask in 0u64..(1 << 8) {
            let direct: u64 = (0..8)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| costs[i])
                .sum();
            assert_eq!(t.cost(mask), direct, "mask={mask:#b}");
        }
    }

    #[test]
    fn unrank_and_gosper_enumerate_ascending() {
        let binom = binomials(6);
        for p in 0..=6usize {
            let total = binom[6][p];
            let mut by_rank: Vec<u64> = (0..total)
                .map(|r| unrank_combination(&binom, 6, p, r))
                .collect();
            let direct: Vec<u64> = (0u64..(1 << 6))
                .filter(|m| m.count_ones() as usize == p)
                .collect();
            assert_eq!(by_rank, direct, "p={p}");
            // Gosper agrees with unranking.
            if total > 1 {
                for i in 0..(total as usize - 1) {
                    by_rank[i] = next_same_popcount(by_rank[i]);
                    assert_eq!(by_rank[i], direct[i + 1], "p={p} i={i}");
                }
            }
        }
    }

    #[test]
    fn min_cost_sweep_matches_serial_reference() {
        let m = m1();
        for costs in [[1u64; 5], [10, 3, 9, 2, 9]] {
            for gamma in [2u128, 4, 8, 9] {
                let serial =
                    safety::min_cost_safe_hidden(&KernelOracle::new(&m), &costs, gamma).unwrap();
                for threads in [1usize, 2, 4] {
                    for prune in [true, false] {
                        for border in [true, false] {
                            let cfg = SweepConfig {
                                threads,
                                prune,
                                border,
                            };
                            let (found, stats) = min_cost_sweep(&m, &costs, gamma, &cfg).unwrap();
                            assert_eq!(
                                found, serial,
                                "threads={threads} prune={prune} border={border}"
                            );
                            assert_eq!(stats.visited + stats.pruned, stats.lattice);
                            if !prune {
                                assert_eq!(stats.visited, stats.lattice);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn minimal_sets_sweep_matches_serial_reference() {
        let m = m1();
        for gamma in [2u128, 4, 8, 9] {
            let serial = safety::minimal_safe_hidden_sets(&KernelOracle::new(&m), gamma).unwrap();
            for threads in [1usize, 3] {
                for prune in [true, false] {
                    for border in [true, false] {
                        let cfg = SweepConfig {
                            threads,
                            prune,
                            border,
                        };
                        let (sets, stats) = minimal_sets_sweep(&m, gamma, &cfg).unwrap();
                        assert_eq!(
                            sets, serial,
                            "threads={threads} prune={prune} border={border}"
                        );
                        assert_eq!(stats.visited + stats.pruned, stats.lattice);
                    }
                }
            }
        }
    }

    #[test]
    fn layer_cutoff_prunes_whole_upsets() {
        // one-one over 3 wires, Γ = 2: every single wire is a minimal
        // safe set, so layer 2 is fully covered and layers 3..6 are cut
        // off without enumeration.
        let w = one_one_chain(1, 3);
        let m = StandaloneModule::from_workflow_module(&w, ModuleId(0), 1 << 20).unwrap();
        let (sets, stats) = minimal_sets_sweep(&m, 2, &SweepConfig::serial()).unwrap();
        assert_eq!(sets.len(), 6, "each of the 6 wires alone suffices");
        // Visited: the empty set plus the 6 singletons.
        assert_eq!(stats.visited, 7);
        assert_eq!(stats.pruned, stats.lattice - 7);
        assert!(stats.visited_fraction() < 0.5);
    }

    #[test]
    fn sweeper_union_matches_compose_baseline() {
        let w = one_one_chain(2, 2);
        let costs = vec![1u64; w.schema().len()];
        let sweeper = WorkflowSweeper::for_workflow(&w, 1 << 20, SweepConfig::parallel(2)).unwrap();
        let wc = sweeper.localize_costs(&costs);
        let (hidden, cost, stats) = sweeper.union_of_optima(&wc, 2).unwrap();
        let (h2, c2) = crate::compose::union_of_standalone_optima(&w, &costs, 2, 1 << 20).unwrap();
        assert_eq!((hidden, cost), (h2, c2));
        assert_eq!(stats.visited + stats.pruned, stats.lattice);
        assert!(stats.lattice > 0);
    }

    #[test]
    fn sweeper_accessors() {
        let w = fig1_workflow();
        let sweeper = WorkflowSweeper::for_workflow(&w, 1 << 20, SweepConfig::serial()).unwrap();
        assert_eq!(sweeper.module_ids().len(), 3);
        assert_eq!(sweeper.n_attrs(), 7);
        assert!(sweeper.module(ModuleId(0)).is_some());
        assert!(sweeper.module(ModuleId(9)).is_none());
        // m1 has global inputs {0, 1} and outputs {2, 3, 4}.
        assert_eq!(sweeper.global_inputs(ModuleId(0)).unwrap(), vec![0, 1]);
        assert_eq!(sweeper.global_outputs(ModuleId(0)).unwrap(), vec![2, 3, 4]);
        let local = AttrSet::from_indices(&[0, 2]);
        assert_eq!(
            sweeper.to_global(ModuleId(0), &local).unwrap(),
            AttrSet::from_indices(&[0, 2])
        );
        assert!(sweeper
            .module_min_cost(ModuleId(9), &sweeper.localize_costs(&[1; 7]), 2)
            .is_err());
    }

    #[test]
    fn streaming_sweeper_resweeps_only_changed_modules() {
        let w = fig1_workflow();
        let mut sweeper =
            WorkflowSweeper::for_workflow_streaming(&w, SweepConfig::serial()).unwrap();
        let ids = sweeper.module_ids();
        assert_eq!(ids.len(), 3);
        // No executions yet: every module is vacuously safe, so the
        // antichain is the empty hidden set.
        let (sets, _) = sweeper.module_minimal_sets(ids[0], 4).unwrap();
        assert_eq!(sets, vec![AttrSet::new()]);
        assert_eq!(sweeper.sweeps_performed(), 1);

        // Stream the four executions of the Figure-1 input space.
        for x0 in 0..2u32 {
            for x1 in 0..2u32 {
                let row = w.run(&[x0, x1]).unwrap();
                assert!(sweeper.ingest_execution(&row).unwrap() > 0);
            }
        }
        for &id in &ids {
            let _ = sweeper.module_minimal_sets(id, 4).unwrap();
        }
        let after = sweeper.sweeps_performed();
        assert_eq!(after, 4, "one stale refresh + two fresh modules");
        // Re-deriving answers from the epoch memo: zero new sweeps.
        for &id in &ids {
            let _ = sweeper.module_minimal_sets(id, 4).unwrap();
        }
        assert_eq!(sweeper.sweeps_performed(), after);
        // A duplicate execution changes nothing — memos stay valid.
        let row = w.run(&[0, 0]).unwrap();
        assert_eq!(sweeper.ingest_execution(&row).unwrap(), 0);
        for &id in &ids {
            let _ = sweeper.module_minimal_sets(id, 4).unwrap();
        }
        assert_eq!(sweeper.sweeps_performed(), after);

        // Streamed sweeps equal sweeps over modules rebuilt from the
        // same observed provenance.
        for &id in &ids {
            let m = sweeper.module(id).unwrap();
            let rebuilt = StandaloneModule::new(
                m.relation().clone(),
                m.inputs().clone(),
                m.outputs().clone(),
            )
            .unwrap();
            let (streamed, _) = sweeper.module_minimal_sets(id, 4).unwrap();
            assert_eq!(streamed, rebuilt.minimal_safe_hidden_sets(4).unwrap());
        }
    }

    #[test]
    fn min_cost_memo_keyed_by_costs_and_epoch() {
        let w = one_one_chain(2, 2);
        let sweeper = WorkflowSweeper::for_workflow(&w, 1 << 20, SweepConfig::serial()).unwrap();
        let id = sweeper.module_ids()[0];
        let unit = sweeper.localize_costs(&vec![1u64; w.schema().len()]);
        let (r1, s1) = sweeper.module_min_cost(id, &unit, 2).unwrap();
        let n = sweeper.sweeps_performed();
        let (r2, s2) = sweeper.module_min_cost(id, &unit, 2).unwrap();
        assert_eq!((r1, s1), (r2, s2), "memo returns the original result");
        assert_eq!(sweeper.sweeps_performed(), n);
        // A different cost vector is a different question — and each
        // cost model keeps its own memo, so alternating between them
        // never re-sweeps.
        let doubled = sweeper.localize_costs(&vec![2u64; w.schema().len()]);
        let _ = sweeper.module_min_cost(id, &doubled, 2).unwrap();
        assert_eq!(sweeper.sweeps_performed(), n + 1);
        let _ = sweeper.module_min_cost(id, &unit, 2).unwrap();
        let _ = sweeper.module_min_cost(id, &doubled, 2).unwrap();
        assert_eq!(
            sweeper.sweeps_performed(),
            n + 1,
            "alternating cost models hit their own memos"
        );
        // union_of_optima rides the same memo.
        let before = sweeper.sweeps_performed();
        let _ = sweeper.union_of_optima(&unit, 2).unwrap();
        let mid = sweeper.sweeps_performed();
        assert!(mid > before, "first union swept the uncached modules");
        let _ = sweeper.union_of_optima(&unit, 2).unwrap();
        assert_eq!(sweeper.sweeps_performed(), mid);
    }

    #[test]
    fn minimal_frontier_answers_min_cost_without_a_sweep() {
        let w = one_one_chain(2, 2);
        let sweeper = WorkflowSweeper::for_workflow(&w, 1 << 20, SweepConfig::serial()).unwrap();
        let ids = sweeper.module_ids();
        let unit = sweeper.localize_costs(&vec![1u64; w.schema().len()]);
        // Sweep the antichains first; min-cost then reads the memoized
        // tries instead of running branch-and-bound lattices.
        let (frontiers, _) = sweeper.minimal_frontiers_all(&[2, 2]).unwrap();
        let n = sweeper.sweeps_performed();
        assert_eq!(n, 2, "one antichain sweep per module");
        for (&id, (fid, frontier)) in ids.iter().zip(&frontiers) {
            assert_eq!(id, *fid);
            assert!(!frontier.is_empty());
            let (found, stats) = sweeper.module_min_cost(id, &unit, 2).unwrap();
            // Frontier algebra must equal a fresh branch-and-bound sweep.
            let module = sweeper.module(id).unwrap();
            let (fresh, _) =
                min_cost_sweep(module, &vec![1u64; module.k()], 2, &SweepConfig::serial()).unwrap();
            assert_eq!(found, fresh);
            assert_eq!(stats.visited + stats.pruned, stats.lattice);
            assert!(stats.border_visited > 0, "stats come from the trie sweep");
        }
        assert_eq!(
            sweeper.sweeps_performed(),
            n,
            "min-cost answered by frontier algebra, zero extra sweeps"
        );
        // union_of_optima rides the same zero-sweep path.
        let _ = sweeper.union_of_optima(&unit, 2).unwrap();
        assert_eq!(sweeper.sweeps_performed(), n);
    }

    #[test]
    fn frontier_stats_are_thread_and_prune_independent() {
        // `frontier_nodes` is the canonical trie shape of the final
        // antichain — identical across threads, prune, and border
        // settings. `frontier_queries` (exhaustive mode: one `covers()`
        // per enumerated mask) and `border_visited`/`border_jumps`
        // (border mode: the serial walk's exact emission/jump counts)
        // are thread-independent, so either kind gates exactly in CI.
        let m = m1();
        let (f1, s1) = minimal_sets_sweep_frontier(&m, 4, &SweepConfig::serial()).unwrap();
        // Border mode issues zero per-mask coverage queries; its effort
        // counters are the border walk's.
        assert_eq!(s1.frontier_queries, 0);
        assert!(s1.border_visited > 0);
        assert_eq!(s1.visited, s1.border_visited, "every emitted mask probed");
        for prune in [true, false] {
            for border in [true, false] {
                let serial = SweepConfig {
                    threads: 1,
                    prune,
                    border,
                };
                let (fs, ss) = minimal_sets_sweep_frontier(&m, 4, &serial).unwrap();
                assert_eq!(f1, fs, "prune={prune} border={border}");
                assert_eq!(s1.frontier_nodes, ss.frontier_nodes);
                for threads in [2usize, 8] {
                    let cfg = SweepConfig {
                        threads,
                        prune,
                        border,
                    };
                    let (f2, s2) = minimal_sets_sweep_frontier(&m, 4, &cfg).unwrap();
                    assert_eq!(f1, f2, "threads={threads} prune={prune} border={border}");
                    assert_eq!(ss.frontier_queries, s2.frontier_queries);
                    assert_eq!(ss.border_visited, s2.border_visited);
                    assert_eq!(ss.border_jumps, s2.border_jumps);
                    assert_eq!(ss.frontier_nodes, s2.frontier_nodes);
                }
            }
        }
        assert_eq!(s1.frontier_nodes, f1.node_count() as u64);
        // The exhaustive fallback coverage-tests every enumerated mask
        // exactly once.
        let (fx, sx) =
            minimal_sets_sweep_frontier(&m, 4, &SweepConfig::serial().without_border()).unwrap();
        assert_eq!(sx.frontier_queries, fx.queries());
        assert_eq!(sx.border_visited, 0);
    }

    #[test]
    fn union_of_optima_errors_when_a_module_is_unsatisfiable() {
        // Γ = 4 exceeds the boolean-output modules' full range (2), so
        // some module admits no safe subset: the cross-module sweep
        // must cancel and report BudgetExceeded at any thread count.
        let w = fig1_workflow();
        for threads in [1usize, 4] {
            let sweeper =
                WorkflowSweeper::for_workflow(&w, 1 << 20, SweepConfig::parallel(threads)).unwrap();
            let wc = sweeper.localize_costs(&[1u64; 7]);
            let err = sweeper.union_of_optima(&wc, 4).unwrap_err();
            assert!(
                matches!(err, CoreError::BudgetExceeded { .. }),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn no_safe_set_reported_as_none() {
        let m = m1(); // |Range| = 8, so Γ = 9 is unsatisfiable
        let (found, stats) = min_cost_sweep(&m, &[1; 5], 9, &SweepConfig::parallel(4)).unwrap();
        assert!(found.is_none());
        assert_eq!(
            stats.visited, stats.lattice,
            "nothing safe ⇒ nothing pruned"
        );
        let (sets, _) = minimal_sets_sweep(&m, 9, &SweepConfig::parallel(4)).unwrap();
        assert!(sets.is_empty());
    }

    #[test]
    fn too_many_attributes_rejected() {
        // A module cannot actually be built this wide cheaply; fake the
        // check through the public entry contract instead.
        let m = m1();
        assert!(min_cost_sweep(&m, &[1; 5], 2, &SweepConfig::serial()).is_ok());
        assert!(matches!(
            check_k(MAX_DENSE_ATTRS + 1),
            Err(CoreError::TooManyAttributes { .. })
        ));
    }
}
