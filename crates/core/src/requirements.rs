//! Deriving a module's privacy **requirement lists** (§4.2).
//!
//! The workflow Secure-View problem consumes, per module, either
//!
//! * **set constraints** — an explicit list
//!   `L_i = ⟨(I_i^1, O_i^1), …⟩` of hidden input/output attribute pairs,
//!   each sufficient for Γ-standalone-privacy; we produce the complete
//!   antichain of ⊆-minimal safe hidden sets, or
//! * **cardinality constraints** — a list of pairs `(α, β)` meaning
//!   "hiding *any* `α` inputs and *any* `β` outputs suffices"
//!   (the succinct form motivated by Example 6: one-one and majority
//!   modules have exponentially many safe subsets but a two-pair
//!   cardinality list).

use crate::error::CoreError;
use crate::frontier::Frontier;
use crate::safety::{self, KernelOracle, SafetyOracle};
use crate::standalone::StandaloneModule;
use sv_relation::{AttrId, AttrSet};

/// One set-constraint alternative: hide these inputs and outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetRequirement {
    /// Hidden input attributes `I_i^j` (module-local ids).
    pub hidden_inputs: AttrSet,
    /// Hidden output attributes `O_i^j` (module-local ids).
    pub hidden_outputs: AttrSet,
}

impl SetRequirement {
    /// The full hidden set `I_i^j ∪ O_i^j`.
    #[must_use]
    pub fn hidden(&self) -> AttrSet {
        self.hidden_inputs.union(&self.hidden_outputs)
    }
}

/// One cardinality-constraint alternative `(α, β)`: hiding any `α`
/// inputs and any `β` outputs suffices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CardRequirement {
    /// Minimum hidden-input count `α`.
    pub alpha: usize,
    /// Minimum hidden-output count `β`.
    pub beta: usize,
}

/// Computes the module's set-constraints list: all ⊆-minimal safe hidden
/// sets, split into input and output parts (module-local ids).
///
/// One-shot form of [`set_constraints_with`]; callers deriving several
/// requirement lists from the same module should share a
/// [`crate::safety::MemoSafetyOracle`] instead.
///
/// # Errors
/// Propagates enumeration limits from the standalone solver.
pub fn set_constraints(
    m: &StandaloneModule,
    gamma: u128,
) -> Result<Vec<SetRequirement>, CoreError> {
    set_constraints_with(&KernelOracle::new(m), gamma)
}

/// [`set_constraints`] through an explicit safety oracle, so that
/// repeated probes (and later derivations against the same oracle) hit
/// the memo instead of the kernel.
///
/// # Errors
/// Propagates enumeration limits from the standalone solver.
pub fn set_constraints_with(
    oracle: &dyn SafetyOracle,
    gamma: u128,
) -> Result<Vec<SetRequirement>, CoreError> {
    let minimal = safety::minimal_safe_hidden_sets(oracle, gamma)?;
    let m = oracle.module();
    Ok(minimal
        .into_iter()
        .map(|h| SetRequirement {
            hidden_inputs: h.intersection(m.inputs()),
            hidden_outputs: h.intersection(m.outputs()),
        })
        .collect())
}

/// Whether hiding **any** `α` inputs and `β` outputs guarantees
/// Γ-standalone-privacy (checked over all
/// `C(|I|, α) · C(|O|, β)` subset pairs).
#[must_use]
pub fn cardinality_valid(m: &StandaloneModule, alpha: usize, beta: usize, gamma: u128) -> bool {
    cardinality_valid_with(&KernelOracle::new(m), alpha, beta, gamma)
}

/// [`cardinality_valid`] through an explicit safety oracle.
pub fn cardinality_valid_with(
    oracle: &dyn SafetyOracle,
    alpha: usize,
    beta: usize,
    gamma: u128,
) -> bool {
    let (ins, outs): (Vec<AttrId>, Vec<AttrId>) = {
        let m = oracle.module();
        (m.inputs().iter().collect(), m.outputs().iter().collect())
    };
    if alpha > ins.len() || beta > outs.len() {
        return false;
    }
    let in_choices = combinations(&ins, alpha);
    let out_choices = combinations(&outs, beta);
    for ic in &in_choices {
        for oc in &out_choices {
            let mut hidden = AttrSet::from_iter(ic.iter().copied());
            hidden.union_with(&AttrSet::from_iter(oc.iter().copied()));
            if !oracle.is_safe_hidden(&hidden, gamma) {
                return false;
            }
        }
    }
    true
}

/// Computes the module's cardinality-constraints list: the Pareto
/// frontier of valid `(α, β)` pairs (validity is monotone in both
/// coordinates, by Proposition 1).
///
/// Returns an empty list iff even `(|I|, |O|)` (hide everything) fails.
pub fn cardinality_constraints(m: &StandaloneModule, gamma: u128) -> Vec<CardRequirement> {
    cardinality_constraints_with(&KernelOracle::new(m), gamma)
}

/// [`cardinality_constraints`] through an explicit safety oracle. When
/// the oracle is a memoizing one that already served
/// [`set_constraints_with`] (which sweeps the full subset lattice),
/// every probe here is answered from the cache.
pub fn cardinality_constraints_with(
    oracle: &dyn SafetyOracle,
    gamma: u128,
) -> Vec<CardRequirement> {
    let ni = oracle.module().inputs().len();
    let no = oracle.module().outputs().len();
    pareto_frontier(ni, no, |alpha, beta| {
        cardinality_valid_with(oracle, alpha, beta, gamma)
    })
}

/// [`cardinality_constraints`] recomputed from an already-derived
/// antichain of ⊆-minimal safe hidden sets (module-local ids) — e.g.
/// the output of [`crate::sweep::minimal_sets_sweep`]. Because the
/// antichain generates **all** safe hidden sets by superset closure
/// (see [`crate::safety`]'s module docs), `(α, β)` validity is pure set
/// arithmetic: every `α`-input/`β`-output combination must contain some
/// antichain member. **Zero oracle probes.**
#[must_use]
pub fn cardinality_constraints_from_antichain(
    antichain: &[AttrSet],
    inputs: &AttrSet,
    outputs: &AttrSet,
) -> Vec<CardRequirement> {
    // Word-encodable antichains (every swept one: k ≤ MAX_DENSE_ATTRS)
    // go through the trie; anything wider falls back to the flat scan.
    let width = 1 + inputs
        .iter()
        .chain(outputs.iter())
        .chain(antichain.iter().flat_map(AttrSet::iter))
        .map(|a| a.index())
        .max()
        .unwrap_or(0);
    if width <= 64 {
        let frontier = Frontier::from_masks(
            width,
            antichain
                .iter()
                .map(|a| a.as_word().expect("checked width")),
        );
        return cardinality_constraints_from_frontier(&frontier, inputs, outputs);
    }
    let ins: Vec<AttrId> = inputs.iter().collect();
    let outs: Vec<AttrId> = outputs.iter().collect();
    pareto_frontier(ins.len(), outs.len(), |alpha, beta| {
        let in_choices = combinations(&ins, alpha);
        let out_choices = combinations(&outs, beta);
        in_choices.iter().all(|ic| {
            out_choices.iter().all(|oc| {
                let mut hidden = AttrSet::from_iter(ic.iter().copied());
                hidden.union_with(&AttrSet::from_iter(oc.iter().copied()));
                antichain.iter().any(|a| a.is_subset(&hidden))
            })
        })
    })
}

/// [`cardinality_constraints_from_antichain`] straight off a swept
/// [`Frontier`] (e.g. the memoized tries of
/// [`crate::sweep::WorkflowSweeper::minimal_frontiers_all`]): `(α, β)`
/// is valid iff **no** `α`-input/`β`-output choice escapes the
/// frontier's coverage, so validity is a counterexample search — each
/// candidate a sublinear [`Frontier::covers`] query, abandoned on the
/// first escape, with no combination lists materialized. **Zero oracle
/// probes.**
///
/// # Panics
/// Panics if an input/output attribute index is at or above the
/// frontier's width.
#[must_use]
pub fn cardinality_constraints_from_frontier(
    frontier: &Frontier,
    inputs: &AttrSet,
    outputs: &AttrSet,
) -> Vec<CardRequirement> {
    let ins: Vec<u32> = inputs.iter().map(|a| a.0).collect();
    let outs: Vec<u32> = outputs.iter().map(|a| a.0).collect();
    pareto_frontier(ins.len(), outs.len(), |alpha, beta| {
        !any_choice(&ins, alpha, 0, 0, &mut |in_word| {
            any_choice(&outs, beta, 0, in_word, &mut |word| !frontier.covers(word))
        })
    })
}

/// Whether any `need`-element choice from `items[start..]`, OR-ed onto
/// `word`, satisfies `f` — the early-exiting combination search behind
/// [`cardinality_constraints_from_frontier`].
fn any_choice(
    items: &[u32],
    need: usize,
    start: usize,
    word: u64,
    f: &mut impl FnMut(u64) -> bool,
) -> bool {
    if need == 0 {
        return f(word);
    }
    if items.len() - start < need {
        return false; // not enough items left to complete the choice
    }
    for i in start..=(items.len() - need) {
        if any_choice(items, need - 1, i + 1, word | 1u64 << items[i], f) {
            return true;
        }
    }
    false
}

/// Pareto-frontier construction shared by the oracle-probing and
/// antichain-arithmetic derivations: for each α ascending, the least
/// valid β (monotonicity makes β non-increasing in α).
fn pareto_frontier(
    ni: usize,
    no: usize,
    mut valid: impl FnMut(usize, usize) -> bool,
) -> Vec<CardRequirement> {
    let mut frontier: Vec<CardRequirement> = Vec::new();
    let mut beta_hi = no + 1; // sentinel: "none found yet"
    for alpha in 0..=ni {
        let mut found = None;
        let upper = if beta_hi == no + 1 { no } else { beta_hi };
        for beta in 0..=upper {
            if valid(alpha, beta) {
                found = Some(beta);
                break;
            }
        }
        if let Some(beta) = found {
            // Keep only Pareto-minimal entries: a new (α, β) dominates
            // nothing previous (α is larger), and is dominated iff some
            // previous entry has the same β.
            if frontier.last().is_none_or(|l| beta < l.beta) {
                frontier.push(CardRequirement { alpha, beta });
            }
            beta_hi = beta;
            if beta == 0 {
                break; // (α, 0) valid: larger α adds nothing.
            }
        }
    }
    frontier
}

/// All `size`-element combinations of `items` (small-k utility).
fn combinations(items: &[AttrId], size: usize) -> Vec<Vec<AttrId>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(size);
    fn rec(
        items: &[AttrId],
        size: usize,
        start: usize,
        cur: &mut Vec<AttrId>,
        out: &mut Vec<Vec<AttrId>>,
    ) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for i in start..items.len() {
            cur.push(items[i]);
            rec(items, size, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(items, size, 0, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::{library, ModuleId, Visibility, WorkflowBuilder};

    fn m1() -> StandaloneModule {
        StandaloneModule::from_workflow_module(&library::fig1_workflow(), ModuleId(0), 1 << 20)
            .unwrap()
    }

    /// Majority module over 2k boolean inputs as a standalone module.
    fn majority(k: usize) -> StandaloneModule {
        let mut b = WorkflowBuilder::new();
        let ins = b.bool_attrs("x", 2 * k);
        let out = b.attr("y", sv_relation::Domain::boolean());
        b.module(
            "maj",
            &ins,
            &[out],
            Visibility::Private,
            library::majority_fn(),
        );
        let w = b.build().unwrap();
        StandaloneModule::from_workflow_module(&w, ModuleId(0), 1 << 20).unwrap()
    }

    /// One-one module (bitwise negation) over k boolean wires.
    fn one_one(k: usize) -> StandaloneModule {
        let w = library::one_one_chain(1, k);
        StandaloneModule::from_workflow_module(&w, ModuleId(0), 1 << 20).unwrap()
    }

    #[test]
    fn m1_set_constraints_cover_example_3() {
        let reqs = set_constraints(&m1(), 4).unwrap();
        // Hiding {a4, a5} (local output ids 3, 4) must be listed.
        assert!(reqs.iter().any(|r| {
            r.hidden_inputs.is_empty() && r.hidden_outputs == AttrSet::from_indices(&[3, 4])
        }));
        // No requirement consists of inputs only (Example 3: inputs-only
        // hiding is not safe for Γ = 4).
        assert!(reqs.iter().all(|r| !r.hidden_outputs.is_empty()
            || !r.hidden_inputs.is_empty() && !r.hidden().is_empty()));
        let inputs_only = reqs
            .iter()
            .any(|r| r.hidden_outputs.is_empty() && !r.hidden_inputs.is_empty());
        assert!(!inputs_only);
    }

    #[test]
    fn m1_cardinality_frontier() {
        // Derived in Example 3's terms: (α,β) = (0,2) and (1,1) are the
        // minimal valid pairs for Γ = 4; (2,0) is invalid.
        let f = cardinality_constraints(&m1(), 4);
        assert_eq!(
            f,
            vec![
                CardRequirement { alpha: 0, beta: 2 },
                CardRequirement { alpha: 1, beta: 1 },
            ]
        );
        assert!(!cardinality_valid(&m1(), 2, 0, 4));
        assert!(cardinality_valid(&m1(), 1, 1, 4));
    }

    #[test]
    fn majority_example_6() {
        // Example 6: majority on 2k inputs; hiding k+1 inputs or the
        // output gives 2-privacy.
        let m = majority(2); // 4 inputs
        let f = cardinality_constraints(&m, 2);
        assert_eq!(
            f,
            vec![
                CardRequirement { alpha: 0, beta: 1 },
                CardRequirement { alpha: 3, beta: 0 },
            ]
        );
        assert!(!cardinality_valid(&m, 2, 0, 2));
    }

    #[test]
    fn one_one_example_6() {
        // Example 6: a one-one function with k in/out bits; hiding any
        // k inputs or any k outputs gives 2^k-privacy.
        let k = 3;
        let m = one_one(k);
        let gamma = 1 << k;
        assert!(cardinality_valid(&m, k, 0, gamma));
        assert!(cardinality_valid(&m, 0, k, gamma));
        assert!(!cardinality_valid(&m, k - 1, 0, gamma));
        let f = cardinality_constraints(&m, gamma);
        assert_eq!(
            f,
            vec![
                CardRequirement { alpha: 0, beta: k },
                CardRequirement { alpha: k, beta: 0 },
            ]
        );
    }

    #[test]
    fn one_one_mixed_hiding() {
        // For one-one modules, Γ = 2^j needs j hidden wires *on one
        // side*; j split across sides is weaker (hiding 1 input and 1
        // output of a 2-bit identity gives only Γ = 2, not 4).
        let m = one_one(2);
        assert!(cardinality_valid(&m, 1, 1, 2));
        assert!(!cardinality_valid(&m, 1, 1, 4));
    }

    #[test]
    fn frontier_is_antichain_and_sorted() {
        for m in [m1(), majority(2), one_one(2)] {
            for gamma in [2u128, 4] {
                let f = cardinality_constraints(&m, gamma);
                for w in f.windows(2) {
                    assert!(w[0].alpha < w[1].alpha);
                    assert!(w[0].beta > w[1].beta);
                }
            }
        }
    }

    #[test]
    fn unsatisfiable_gamma_gives_empty_frontier() {
        let m = m1(); // |Range| = 8
        assert!(cardinality_constraints(&m, 9).is_empty());
        assert!(cardinality_constraints_from_antichain(&[], m.inputs(), m.outputs()).is_empty());
    }

    #[test]
    fn antichain_frontier_matches_oracle_frontier() {
        for m in [m1(), majority(2), one_one(2), one_one(3)] {
            for gamma in [2u128, 4, 8] {
                let antichain = m.minimal_safe_hidden_sets(gamma).unwrap();
                let via_antichain =
                    cardinality_constraints_from_antichain(&antichain, m.inputs(), m.outputs());
                let via_oracle = cardinality_constraints(&m, gamma);
                assert_eq!(via_antichain, via_oracle, "gamma={gamma}");
            }
        }
    }

    #[test]
    fn trie_frontier_recovery_matches_and_probes_nothing() {
        for m in [m1(), majority(2), one_one(3)] {
            for gamma in [2u128, 4, 8] {
                let (frontier, _) = crate::sweep::minimal_sets_sweep_frontier(
                    &m,
                    gamma,
                    &crate::SweepConfig::serial(),
                )
                .unwrap();
                let via_frontier =
                    cardinality_constraints_from_frontier(&frontier, m.inputs(), m.outputs());
                assert_eq!(
                    via_frontier,
                    cardinality_constraints(&m, gamma),
                    "gamma={gamma}"
                );
            }
        }
        // The empty frontier (unsatisfiable Γ) yields the empty list.
        let f = Frontier::new(5);
        assert!(
            cardinality_constraints_from_frontier(&f, m1().inputs(), m1().outputs()).is_empty()
        );
    }

    #[test]
    fn combinations_counts() {
        let items: Vec<AttrId> = (0..4).map(AttrId).collect();
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 0).len(), 1);
        assert_eq!(combinations(&items, 4).len(), 1);
    }
}
