//! # sv-core — privacy core of `secure-view`
//!
//! Implements the privacy machinery of *Provenance Views for Module
//! Privacy* (PODS 2011):
//!
//! * [`StandaloneModule`] — a module relation `R` with designated input
//!   and output attributes, plus the **Γ-standalone-privacy** checker
//!   (Definition 2) implemented via the exact grouped-counting condition
//!   of the paper's Algorithm 2 / Lemma 4;
//! * [`worlds`] — brute-force possible-world enumeration
//!   (`Worlds(R, V)`, Definition 1) for tiny modules, used as a test
//!   oracle for the fast checker;
//! * [`standalone`] — the **standalone Secure-View** problem (§3):
//!   minimum-cost safe attribute subsets, enumeration of all minimal
//!   safe hidden sets;
//! * [`safety`] — the **safety-oracle layer**: the [`SafetyOracle`]
//!   trait every upper layer programs against, the memoizing
//!   [`MemoSafetyOracle`] (each distinct visible set's privacy level is
//!   computed once on the interned kernel, then every `is_safe(V, Γ)`
//!   is an O(1) lookup), the naive reference oracle, and
//!   [`safety::WorkflowOracles`] (one memoized oracle per private
//!   module, shared by all requirement-list and instance derivations);
//! * [`requirements`] — deriving a module's *set constraints* and
//!   *cardinality constraints* requirement lists (§4.2);
//! * [`frontier`] — the **bitwise-trie antichain frontier**: swept
//!   ⊆-minimal safe-set families as a real data structure ([`Frontier`])
//!   with sublinear coverage/domination queries,
//!   minimality-maintaining insertion, and up-set algebra — the engine
//!   behind the sweeps' Proposition-1 pruning;
//! * [`sweep`] — the **parallel work-stealing lattice sweep**: sharded
//!   subset enumeration with a shared branch-and-bound best-cost bound
//!   and Proposition-1 antichain pruning, plus [`sweep::WorkflowSweeper`]
//!   driving per-module sweeps (with hoisted cost slices) for the
//!   composition and instance-derivation layers;
//! * [`compose`] — Theorem 4: assembling workflow privacy from
//!   standalone guarantees in all-private workflows, plus the exhaustive
//!   workflow-privacy verifier over function-generated possible worlds;
//! * [`flip`] — the tuple/function **flipping** construction of
//!   Lemma 1/2 (Appendix B.3), as an executable witness generator;
//! * [`public`] — §5: privatization of public modules and the Theorem-8
//!   composition for general workflows;
//! * [`oracle`] — instrumented data suppliers and Safe-View oracles for
//!   the communication-complexity experiments (Theorems 1 and 3);
//! * [`wire`] — the serving tier's transport-independent framing:
//!   length-prefixed request/response payloads (probe batches, append
//!   ingest, epoch reads, backpressure and typed faults) that the
//!   `sv-serve` crate moves over its transports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
mod error;
pub mod flip;
pub mod frontier;
pub mod oracle;
pub mod public;
pub mod requirements;
pub mod safety;
pub mod standalone;
pub mod sweep;
pub mod wire;
pub mod worlds;

pub use error::CoreError;
pub use frontier::{BorderRun, BorderScan, Frontier};
pub use safety::{MemoSafetyOracle, ProbeOutcome, ProbeRequest, SafetyOracle};
pub use standalone::StandaloneModule;
pub use sweep::{SweepConfig, SweepStats, WorkflowSweeper};
