//! Error type for the privacy core.

use std::fmt;

/// Errors raised by privacy checking and world enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Input/output attribute sets do not partition the relation schema.
    BadAttributeSplit {
        /// Human-readable reason.
        reason: String,
    },
    /// The relation violates its module FD `I -> O`.
    NotAFunction,
    /// An enumeration (worlds, subsets, executions) exceeds its budget.
    BudgetExceeded {
        /// What was being enumerated.
        what: &'static str,
        /// Required count.
        required: u128,
        /// The caller's budget.
        budget: u128,
    },
    /// A workflow-level operation failed in the workflow substrate.
    Workflow(sv_workflow::WorkflowError),
    /// A relational operation (row validation, append) failed in the
    /// relation substrate.
    Relation(sv_relation::RelationError),
    /// Too many attributes for dense subset enumeration.
    TooManyAttributes {
        /// Number of attributes.
        k: usize,
        /// Supported maximum.
        max: usize,
    },
    /// A [`crate::safety::WorkflowOracles`] set does not cover a
    /// requested private module (it was built for a different
    /// workflow).
    MissingOracle {
        /// Index of the uncovered module.
        module: usize,
    },
    /// A row of a multi-row append/ingest batch failed validation.
    /// Wraps the underlying failure with the 0-based position of the
    /// offending row, so a caller streaming a batch can report (and a
    /// client can repair) the exact row instead of guessing from a
    /// whole-batch error.
    RowRejected {
        /// 0-based index of the offending row within the batch.
        index: usize,
        /// The underlying validation failure.
        source: Box<CoreError>,
    },
    /// A versioned batch probe ([`crate::safety::ProbeRequest`]) named a
    /// relation epoch that does not match the module's current one — the
    /// client derived its question from provenance that has since been
    /// appended to (or from the future). The whole batch is rejected
    /// before any oracle state is touched.
    StaleEpoch {
        /// Index of the module whose epoch mismatched.
        module: usize,
        /// The epoch the request was conditioned on.
        expected: u64,
        /// The module's actual current epoch.
        actual: u64,
    },
}

impl CoreError {
    /// Positions `self` at `index` within a batch: wraps it as
    /// [`RowRejected`](Self::RowRejected), or — when it is already
    /// row-positioned — re-indexes it, keeping the inner cause. Batch
    /// layers use the latter to translate a sub-batch position into the
    /// caller's frame position.
    #[must_use]
    pub fn at_row(self, index: usize) -> Self {
        match self {
            Self::RowRejected { source, .. } => Self::RowRejected { index, source },
            other => Self::RowRejected {
                index,
                source: Box::new(other),
            },
        }
    }

    /// The offending row index, when the error is row-positioned.
    #[must_use]
    pub fn row_index(&self) -> Option<usize> {
        match self {
            Self::RowRejected { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadAttributeSplit { reason } => write!(f, "bad attribute split: {reason}"),
            Self::NotAFunction => write!(f, "relation violates its FD I -> O"),
            Self::BudgetExceeded {
                what,
                required,
                budget,
            } => write!(f, "{what}: requires {required}, budget {budget}"),
            Self::Workflow(e) => write!(f, "workflow error: {e}"),
            Self::Relation(e) => write!(f, "relation error: {e}"),
            Self::TooManyAttributes { k, max } => {
                write!(f, "{k} attributes exceed dense-enumeration maximum {max}")
            }
            Self::MissingOracle { module } => {
                write!(
                    f,
                    "oracle set has no entry for private module {module} (built for a different workflow?)"
                )
            }
            Self::RowRejected { index, source } => {
                write!(f, "row {index} rejected: {source}")
            }
            Self::StaleEpoch {
                module,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "probe against module {module} expects relation epoch {expected}, but the module is at epoch {actual}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Workflow(e) => Some(e),
            Self::Relation(e) => Some(e),
            Self::RowRejected { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<sv_workflow::WorkflowError> for CoreError {
    fn from(e: sv_workflow::WorkflowError) -> Self {
        Self::Workflow(e)
    }
}

impl From<sv_relation::RelationError> for CoreError {
    fn from(e: sv_relation::RelationError) -> Self {
        Self::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::BudgetExceeded {
            what: "worlds",
            required: 100,
            budget: 10,
        };
        assert!(e.to_string().contains("worlds"));
        let e: CoreError = sv_workflow::WorkflowError::Cyclic.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
