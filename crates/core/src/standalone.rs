//! Standalone module privacy (§3 of the paper).
//!
//! A [`StandaloneModule`] packages a module relation `R` with its
//! input/output split `(I, O)`. The key operations are:
//!
//! * [`StandaloneModule::is_safe`] — the exact Γ-standalone-privacy test
//!   (Definition 2) via the grouped-counting condition of the paper's
//!   Algorithm 2 (proved necessary and sufficient in Lemma 4 of
//!   Appendix A.4);
//! * [`StandaloneModule::min_cost_safe_hidden`] — the standalone
//!   **Secure-View** optimization (minimum-cost hidden subset), by
//!   budget-pruned subset enumeration (the paper shows `2^Ω(k)` oracle
//!   calls are unavoidable, Theorem 3, so enumeration is the honest
//!   baseline);
//! * [`StandaloneModule::minimal_safe_hidden_sets`] — all ⊆-minimal safe
//!   hidden subsets, i.e. the module's *set-constraints* requirement
//!   list `L_i` (§4.2).

use crate::error::CoreError;
use std::sync::Arc;
use sv_relation::{ops, AttrSet, Fd, InternedRelation, Relation, Schema, Tuple, Value};
use sv_workflow::{ModuleId, Workflow};

/// Maximum `k = |I| + |O|` supported by dense subset enumeration.
pub const MAX_DENSE_ATTRS: usize = 28;

/// A standalone module: relation `R` over `I ∪ O` with `I -> O`.
///
/// Attribute ids refer to the relation's **own** schema (the module
/// sub-schema), not to any enclosing workflow; see
/// [`crate::compose::ModuleLens`] for the translation.
///
/// Alongside the canonical [`Relation`], the module holds the
/// [`InternedRelation`] kernel view (shared through an `Arc`, so clones
/// share warm group caches). All safety probes run on the kernel; the
/// row-at-a-time seed semantics remain available as
/// [`privacy_level_naive`](Self::privacy_level_naive) /
/// [`is_safe_naive`](Self::is_safe_naive) for property tests and
/// benchmark baselines.
#[derive(Clone, Debug)]
pub struct StandaloneModule {
    relation: Relation,
    inputs: AttrSet,
    outputs: AttrSet,
    kernel: Arc<InternedRelation>,
    /// `inputs` as a bitmask word when every id is `< 64`.
    inputs_word: Option<u64>,
    /// `outputs` as a bitmask word when every id is `< 64`.
    outputs_word: Option<u64>,
}

impl StandaloneModule {
    /// Wraps a relation, validating that `(inputs, outputs)` partition
    /// its schema and that the FD `inputs -> outputs` holds.
    ///
    /// # Errors
    /// [`CoreError::BadAttributeSplit`] or [`CoreError::NotAFunction`].
    pub fn new(relation: Relation, inputs: AttrSet, outputs: AttrSet) -> Result<Self, CoreError> {
        if !inputs.is_disjoint(&outputs) {
            return Err(CoreError::BadAttributeSplit {
                reason: "inputs and outputs overlap".into(),
            });
        }
        let all = inputs.union(&outputs);
        if all != relation.schema().all_attrs() {
            return Err(CoreError::BadAttributeSplit {
                reason: "inputs ∪ outputs must cover the schema".into(),
            });
        }
        let kernel = Arc::new(InternedRelation::from_relation(&relation));
        let inputs_word = inputs.as_word().filter(|_| kernel.fits_word());
        let outputs_word = outputs.as_word().filter(|_| kernel.fits_word());
        let m = Self {
            relation,
            inputs,
            outputs,
            kernel,
            inputs_word,
            outputs_word,
        };
        if !m.relation.satisfies(&m.fd()) {
            return Err(CoreError::NotAFunction);
        }
        Ok(m)
    }

    /// Extracts module `id` of `workflow` as a standalone module by
    /// materializing its full relation (`R_i`, §4).
    ///
    /// Attribute ids in the result refer to the module sub-schema
    /// (the module's attributes in global id order).
    ///
    /// # Errors
    /// Propagates enumeration-budget and structural errors.
    pub fn from_workflow_module(
        workflow: &Workflow,
        id: ModuleId,
        budget: u128,
    ) -> Result<Self, CoreError> {
        let m = workflow.module(id)?;
        let rel = m.standalone_relation(workflow.schema(), budget)?;
        let (inputs, outputs) = Self::local_split(workflow, id)?;
        Self::new(rel, inputs, outputs)
    }

    /// The **streaming** counterpart of
    /// [`from_workflow_module`](Self::from_workflow_module): the module
    /// starts with an *empty* relation over its sub-schema — no
    /// executions recorded yet, so every view is vacuously safe — and
    /// grows row-at-a-time through
    /// [`append_execution`](Self::append_execution) as provenance
    /// arrives. Privacy answers are always with respect to the
    /// executions recorded so far, the live-deployment reading of the
    /// paper's module relation `R`.
    ///
    /// # Errors
    /// Propagates structural workflow errors (unknown module id).
    pub fn empty_from_workflow_module(
        workflow: &Workflow,
        id: ModuleId,
    ) -> Result<Self, CoreError> {
        let m = workflow.module(id)?;
        let sub_schema = Schema::new(
            m.attr_set()
                .iter()
                .map(|a| workflow.schema().attr(a).clone())
                .collect::<Vec<_>>(),
        );
        let (inputs, outputs) = Self::local_split(workflow, id)?;
        Self::new(Relation::empty(sub_schema), inputs, outputs)
    }

    /// Local (sub-schema) input/output split of workflow module `id`:
    /// module attrs sorted by global id = sub-schema order.
    fn local_split(workflow: &Workflow, id: ModuleId) -> Result<(AttrSet, AttrSet), CoreError> {
        let m = workflow.module(id)?;
        let order: Vec<_> = m.attr_set().iter().collect();
        let mut inputs = AttrSet::new();
        let mut outputs = AttrSet::new();
        for (local, &global) in order.iter().enumerate() {
            let local_id = sv_relation::AttrId(local as u32);
            if m.input_set().contains(global) {
                inputs.insert(local_id);
            } else {
                outputs.insert(local_id);
            }
        }
        Ok((inputs, outputs))
    }

    /// The module relation `R`.
    #[must_use]
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The interned columnar kernel view of `R` (shared across clones).
    #[must_use]
    pub fn kernel(&self) -> &InternedRelation {
        &self.kernel
    }

    /// The relation's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// Input attributes `I`.
    #[must_use]
    pub fn inputs(&self) -> &AttrSet {
        &self.inputs
    }

    /// Output attributes `O`.
    #[must_use]
    pub fn outputs(&self) -> &AttrSet {
        &self.outputs
    }

    /// Total number of attributes `k = |I| + |O|`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.schema().len()
    }

    /// The FD `I -> O`.
    #[must_use]
    pub fn fd(&self) -> Fd {
        Fd::new(self.inputs.clone(), self.outputs.clone())
    }

    /// The relation's generation counter
    /// ([`InternedRelation::epoch`]): `0` at construction, bumped by
    /// every [`append_execution`](Self::append_execution) that records
    /// at least one new row. [`crate::safety::MemoSafetyOracle`] stamps
    /// its privacy-level cache with this.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.kernel.epoch()
    }

    /// Appends newly observed executions (full rows over the module
    /// sub-schema) to the relation, **incrementally**: the interned
    /// kernel extends its column store and every warm [`sv_relation::
    /// GroupIndex`] in place (see [`InternedRelation::append_rows`]),
    /// and the canonical [`Relation`] merges the batch in one sorted
    /// pass. Duplicate executions are dropped (set semantics); the
    /// module FD `I -> O` is enforced *before* any mutation, so on
    /// error the module is unchanged.
    ///
    /// Returns the number of genuinely new rows.
    ///
    /// # Errors
    /// [`CoreError::Relation`] on arity/domain violations;
    /// [`CoreError::NotAFunction`] if a row disagrees on outputs with a
    /// recorded (or in-batch) execution of the same input.
    ///
    /// # Examples
    /// ```
    /// use sv_core::StandaloneModule;
    /// use sv_relation::{AttrSet, Relation, Schema, Tuple};
    ///
    /// let schema = Schema::booleans(&["i", "o"]);
    /// let mut m = StandaloneModule::new(
    ///     Relation::empty(schema),
    ///     AttrSet::from_indices(&[0]),
    ///     AttrSet::from_indices(&[1]),
    /// )
    /// .unwrap();
    /// // First execution arrives: i=0 ↦ o=1.
    /// assert_eq!(m.append_execution(&[Tuple::new(vec![0, 1])]).unwrap(), 1);
    /// assert_eq!(m.epoch(), 1);
    /// // A contradicting execution for the same input is rejected.
    /// assert!(m.append_execution(&[Tuple::new(vec![0, 0])]).is_err());
    /// ```
    pub fn append_execution(&mut self, rows: &[Tuple]) -> Result<usize, CoreError> {
        self.validate_executions(rows)?;
        // Nothing can fail past this point: apply to both layers.
        // Clones of this module share the kernel through the `Arc`;
        // copy-on-write keeps their view frozen at their epoch.
        let added = Arc::make_mut(&mut self.kernel)
            .append_rows(rows)
            .expect("rows validated above");
        let merged = self
            .relation
            .insert_batch(rows)
            .expect("rows validated above");
        debug_assert_eq!(added, merged, "kernel and value layer agree");
        Ok(added)
    }

    /// The checks [`append_execution`](Self::append_execution) runs
    /// **before** mutating anything, as a standalone non-mutating
    /// query: arity/domain validation plus the FD `I -> O` precheck
    /// against recorded and in-batch executions. Multi-module ingest
    /// ([`crate::safety::WorkflowOracles::ingest_execution`],
    /// [`crate::sweep::WorkflowSweeper::ingest_execution`]) validates
    /// every module's projection through this first, so a row that is
    /// invalid for *any* module mutates *no* module.
    ///
    /// # Errors
    /// Every failure comes back as [`CoreError::RowRejected`] naming
    /// the 0-based batch position of the offending row, wrapping
    /// [`CoreError::Relation`] (arity/domain violation) or
    /// [`CoreError::NotAFunction`] (output contradiction) — so a caller
    /// streaming a multi-row batch can report exactly which row was
    /// refused instead of a whole-batch error with no position.
    pub fn validate_executions(&self, rows: &[Tuple]) -> Result<(), CoreError> {
        // Arity/domains first (the kernel would also catch this, but
        // only after the FD pass below touched group caches).
        for (i, t) in rows.iter().enumerate() {
            self.relation
                .validate(t)
                .map_err(|e| CoreError::from(e).at_row(i))?;
        }
        // FD precheck: each row's outputs must agree with the recorded
        // execution of its input group (the kernel point lookup warms
        // the `I` grouping, which appends then maintain) and with the
        // batch so far.
        let mut batch_out: std::collections::HashMap<Tuple, Tuple> =
            std::collections::HashMap::new();
        for (i, t) in rows.iter().enumerate() {
            if let Some(rep) = self.kernel.find_group_row(&self.inputs, t.values()) {
                for a in self.outputs.iter() {
                    if self.kernel.value(rep, a) != t.get(a) {
                        return Err(CoreError::NotAFunction.at_row(i));
                    }
                }
            }
            let x = t.project(&self.inputs);
            let y = t.project(&self.outputs);
            match batch_out.entry(x) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != y {
                        return Err(CoreError::NotAFunction.at_row(i));
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(y);
                }
            }
        }
        Ok(())
    }

    /// Reconstructs a streamed module's state from durable storage:
    /// `rows` is the kernel column store **in arrival order** and
    /// `epoch` the recorded generation counter (which, after
    /// compactions, need not equal the row count). The kernel is
    /// rebuilt via [`InternedRelation::from_ordered_rows`] and the
    /// value layer from the same rows, so the result is logically
    /// identical to the uninterrupted module — cold caches aside.
    ///
    /// # Errors
    /// [`CoreError::BadAttributeSplit`] / [`CoreError::NotAFunction`]
    /// as in [`new`](Self::new); [`CoreError::Relation`] (including
    /// [`sv_relation::RelationError::DuplicateRow`]) when the recovered
    /// rows are not a valid duplicate-free column store.
    pub fn from_recovered(
        schema: Schema,
        inputs: AttrSet,
        outputs: AttrSet,
        rows: &[Tuple],
        epoch: u64,
    ) -> Result<Self, CoreError> {
        let kernel = InternedRelation::from_ordered_rows(schema.clone(), rows, epoch)?;
        let relation = Relation::from_rows(schema, rows.to_vec())?;
        let mut m = Self::new(relation, inputs, outputs)?;
        m.kernel = Arc::new(kernel);
        Ok(m)
    }

    /// **Γ-standalone-privacy test** (Definition 2), decided by the exact
    /// condition of Algorithm 2 / Lemma 4:
    ///
    /// `V` is safe for `Γ` iff for every value of the visible inputs
    /// `I ∩ V` appearing in `R`, the rows of that group take at least
    /// `⌈Γ / ∏_{a ∈ O\V} |Δ_a|⌉` distinct values on the visible outputs
    /// `O ∩ V` — each visible-output value extends to
    /// `∏_{a ∈ O\V} |Δ_a|` full outputs by arbitrary hidden-output
    /// assignments.
    ///
    /// Runs on the interned kernel: after the per-attribute-set group
    /// indexes are warm, a probe is two cache lookups plus one pass over
    /// dense `u32` id columns — **zero heap allocation** on the
    /// bitmask-word path (`k ≤ 64`, which [`MAX_DENSE_ATTRS`]
    /// guarantees for every enumerable module).
    #[must_use]
    pub fn is_safe(&self, visible: &AttrSet, gamma: u128) -> bool {
        if gamma <= 1 {
            return true;
        }
        if self.relation.is_empty() {
            // No executions recorded: vacuously safe (no x ∈ π_I(R)).
            return true;
        }
        if let Some(vw) = visible.as_word() {
            if let Some(safe) = self.is_safe_word(vw, gamma) {
                return safe;
            }
        }
        // Wide-schema fallback.
        let vis_in = self.inputs.intersection(visible);
        let vis_out = self.outputs.intersection(visible);
        let hidden_out = self.outputs.difference(visible);
        let h = self.schema().domain_product(&hidden_out);
        if h >= gamma {
            return true; // hidden outputs alone give Γ alternatives
        }
        let d = self.kernel.min_group_distinct(&vis_in, &vis_out);
        (d as u128).saturating_mul(h) >= gamma
    }

    /// Word-encoded safety probe (visible set as a bitmask). Returns
    /// `None` when the module does not fit the ≤ 64-attribute word fast
    /// path; bits outside the schema are ignored.
    #[must_use]
    pub fn is_safe_word(&self, visible_word: u64, gamma: u128) -> Option<bool> {
        if gamma <= 1 || self.relation.is_empty() {
            return Some(true);
        }
        let (iw, ow) = (self.inputs_word?, self.outputs_word?);
        let hidden_out = ow & !visible_word;
        let h = self.schema().domain_product_word(hidden_out);
        if h >= gamma {
            return Some(true);
        }
        let d = self
            .kernel
            .min_group_distinct_words(iw & visible_word, ow & visible_word);
        Some((d as u128).saturating_mul(h) >= gamma)
    }

    /// Safety test phrased on the hidden set `V̄` (`V = A \ V̄`).
    #[must_use]
    pub fn is_safe_hidden(&self, hidden: &AttrSet, gamma: u128) -> bool {
        self.is_safe(&hidden.complement(self.k()), gamma)
    }

    /// The achievable output-diversity bound per visible input group:
    /// minimum over groups of `distinct_visible_outputs × ∏ hidden
    /// output domain sizes`. A set `V` is safe for `Γ` iff this is `≥ Γ`.
    ///
    /// Exposed so benches can chart the *actual* privacy level a view
    /// attains, not just a yes/no answer — and because the level
    /// determines `is_safe(V, Γ)` for every Γ, it is what the memoizing
    /// [`crate::safety::MemoSafetyOracle`] caches per visible set.
    #[must_use]
    pub fn privacy_level(&self, visible: &AttrSet) -> u128 {
        if self.relation.is_empty() {
            return u128::MAX;
        }
        if let Some(vw) = visible.as_word() {
            if let Some(level) = self.privacy_level_word(vw) {
                return level;
            }
        }
        let vis_in = self.inputs.intersection(visible);
        let vis_out = self.outputs.intersection(visible);
        let hidden_out = self.outputs.difference(visible);
        let h = self.schema().domain_product(&hidden_out);
        let d = self.kernel.min_group_distinct(&vis_in, &vis_out);
        if d == usize::MAX {
            return u128::MAX;
        }
        (d as u128).saturating_mul(h)
    }

    /// Word-encoded [`privacy_level`](Self::privacy_level). Returns
    /// `None` when the module does not fit the word fast path.
    #[must_use]
    pub fn privacy_level_word(&self, visible_word: u64) -> Option<u128> {
        if self.relation.is_empty() {
            return Some(u128::MAX);
        }
        let (iw, ow) = (self.inputs_word?, self.outputs_word?);
        let h = self.schema().domain_product_word(ow & !visible_word);
        let d = self
            .kernel
            .min_group_distinct_words(iw & visible_word, ow & visible_word);
        Some((d as u128).saturating_mul(h))
    }

    /// [`privacy_level_word`](Self::privacy_level_word) through a
    /// caller-owned probe scratch buffer — the pinned-buffer form for
    /// callers (sweep workers) that keep one buffer per thread instead
    /// of borrowing from the kernel's scratch pool.
    #[must_use]
    pub fn privacy_level_word_with(
        &self,
        visible_word: u64,
        scratch: &mut Vec<u64>,
    ) -> Option<u128> {
        if self.relation.is_empty() {
            return Some(u128::MAX);
        }
        let (iw, ow) = (self.inputs_word?, self.outputs_word?);
        let h = self.schema().domain_product_word(ow & !visible_word);
        let d = self.kernel.min_group_distinct_words_with(
            iw & visible_word,
            ow & visible_word,
            scratch,
        );
        Some((d as u128).saturating_mul(h))
    }

    /// **Batched** [`privacy_level_word`](Self::privacy_level_word):
    /// answers a whole slice of visible-set words through one kernel
    /// batch call ([`InternedRelation::min_group_distinct_batch_with`]),
    /// so group-index work and pair-code passes amortize across the
    /// requests — duplicate visible sets (and distinct sets sharing the
    /// same visible-input/visible-output split) pay for one evaluation.
    /// `out` is cleared and refilled with one level per input word.
    ///
    /// Returns `None` when the module does not fit the ≤ 64-attribute
    /// word fast path (`out` is left cleared); callers fall back to the
    /// per-probe path.
    pub fn privacy_level_words_batch_with(
        &self,
        visible_words: &[u64],
        scratch: &mut Vec<u64>,
        out: &mut Vec<u128>,
    ) -> Option<()> {
        out.clear();
        let (iw, ow) = (self.inputs_word?, self.outputs_word?);
        if self.relation.is_empty() {
            out.extend(std::iter::repeat_n(u128::MAX, visible_words.len()));
            return Some(());
        }
        let pairs: Vec<(u64, u64)> = visible_words.iter().map(|&w| (iw & w, ow & w)).collect();
        let mut counts: Vec<usize> = Vec::with_capacity(pairs.len());
        self.kernel
            .min_group_distinct_batch_with(&pairs, scratch, &mut counts);
        out.extend(visible_words.iter().zip(&counts).map(|(&w, &d)| {
            let h = self.schema().domain_product_word(ow & !w);
            (d as u128).saturating_mul(h)
        }));
        Some(())
    }

    /// Row-at-a-time privacy level — the seed semantics
    /// ([`ops::reference`]), kept as the executable specification for
    /// property tests and as the benchmark baseline for the kernel.
    #[must_use]
    pub fn privacy_level_naive(&self, visible: &AttrSet) -> u128 {
        if self.relation.is_empty() {
            return u128::MAX;
        }
        let vis_in = self.inputs.intersection(visible);
        let vis_out = self.outputs.intersection(visible);
        let hidden_out = self.outputs.difference(visible);
        let h = self.schema().domain_product(&hidden_out);
        let counts = ops::reference::group_count_distinct(&self.relation, &vis_in, &vis_out);
        counts
            .values()
            .map(|&d| (d as u128).saturating_mul(h))
            .min()
            .unwrap_or(u128::MAX)
    }

    /// Row-at-a-time safety test (seed semantics; see
    /// [`privacy_level_naive`](Self::privacy_level_naive)).
    #[must_use]
    pub fn is_safe_naive(&self, visible: &AttrSet, gamma: u128) -> bool {
        gamma <= 1 || self.privacy_level_naive(visible) >= gamma
    }

    /// Standalone **Secure-View**: minimum-cost hidden subset `V̄` such
    /// that the module is Γ-private w.r.t. `V = A \ V̄`.
    ///
    /// `costs[a]` is the penalty `c(a)` of hiding attribute `a` (additive
    /// cost model, §2.2). Returns the hidden set and its cost, or `None`
    /// if even hiding everything fails (possible only for `Γ` larger
    /// than the full output diversity).
    ///
    /// # Errors
    /// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
    pub fn min_cost_safe_hidden(
        &self,
        costs: &[u64],
        gamma: u128,
    ) -> Result<Option<(AttrSet, u64)>, CoreError> {
        let oracle = crate::safety::KernelOracle::new(self);
        crate::safety::min_cost_safe_hidden(&oracle, costs, gamma)
    }

    /// All ⊆-minimal safe hidden subsets — the module's set-constraints
    /// requirement list `L_i` (§4.2). Safety is monotone in the hidden
    /// set (Proposition 1), so these form an antichain generating all
    /// safe hidden sets by superset closure.
    ///
    /// # Errors
    /// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
    pub fn minimal_safe_hidden_sets(&self, gamma: u128) -> Result<Vec<AttrSet>, CoreError> {
        let oracle = crate::safety::KernelOracle::new(self);
        crate::safety::minimal_safe_hidden_sets(&oracle, gamma)
    }

    /// [`min_cost_safe_hidden`](Self::min_cost_safe_hidden) through the
    /// parallel work-stealing lattice sweep (branch-and-bound on a
    /// shared best-cost bound). Returns the solution plus the sweep's
    /// visited/pruned counters.
    ///
    /// # Errors
    /// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
    pub fn min_cost_safe_hidden_sweep(
        &self,
        costs: &[u64],
        gamma: u128,
        config: &crate::sweep::SweepConfig,
    ) -> Result<(Option<(AttrSet, u64)>, crate::sweep::SweepStats), CoreError> {
        crate::sweep::min_cost_sweep(self, costs, gamma, config)
    }

    /// [`minimal_safe_hidden_sets`](Self::minimal_safe_hidden_sets)
    /// through the parallel layered sweep with Proposition-1 antichain
    /// pruning. Returns the antichain plus the sweep's visited/pruned
    /// counters.
    ///
    /// # Errors
    /// [`CoreError::TooManyAttributes`] if `k > MAX_DENSE_ATTRS`.
    pub fn minimal_safe_hidden_sets_sweep(
        &self,
        gamma: u128,
        config: &crate::sweep::SweepConfig,
    ) -> Result<(Vec<AttrSet>, crate::sweep::SweepStats), CoreError> {
        crate::sweep::minimal_sets_sweep(self, gamma, config)
    }

    /// The actual output `m(x)` recorded in `R` for input `x`, if any.
    #[must_use]
    pub fn output_for(&self, x: &Tuple) -> Option<Tuple> {
        self.relation
            .rows()
            .iter()
            .find(|t| &t.project(&self.inputs) == x)
            .map(|t| t.project(&self.outputs))
    }

    /// All distinct inputs `π_I(R)`.
    #[must_use]
    pub fn input_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .relation
            .rows()
            .iter()
            .map(|t| t.project(&self.inputs))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Dense enumeration of the full input domain `Dom = ∏_{a∈I} Δ_a`
    /// (inputs in local id order).
    #[must_use]
    pub fn input_domain(&self) -> Vec<Vec<Value>> {
        let sizes: Vec<u32> = self
            .inputs
            .iter()
            .map(|a| self.schema().attr(a).domain.size())
            .collect();
        enumerate_mixed_radix(&sizes)
    }

    /// Dense enumeration of the full output range `∏_{a∈O} Δ_a`.
    #[must_use]
    pub fn output_range(&self) -> Vec<Vec<Value>> {
        let sizes: Vec<u32> = self
            .outputs
            .iter()
            .map(|a| self.schema().attr(a).domain.size())
            .collect();
        enumerate_mixed_radix(&sizes)
    }
}

/// Enumerates all assignments over the given domain sizes in
/// mixed-radix order (first coordinate most significant).
#[must_use]
pub fn enumerate_mixed_radix(sizes: &[u32]) -> Vec<Vec<Value>> {
    let total: usize = sizes.iter().map(|&s| s as usize).product();
    let mut out = Vec::with_capacity(total);
    let mut cur = vec![0u32; sizes.len()];
    loop {
        out.push(cur.clone());
        let mut done = true;
        for i in (0..cur.len()).rev() {
            cur[i] += 1;
            if cur[i] < sizes[i] {
                done = false;
                break;
            }
            cur[i] = 0;
        }
        if done {
            break;
        }
    }
    out
}

#[cfg(test)]
fn mask_to_set(mask: u32, k: usize) -> AttrSet {
    AttrSet::from_iter(
        (0..k)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| sv_relation::AttrId(i as u32)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::library::fig1_workflow;

    /// Module m1 of Figure 1 as a standalone module (attrs a1..a5 →
    /// local ids 0..4).
    fn m1() -> StandaloneModule {
        let w = fig1_workflow();
        StandaloneModule::from_workflow_module(&w, ModuleId(0), 1 << 20).unwrap()
    }

    #[test]
    fn m1_shape() {
        let m = m1();
        assert_eq!(m.k(), 5);
        assert_eq!(m.inputs(), &AttrSet::from_indices(&[0, 1]));
        assert_eq!(m.outputs(), &AttrSet::from_indices(&[2, 3, 4]));
        assert_eq!(m.relation().len(), 4);
    }

    #[test]
    fn example3_safe_subsets() {
        // Example 3 of the paper, verbatim:
        let m = m1();
        // V = {a1, a3, a5} is safe for Γ = 4.
        let v = AttrSet::from_indices(&[0, 2, 4]);
        assert!(m.is_safe(&v, 4));
        // Hiding any two output attributes gives Γ = 4 …
        for pair in [[2u32, 3], [2, 4], [3, 4]] {
            assert!(m.is_safe_hidden(&AttrSet::from_indices(&pair), 4));
        }
        // … but V = {a3,a4,a5} (inputs hidden) is NOT safe for Γ = 4:
        // only three distinct outputs exist.
        let v = AttrSet::from_indices(&[2, 3, 4]);
        assert!(!m.is_safe(&v, 4));
        assert!(m.is_safe(&v, 3)); // exactly 3 distinct outputs
        assert_eq!(m.privacy_level(&v), 3);
    }

    #[test]
    fn privacy_level_matches_is_safe() {
        let m = m1();
        for mask in 0u32..(1 << 5) {
            let hidden = mask_to_set(mask, 5);
            let v = hidden.complement(5);
            let level = m.privacy_level(&v);
            for gamma in 1..=9u128 {
                assert_eq!(
                    m.is_safe(&v, gamma),
                    level >= gamma,
                    "mask={mask:#b} gamma={gamma}"
                );
            }
        }
    }

    #[test]
    fn hiding_everything_is_maximally_safe() {
        let m = m1();
        // All 5 attributes hidden: privacy = |Range| = 8 candidates,
        // but only via hidden-output product 2^3 = 8.
        assert!(m.is_safe(&AttrSet::new(), 8));
        assert!(!m.is_safe(&AttrSet::new(), 9));
    }

    #[test]
    fn gamma_one_always_safe() {
        let m = m1();
        assert!(m.is_safe(&m.schema().all_attrs(), 1));
    }

    #[test]
    fn min_cost_uniform_costs() {
        let m = m1();
        // Unit costs: cheapest safe hidden set for Γ=4 has 2 attributes
        // (two outputs, per Example 3).
        let (hidden, cost) = m.min_cost_safe_hidden(&[1; 5], 4).unwrap().unwrap();
        assert_eq!(cost, 2);
        assert!(m.is_safe_hidden(&hidden, 4));
    }

    #[test]
    fn min_cost_respects_weights() {
        let m = m1();
        // Make outputs expensive; hiding {a2, a4} (cost 3+2) is the
        // paper's Example-3 alternative V = {a1,a3,a5}.
        let costs = [10, 3, 9, 2, 9];
        let (hidden, cost) = m.min_cost_safe_hidden(&costs, 4).unwrap().unwrap();
        assert!(m.is_safe_hidden(&hidden, 4));
        assert_eq!(cost, 5);
        assert_eq!(hidden, AttrSet::from_indices(&[1, 3]));
    }

    #[test]
    fn min_cost_unsatisfiable_gamma() {
        let m = m1();
        // Γ = 9 exceeds |Range| = 8: impossible even hiding everything.
        assert!(m.min_cost_safe_hidden(&[1; 5], 9).unwrap().is_none());
    }

    #[test]
    fn minimal_safe_sets_form_antichain_and_generate() {
        let m = m1();
        let minimal = m.minimal_safe_hidden_sets(4).unwrap();
        assert!(!minimal.is_empty());
        // Antichain.
        for (i, a) in minimal.iter().enumerate() {
            for (j, b) in minimal.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
        // Exactness: a hidden set is safe iff it contains some minimal set.
        for mask in 0u32..(1 << 5) {
            let hidden = mask_to_set(mask, 5);
            let safe = m.is_safe_hidden(&hidden, 4);
            let generated = minimal.iter().any(|s| s.is_subset(&hidden));
            assert_eq!(safe, generated, "mask {mask:#b}");
        }
    }

    #[test]
    fn monotonicity_proposition_1() {
        // Hiding more attributes never hurts (Proposition 1).
        let m = m1();
        for mask in 0u32..(1 << 5) {
            let hidden = mask_to_set(mask, 5);
            if m.is_safe_hidden(&hidden, 4) {
                for extra in 0..5u32 {
                    let mut bigger = hidden.clone();
                    bigger.insert(sv_relation::AttrId(extra));
                    assert!(m.is_safe_hidden(&bigger, 4));
                }
            }
        }
    }

    #[test]
    fn output_for_and_inputs() {
        let m = m1();
        let y = m.output_for(&Tuple::new(vec![0, 0])).unwrap();
        assert_eq!(y, Tuple::new(vec![0, 1, 1]));
        assert!(m.output_for(&Tuple::new(vec![9, 9])).is_none());
        assert_eq!(m.input_tuples().len(), 4);
        assert_eq!(m.input_domain().len(), 4);
        assert_eq!(m.output_range().len(), 8);
    }

    #[test]
    fn rejects_bad_splits() {
        let m = m1();
        let r = m.relation().clone();
        let err = StandaloneModule::new(
            r.clone(),
            AttrSet::from_indices(&[0, 1]),
            AttrSet::from_indices(&[1, 2, 3, 4]),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadAttributeSplit { .. }));
        let err = StandaloneModule::new(
            r.clone(),
            AttrSet::from_indices(&[0]),
            AttrSet::from_indices(&[2, 3, 4]),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadAttributeSplit { .. }));
        // a5 -> rest is not a function (a5 takes value 1 twice with
        // different rows) ⇒ NotAFunction.
        let err = StandaloneModule::new(
            r,
            AttrSet::from_indices(&[4]),
            AttrSet::from_indices(&[0, 1, 2, 3]),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::NotAFunction));
    }

    #[test]
    fn mixed_radix_enumeration() {
        assert_eq!(enumerate_mixed_radix(&[2, 3]).len(), 6,);
        assert_eq!(enumerate_mixed_radix(&[]), vec![Vec::<u32>::new()]);
        let e = enumerate_mixed_radix(&[2, 2]);
        assert_eq!(e[0], vec![0, 0]);
        assert_eq!(e[3], vec![1, 1]);
    }
}
