//! Instrumented data suppliers and Safe-View oracles for the paper's
//! communication-complexity experiments.
//!
//! * Theorem 1: deciding whether a visible set is safe requires `Ω(N)`
//!   calls to the **data supplier** (the entity producing `m(x)` on
//!   demand). [`CountingSupplier`] + [`decide_safety_streaming`] measure
//!   how many rows an honest early-terminating checker actually reads.
//! * Theorem 3: with a **Safe-View oracle** answering "is V safe?",
//!   finding a minimum-cost safe subset still needs `2^Ω(k)` oracle
//!   calls. [`SafeViewOracle`] is the oracle interface;
//!   [`min_cost_via_oracle`] is the generic cost-ordered search whose
//!   call count the benchmarks chart (the adversarial oracle lives in
//!   `sv-gen`).
//!
//! [`SafeViewOracle`] is the **black-box, Γ-fixed** access model the
//! lower bounds are stated in; it deliberately hides the module. The
//! white-box counterpart every real consumer uses is
//! [`crate::safety::SafetyOracle`], and [`HonestOracle`] bridges the
//! two: a Γ-fixing adapter over a memoizing
//! [`crate::safety::MemoSafetyOracle`], so the *count* of oracle
//! queries (what Theorem 3 bounds) is decoupled from the *cost* of
//! answering them (which the memo collapses to O(1) after first
//! answer).

use crate::safety::{MemoSafetyOracle, SafetyOracle as _};
use crate::standalone::StandaloneModule;
use sv_relation::{AttrId, AttrSet, Tuple, Value};
use sv_workflow::ModuleFn;

/// A data supplier: produces `y = m(x)` on demand and counts calls
/// (the Theorem-1 access model).
pub trait DataSupplier {
    /// Fetches the module output for input `x`.
    fn fetch(&mut self, x: &[Value]) -> Vec<Value>;
    /// Number of `fetch` calls made so far.
    fn calls(&self) -> u64;
}

/// A [`DataSupplier`] wrapping a [`ModuleFn`].
pub struct CountingSupplier {
    func: ModuleFn,
    calls: u64,
}

impl CountingSupplier {
    /// Wraps a module function.
    #[must_use]
    pub fn new(func: ModuleFn) -> Self {
        Self { func, calls: 0 }
    }
}

impl DataSupplier for CountingSupplier {
    fn fetch(&mut self, x: &[Value]) -> Vec<Value> {
        self.calls += 1;
        self.func.apply(x)
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

/// Decision of a streaming safety check plus the number of supplier
/// calls consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamingVerdict {
    /// Whether the visible set is safe for the given Γ.
    pub safe: bool,
    /// Supplier calls used before the decision was forced.
    pub calls: u64,
}

/// Streams the rows `(x, m(x))` for the given input list from a
/// supplier, deciding Γ-safety of `visible` with the earliest possible
/// termination:
///
/// * **reject** as soon as some visible-input group is exhausted below
///   its required distinct-output count;
/// * **accept** as soon as every group (of the full planned input list)
///   has met its requirement.
///
/// The per-group requirement is the Lemma-4 threshold
/// `⌈Γ / ∏_{a∈O\V}|Δ_a|⌉`. Theorem 1's lower bound says no strategy can
/// beat `Ω(N)` in the worst case; this function lets benchmarks measure
/// the actual call counts on the disjointness gadget.
///
/// `inputs` — the inputs to stream, in order; `in_attrs` / `out_attrs` —
/// the module's input/output attribute ids in the module-local schema of
/// `module`; `visible` — module-local visible set.
pub fn decide_safety_streaming(
    supplier: &mut dyn DataSupplier,
    module: &StandaloneModule,
    inputs: &[Vec<Value>],
    visible: &AttrSet,
    gamma: u128,
) -> StreamingVerdict {
    use std::collections::{HashMap, HashSet};

    let vis_in = module.inputs().intersection(visible);
    let vis_out = module.outputs().intersection(visible);
    let hidden_out = module.outputs().difference(visible);
    let h = module.schema().domain_product(&hidden_out);
    let need = if h >= gamma {
        1
    } else {
        gamma.div_ceil(h) as usize
    };

    // Input-attr positions within the module-local input order.
    let in_order: Vec<AttrId> = module.inputs().iter().collect();
    let out_order: Vec<AttrId> = module.outputs().iter().collect();
    let vis_in_pos: Vec<usize> = in_order
        .iter()
        .enumerate()
        .filter(|(_, a)| vis_in.contains(**a))
        .map(|(i, _)| i)
        .collect();
    let vis_out_pos: Vec<usize> = out_order
        .iter()
        .enumerate()
        .filter(|(_, a)| vis_out.contains(**a))
        .map(|(i, _)| i)
        .collect();

    // Group sizes are known up front (the input list is the plan).
    let mut remaining: HashMap<Tuple, usize> = HashMap::new();
    for x in inputs {
        let key = Tuple::new(vis_in_pos.iter().map(|&i| x[i]).collect());
        *remaining.entry(key).or_insert(0) += 1;
    }
    let total_groups = remaining.len();
    let mut distinct: HashMap<Tuple, HashSet<Tuple>> = HashMap::new();
    let mut satisfied = 0usize;

    let start = supplier.calls();
    for x in inputs {
        let y = supplier.fetch(x);
        let key = Tuple::new(vis_in_pos.iter().map(|&i| x[i]).collect());
        let out = Tuple::new(vis_out_pos.iter().map(|&i| y[i]).collect());
        let set = distinct.entry(key.clone()).or_default();
        let before = set.len();
        set.insert(out);
        if before < need && set.len() >= need {
            satisfied += 1;
        }
        let rem = remaining.get_mut(&key).expect("planned group");
        *rem -= 1;
        if *rem == 0 && set.len() < need {
            return StreamingVerdict {
                safe: false,
                calls: supplier.calls() - start,
            };
        }
        if satisfied == total_groups {
            return StreamingVerdict {
                safe: true,
                calls: supplier.calls() - start,
            };
        }
    }
    StreamingVerdict {
        safe: satisfied == total_groups,
        calls: supplier.calls() - start,
    }
}

/// A Safe-View oracle (Theorem 3's access model): answers whether a
/// visible subset is safe, and counts queries.
pub trait SafeViewOracle {
    /// Number of attributes `k` of the module.
    fn k(&self) -> usize;
    /// Whether the module is Γ-private w.r.t. visible set `visible`.
    fn is_safe(&mut self, visible: &AttrSet) -> bool;
    /// Number of oracle queries made so far.
    fn calls(&self) -> u64;
}

/// The honest oracle: a Γ-fixing adapter over a memoizing
/// [`MemoSafetyOracle`]. Query counts follow the Theorem-3 access
/// model; answering a repeated query costs one cache lookup.
pub struct HonestOracle {
    inner: MemoSafetyOracle,
    gamma: u128,
    calls: u64,
}

impl HonestOracle {
    /// Wraps a module and a privacy requirement.
    #[must_use]
    pub fn new(module: StandaloneModule, gamma: u128) -> Self {
        Self {
            inner: MemoSafetyOracle::new(module),
            gamma,
            calls: 0,
        }
    }

    /// The memoizing safety oracle underneath (hit-rate introspection).
    #[must_use]
    pub fn memo(&self) -> &MemoSafetyOracle {
        &self.inner
    }
}

impl SafeViewOracle for HonestOracle {
    fn k(&self) -> usize {
        self.inner.module().k()
    }

    fn is_safe(&mut self, visible: &AttrSet) -> bool {
        self.calls += 1;
        self.inner.is_safe(visible, self.gamma)
    }

    fn calls(&self) -> u64 {
        self.calls
    }
}

/// Generic oracle-driven Secure-View search: probes hidden subsets in
/// ascending cost order and returns the first safe one (which is then
/// optimal). Worst case `2^k` probes — Theorem 3 proves this is
/// unavoidable up to the exponent constant.
///
/// Returns `(optimal hidden set and cost, oracle calls used)`.
#[must_use]
pub fn min_cost_via_oracle(
    oracle: &mut dyn SafeViewOracle,
    costs: &[u64],
) -> (Option<(AttrSet, u64)>, u64) {
    let k = oracle.k();
    assert_eq!(costs.len(), k);
    assert!(k <= 26, "dense subset probing supports k ≤ 26");
    let mut masks: Vec<u32> = (0..(1u32 << k)).collect();
    let cost_of = |mask: u32| -> u64 {
        (0..k)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| costs[i])
            .sum()
    };
    masks.sort_by_key(|&m| (cost_of(m), m.count_ones()));
    let before = oracle.calls();
    for mask in masks {
        let hidden = AttrSet::from_iter(
            (0..k)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| AttrId(i as u32)),
        );
        let visible = hidden.complement(k);
        if oracle.is_safe(&visible) {
            return (Some((hidden, cost_of(mask))), oracle.calls() - before);
        }
    }
    (None, oracle.calls() - before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::{library::fig1_workflow, ModuleId};

    fn m1() -> StandaloneModule {
        StandaloneModule::from_workflow_module(&fig1_workflow(), ModuleId(0), 1 << 20).unwrap()
    }

    #[test]
    fn counting_supplier_counts() {
        let mut s = CountingSupplier::new(sv_workflow::library::m1_fn());
        assert_eq!(s.calls(), 0);
        let y = s.fetch(&[0, 0]);
        assert_eq!(y, vec![0, 1, 1]);
        s.fetch(&[1, 1]);
        assert_eq!(s.calls(), 2);
    }

    #[test]
    fn streaming_matches_offline_checker() {
        let m = m1();
        let inputs = m.input_domain();
        for mask in 0u32..(1 << 5) {
            let visible = AttrSet::from_iter(
                (0..5)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| AttrId(i as u32)),
            );
            for gamma in [2u128, 4] {
                let mut s = CountingSupplier::new(sv_workflow::library::m1_fn());
                let v = decide_safety_streaming(&mut s, &m, &inputs, &visible, gamma);
                assert_eq!(
                    v.safe,
                    m.is_safe(&visible, gamma),
                    "visible={visible:?} gamma={gamma}"
                );
                assert!(v.calls <= inputs.len() as u64);
            }
        }
    }

    #[test]
    fn streaming_early_accept_when_hidden_outputs_suffice() {
        // Γ = 2 with two hidden outputs: h = 4 ≥ Γ, need = 1 per group;
        // accepting requires seeing one row per group.
        let m = m1();
        let inputs = m.input_domain();
        let visible = AttrSet::from_indices(&[0, 1, 2]); // hide a4, a5
        let mut s = CountingSupplier::new(sv_workflow::library::m1_fn());
        let v = decide_safety_streaming(&mut s, &m, &inputs, &visible, 2);
        assert!(v.safe);
        assert_eq!(v.calls, 4, "one row per singleton group");
    }

    #[test]
    fn honest_oracle_and_search_find_optimum() {
        let m = m1();
        let costs = vec![1u64; 5];
        let expect = m.min_cost_safe_hidden(&costs, 4).unwrap().unwrap().1;
        let mut oracle = HonestOracle::new(m, 4);
        let (found, calls) = min_cost_via_oracle(&mut oracle, &costs);
        let (hidden, cost) = found.unwrap();
        assert_eq!(cost, expect);
        assert_eq!(hidden.len(), 2);
        assert!(calls >= 1);
        assert_eq!(calls, oracle.calls());
    }

    #[test]
    fn oracle_search_reports_unsatisfiable() {
        let m = m1();
        let mut oracle = HonestOracle::new(m, 9);
        let (found, calls) = min_cost_via_oracle(&mut oracle, &[1; 5]);
        assert!(found.is_none());
        assert_eq!(calls, 32, "entire lattice probed");
    }
}
