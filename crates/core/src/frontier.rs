//! Bitwise-trie **antichain frontier** over `u64` attribute masks.
//!
//! Proposition 1 makes safety monotone in the hidden set: the ⊆-minimal
//! safe hidden sets form an antichain whose superset closure generates
//! *every* safe set. The lattice sweeps ([`crate::sweep`]) therefore
//! spend their inner loop on one question — *is this mask in the up-set
//! of the antichain found so far?* — which a flat `Vec<u64>` answers in
//! `O(|antichain|)` per mask. [`Frontier`] stores the antichain as a
//! path-compressed binary trie over the mask bits and answers the same
//! question ([`covers`](Frontier::covers)) through a **bitsliced
//! occurrence index**: a branch-free lane scan that screens hundreds of
//! members per super-word and exits at the first qualifying one, so
//! covered queries — the overwhelming majority once the antichain is
//! dense — certify in a handful of word operations rather than hundreds
//! of member visits.
//!
//! ### Trie layout
//!
//! A [`Frontier`] over `k`-bit masks is a binary trie of depth `k`:
//! level `ℓ ∈ 0..k` tests bit `k-1-ℓ` (most-significant bit at the
//! root), so a left-first depth-first walk yields members in ascending
//! numeric order. The trie is **path-compressed** (Patricia/ZDD-style
//! level skipping): each arena node spans a run of non-branching levels
//! `start..branch` whose path bits are stored in `prefix` *at their
//! absolute mask positions*, then either branches at level `branch`
//! into two always-present children, or — when `branch == k` — is a
//! **terminal** holding one member's entire remaining suffix. Branch
//! bits live on the edges (a `kids[1]` edge adds the branch bit), so a
//! per-node subset test is a single `prefix & !query == 0`. Freed slots
//! recycle through a free list; interior nodes always have two live
//! children (removal merges single-child nodes into their child), which
//! makes the shape canonical for a given member set — the trie is the
//! **canonical antichain store** behind ordering
//! ([`iter`](Frontier::iter)), structural equality, and the
//! deterministic [`node_count`](Frontier::node_count).
//!
//! ### Occurrence index
//!
//! Queries run against a **bitsliced occurrence index** maintained
//! alongside the trie: every member owns a slot in a 512-slot
//! super-word of eight `u64` lanes, and for each bit position `b` a
//! super-word row records which of its slots have bit `b` set, laid out
//! word-major (one super-word's `k` rows are contiguous — a few cache
//! lines). [`covers`](Frontier::covers) ORs the rows of the bits the
//! query *lacks* into a forbidden set; any live slot outside it is a
//! member ⊆ query. [`dominated_by`](Frontier::dominated_by) ANDs the
//! rows of the query's own bits; any surviving slot is a member ⊇
//! query. Both scan super-words in insertion order (the sweeps insert
//! in (popcount, mask) order, so small, high-coverage members sit in
//! the earliest words) and exit at the first surviving word, which is
//! what makes dense-antichain coverage tests effectively constant-time:
//! 512 members are screened per block by straight-line lane OR/AND ops
//! with no data-dependent branching inside the block.
//!
//! Each super-word additionally carries a **compaction digest** — a
//! conservative AND/OR of its live member masks plus popcount bounds —
//! letting both queries skip a whole 512-slot block in two word ops
//! when the digest alone rules it out (e.g. every member of the block
//! has a bit the query lacks). Digests are maintained incrementally and
//! only tightened lazily: evictions leave them stale-but-sound
//! (a stale AND is a subset of the true AND, a stale OR a superset of
//! the true OR), and a block whose members are all evicted by
//! insert-driven dominance is reset and — when it is the trailing
//! block — recycled outright, shrinking the scan.
//!
//! ### Border enumeration
//!
//! The sweeps' outer loop is the dual question: *which masks of a
//! popcount layer are **not** yet covered?* Instead of enumerating all
//! `C(k, p)` masks and testing each,
//! [`uncovered_in_layer`](Frontier::uncovered_in_layer) walks the trie
//! once, MSB-first, carrying the set of members still compatible with
//! the mask prefix decided so far. A subtree all of whose completions
//! contain a member is skipped whole (one **border jump** per
//! path-compressed descent), and a subtree no member can reach is
//! emitted as one contiguous [`BorderRun`] of `C(width, remaining)`
//! uncovered masks — so the walk costs `O(border)`, not `O(layer)`.
//! [`next_uncovered`](Frontier::next_uncovered) is the
//! single-successor form of the same walk.
//!
//! ### Minimality invariant
//!
//! [`insert`](Frontier::insert) keeps the member set an **antichain**:
//! a mask already covered by a member (some member ⊆ mask) is rejected,
//! and an accepted mask first evicts every member it dominates (members
//! ⊇ mask). The stored set is therefore always exactly the ⊆-minimal
//! elements of everything ever inserted, in any insertion order.
//!
//! ### Concurrency
//!
//! Queries ([`covers`](Frontier::covers) /
//! [`dominated_by`](Frontier::dominated_by)) take `&self` and the type
//! is `Sync`, so sweep workers share one read-only snapshot per layer
//! and merge discoveries behind the layer barrier (see
//! [`crate::sweep::minimal_sets_sweep`]). The only interior mutability
//! is the relaxed [`queries`](Frontier::queries) counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// "No subtree" sentinel (empty root; never a live interior child).
const NIL: u32 = u32::MAX;

/// `u64` lanes per occurrence-index super-word. Eight 64-slot lanes
/// (one cache line per row) screen the most members per iteration of
/// the straight-line query kernels without spilling accumulators.
const LANES: usize = 8;

/// Member slots per super-word.
const SLOTS: usize = 64 * LANES;

/// One path-compressed trie node; see the [module docs](self).
#[derive(Clone, Copy, Debug)]
struct Node {
    /// Path bits for levels `start..branch`, at absolute mask positions.
    prefix: u64,
    /// First level this node's segment covers.
    start: u32,
    /// Branching level, or `k` for a terminal (member) node.
    branch: u32,
    /// Children (both live for interior nodes); a terminal instead
    /// keeps its occurrence-index slot in `kids[0]`.
    kids: [u32; 2],
}

/// A ⊆-minimal antichain of `k`-bit masks stored as a path-compressed
/// bitwise trie, with sublinear subset/superset containment queries and
/// first-class set algebra. See the [module docs](self) for layout and
/// invariants.
///
/// # Examples
/// ```
/// use sv_core::Frontier;
///
/// let mut f = Frontier::new(4);
/// assert!(f.insert(0b0011));
/// assert!(f.insert(0b1100));
/// // 0b0111 ⊇ 0b0011 is already generated — rejected, not stored.
/// assert!(!f.insert(0b0111));
/// // Inserting a subset evicts the dominated member.
/// assert!(f.insert(0b0001));
/// assert_eq!(f.iter().collect::<Vec<_>>(), vec![0b0001, 0b1100]);
///
/// assert!(f.covers(0b1101), "contains the member 0b0001");
/// assert!(!f.covers(0b0010));
/// assert!(f.dominated_by(0b0100), "0b1100 is a superset");
/// ```
#[derive(Debug)]
pub struct Frontier {
    k: u32,
    /// Node arena; freed slots recycled through `free`.
    nodes: Vec<Node>,
    root: u32,
    len: usize,
    free: Vec<u32>,
    /// Occurrence index over [`SLOTS`]-slot super-words: lane `l`, bit
    /// `s` of `live[w]` marks slot `SLOTS·w + 64l + s` as a member;
    /// `occ[w * k + b]` is the same super-word restricted to members
    /// with mask bit `b` set (word-major: one super-word's `k` rows are
    /// contiguous, vector-width lanes).
    live: Vec<[u64; LANES]>,
    occ: Vec<[u64; LANES]>,
    /// Slot → member mask (so eviction can clear the right rows).
    slot_mask: Vec<u64>,
    slot_free: Vec<u32>,
    /// Per-super-word compaction digests (see the [module docs](self)):
    /// a conservative AND (`⊆` the true AND of the block's live masks)
    /// and OR (`⊇` the true OR), plus popcount lower/upper bounds and
    /// the live count. Evictions leave them stale-but-sound; they reset
    /// when the block empties.
    block_and: Vec<u64>,
    block_or: Vec<u64>,
    block_minpop: Vec<u32>,
    block_maxpop: Vec<u32>,
    block_pop: Vec<u32>,
    /// Coverage/domination queries answered (relaxed; deterministic
    /// under the layer-barriered sweeps, which query each enumerated
    /// mask exactly once regardless of thread count).
    queries: AtomicU64,
}

impl Clone for Frontier {
    fn clone(&self) -> Self {
        Self {
            k: self.k,
            nodes: self.nodes.clone(),
            root: self.root,
            len: self.len,
            free: self.free.clone(),
            live: self.live.clone(),
            occ: self.occ.clone(),
            slot_mask: self.slot_mask.clone(),
            slot_free: self.slot_free.clone(),
            block_and: self.block_and.clone(),
            block_or: self.block_or.clone(),
            block_minpop: self.block_minpop.clone(),
            block_maxpop: self.block_maxpop.clone(),
            block_pop: self.block_pop.clone(),
            queries: AtomicU64::new(self.queries.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for Frontier {
    /// Structural set equality: same width, same members (query
    /// counters are instrumentation and do not participate).
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k && self.members_ascending() == other.members_ascending()
    }
}

impl Eq for Frontier {}

impl Frontier {
    /// An empty frontier over `k`-bit masks.
    ///
    /// # Panics
    /// Panics if `k > 64`.
    ///
    /// # Examples
    /// ```
    /// let f = sv_core::Frontier::new(20);
    /// assert!(f.is_empty());
    /// assert_eq!(f.k(), 20);
    /// assert!(!f.covers(0), "an empty frontier generates nothing");
    /// ```
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k <= 64, "Frontier masks are u64: k = {k} > 64");
        Self {
            k: k as u32,
            nodes: Vec::new(),
            root: NIL,
            len: 0,
            free: Vec::new(),
            live: Vec::new(),
            occ: Vec::new(),
            slot_mask: Vec::new(),
            slot_free: Vec::new(),
            block_and: Vec::new(),
            block_or: Vec::new(),
            block_minpop: Vec::new(),
            block_maxpop: Vec::new(),
            block_pop: Vec::new(),
            queries: AtomicU64::new(0),
        }
    }

    /// Builds a frontier from arbitrary masks, keeping only the
    /// ⊆-minimal ones (insertion order does not matter).
    ///
    /// # Examples
    /// ```
    /// use sv_core::Frontier;
    ///
    /// let f = Frontier::from_masks(4, [0b1110, 0b0110, 0b0001]);
    /// assert_eq!(f.iter().collect::<Vec<_>>(), vec![0b0001, 0b0110]);
    /// ```
    #[must_use]
    pub fn from_masks(k: usize, masks: impl IntoIterator<Item = u64>) -> Self {
        let mut f = Self::new(k);
        for m in masks {
            f.insert(m);
        }
        f
    }

    /// Mask width in bits.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Number of members (antichain size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the frontier has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live trie nodes (arena slots minus the free list). The
    /// compressed shape is canonical for a given member set, so this is
    /// a deterministic size counter, reported as
    /// [`crate::sweep::SweepStats::frontier_nodes`].
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Coverage/domination queries answered so far
    /// ([`covers`](Self::covers) + [`dominated_by`](Self::dominated_by)
    /// calls; insertions use internal uncounted walks). Exact for
    /// single-threaded callers; concurrent queries may lose increments
    /// (the counter deliberately avoids an atomic read-modify-write on
    /// the query hot path — the sweeps tally their own exact,
    /// CI-gated totals worker-locally instead, see
    /// [`crate::sweep::SweepStats::frontier_queries`]).
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    #[inline]
    fn assert_mask(&self, mask: u64) {
        assert!(
            self.k == 64 || mask >> self.k == 0,
            "mask {mask:#x} exceeds the frontier's {}-bit width",
            self.k
        );
    }

    /// Mask of the bit positions belonging to levels `level..k`.
    #[inline]
    fn below(&self, level: u32) -> u64 {
        if level >= self.k {
            0
        } else {
            u64::MAX >> (64 - (self.k - level))
        }
    }

    /// Mask of the bit positions belonging to levels `start..branch`.
    #[inline]
    fn range(&self, start: u32, branch: u32) -> u64 {
        self.below(start) ^ self.below(branch)
    }

    /// Whether some member is a **subset** of `mask` — i.e. whether
    /// `mask` lies in the up-set the antichain generates (for the
    /// sweeps: safe by Proposition 1, and not minimal unless it is a
    /// member itself).
    ///
    /// # Panics
    /// Panics if `mask` has bits at or above `k`.
    ///
    /// # Examples
    /// ```
    /// let f = sv_core::Frontier::from_masks(4, [0b0011]);
    /// assert!(f.covers(0b1011));
    /// assert!(!f.covers(0b1001));
    /// assert_eq!(f.queries(), 2);
    /// ```
    #[must_use]
    #[inline]
    pub fn covers(&self, mask: u64) -> bool {
        self.assert_mask(mask);
        // Unlocked increment: cheaper than a lock-prefixed RMW on the
        // hot path, at the cost of lost updates under concurrent
        // queries (see [`Self::queries`]).
        self.queries
            .store(self.queries.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.covers_raw(mask)
    }

    /// Whether some member is a **superset** of `mask` (the dual of
    /// [`covers`](Self::covers)).
    ///
    /// # Panics
    /// Panics if `mask` has bits at or above `k`.
    ///
    /// # Examples
    /// ```
    /// let f = sv_core::Frontier::from_masks(4, [0b0110]);
    /// assert!(f.dominated_by(0b0010));
    /// assert!(!f.dominated_by(0b1000));
    /// ```
    #[must_use]
    #[inline]
    pub fn dominated_by(&self, mask: u64) -> bool {
        self.assert_mask(mask);
        // Unlocked increment: cheaper than a lock-prefixed RMW on the
        // hot path, at the cost of lost updates under concurrent
        // queries (see [`Self::queries`]).
        self.queries
            .store(self.queries.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.dominated_raw(mask)
    }

    /// Exact membership test.
    ///
    /// # Panics
    /// Panics if `mask` has bits at or above `k`.
    ///
    /// # Examples
    /// ```
    /// let f = sv_core::Frontier::from_masks(3, [0b011]);
    /// assert!(f.contains(0b011));
    /// assert!(!f.contains(0b001));
    /// ```
    #[must_use]
    pub fn contains(&self, mask: u64) -> bool {
        self.assert_mask(mask);
        let mut n = self.root;
        while n != NIL {
            let node = self.nodes[n as usize];
            if (mask ^ node.prefix) & self.range(node.start, node.branch) != 0 {
                return false;
            }
            if node.branch == self.k {
                return true;
            }
            let bit = (mask >> (self.k - 1 - node.branch)) & 1;
            n = node.kids[bit as usize];
        }
        false
    }

    /// Subset containment through the occurrence index: a member ⊆
    /// `mask` is a live slot avoiding every bit `mask` lacks, so each
    /// super-word is screened by OR-ing the rows of those bits into a
    /// forbidden set — straight-line lane ops over one contiguous
    /// `k`-row block, exiting at the first word with a live slot
    /// outside it.
    #[inline]
    fn covers_raw(&self, mask: u64) -> bool {
        let k = self.k as usize;
        if k == 0 {
            // The only possible member is the empty mask, which covers
            // the only possible query.
            return self.len > 0;
        }
        // The avoid-bit list is hoisted once per query; each super-word
        // is then screened by a pure OR of the forbidden rows — eight
        // independent lanes per row (one vector load + OR), no select
        // masks, no data-dependent branches inside the block.
        let (idx, cnt) = Self::bit_indices(!mask & self.below(0));
        let idx = &idx[..cnt];
        let pc = mask.count_ones();
        for (w, (word, block)) in self.live.iter().zip(self.occ.chunks_exact(k)).enumerate() {
            // Compaction screens: a bit every live member of the block
            // has (`block_and` is a subset of that AND) but `mask`
            // lacks, or a block whose smallest member is wider than
            // `mask`, rules out the whole super-word before any lane
            // is touched.
            if self.block_and[w] & !mask != 0 || self.block_minpop[w] > pc {
                continue;
            }
            let mut f = [0u64; LANES];
            for &b in idx {
                let row = &block[b as usize];
                for (acc, &r) in f.iter_mut().zip(row) {
                    *acc |= r;
                }
            }
            let mut surv = 0u64;
            for (&w, &fr) in word.iter().zip(&f) {
                surv |= w & !fr;
            }
            if surv != 0 {
                return true;
            }
        }
        false
    }

    /// Superset containment, the dual screen: a member ⊇ `mask` is a
    /// live slot whose rows contain every bit of `mask`, so each word
    /// intersects the rows of the query's own bits (a masked
    /// AND-reduction: unselected rows contribute all-ones).
    #[inline]
    fn dominated_raw(&self, mask: u64) -> bool {
        let k = self.k as usize;
        if k == 0 {
            return self.len > 0;
        }
        let (idx, cnt) = Self::bit_indices(mask);
        let idx = &idx[..cnt];
        let pc = mask.count_ones();
        for (w, (word, block)) in self.live.iter().zip(self.occ.chunks_exact(k)).enumerate() {
            // Dual compaction screens: a query bit no member of the
            // block has (`block_or` is a superset of the true OR), or a
            // query wider than the block's widest member, rules the
            // super-word out wholesale.
            if mask & !self.block_or[w] != 0 || pc > self.block_maxpop[w] {
                continue;
            }
            let mut a = *word;
            for &b in idx {
                let row = &block[b as usize];
                for (acc, &r) in a.iter_mut().zip(row) {
                    *acc &= r;
                }
            }
            if a.iter().fold(0, |o, &l| o | l) != 0 {
                return true;
            }
        }
        false
    }

    /// Bit positions of `bits`, ascending, as a fixed array + count —
    /// byte-table expansion (one lookup + 8-byte store per byte of
    /// `bits`) instead of a serial trailing-zeros loop, since this runs
    /// on every query.
    #[inline]
    fn bit_indices(bits: u64) -> ([u8; 72], usize) {
        /// Per byte value: its set-bit positions packed little-endian
        /// (one byte each) and their count.
        const TABLE: [(u64, u8); 256] = {
            let mut t = [(0u64, 0u8); 256];
            let mut v = 0usize;
            while v < 256 {
                let (mut packed, mut cnt, mut b) = (0u64, 0u8, 0u32);
                while b < 8 {
                    if v >> b & 1 == 1 {
                        packed |= (b as u64) << (8 * cnt as u32);
                        cnt += 1;
                    }
                    b += 1;
                }
                t[v] = (packed, cnt);
                v += 1;
            }
            t
        };
        let mut idx = [0u8; 72];
        let mut cnt = 0usize;
        let mut rest = bits;
        let mut base = 0u64;
        while rest != 0 {
            let (packed, n) = TABLE[rest as u8 as usize];
            // Offset all eight packed positions at once, then spill
            // them with a single 8-byte store (extras are overwritten
            // by the next chunk or ignored via `cnt`).
            let shifted = packed + base * 0x0101_0101_0101_0101;
            idx[cnt..cnt + 8].copy_from_slice(&shifted.to_le_bytes());
            cnt += n as usize;
            rest >>= 8;
            base += 8;
        }
        (idx, cnt)
    }

    /// Claims an occurrence-index slot for a new member, sets its row
    /// bits, and folds the member into its block's compaction digest.
    fn slot_alloc(&mut self, mask: u64) -> u32 {
        let k = self.k as usize;
        let slot = self.slot_free.pop().unwrap_or_else(|| {
            let s = self.slot_mask.len() as u32;
            self.slot_mask.push(0);
            if s as usize / SLOTS >= self.live.len() {
                self.live.push([0; LANES]);
                self.occ.extend(std::iter::repeat_n([0; LANES], k));
                self.block_and.push(u64::MAX);
                self.block_or.push(0);
                self.block_minpop.push(u32::MAX);
                self.block_maxpop.push(0);
                self.block_pop.push(0);
            }
            s
        });
        let (w, lane, b) = (slot as usize / SLOTS, slot as usize / 64 % LANES, slot % 64);
        self.slot_mask[slot as usize] = mask;
        self.live[w][lane] |= 1u64 << b;
        let pc = mask.count_ones();
        self.block_and[w] &= mask;
        self.block_or[w] |= mask;
        self.block_minpop[w] = self.block_minpop[w].min(pc);
        self.block_maxpop[w] = self.block_maxpop[w].max(pc);
        self.block_pop[w] += 1;
        let mut bits = mask;
        while bits != 0 {
            let p = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.occ[w * k + p][lane] |= 1u64 << b;
        }
        slot
    }

    /// Releases an evicted member's slot, clearing its row bits. The
    /// block digest stays stale-but-sound (shrinking the live set only
    /// loosens what AND/OR/popcount bounds must summarize); a block
    /// left empty resets its digest, and empty trailing blocks are
    /// recycled outright so queries stop scanning them.
    fn slot_release(&mut self, slot: u32) {
        let k = self.k as usize;
        let (w, lane, b) = (slot as usize / SLOTS, slot as usize / 64 % LANES, slot % 64);
        self.live[w][lane] &= !(1u64 << b);
        let mut bits = self.slot_mask[slot as usize];
        while bits != 0 {
            let p = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.occ[w * k + p][lane] &= !(1u64 << b);
        }
        self.slot_free.push(slot);
        self.block_pop[w] -= 1;
        if self.block_pop[w] == 0 {
            self.block_and[w] = u64::MAX;
            self.block_or[w] = 0;
            self.block_minpop[w] = u32::MAX;
            self.block_maxpop[w] = 0;
            if w + 1 == self.live.len() {
                self.recycle_empty_tail();
            }
        }
    }

    /// Drops every trailing super-word block whose members have all
    /// been evicted, returning its memory and removing it from the
    /// query scan (and from the free list, so reallocation starts a
    /// fresh block).
    fn recycle_empty_tail(&mut self) {
        let k = self.k as usize;
        while self.block_pop.last() == Some(&0) {
            let w = self.block_pop.len() - 1;
            self.block_pop.pop();
            self.block_and.pop();
            self.block_or.pop();
            self.block_minpop.pop();
            self.block_maxpop.pop();
            self.live.pop();
            self.occ.truncate(w * k);
            let base = (w * SLOTS) as u32;
            self.slot_free.retain(|&s| s < base);
            self.slot_mask.truncate(self.slot_mask.len().min(w * SLOTS));
        }
    }

    /// Inserts `mask`, maintaining minimality: returns `false` (and
    /// stores nothing) when a member already covers `mask`; otherwise
    /// evicts every member dominated by `mask`, stores it, and returns
    /// `true`.
    ///
    /// # Panics
    /// Panics if `mask` has bits at or above `k`.
    ///
    /// # Examples
    /// ```
    /// use sv_core::Frontier;
    ///
    /// let mut f = Frontier::new(4);
    /// assert!(f.insert(0b0110) && f.insert(0b1001));
    /// assert!(!f.insert(0b1110), "covered by 0b0110");
    /// assert!(f.insert(0b0100), "evicts 0b0110");
    /// assert_eq!(f.len(), 2);
    /// ```
    pub fn insert(&mut self, mask: u64) -> bool {
        self.assert_mask(mask);
        if self.covers_raw(mask) {
            return false;
        }
        self.root = self.remove_dominated(self.root, mask);
        self.insert_path(mask);
        true
    }

    fn alloc(&mut self, node: Node) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Removes every member ⊇ `mask` below `n`, returning the
    /// replacement pointer: emptied subtrees collapse to `NIL`, and an
    /// interior node left with a single child merges into it (the child
    /// absorbs the segment and branch bit), keeping the shape canonical.
    fn remove_dominated(&mut self, n: u32, mask: u64) -> u32 {
        if n == NIL {
            return NIL;
        }
        let node = self.nodes[n as usize];
        if mask & self.range(node.start, node.branch) & !node.prefix != 0 {
            return n; // no superset of `mask` below here
        }
        if node.branch == self.k {
            self.len -= 1;
            self.slot_release(node.kids[0]);
            self.free.push(n);
            return NIL;
        }
        let (nc0, nc1) = if (mask >> (self.k - 1 - node.branch)) & 1 == 1 {
            (node.kids[0], self.remove_dominated(node.kids[1], mask))
        } else {
            (
                self.remove_dominated(node.kids[0], mask),
                self.remove_dominated(node.kids[1], mask),
            )
        };
        match (nc0 == NIL, nc1 == NIL) {
            (true, true) => {
                self.free.push(n);
                NIL
            }
            (false, true) => self.merge_into_child(n, nc0, 0),
            (true, false) => self.merge_into_child(n, nc1, 1),
            (false, false) => {
                self.nodes[n as usize].kids = [nc0, nc1];
                n
            }
        }
    }

    /// Collapses interior node `parent` (whose only remaining subtree is
    /// `child` on `side`) into `child`, which absorbs the parent's
    /// segment bits plus the branch bit of its edge.
    fn merge_into_child(&mut self, parent: u32, child: u32, side: usize) -> u32 {
        let p = self.nodes[parent as usize];
        let edge_bit = if side == 1 {
            1u64 << (self.k - 1 - p.branch)
        } else {
            0
        };
        let c = &mut self.nodes[child as usize];
        c.prefix |= p.prefix | edge_bit;
        c.start = p.start;
        self.free.push(parent);
        child
    }

    /// Creates the path for `mask` (which must be uncovered and have no
    /// dominated members left): descends to the first diverging level
    /// and splits there, attaching a new terminal.
    fn insert_path(&mut self, mask: u64) {
        self.len += 1;
        let slot = self.slot_alloc(mask);
        if self.root == NIL {
            self.root = self.alloc(Node {
                prefix: mask,
                start: 0,
                branch: self.k,
                kids: [slot, NIL],
            });
            return;
        }
        let mut parent: Option<(u32, usize)> = None;
        let mut n = self.root;
        loop {
            let node = self.nodes[n as usize];
            let diff = (mask ^ node.prefix) & self.range(node.start, node.branch);
            if diff != 0 {
                // Split at the highest diverging level of the segment.
                let pos = 63 - diff.leading_zeros();
                let level = self.k - 1 - pos;
                let mask_bit = ((mask >> pos) & 1) as usize;
                let split_prefix = node.prefix & (self.below(node.start) & !self.below(level));
                let trimmed = self.below(level + 1);
                {
                    let old = &mut self.nodes[n as usize];
                    old.prefix &= trimmed;
                    old.start = level + 1;
                }
                let term = self.alloc(Node {
                    prefix: mask & self.below(level + 1),
                    start: level + 1,
                    branch: self.k,
                    kids: [slot, NIL],
                });
                let mut kids = [NIL, NIL];
                kids[mask_bit] = term;
                kids[1 - mask_bit] = n;
                let split = self.alloc(Node {
                    prefix: split_prefix,
                    start: node.start,
                    branch: level,
                    kids,
                });
                match parent {
                    None => self.root = split,
                    Some((p, side)) => self.nodes[p as usize].kids[side] = split,
                }
                return;
            }
            debug_assert!(
                node.branch < self.k,
                "duplicate insert past the covers check"
            );
            let bit = ((mask >> (self.k - 1 - node.branch)) & 1) as usize;
            parent = Some((n, bit));
            n = node.kids[bit];
        }
    }

    /// Members in ascending numeric order (left-first trie walk).
    fn members_ascending(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.collect(self.root, 0, &mut out);
        out
    }

    fn collect(&self, n: u32, acc: u64, out: &mut Vec<u64>) {
        if n == NIL {
            return;
        }
        let node = self.nodes[n as usize];
        let acc = acc | node.prefix;
        if node.branch == self.k {
            out.push(acc);
            return;
        }
        self.collect(node.kids[0], acc, out);
        self.collect(node.kids[1], acc | 1u64 << (self.k - 1 - node.branch), out);
    }

    /// Iterates the members in **(popcount, mask)** order — ascending
    /// popcount, ascending numeric mask within a popcount — the exact
    /// order of the serial reference
    /// [`crate::safety::minimal_safe_hidden_sets`]. Materializes the
    /// member list (`O(n log n)`).
    ///
    /// # Examples
    /// ```
    /// let f = sv_core::Frontier::from_masks(4, [0b1010, 0b0101, 0b1000]);
    /// assert_eq!(f.iter().collect::<Vec<_>>(), vec![0b1000, 0b0101]);
    /// ```
    #[must_use = "iterators are lazy"]
    pub fn iter(&self) -> std::vec::IntoIter<u64> {
        let mut members = self.members_ascending();
        members.sort_by_key(|m| m.count_ones());
        members.into_iter()
    }

    /// Union of the generated up-sets: the ⊆-minimal elements of the
    /// combined member sets.
    ///
    /// # Panics
    /// Panics if the widths differ.
    ///
    /// # Examples
    /// ```
    /// use sv_core::Frontier;
    ///
    /// let a = Frontier::from_masks(4, [0b0011]);
    /// let b = Frontier::from_masks(4, [0b0111, 0b1000]);
    /// let u = a.union(&b);
    /// assert_eq!(u.iter().collect::<Vec<_>>(), vec![0b1000, 0b0011]);
    /// ```
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        assert_eq!(self.k, other.k, "width mismatch in Frontier::union");
        Self::from_masks(
            self.k(),
            self.members_ascending()
                .into_iter()
                .chain(other.members_ascending()),
        )
    }

    /// Intersection of the generated up-sets: a mask is in both up-sets
    /// iff it contains some `a ∪ b` with `a` a member of `self` and `b`
    /// of `other`, so the result is the minimized pairwise-union set
    /// (`O(|self|·|other|)` inserts).
    ///
    /// # Panics
    /// Panics if the widths differ.
    ///
    /// # Examples
    /// ```
    /// use sv_core::Frontier;
    ///
    /// let a = Frontier::from_masks(4, [0b0001, 0b0010]);
    /// let b = Frontier::from_masks(4, [0b0100]);
    /// let i = a.intersect(&b);
    /// assert_eq!(i.iter().collect::<Vec<_>>(), vec![0b0101, 0b0110]);
    /// ```
    #[must_use]
    pub fn intersect(&self, other: &Self) -> Self {
        assert_eq!(self.k, other.k, "width mismatch in Frontier::intersect");
        let mut out = Self::new(self.k());
        for a in self.members_ascending() {
            for b in other.members_ascending() {
                out.insert(a | b);
            }
        }
        out
    }

    /// The `(cost, mask)`-lexicographically smallest member under an
    /// additive per-bit cost vector — by Proposition 1 this is the
    /// global minimum-cost *safe* hidden set whenever the frontier is a
    /// swept safety antichain (costs are non-negative and monotone, so
    /// the optimum over the whole up-set is attained at a member, and
    /// any cost tie resolves to the member because supersets are
    /// numerically larger). Returns `(mask, cost)`.
    ///
    /// # Panics
    /// Panics unless `costs.len() == k`.
    ///
    /// # Examples
    /// ```
    /// let f = sv_core::Frontier::from_masks(3, [0b011, 0b100]);
    /// assert_eq!(f.min_cost_member(&[1, 1, 3]), Some((0b011, 2)));
    /// assert_eq!(f.min_cost_member(&[9, 9, 1]), Some((0b100, 1)));
    /// ```
    #[must_use]
    pub fn min_cost_member(&self, costs: &[u64]) -> Option<(u64, u64)> {
        assert_eq!(costs.len(), self.k(), "one cost per attribute");
        let mut best: Option<(u64, u64)> = None; // (cost, mask)
        for m in self.members_ascending() {
            let mut cost = 0u64;
            let mut bits = m;
            while bits != 0 {
                cost = cost.saturating_add(costs[bits.trailing_zeros() as usize]);
                bits &= bits - 1;
            }
            if best.is_none_or(|(bc, bm)| cost < bc || (cost == bc && m < bm)) {
                best = Some((cost, m));
            }
        }
        best.map(|(cost, mask)| (mask, cost))
    }

    /// The **uncovered border** of popcount layer `layer`, batched:
    /// every mask of the layer *not* covered by the antichain, as
    /// disjoint ascending [`BorderRun`]s, found by one trie walk that
    /// skips covered subtrees whole instead of testing `C(k, layer)`
    /// masks individually (see the [module docs](self)). The walk costs
    /// `O(border + jumps)`, so sweeping dense layers scales with the
    /// answer, not the lattice.
    ///
    /// Runs partition the uncovered masks; within a run the masks are
    /// consecutive in the layer's ascending numeric (Gosper) order, so
    /// sweep workers step through a run with a same-popcount successor
    /// and never issue a per-mask coverage query.
    ///
    /// # Panics
    /// Panics if `layer > k`.
    ///
    /// # Examples
    /// ```
    /// use sv_core::Frontier;
    ///
    /// // Empty frontier: the whole layer is one uncovered run.
    /// let empty = Frontier::new(6);
    /// let scan = empty.uncovered_in_layer(2);
    /// assert_eq!(scan.masks, 15, "C(6, 2)");
    /// assert_eq!(scan.runs.len(), 1);
    /// assert_eq!(scan.runs[0].first, 0b000011);
    ///
    /// // A member covers its whole up-set in single jumps.
    /// let f = Frontier::from_masks(6, [0b000001]);
    /// let scan = f.uncovered_in_layer(2);
    /// assert_eq!(scan.masks, 10, "C(6,2) - C(5,1) supersets of bit 0");
    /// assert!(scan.runs.iter().all(|r| r.first & 1 == 0));
    /// ```
    #[must_use]
    pub fn uncovered_in_layer(&self, layer: usize) -> BorderScan {
        assert!(
            layer <= self.k(),
            "layer {layer} exceeds the frontier's {}-bit width",
            self.k
        );
        let mut out = BorderScan::default();
        let active: Vec<u32> = if self.root == NIL {
            Vec::new()
        } else {
            vec![self.root]
        };
        self.border_rec(0, 0, layer as u32, 0, false, &active, &mut out);
        out
    }

    /// The smallest popcount-`layer` mask `≥ from` not covered by the
    /// antichain, or `None` when the rest of the layer is covered — the
    /// successor-jumping form of
    /// [`uncovered_in_layer`](Self::uncovered_in_layer): one bounded
    /// trie descent instead of stepping mask-by-mask with a coverage
    /// test at each.
    ///
    /// # Panics
    /// Panics if `layer > k`.
    ///
    /// # Examples
    /// ```
    /// let f = sv_core::Frontier::from_masks(4, [0b0001]);
    /// // Layer 2 masks skipping every superset of 0b0001:
    /// assert_eq!(f.next_uncovered(0, 2), Some(0b0110));
    /// assert_eq!(f.next_uncovered(0b0111, 2), Some(0b1010));
    /// assert_eq!(f.next_uncovered(0b1101, 2), None);
    /// ```
    #[must_use]
    pub fn next_uncovered(&self, from: u64, layer: usize) -> Option<u64> {
        assert!(
            layer <= self.k(),
            "layer {layer} exceeds the frontier's {}-bit width",
            self.k
        );
        let mut out = BorderScan::default();
        let active: Vec<u32> = if self.root == NIL {
            Vec::new()
        } else {
            vec![self.root]
        };
        self.border_rec(0, 0, layer as u32, from, true, &active, &mut out);
        out.runs.first().map(|r| r.first)
    }

    /// Recursive border walk over the subtree of layer masks extending
    /// `prefix` (levels `0..level` decided) with `remaining` of the
    /// `k - level` undecided low positions set. `active` holds the trie
    /// nodes whose members are still compatible with `prefix` (every
    /// member bit at a decided position is in `prefix`). Returns
    /// `false` to abort the walk (`first_only` satisfied).
    #[allow(clippy::too_many_arguments)] // one recursion, one state tuple
    fn border_rec(
        &self,
        level: u32,
        prefix: u64,
        remaining: u32,
        from: u64,
        first_only: bool,
        active: &[u32],
        out: &mut BorderScan,
    ) -> bool {
        let width = self.k - level;
        let low = self.below(level);
        // Lower-bound pruning (`next_uncovered`): the subtree's largest
        // mask packs the `remaining` bits at the top of the low field.
        let max = prefix | (low ^ low_ones(width - remaining));
        if max < from {
            return true;
        }
        // Covered subtree ⇒ one border jump: either a compatible member
        // has no undecided bits left (it is ⊆ `prefix`, hence ⊆ every
        // completion), or every undecided position must be set — the
        // single completion `prefix | low` contains any compatible
        // member outright.
        let covered = !active.is_empty()
            && (remaining == width
                || active.iter().any(|&n| {
                    let node = self.nodes[n as usize];
                    node.branch == self.k && node.prefix & low == 0
                }));
        if covered {
            out.jumps += 1;
            return true;
        }
        if active.is_empty() {
            let min = prefix | low_ones(remaining);
            if min >= from {
                let len = binom(width, remaining);
                out.runs.push(BorderRun { first: min, len });
                out.masks += len;
                return !first_only;
            }
            // The run straddles `from`: keep descending; the bound
            // prunes the part below and emits the remainder.
        }
        if width == 0 {
            // Unreachable (the emit/jump cases above return for the
            // fully decided mask), kept as a guard for the bit index.
            return true;
        }
        let bitpos = self.k - 1 - level;
        // Clear branch first: ascending numeric order within the layer.
        if remaining < width {
            let mut next: Vec<u32> = Vec::with_capacity(active.len());
            for &n in active {
                let node = self.nodes[n as usize];
                if level < node.branch {
                    if (node.prefix >> bitpos) & 1 == 1 {
                        continue; // member needs the bit the mask lacks
                    }
                    if (node.prefix & self.below(level + 1)).count_ones() > remaining {
                        continue; // member needs more bits than remain
                    }
                    next.push(n);
                } else {
                    // At the branch: only the clear-edge child survives.
                    next.push(node.kids[0]);
                }
            }
            if !self.border_rec(level + 1, prefix, remaining, from, first_only, &next, out) {
                return false;
            }
        }
        if remaining > 0 {
            let mut next: Vec<u32> = Vec::with_capacity(active.len() + 1);
            for &n in active {
                let node = self.nodes[n as usize];
                if level < node.branch {
                    next.push(n); // a set bit satisfies any requirement
                } else {
                    next.push(node.kids[0]);
                    next.push(node.kids[1]);
                }
            }
            let set = prefix | (1u64 << bitpos);
            if !self.border_rec(level + 1, set, remaining - 1, from, first_only, &next, out) {
                return false;
            }
        }
        true
    }
}

/// One contiguous uncovered run inside a popcount layer: `len` masks
/// starting at `first`, consecutive in the layer's ascending numeric
/// (Gosper) order. Produced by
/// [`Frontier::uncovered_in_layer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BorderRun {
    /// Smallest mask of the run.
    pub first: u64,
    /// Number of consecutive layer masks in the run.
    pub len: u64,
}

/// The uncovered border of one popcount layer, batched for the sweep
/// workers, with the walk's exact instrumentation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BorderScan {
    /// Disjoint uncovered runs in ascending order; their union is
    /// exactly the layer's uncovered masks.
    pub runs: Vec<BorderRun>,
    /// Covered subtrees skipped whole, each in one path-compressed
    /// descent instead of per-mask coverage tests.
    pub jumps: u64,
    /// Total uncovered masks across `runs`.
    pub masks: u64,
}

/// The lowest `r` bits set (`r ≤ 64`).
#[inline]
fn low_ones(r: u32) -> u64 {
    if r == 0 {
        0
    } else {
        u64::MAX >> (64 - r)
    }
}

/// `C(n, r)` for `n ≤ 64` from a const Pascal triangle (`C(64, 32)`
/// fits `u64` with headroom).
#[inline]
fn binom(n: u32, r: u32) -> u64 {
    static TABLE: [[u64; 65]; 65] = {
        let mut t = [[0u64; 65]; 65];
        let mut n = 0;
        while n <= 64 {
            t[n][0] = 1;
            let mut r = 1;
            while r <= n {
                t[n][r] = t[n - 1][r - 1] + if r < n { t[n - 1][r] } else { 0 };
                r += 1;
            }
            n += 1;
        }
        t
    };
    if r > n {
        0
    } else {
        TABLE[n as usize][r as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flat reference: minimal elements of a mask set.
    fn minimize(masks: &[u64]) -> Vec<u64> {
        let mut out: Vec<u64> = masks
            .iter()
            .copied()
            .filter(|&m| !masks.iter().any(|&a| a != m && a & m == a))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn insert_maintains_minimality_in_any_order() {
        let masks = [0b1111u64, 0b0011, 0b1100, 0b0111, 0b0010, 0b1000];
        for rotation in 0..masks.len() {
            let mut rotated = masks.to_vec();
            rotated.rotate_left(rotation);
            let f = Frontier::from_masks(4, rotated);
            assert_eq!(f.members_ascending(), minimize(&masks), "rot={rotation}");
            assert_eq!(f.len(), 2);
        }
    }

    #[test]
    fn queries_match_flat_scans_exhaustively() {
        let members = [0b00110u64, 0b01001, 0b10001];
        let f = Frontier::from_masks(5, members);
        for mask in 0u64..(1 << 5) {
            let covers = members.iter().any(|&a| a | mask == mask);
            let dominated = members.iter().any(|&a| a & mask == mask);
            assert_eq!(f.covers(mask), covers, "covers {mask:#07b}");
            assert_eq!(f.dominated_by(mask), dominated, "dominated {mask:#07b}");
            assert_eq!(f.contains(mask), members.contains(&mask));
        }
        assert_eq!(f.queries(), 2 << 5, "one covers + one dominated per mask");
    }

    #[test]
    fn empty_and_zero_width_edges() {
        let f = Frontier::new(0);
        assert!(!f.covers(0) && !f.dominated_by(0) && !f.contains(0));
        let f = Frontier::from_masks(0, [0]);
        assert!(f.covers(0) && f.dominated_by(0) && f.contains(0));
        assert_eq!(f.len(), 1);
        assert_eq!(f.node_count(), 1, "one terminal holds the empty member");

        // The empty mask as a member covers everything.
        let mut f = Frontier::from_masks(6, [0b111, 0b1]);
        assert!(f.insert(0));
        assert_eq!(f.members_ascending(), vec![0]);
        assert_eq!(f.node_count(), 1);
        assert!((0..1u64 << 6).all(|m| f.covers_raw(m)));
    }

    #[test]
    fn compressed_shape_is_canonical() {
        // n members ⇒ n terminals + (n − 1) binary interior nodes,
        // independent of insertion order.
        let members = [0b0010u64, 0b0101, 0b1001, 0b1100];
        let forward = Frontier::from_masks(4, members);
        let backward = Frontier::from_masks(4, members.iter().rev().copied());
        assert_eq!(forward.node_count(), 2 * members.len() - 1);
        assert_eq!(backward.node_count(), forward.node_count());
        assert_eq!(forward, backward);
    }

    #[test]
    fn node_slots_are_recycled() {
        let mut f = Frontier::from_masks(8, [0b1111_0000, 0b0000_1111]);
        let before = f.nodes.len();
        // Evict both members; their slots return through the free list.
        assert!(f.insert(0b0001_0000));
        assert!(f.insert(0b0000_0001));
        assert!(f.insert(0b0000_0010));
        assert_eq!(f.len(), 3);
        assert_eq!(f.node_count(), f.nodes.len() - f.free.len());
        assert_eq!(f.node_count(), 2 * 3 - 1);
        assert!(f.nodes.len() <= before + 4, "free slots were reused");
        // The recycled structure still answers correctly.
        assert!(f.covers(0b0001_0001) && !f.covers(0b1000_0000));
    }

    #[test]
    fn clone_and_equality_ignore_instrumentation() {
        let f = Frontier::from_masks(4, [0b0011, 0b0100]);
        let _ = f.covers(0b1111);
        let g = f.clone();
        assert_eq!(f, g);
        assert_eq!(g.queries(), f.queries(), "clone carries the counter");
        let h = Frontier::from_masks(4, [0b0100, 0b0011]);
        assert_eq!(f, h, "equality is structural, not query-count");
        assert_ne!(f, Frontier::new(4));
    }

    #[test]
    #[should_panic(expected = "exceeds the frontier's 4-bit width")]
    fn oversized_masks_are_rejected() {
        let mut f = Frontier::new(4);
        f.insert(0b1_0000);
    }

    /// Flat reference for the border walk: the layer's uncovered masks
    /// in ascending order.
    fn flat_uncovered(f: &Frontier, k: u32, layer: u32) -> Vec<u64> {
        (0..1u64 << k)
            .filter(|m| m.count_ones() == layer && !f.covers_raw(*m))
            .collect()
    }

    /// Expands a [`BorderScan`] into its mask list via Gosper stepping.
    fn expand(scan: &BorderScan) -> Vec<u64> {
        let mut out = Vec::new();
        for run in &scan.runs {
            let mut m = run.first;
            for i in 0..run.len {
                out.push(m);
                if i + 1 < run.len {
                    let c = m & m.wrapping_neg();
                    let r = m + c;
                    m = (((r ^ m) >> 2) / c) | r;
                }
            }
        }
        out
    }

    #[test]
    fn border_walk_matches_flat_enumeration_exhaustively() {
        // A mix of member shapes over k = 9: low singleton, mid pair,
        // wide straddler — every layer's border checked bit-for-bit.
        let cases: [&[u64]; 4] = [
            &[],
            &[0b0_0000_0001],
            &[0b0_0110_0000, 0b1_0000_0001, 0b0_0000_1110],
            &[0b1_1111_1111],
        ];
        for members in cases {
            let f = Frontier::from_masks(9, members.iter().copied());
            for layer in 0..=9u32 {
                let scan = f.uncovered_in_layer(layer as usize);
                let got = expand(&scan);
                let want = flat_uncovered(&f, 9, layer);
                assert_eq!(got, want, "members={members:?} layer={layer}");
                assert_eq!(scan.masks, want.len() as u64);
                // `next_uncovered` agrees from every starting point.
                for from in 0..1u64 << 9 {
                    let next = want.iter().copied().find(|&m| m >= from);
                    assert_eq!(
                        f.next_uncovered(from, layer as usize),
                        next,
                        "members={members:?} layer={layer} from={from:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn border_runs_are_disjoint_ascending_and_jump_counted() {
        let f = Frontier::from_masks(8, [0b0000_0011, 0b1100_0000]);
        for layer in 0..=8usize {
            let scan = f.uncovered_in_layer(layer);
            assert!(
                scan.runs.windows(2).all(|w| w[0].first < w[1].first),
                "ascending runs"
            );
            let total: u64 = scan.runs.iter().map(|r| r.len).sum();
            assert_eq!(total, scan.masks);
            if layer >= 2 {
                assert!(scan.jumps > 0, "covered subtrees exist at layer {layer}");
            }
        }
        // Fully covered layer: no runs, at least one jump.
        let g = Frontier::from_masks(4, [0b0001, 0b0010, 0b0100, 0b1000]);
        let scan = g.uncovered_in_layer(2);
        assert!(scan.runs.is_empty() && scan.masks == 0 && scan.jumps > 0);
    }

    #[test]
    fn empty_frontier_border_is_one_whole_layer_run() {
        let f = Frontier::new(24);
        let scan = f.uncovered_in_layer(5);
        assert_eq!(scan.runs.len(), 1);
        assert_eq!(scan.runs[0].first, 0b11111);
        assert_eq!(scan.runs[0].len, 42_504, "C(24, 5)");
        assert_eq!(scan.jumps, 0);
        assert_eq!(f.next_uncovered(0, 5), Some(0b11111));
    }

    #[test]
    fn evicting_a_whole_block_recycles_it() {
        // 780 popcount-2 members (an antichain) fill one 512-slot block
        // and part of a second; inserting the empty mask evicts them
        // all, and the emptied trailing blocks are recycled.
        let k = 40u32;
        let mut f = Frontier::new(k as usize);
        for a in 0..k {
            for b in 0..a {
                f.insert((1u64 << a) | (1u64 << b));
            }
        }
        assert_eq!(f.len(), 780);
        assert_eq!(f.live.len(), 2, "two occurrence blocks in use");
        assert!(f.insert(0));
        assert_eq!(f.len(), 1);
        assert_eq!(f.live.len(), 1, "trailing empty block recycled");
        assert!(f.slot_mask.len() <= 512, "second block's slots returned");
        assert!(f.slot_free.iter().all(|&s| (s as usize) < 512));
        assert!(f.covers(0b1010) && f.covers(0));
        // The survivor's block digest reflects only the live member.
        assert!(!f.insert(0));
        let g = Frontier::from_masks(k as usize, (0..k as u64).map(|a| 1 << a));
        assert_eq!(g.len(), 40);
        assert!((0..k as u64).all(|a| g.dominated_by(1 << a)));
    }

    #[test]
    fn block_digest_screens_stay_sound_under_churn() {
        // Alternate inserts and dominance evictions, checking every
        // query against a flat scan after each step — exercises stale
        // AND/OR digests and popcount bounds.
        let mut f = Frontier::new(10);
        let mut reference: Vec<u64> = Vec::new();
        let script: [u64; 12] = [
            0b11_1100_0000,
            0b00_0011_1100,
            0b00_0000_0011,
            0b01_0100_0000, // evicts the first
            0b00_0001_0100, // evicts the second
            0b00_0000_0001, // evicts the third
            0b10_0000_0000,
            0b00_1000_0000,
            0b00_0010_0000,
            0b00_0000_1000,
            0b00_0000_0100, // evicts 0b00_0001_0100
            0b01_0000_0000, // evicts 0b01_0100_0000
        ];
        for m in script {
            if !reference.iter().any(|&a| a | m == m) {
                reference.retain(|&a| a & m != m);
                reference.push(m);
                assert!(f.insert(m));
            } else {
                assert!(!f.insert(m));
            }
            for q in 0..1u64 << 10 {
                assert_eq!(f.covers_raw(q), reference.iter().any(|&a| a | q == q));
                assert_eq!(f.dominated_raw(q), reference.iter().any(|&a| a & q == q));
            }
        }
    }

    #[test]
    fn border_walk_at_full_width_top_bits() {
        // k = 64: top-bit members, full-word layers — the mask-width
        // edge where `below`/`low_ones` shifts saturate.
        let f = Frontier::from_masks(64, [1u64 << 63, 0b11]);
        let scan = f.uncovered_in_layer(1);
        assert_eq!(scan.masks, 63, "singletons minus the member 1<<63");
        assert_eq!(f.next_uncovered(1u64 << 62, 1), Some(1u64 << 62));
        assert_eq!(
            f.next_uncovered((1u64 << 62) + 1, 1),
            None,
            "only 1<<63 remains above, and it is covered"
        );
        // Layer 64 (the all-ones mask) is covered by any member.
        let scan = f.uncovered_in_layer(64);
        assert_eq!(scan.masks, 0);
        assert_eq!(scan.jumps, 1);
        // An empty width-64 frontier emits the whole layer as one run.
        let e = Frontier::new(64);
        let scan = e.uncovered_in_layer(64);
        assert_eq!(
            scan.runs,
            vec![BorderRun {
                first: u64::MAX,
                len: 1
            }]
        );
    }
}
