//! Brute-force possible-world enumeration for standalone modules
//! (Definition 1 of the paper), used as a semantic ground truth.
//!
//! A relation `R'` over the module schema satisfies the FD `I -> O` iff
//! it is (the graph of) a **partial function** `Dom ⇀ Range`. The
//! possible worlds `Worlds(R, V)` are exactly the partial functions whose
//! visible projection equals `π_V(R)` as a set. Enumerating all
//! `(|Range| + 1)^{|Dom|}` partial functions is doubly exponential in the
//! attribute count — which is precisely why the paper proves lower
//! bounds (Theorems 1–3) and why the fast checker
//! ([`StandaloneModule::is_safe`]) matters. This module exists to
//! cross-validate that checker on tiny instances (property tests) and to
//! reproduce the paper's world counts (Example 2: 64 worlds for
//! `(R_1, {a1,a3,a5})`).

use crate::error::CoreError;
use crate::standalone::StandaloneModule;
use std::collections::BTreeSet;
use sv_relation::{AttrSet, Relation, Tuple, Value};

/// Counts `(|Range|+1)^{|Dom|}` with saturation, for budget checks.
fn candidate_count(dom: usize, range: usize) -> u128 {
    let base = (range as u128).saturating_add(1);
    let mut acc: u128 = 1;
    for _ in 0..dom {
        acc = acc.saturating_mul(base);
    }
    acc
}

/// Iterator state over all partial functions `Dom ⇀ Range`, encoded as
/// one digit per domain point: `0` = undefined, `v+1` = maps to
/// `Range[v]`.
struct PartialFnIter {
    digits: Vec<usize>,
    base: usize,
    done: bool,
}

impl PartialFnIter {
    fn new(dom: usize, range: usize) -> Self {
        Self {
            digits: vec![0; dom],
            base: range + 1,
            done: false,
        }
    }
}

impl Iterator for PartialFnIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.digits.clone();
        let mut carry = true;
        for d in self.digits.iter_mut() {
            *d += 1;
            if *d < self.base {
                carry = false;
                break;
            }
            *d = 0;
        }
        if carry {
            self.done = true;
        }
        Some(out)
    }
}

/// Builds the relation encoded by a digit vector (see [`PartialFnIter`]).
fn materialize(
    m: &StandaloneModule,
    dom: &[Vec<Value>],
    range: &[Vec<Value>],
    digits: &[usize],
) -> Relation {
    let mut rows = Vec::new();
    let in_order: Vec<_> = m.inputs().iter().collect();
    let out_order: Vec<_> = m.outputs().iter().collect();
    for (x, &d) in dom.iter().zip(digits.iter()) {
        if d == 0 {
            continue;
        }
        let y = &range[d - 1];
        let mut vals = vec![0u32; m.k()];
        for (pos, &a) in in_order.iter().enumerate() {
            vals[a.index()] = x[pos];
        }
        for (pos, &a) in out_order.iter().enumerate() {
            vals[a.index()] = y[pos];
        }
        rows.push(Tuple::new(vals));
    }
    Relation::from_rows(m.schema().clone(), rows).expect("materialized rows are schema-valid")
}

/// Enumerates `Worlds(R, V)` exhaustively.
///
/// # Errors
/// [`CoreError::BudgetExceeded`] if more than `budget` candidate partial
/// functions would need to be scanned.
pub fn enumerate_worlds(
    m: &StandaloneModule,
    visible: &AttrSet,
    budget: u128,
) -> Result<Vec<Relation>, CoreError> {
    let dom = m.input_domain();
    let range = m.output_range();
    let cands = candidate_count(dom.len(), range.len());
    if cands > budget {
        return Err(CoreError::BudgetExceeded {
            what: "standalone possible-world enumeration",
            required: cands,
            budget,
        });
    }
    let target: BTreeSet<Tuple> = m
        .relation()
        .rows()
        .iter()
        .map(|t| t.project(visible))
        .collect();
    let mut worlds = Vec::new();
    for digits in PartialFnIter::new(dom.len(), range.len()) {
        let cand = materialize(m, &dom, &range, &digits);
        let proj: BTreeSet<Tuple> = cand.rows().iter().map(|t| t.project(visible)).collect();
        if proj == target {
            worlds.push(cand);
        }
    }
    Ok(worlds)
}

/// Brute-force `OUT_{x,m}` for **all** inputs `x ∈ π_I(R)` in a single
/// world-enumeration pass (Definition 2): `OUT_{x,m}` is the set of
/// outputs `y` such that some possible world contains a row with input
/// `x` and output `y`.
///
/// # Errors
/// Propagates the enumeration budget.
pub fn out_sets_bruteforce(
    m: &StandaloneModule,
    visible: &AttrSet,
    budget: u128,
) -> Result<std::collections::BTreeMap<Tuple, BTreeSet<Tuple>>, CoreError> {
    let worlds = enumerate_worlds(m, visible, budget)?;
    let mut map: std::collections::BTreeMap<Tuple, BTreeSet<Tuple>> = m
        .input_tuples()
        .into_iter()
        .map(|x| (x, BTreeSet::new()))
        .collect();
    for w in &worlds {
        for t in w.rows() {
            let x = t.project(m.inputs());
            if let Some(set) = map.get_mut(&x) {
                set.insert(t.project(m.outputs()));
            }
        }
    }
    Ok(map)
}

/// Brute-force `OUT_{x,m}` for a single input (see
/// [`out_sets_bruteforce`]).
///
/// # Errors
/// Propagates the enumeration budget.
pub fn out_set_bruteforce(
    m: &StandaloneModule,
    visible: &AttrSet,
    x: &Tuple,
    budget: u128,
) -> Result<BTreeSet<Tuple>, CoreError> {
    Ok(out_sets_bruteforce(m, visible, budget)?
        .remove(x)
        .unwrap_or_default())
}

/// Brute-force privacy level: `min_{x ∈ π_I(R)} |OUT_{x,m}|`. A visible
/// set is Γ-safe iff this is at least Γ; by Lemma 4 it equals
/// [`StandaloneModule::privacy_level`].
///
/// # Errors
/// Propagates the enumeration budget.
pub fn min_out_bruteforce(
    m: &StandaloneModule,
    visible: &AttrSet,
    budget: u128,
) -> Result<u128, CoreError> {
    let sets = out_sets_bruteforce(m, visible, budget)?;
    Ok(sets
        .values()
        .map(|s| s.len() as u128)
        .min()
        .unwrap_or(u128::MAX))
}

/// Brute-force Γ-standalone-privacy (Definition 2): `|OUT_{x,m}| ≥ Γ`
/// for every `x ∈ π_I(R)`.
///
/// # Errors
/// Propagates the enumeration budget.
pub fn is_safe_bruteforce(
    m: &StandaloneModule,
    visible: &AttrSet,
    gamma: u128,
    budget: u128,
) -> Result<bool, CoreError> {
    Ok(min_out_bruteforce(m, visible, budget)? >= gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_workflow::{library::fig1_workflow, ModuleId};

    fn m1() -> StandaloneModule {
        StandaloneModule::from_workflow_module(&fig1_workflow(), ModuleId(0), 1 << 20).unwrap()
    }

    #[test]
    fn example2_world_count_is_64() {
        // Example 2: "Overall there are sixty four relations in
        // Worlds(R1, V)" for V = {a1, a3, a5}.
        let m = m1();
        let v = AttrSet::from_indices(&[0, 2, 4]);
        let worlds = enumerate_worlds(&m, &v, 1 << 30).unwrap();
        assert_eq!(worlds.len(), 64);
        // The true relation is among them (R1 ∈ Worlds(R1,V)).
        assert!(worlds.iter().any(|w| w == m.relation()));
        // Every world satisfies the FD.
        for w in &worlds {
            assert!(w.satisfies(&m.fd()));
        }
    }

    #[test]
    fn figure2_sample_worlds_are_found() {
        // Figure 2 lists four sample members of Worlds(R1, V); check two.
        let m = m1();
        let v = AttrSet::from_indices(&[0, 2, 4]);
        let worlds = enumerate_worlds(&m, &v, 1 << 30).unwrap();
        let r11 = Relation::from_values(
            m.schema().clone(),
            vec![
                vec![0, 0, 0, 0, 1],
                vec![0, 1, 1, 0, 0],
                vec![1, 0, 1, 0, 0],
                vec![1, 1, 1, 0, 1],
            ],
        )
        .unwrap();
        let r41 = Relation::from_values(
            m.schema().clone(),
            vec![
                vec![0, 0, 1, 1, 0],
                vec![0, 1, 0, 1, 1],
                vec![1, 0, 1, 0, 0],
                vec![1, 1, 1, 0, 1],
            ],
        )
        .unwrap();
        assert!(worlds.contains(&r11), "R1^1 of Figure 2 missing");
        assert!(worlds.contains(&r41), "R1^4 of Figure 2 missing");
    }

    #[test]
    fn example3_out_set_for_00() {
        // Example 3: for x = (0,0) and V = {a1,a3,a5},
        // OUT = {(0,0,1),(0,1,1),(1,0,0),(1,1,0)}.
        let m = m1();
        let v = AttrSet::from_indices(&[0, 2, 4]);
        let out = out_set_bruteforce(&m, &v, &Tuple::new(vec![0, 0]), 1 << 30).unwrap();
        let expect: BTreeSet<Tuple> = [vec![0, 0, 1], vec![0, 1, 1], vec![1, 0, 0], vec![1, 1, 0]]
            .into_iter()
            .map(Tuple::new)
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn bruteforce_privacy_level_equals_fast_checker_on_m1() {
        // Strong form of the Lemma-4 equivalence: for every visible
        // subset, min_x |OUT_x| computed over all possible worlds equals
        // the grouped-counting privacy level.
        let m = m1();
        for mask in 0u32..(1 << 5) {
            let visible = AttrSet::from_iter(
                (0..5)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| sv_relation::AttrId(i as u32)),
            );
            let slow = min_out_bruteforce(&m, &visible, 1 << 30).unwrap();
            let fast = m.privacy_level(&visible);
            assert_eq!(fast, slow, "visible={visible:?}");
            // Level equality implies is_safe agreement for every Γ.
        }
    }

    #[test]
    fn is_safe_bruteforce_threshold() {
        let m = m1();
        let v = AttrSet::from_indices(&[0, 2, 4]);
        assert!(is_safe_bruteforce(&m, &v, 4, 1 << 30).unwrap());
        assert!(!is_safe_bruteforce(&m, &v, 5, 1 << 30).unwrap());
    }

    #[test]
    fn budget_is_enforced() {
        let m = m1();
        assert!(matches!(
            enumerate_worlds(&m, &AttrSet::new(), 10),
            Err(CoreError::BudgetExceeded { .. })
        ));
    }
}
